"""Scalar replacement of non-escaping allocations (allocation sinking).

The staged interpreter already keeps allocations virtual while it can
(``Partial`` values), but it must *materialize* them at control-flow
merges and wherever a dynamic store forces it. This pass runs after
staging and removes those residual allocations when escape analysis
(:mod:`repro.analysis.escape`) proves the object never leaves the unit —
in the spirit of partial escape analysis and scalar replacement in Graal.

Two shapes are handled:

* **Straight-line** (case A): an allocation whose every use is a
  constant-keyed field/element access in its own block. The stores are
  interpreted at compile time and each load is rewritten to the stored
  value; the allocation disappears.
* **Merge** (case B): every predecessor of a merge block materializes an
  equal-shaped allocation, passes it as the same block parameter, and the
  parameter is only ever *read* with constant keys. The object parameter
  is exploded into one parameter per loaded field — a per-field phi — and
  the per-predecessor allocations and stores vanish.

Functions that previously failed ``checkNoAlloc`` on merge-materialized
temporaries now pass; the removed sites are reported as "sunk"
(:func:`repro.analysis.alloc.sunk_detail`) so the demanded-analysis story
stays explainable.
"""

from __future__ import annotations

from repro.analysis.alloc import describe_alloc
from repro.analysis.cfg import predecessors
from repro.analysis.escape import escaping_names
from repro.lms.ir import Branch, Effect, Jump, Stmt
from repro.lms.rep import ConstRep, Sym


def sink_allocations(blocks, entry_id):
    """Run scalar replacement in place; returns the list of sunk-site
    descriptions (one per removed allocation)."""
    sunk = []
    # Merges first: exploding a merge parameter leaves straight-line
    # residue that case A (and later DCE) cleans up.
    changed = True
    while changed:
        changed = _sink_one_merge(blocks, sunk)
    for block in blocks.values():
        _sink_straight_line(blocks, block, sunk)
    return sunk


# -- shapes ---------------------------------------------------------------------

def _shape_of(stmt):
    """(kind, identity, member-domain) of an allocation, or None."""
    if stmt.op == "new":
        cls = getattr(stmt.args[0], "obj", None)
        fields = getattr(cls, "all_fields", None)
        if fields is None:
            return None
        return ("obj", cls, frozenset(fields))
    if stmt.op == "new_array":
        n = stmt.args[0]
        if isinstance(n, ConstRep) and isinstance(n.value, int) \
                and not isinstance(n.value, bool) and n.value >= 0:
            return ("arr", n.value, frozenset(range(n.value)))
        return None
    if stmt.op == "array_lit":
        n = len(stmt.args)
        return ("arr", n, frozenset(range(n)))
    return None


def _initial_env(stmt, shape):
    if stmt.op == "array_lit":
        return dict(enumerate(stmt.args))
    # new: fields null-initialized; new_array: n nulls.
    return {}


def _member_default(shape, key, env):
    if key in env:
        return env[key]
    return ConstRep(None)


def _use_key(stmt):
    """(kind, key) for a constant-keyed decomposing use, or None."""
    op = stmt.op
    if op == "getfield":
        return ("load", stmt.args[1])
    if op == "putfield":
        return ("store", stmt.args[1])
    if op == "aload":
        idx = stmt.args[1]
        if isinstance(idx, ConstRep) and isinstance(idx.value, int) \
                and not isinstance(idx.value, bool):
            return ("load", idx.value)
        return None
    if op == "astore":
        idx = stmt.args[1]
        if isinstance(idx, ConstRep) and isinstance(idx.value, int) \
                and not isinstance(idx.value, bool):
            return ("store", idx.value)
        return None
    if op == "alen":
        return ("alen", None)
    return None


def _kind_matches(shape, stmt):
    wants_arr = stmt.op in ("aload", "astore", "alen")
    return (shape[0] == "arr") == wants_arr


def _uses_of(blocks, name):
    """Every (block, stmt, positions) statement use plus a count of
    terminator/phi uses of ``name``."""
    from repro.analysis.cfg import term_uses
    stmt_sites = []
    term_count = 0
    for block in blocks.values():
        for stmt in block.stmts:
            positions = [i for i, a in enumerate(stmt.args)
                         if isinstance(a, Sym) and a.name == name]
            if positions:
                stmt_sites.append((block, stmt, positions))
        term_count += sum(1 for n in term_uses(block.terminator)
                          if n == name)
    return stmt_sites, term_count


def _neutralize(stmt):
    """Turn a removed store into a pure ``None`` definition (its result
    sym is the pushed null); DCE sweeps it when unused."""
    return Stmt(stmt.sym, "id", (ConstRep(None),), Effect.PURE, stmt.flags)


# -- case A: straight-line -------------------------------------------------------

def _sink_straight_line(blocks, block, sunk):
    changed = True
    while changed:
        changed = False
        escaping = None
        for alloc in block.stmts:
            shape = _shape_of(alloc)
            if shape is None or alloc.effect is not Effect.ALLOC:
                continue
            if escaping is None:
                escaping = escaping_names(blocks)
            name = alloc.sym.name
            if name in escaping:
                continue
            if _replace_in_block(blocks, block, alloc, shape, sunk):
                changed = True
                break


def _replace_in_block(blocks, block, alloc, shape, sunk):
    name = alloc.sym.name
    sites, term_count = _uses_of(blocks, name)
    if term_count:
        return False
    for ub, stmt, positions in sites:
        if ub is not block or positions != [0] or stmt is alloc:
            return False
        key = _use_key(stmt)
        if key is None or not _kind_matches(shape, stmt):
            return False
        if key[1] is not None and key[1] not in shape[2]:
            return False            # a real run would raise; keep it
    # Interpret the block from the allocation on.
    env = _initial_env(alloc, shape)
    start = block.stmts.index(alloc)
    out = block.stmts[:start]
    for stmt in block.stmts[start + 1:]:
        if not any(isinstance(a, Sym) and a.name == name
                   for a in stmt.args):
            out.append(stmt)
            continue
        kind, key = _use_key(stmt)
        if kind == "store":
            env[key] = stmt.args[2]
            out.append(_neutralize(stmt))
        elif kind == "alen":
            out.append(Stmt(stmt.sym, "id", (ConstRep(shape[1]),),
                            Effect.PURE, stmt.flags))
        else:
            out.append(Stmt(stmt.sym, "id",
                            (_member_default(shape, key, env),),
                            Effect.PURE, stmt.flags))
    block.stmts[:] = out
    sunk.append(describe_alloc(alloc))
    return True


# -- case B: merge parameters ----------------------------------------------------

def _sink_one_merge(blocks, sunk):
    preds = predecessors(blocks)
    escaping = escaping_names(blocks)
    for mid in sorted(blocks):
        merge = blocks[mid]
        for param in list(merge.params):
            if _explode_param(blocks, preds, merge, param, escaping, sunk):
                return True
    return False


def _param_loads(blocks, param):
    """All uses of the merge parameter, each a constant-keyed read;
    returns ``(loads, keys)`` or None when any use disqualifies."""
    sites, term_count = _uses_of(blocks, param)
    if term_count:
        return None
    loads, keys = [], set()
    for block, stmt, positions in sites:
        if positions != [0]:
            return None
        key = _use_key(stmt)
        if key is None or key[0] == "store":
            return None
        loads.append((block, stmt, key))
        if key[0] == "load":
            keys.add(key[1])
    return loads, keys


def _pred_alloc(blocks, pred_block, rep, param):
    """The allocation feeding one incoming edge: must be a same-block
    alloc whose only uses are its init stores and this one phi assign."""
    if not isinstance(rep, Sym):
        return None
    alloc = None
    for stmt in pred_block.stmts:
        if stmt.sym.name == rep.name:
            alloc = stmt
    if alloc is None or alloc.effect is not Effect.ALLOC:
        return None
    shape = _shape_of(alloc)
    if shape is None:
        return None
    sites, term_count = _uses_of(blocks, rep.name)
    if term_count != 1:              # exactly the one phi assign
        return None
    env = _initial_env(alloc, shape)
    stores = []
    for block, stmt, positions in sites:
        if block is not pred_block or positions != [0]:
            return None
        key = _use_key(stmt)
        if key is None or key[0] != "store" or stmt.op == "putfield_stablecheck":
            return None
        if not _kind_matches(shape, stmt) or key[1] not in shape[2]:
            return None
        stores.append(stmt)
    for stmt in pred_block.stmts:     # program order
        if stmt in stores:
            env[_use_key(stmt)[1]] = stmt.args[2]
    return alloc, shape, env, stores


def _explode_param(blocks, preds, merge, param, escaping, sunk):
    if param in escaping:
        return False
    uses = _param_loads(blocks, param)
    if uses is None:
        return False
    loads, keys = uses
    # Every incoming edge must pass an eligible allocation of one shape.
    edges = []
    shape0 = None
    for pid in preds[merge.block_id]:
        pred = blocks[pid]
        term = pred.terminator
        if isinstance(term, Branch) \
                and term.true_target == term.false_target:
            return False
        assigns = _edge_assigns(term, merge.block_id)
        if assigns is None:
            return False
        rep = dict(assigns).get(param)
        found = _pred_alloc(blocks, pred, rep, param)
        if found is None:
            return False
        alloc, shape, env, stores = found
        if shape0 is None:
            shape0 = shape
        elif shape[:2] != shape0[:2]:
            return False
        edges.append((pred, assigns, rep, alloc, env, stores))
    if shape0 is None:               # unreachable merge: leave it alone
        return False
    for key in keys:
        if key not in shape0[2]:
            return False
    if not _kind_matches_all(shape0, loads):
        return False

    # -- commit ------------------------------------------------------------
    new_params = [_field_param(param, k) for k in sorted(keys, key=str)]
    at = merge.params.index(param)
    merge.params[at:at + 1] = new_params
    for pred, _assigns, _rep, alloc, env, stores in edges:
        exploded = [(_field_param(param, k),
                     _member_default(shape0, k, env))
                    for k in sorted(keys, key=str)]
        _rewrite_edge(pred.terminator, merge.block_id, param, exploded)
        pred.stmts[:] = [
            _neutralize(s) if s in stores else s
            for s in pred.stmts if s is not alloc]
        sunk.append(describe_alloc(alloc))
    for block, stmt, (kind, key) in loads:
        if kind == "alen":
            value = ConstRep(shape0[1])
        else:
            value = Sym(_field_param(param, key))
        at = block.stmts.index(stmt)
        block.stmts[at] = Stmt(stmt.sym, "id", (value,), Effect.PURE,
                               stmt.flags)
    return True


def _kind_matches_all(shape, loads):
    return all(_kind_matches(shape, stmt) for __, stmt, __ in loads)


def _field_param(param, key):
    return "%s_%s" % (param, key)


def _edge_assigns(term, target):
    if isinstance(term, Jump):
        return term.phi_assigns if term.target == target else None
    if isinstance(term, Branch):
        if term.true_target == target:
            return term.true_assigns
        if term.false_target == target:
            return term.false_assigns
    return None


def _rewrite_edge(term, target, param, exploded):
    def rewrite(assigns):
        out = []
        for name, rep in assigns:
            if name == param:
                out.extend(exploded)
            else:
                out.append((name, rep))
        assigns[:] = out

    if isinstance(term, Jump) and term.target == target:
        rewrite(term.phi_assigns)
    elif isinstance(term, Branch):
        if term.true_target == target:
            rewrite(term.true_assigns)
        if term.false_target == target:
            rewrite(term.false_assigns)

"""Core Lancet macros: freeze, unroll, ntimes, nested compile (paper
Fig. 2 / sections 2.3 and 3.1), plus installation of the whole macro set.

Each user-facing ``Lancet.*`` method is declared guest-side as (roughly)
an identity function (see :mod:`repro.runtime.natives`); the macros here
give them their compile-time meaning::

    object LancetMacros {
      def freeze[A](f: Rep[() => A]): Rep[A] = liftConst(evalM(f)())
    }
"""

from __future__ import annotations

from repro.absint.absval import Partial, PartialArray
from repro.bytecode.builder import MethodBuilder
from repro.bytecode.opcodes import Op
from repro.errors import FreezeError, MacroError, MaterializeError, UnrollError
from repro.macros.api import MacroInline

_NTIMES_CACHE = {}


def freeze(ctx, recv, args):
    """Evaluate the (thunked) argument at JIT-compile time; the result is
    embedded as a constant. Fails loudly if the argument is dynamic.

    Implemented by *partially evaluating* the thunk body under a ``freeze``
    scope (which also licenses folding of allocating natives like
    ``split``): the thunk may capture partially-dynamic objects as long as
    the frozen expression itself only touches their static parts.
    """
    def after(machine, state, rep):
        av = machine.eval_abs(state, rep)
        if av.is_static_value:
            return machine.ctx.lift(machine.static_value(state, rep))
        if isinstance(av, (Partial, PartialArray)):
            try:
                return machine.ctx.lift(machine.eval_m(state, rep))
            except MaterializeError as exc:
                raise FreezeError("freeze: result is only partially "
                                  "static: %s" % exc)
        raise FreezeError(
            "freeze: argument cannot be evaluated at compile time "
            "(abstract value: %r)" % (av,))

    return ctx.fun_r(args[0], [], on_return=after,
                     scope_updates={"freeze": True})


def unroll(ctx, recv, args):
    """Mark subsequent loops in the current dynamic scope for unrolling
    (polyvariant loop-header cloning instead of widening)."""
    ctx.scope()["unroll"] = True
    return args[0]


def _ntimes_body(n):
    """Synthesize ``def ntimes$n(f) { f(0); f(1); ... }`` — unfolding the
    loop at compile time (the paper's staging-time for-loop)."""
    method = _NTIMES_CACHE.get(n)
    if method is None:
        b = MethodBuilder("ntimes$%d" % n, 1, is_static=True)
        for i in range(n):
            b.load(0).const(i).invoke("apply", 1).emit(Op.POP)
        b.ret()
        method = b.build()
        method.class_name = "Lancet$synth"
        _NTIMES_CACHE[n] = method
    return method


def ntimes(ctx, recv, args):
    """``ntimes(n)(f)``: unroll ``f(0) .. f(n-1)``; ``n`` must be static."""
    n_rep, f_rep = args
    try:
        n = ctx.eval_m(n_rep)
    except Exception as exc:
        raise UnrollError("ntimes: trip count is not static: %s" % exc)
    if not isinstance(n, int) or isinstance(n, bool) or n < 0:
        raise MacroError("ntimes: bad trip count %r" % (n,))
    if n > 100_000:
        raise UnrollError("ntimes: refusing to unroll %d iterations" % n)
    return MacroInline(_ntimes_body(n), [f_rep])


def compile_macro(ctx, recv, args):
    """``Lancet.compile`` encountered *during* compilation: run the nested
    explicit compilation now and embed the resulting compiled closure.
    A surrounding ``tier1``/``tier2`` directive pins the nested compile's
    tier."""
    closure = ctx.eval_m(args[0])
    jit = ctx.vm.jit
    tier = ctx.scope_get("tier", None)
    options = None
    if tier is not None:
        from repro.pipeline.tiers import tier_options
        options = tier_options(jit.options, tier)
    compiled = jit.compile_closure(closure, options=options)
    return ctx.lift(compiled)


def install_core_macros(registry):
    from repro.macros import control, directives, speculate
    registry.install("Lancet", "freeze", freeze)
    registry.install("Lancet", "unroll", unroll)
    registry.install("Lancet", "ntimes", ntimes)
    registry.install("Lancet", "compile", compile_macro)
    registry.install("Lancet", "likely", speculate.likely)
    registry.install("Lancet", "speculate", speculate.speculate)
    registry.install("Lancet", "stable", speculate.stable)
    registry.install("Lancet", "slowpath", control.slowpath)
    registry.install("Lancet", "fastpath", control.fastpath)
    registry.install("Lancet", "shift", control.shift)
    registry.install("Lancet", "reset", control.reset)
    for name in ("inlineAlways", "inlineNever", "inlineNonRec",
                 "unrollTopLevel", "checkNoAlloc", "checkNoTaint",
                 "tier1", "tier2"):
        registry.install("Lancet", name, directives.scoped_directive(name))
    registry.install("Lancet", "atScope", directives.at_scope)
    registry.install("Lancet", "inScope", directives.in_scope)
    registry.install("Lancet", "taint", directives.taint)
    registry.install("Lancet", "untaint", directives.untaint)

"""Static control-flow facts about bytecode methods.

The staged interpreter absorbs straight-line control flow into the block it
is generating and only splits at *join points* — bytecode indices with more
than one static predecessor (if/else joins, loop headers). This keeps the
generated CFG small and makes loop headers explicit merge candidates.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op

def successors_of(code, i):
    ins = code[i]
    if ins.op is Op.JUMP:
        return (ins.arg,)
    if ins.op in (Op.JIF_TRUE, Op.JIF_FALSE):
        return (i + 1, ins.arg)
    if ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
        return ()
    return (i + 1,)


def join_bcis(method):
    """The set of bcis with more than one static predecessor."""
    cached = getattr(method, "_join_bcis", None)
    if cached is not None:
        return cached
    preds = {}
    code = method.code
    for i in range(len(code)):
        for s in successors_of(code, i):
            if s < len(code):
                preds[s] = preds.get(s, 0) + 1
    joins = frozenset(bci for bci, n in preds.items() if n > 1)
    method._join_bcis = joins
    return joins


def basic_blocks(method):
    """Leader-based basic blocks: list of (start, end_exclusive)."""
    code = method.code
    leaders = {0}
    for i in range(len(code)):
        ins = code[i]
        if ins.op in (Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE):
            leaders.add(ins.arg)
            if ins.op is not Op.JUMP and i + 1 < len(code):
                leaders.add(i + 1)
        elif ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
            if i + 1 < len(code):
                leaders.add(i + 1)
    ordered = sorted(leaders)
    blocks = []
    for idx, start in enumerate(ordered):
        end = ordered[idx + 1] if idx + 1 < len(ordered) else len(code)
        blocks.append((start, end))
    return blocks


def loop_headers(method):
    """Join bcis that are targets of a backward edge (loop headers)."""
    code = method.code
    headers = set()
    for i in range(len(code)):
        for s in successors_of(code, i):
            if s <= i and s in join_bcis(method):
                headers.add(s)
    return frozenset(headers)

"""The optimization-enabling static analyses (effects/escape/ranges) and
the passes they power (GVN, LICM, scalar replacement, range-based guard
pruning) — both on hand-built IR and end-to-end through the JIT."""

from __future__ import annotations

import pytest

from repro import CompileOptions, Lancet
from repro.analysis.cfg import def_counts, dominates, dominators
from repro.analysis.effects import (EffectSummary, clobbers, is_total,
                                    may_alias)
from repro.analysis.escape import escaping_names
from repro.analysis.ranges import RangeAnalysis, range_facts
from repro.errors import NoAllocError
from repro.lms.ir import Block, Branch, Effect, Jump, Return, Stmt
from repro.lms.rep import ConstRep, StaticRep, Sym
from repro.pipeline.gvn import global_value_numbering
from repro.pipeline.licm import hoist_loop_invariants
from repro.pipeline.rangeopt import prune_range_guards
from repro.pipeline.sink import sink_allocations


def stmt(name, op, args, effect=Effect.PURE, flags=None):
    return Stmt(Sym(name), op, args, effect, flags)


def diamond():
    """entry -> {left, right} -> merge."""
    b0, b1, b2, b3 = Block(0), Block(1), Block(2), Block(3, params=["p"])
    b0.terminator = Branch(Sym("c"), 1, [], 2, [])
    b1.terminator = Jump(3, [("p", Sym("x1"))])
    b2.terminator = Jump(3, [("p", Sym("x2"))])
    b3.terminator = Return(Sym("p"))
    return {0: b0, 1: b1, 2: b2, 3: b3}


class TestDominators:
    def test_diamond(self):
        blocks = diamond()
        idom = dominators(blocks, 0)
        assert idom[0] == 0 and idom[1] == 0 and idom[2] == 0
        assert idom[3] == 0
        assert dominates(idom, 0, 3)
        assert not dominates(idom, 1, 3)
        assert dominates(idom, 3, 3)

    def test_chain(self):
        b0, b1, b2 = Block(0), Block(1), Block(2)
        b0.terminator = Jump(1)
        b1.terminator = Jump(2)
        b2.terminator = Return(ConstRep(0))
        idom = dominators({0: b0, 1: b1, 2: b2}, 0)
        assert idom == {0: 0, 1: 0, 2: 1}
        assert dominates(idom, 0, 2)

    def test_def_counts(self):
        blocks = diamond()
        blocks[1].stmts.append(stmt("x1", "id", (ConstRep(1),)))
        counts = def_counts(blocks)
        assert counts["x1"] == 1 and counts["p"] == 1


class TestEffects:
    def test_num_arith_total_div_not(self):
        assert is_total(stmt("s", "add", (Sym("a"), Sym("b")),
                             flags={"num": True}))
        assert not is_total(stmt("s", "add", (Sym("a"), Sym("b"))))
        assert not is_total(stmt("s", "div", (Sym("a"), Sym("b")),
                                 flags={"num": True}))

    def test_alias_rules(self):
        k0, k1 = StaticRep(0, object()), StaticRep(1, object())
        assert not may_alias(k0, k1)
        assert may_alias(k0, StaticRep(0, object()))
        fresh = {"n1", "n2"}
        assert not may_alias(Sym("n1"), k0, fresh)
        assert not may_alias(Sym("n1"), Sym("n2"), fresh)
        assert may_alias(Sym("n1"), Sym("n1"), fresh)
        assert may_alias(Sym("n1"), Sym("other"), fresh)

    def test_putfield_clobbers_matching_field_only(self):
        load = ("getfield", Sym("o"), "x")
        assert clobbers(stmt("s", "putfield", (Sym("o"), "x", ConstRep(1)),
                             Effect.WRITE), load)
        assert not clobbers(stmt("s", "putfield",
                                 (Sym("o"), "y", ConstRep(1)),
                                 Effect.WRITE), load)

    def test_astore_distinct_const_indices_no_clobber(self):
        load = ("aload", Sym("a"), ConstRep(0))
        assert not clobbers(stmt("s", "astore",
                                 (Sym("a"), ConstRep(1), ConstRep(9)),
                                 Effect.WRITE), load)
        assert clobbers(stmt("s", "astore",
                             (Sym("a"), ConstRep(0), ConstRep(9)),
                             Effect.WRITE), load)
        assert not clobbers(stmt("s", "astore",
                                 (Sym("a"), Sym("i"), ConstRep(9)),
                                 Effect.WRITE), ("alen", Sym("a")))

    def test_phi_move_ids_never_clobber(self):
        # fuse materializes phi moves as `id` with Effect.WRITE.
        assert not clobbers(stmt("s", "id", (Sym("v"),), Effect.WRITE),
                            ("getfield", Sym("o"), "x"))

    def test_summary_purity(self):
        assert EffectSummary().is_pure
        assert not EffectSummary(reads=True).is_pure
        assert EffectSummary(reads=True, may_throw=True).is_read_only
        assert not EffectSummary(writes=True).is_read_only


class TestEscape:
    def test_returned_value_escapes(self):
        b = Block(0)
        b.stmts.append(stmt("arr", "array_lit", (ConstRep(1),),
                            Effect.ALLOC))
        b.terminator = Return(Sym("arr"))
        assert "arr" in escaping_names({0: b})

    def test_field_base_does_not_escape_but_stored_value_does(self):
        b = Block(0)
        b.stmts.append(stmt("obj", "new", (StaticRep(0, object()),),
                            Effect.ALLOC))
        b.stmts.append(stmt("val", "array_lit", (ConstRep(1),),
                            Effect.ALLOC))
        b.stmts.append(stmt("st", "putfield", (Sym("obj"), "f", Sym("val")),
                            Effect.WRITE))
        b.terminator = Return(ConstRep(None))
        escaping = escaping_names({0: b})
        assert "obj" not in escaping
        assert "val" in escaping            # stored into the heap

    def test_escape_flows_through_copies_and_phis(self):
        b0, b1 = Block(0), Block(1, params=["p"])
        b0.stmts.append(stmt("arr", "array_lit", (), Effect.ALLOC))
        b0.terminator = Jump(1, [("p", Sym("arr"))])
        b1.terminator = Return(Sym("p"))
        assert "arr" in escaping_names({0: b0, 1: b1})


class TestRanges:
    def test_loop_counter_stays_nonnegative(self):
        # i = 0; while (i < 10) i = i + 1;  -- i in [0, 10] at the header.
        b0 = Block(0)
        b0.terminator = Jump(1, [("i", ConstRep(0))])
        b1 = Block(1, params=["i"])
        b1.stmts.append(stmt("c", "lt", (Sym("i"), ConstRep(10))))
        b1.terminator = Branch(Sym("c"), 2, [], 3, [])
        b2 = Block(2)
        b2.stmts.append(stmt("i2", "add", (Sym("i"), ConstRep(1)),
                             flags={"num": True}))
        b2.terminator = Jump(1, [("i", Sym("i2"))])
        b3 = Block(3)
        b3.terminator = Return(Sym("i"))
        blocks = {0: b0, 1: b1, 2: b2, 3: b3}
        analysis, facts = range_facts(blocks, 0)
        lo, hi = facts[1][0]["i"]
        assert lo == 0
        # In the loop body the branch refined i < 10 (closed bound: 10).
        blo, bhi = facts[2][0]["i"]
        assert blo == 0 and bhi is not None and bhi <= 10

    def test_prove_compare_strictness(self):
        prove = RangeAnalysis.prove_compare
        assert prove("lt", (0, 4), (5, 9)) is True
        assert prove("lt", (0, 5), (5, 9)) is None      # closed bounds
        assert prove("le", (0, 5), (5, 9)) is True
        assert prove("ge", (0, 9), (10, 10)) is False
        assert prove("ge", (0, 10), (10, 10)) is None
        assert prove("ge", (10, 20), (0, 10)) is True
        assert prove("eq", (3, 3), (3, 3)) is True
        assert prove("ne", (0, 1), (5, 9)) is True

    def test_guard_pruned_with_provenance(self):
        b0 = Block(0)
        b0.stmts.append(stmt("i", "id", (ConstRep(3),)))
        b0.stmts.append(stmt("c", "ge", (Sym("i"), ConstRep(0))))
        b0.stmts.append(stmt("g", "guard", (Sym("c"), ConstRep(0)),
                             Effect.GUARD, flags={"src": ("f", 7)}))
        b0.terminator = Return(Sym("i"))
        blocks = {0: b0}
        pruned, folded, detail = prune_range_guards(blocks, 0)
        assert pruned == 1 and folded == 0
        assert "in f (bci 7)" in detail[0]
        assert "range analysis" in detail[0]
        assert all(s.op != "guard" for s in b0.stmts)

    def test_unprovable_guard_kept(self):
        b0 = Block(0, params=["x"])
        b0.stmts.append(stmt("c", "ge", (Sym("x"), ConstRep(0))))
        b0.stmts.append(stmt("g", "guard", (Sym("c"), ConstRep(0)),
                             Effect.GUARD))
        b0.terminator = Return(Sym("x"))
        pruned, __, __ = prune_range_guards({0: b0}, 0, params=["x"])
        assert pruned == 0

    def test_branch_folding_removes_dead_block(self):
        b0 = Block(0)
        b0.stmts.append(stmt("c", "lt", (ConstRep(1), ConstRep(2))))
        b0.terminator = Branch(Sym("c"), 1, [], 2, [])
        b1 = Block(1)
        b1.terminator = Return(ConstRep("yes"))
        b2 = Block(2)
        b2.terminator = Return(ConstRep("no"))
        blocks = {0: b0, 1: b1, 2: b2}
        __, folded, __ = prune_range_guards(blocks, 0)
        assert folded == 1
        assert 2 not in blocks


class TestGVNPass:
    def test_cross_block_cse(self):
        b0 = Block(0, params=["a", "b"])
        b0.stmts.append(stmt("x", "mul", (Sym("a"), Sym("b")),
                             flags={"num": True}))
        b0.terminator = Jump(1)
        b1 = Block(1)
        b1.stmts.append(stmt("y", "mul", (Sym("a"), Sym("b")),
                             flags={"num": True}))
        b1.terminator = Return(Sym("y"))
        blocks = {0: b0, 1: b1}
        stats = global_value_numbering(blocks, 0)
        assert stats["cse"] == 1
        assert not b1.stmts
        assert b1.terminator.value == Sym("x")

    def test_commutative_canonicalization(self):
        b0 = Block(0, params=["a", "b"])
        b0.stmts.append(stmt("x", "add", (Sym("a"), Sym("b")),
                             flags={"num": True}))
        b0.stmts.append(stmt("y", "add", (Sym("b"), Sym("a")),
                             flags={"num": True}))
        b0.terminator = Return(Sym("y"))
        stats = global_value_numbering({0: b0}, 0)
        assert stats["cse"] == 1

    def test_load_cse_until_aliasing_store(self):
        obj = Sym("o")
        b0 = Block(0, params=["o", "v"])
        b0.stmts.append(stmt("l1", "getfield", (obj, "x"), Effect.READ))
        b0.stmts.append(stmt("l2", "getfield", (obj, "x"), Effect.READ))
        b0.stmts.append(stmt("st", "putfield", (obj, "x", Sym("v")),
                             Effect.WRITE))
        b0.stmts.append(stmt("l3", "getfield", (obj, "x"), Effect.READ))
        b0.terminator = Return(Sym("l3"))
        stats = global_value_numbering({0: b0}, 0)
        assert stats["loads"] == 1                 # l2 folded into l1
        ops = [s.sym.name for s in b0.stmts]
        assert "l3" in ops                         # reloaded after the store

    def test_redundant_phi_collapses(self):
        b0 = Block(0, params=["a"])
        b0.terminator = Jump(1, [("k", Sym("a")), ("i", ConstRep(0))])
        b1 = Block(1, params=["k", "i"])
        b1.stmts.append(stmt("c", "lt", (Sym("i"), Sym("k"))))
        b1.terminator = Branch(Sym("c"), 2, [], 3, [])
        b2 = Block(2)
        b2.stmts.append(stmt("i2", "add", (Sym("i"), ConstRep(1)),
                             flags={"num": True}))
        b2.terminator = Jump(1, [("k", Sym("k")), ("i", Sym("i2"))])
        b3 = Block(3)
        b3.terminator = Return(Sym("i"))
        blocks = {0: b0, 1: b1, 2: b2, 3: b3}
        stats = global_value_numbering(blocks, 0)
        assert stats["phis"] == 1
        assert b1.params == ["i"]                 # k collapsed to a
        assert b1.stmts[0].args == (Sym("i"), Sym("a"))


class TestLICMPass:
    def _loop(self):
        """pre(0) -> header(1) -> body(2) -> header; exit(3)."""
        b0 = Block(0, params=["a", "n"])
        b0.terminator = Jump(1, [("i", ConstRep(0))])
        b1 = Block(1, params=["i"])
        b1.stmts.append(stmt("c", "lt", (Sym("i"), Sym("n"))))
        b1.terminator = Branch(Sym("c"), 2, [], 3, [])
        b2 = Block(2)
        b2.terminator = Jump(1, [("i", Sym("i2"))])
        b3 = Block(3)
        b3.terminator = Return(Sym("i"))
        return {0: b0, 1: b1, 2: b2, 3: b3}, b1, b2

    def test_total_invariant_hoisted_from_body(self):
        blocks, __, body = self._loop()
        body.stmts.insert(0, stmt("inv", "mul", (Sym("a"), Sym("a")),
                                  flags={"num": True}))
        body.stmts.insert(1, stmt("i2", "add", (Sym("i"), ConstRep(1)),
                                  flags={"num": True}))
        hoisted = hoist_loop_invariants(blocks, 0)
        assert hoisted == 1
        assert blocks[0].stmts[-1].sym.name == "inv"
        assert all(s.sym.name != "inv" for s in body.stmts)

    def test_may_raise_invariant_only_from_header_prefix(self):
        blocks, header, body = self._loop()
        # Non-num mul may raise: hoistable from the header prefix...
        header.stmts.insert(0, stmt("h", "mul", (Sym("a"), Sym("a"))))
        # ...but not from the body (it may never execute).
        body.stmts.insert(0, stmt("x", "mul", (Sym("n"), Sym("n"))))
        body.stmts.insert(1, stmt("i2", "add", (Sym("i"), ConstRep(1)),
                                  flags={"num": True}))
        hoisted = hoist_loop_invariants(blocks, 0)
        assert hoisted == 1
        assert blocks[0].stmts[-1].sym.name == "h"
        assert any(s.sym.name == "x" for s in body.stmts)

    def test_variant_not_hoisted(self):
        blocks, __, body = self._loop()
        body.stmts.insert(0, stmt("v", "mul", (Sym("i"), Sym("i")),
                                  flags={"num": True}))
        body.stmts.insert(1, stmt("i2", "add", (Sym("i"), ConstRep(1)),
                                  flags={"num": True}))
        assert hoist_loop_invariants(blocks, 0) == 0


class TestScalarReplacement:
    def test_straight_line_array_sunk(self):
        b0 = Block(0, params=["a", "b"])
        b0.stmts.append(stmt("arr", "array_lit", (Sym("a"), Sym("b")),
                             Effect.ALLOC))
        b0.stmts.append(stmt("l0", "aload", (Sym("arr"), ConstRep(0)),
                             Effect.READ))
        b0.stmts.append(stmt("l1", "aload", (Sym("arr"), ConstRep(1)),
                             Effect.READ))
        b0.stmts.append(stmt("ln", "alen", (Sym("arr"),), Effect.READ))
        b0.terminator = Return(Sym("l0"))
        blocks = {0: b0}
        sunk = sink_allocations(blocks, 0)
        assert len(sunk) == 1
        assert all(s.effect is not Effect.ALLOC for s in b0.stmts)
        loads = {s.sym.name: s for s in b0.stmts}
        assert loads["l0"].args == (Sym("a"),)
        assert loads["l1"].args == (Sym("b"),)
        assert loads["ln"].args == (ConstRep(2),)

    def test_escaping_alloc_not_sunk(self):
        b0 = Block(0, params=["a"])
        b0.stmts.append(stmt("arr", "array_lit", (Sym("a"),), Effect.ALLOC))
        b0.terminator = Return(Sym("arr"))
        assert sink_allocations({0: b0}, 0) == []

    def test_dynamic_index_blocks_sinking(self):
        b0 = Block(0, params=["a", "i"])
        b0.stmts.append(stmt("arr", "array_lit", (Sym("a"),), Effect.ALLOC))
        b0.stmts.append(stmt("l", "aload", (Sym("arr"), Sym("i")),
                             Effect.READ))
        b0.terminator = Return(Sym("l"))
        assert sink_allocations({0: b0}, 0) == []


OPT_OFF = CompileOptions(opt_gvn=False, opt_licm=False,
                         opt_scalar_replace=False, opt_range_guards=False)

MERGE_SRC = '''
def pick(ax, ay, bx, by, flag) {
  var p = [ax, ay];
  if (flag) { p = [bx, by]; }
  return p[0] + p[1];
}
'''


class TestEndToEnd:
    def test_merge_alloc_now_passes_check_noalloc(self):
        """The regression the tentpole demands: a merge-materialized
        allocation used to fail checkNoAlloc; scalar replacement sinks it."""
        jit = Lancet(options=CompileOptions(check_noalloc=True))
        jit.load(MERGE_SRC)
        compiled = jit.compile_function("Main", "pick")
        assert compiled(1, 2, 30, 40, True) == 70
        assert compiled(1, 2, 30, 40, False) == 3

    def test_merge_alloc_fails_without_sinking(self):
        jit = Lancet(options=CompileOptions(check_noalloc=True,
                                            opt_scalar_replace=False))
        jit.load(MERGE_SRC)
        with pytest.raises(NoAllocError):
            jit.compile_function("Main", "pick")

    def test_sunk_sites_reported_in_diagnostics(self):
        jit = Lancet()
        jit.load(MERGE_SRC)
        diag = jit.analyze("Main", "pick")
        sunk = [d for d in diag if d.kind == "sink"]
        assert len(sunk) == 2
        assert all("sunk by scalar replacement" in d.message for d in sunk)
        assert all(d.severity == "info" for d in sunk)

    def test_speculated_bound_pruned_by_range_analysis(self):
        src = '''
        def sum(n) {
          var acc = 0;
          var i = 0;
          while (i < n) {
            Lancet.speculate(i >= 0);
            acc = acc + i;
            i = i + 1;
          }
          return acc;
        }
        '''
        jit = Lancet()
        jit.load(src)
        diag = jit.analyze("Main", "sum")
        assert any(d.kind == "range"
                   and "proven redundant by range analysis" in d.message
                   for d in diag)
        compiled = jit.compile_function("Main", "sum")
        assert "_DeoptEx" not in compiled.source
        assert compiled(10) == 45

        plain = Lancet(options=OPT_OFF)
        plain.load(src)
        unopt = plain.compile_function("Main", "sum")
        assert "_DeoptEx" in unopt.source
        assert unopt(10) == 45

    def test_gvn_and_licm_fire_end_to_end(self):
        src = '''
        def scaled(lo, hi, f) {
          var acc = 0;
          var i = lo;
          while (i < hi * f) { acc = acc + i; i = i + 1; }
          return acc;
        }
        '''
        jit = Lancet()
        jit.load(src)
        compiled = jit.compile_function("Main", "scaled")
        assert compiled(0, 4, 3) == 66
        # The invariant `hi * f` is computed once, outside the loop.
        assert compiled.source.count("_mul") == 1
        stats = {s["pass"]: s for s in compiled.report.pass_stats}
        assert "licm" in stats and "gvn" in stats

    def test_opt_passes_skipped_when_flags_off(self):
        jit = Lancet(options=OPT_OFF)
        jit.load(MERGE_SRC)
        compiled = jit.compile_function("Main", "pick")
        names = [s["pass"] for s in compiled.report.pass_stats]
        assert "gvn" not in names and "licm" not in names
        assert "sink" not in names and "range" not in names


class TestDeprecatedShim:
    def test_analysis_pipeline_shim_removed(self):
        # The deprecated AnalysisPipeline alias is gone; PassManager is
        # the only pass sequencer.
        with pytest.raises(ImportError):
            from repro.analysis.pipeline import AnalysisPipeline  # noqa: F401
        import repro.analysis as analysis
        assert not hasattr(analysis, "AnalysisPipeline")


class TestDeliteOptimization:
    """Kernel effect summaries unblock GVN/LICM/DCE on Delite launches.
    Before them, every launch was pessimized as an arbitrary write (never
    hoisted or merged) while paradoxically being removable when unused."""

    def make(self, body, module):
        from repro.optiml import load_optiml
        jit = Lancet()
        load_optiml(jit)
        jit.load(body, module=module)
        return jit, jit.vm.call(module, "mk")

    def test_loop_invariant_launch_hoisted(self):
        # vsum(xs) is invariant: write-free builtin, scalar result, total.
        # Previously pinned in the loop -- one launch per iteration.
        jit, cf = self.make('''
            def mk() {
              var xs = [1.0, 2.0, 3.0];
              return Lancet.compile(fun(n) {
                var total = 0.0;
                var i = 0;
                while (i < n) {
                  total = total + Optiml.vsum(xs);
                  i = i + 1;
                }
                return total;
              });
            }
        ''', "DeliteHoist")
        jit.delite.reset_clock()
        assert cf(5) == pytest.approx(30.0)
        assert jit.delite.ops_run == 1          # hoisted: 1 launch, 5 iters

    def test_duplicate_launch_merged_by_gvn(self):
        jit, cf = self.make('''
            def mk() {
              var xs = [1.0, 2.0, 3.0];
              return Lancet.compile(fun(d) {
                return Optiml.vsum(xs) + Optiml.vsum(xs);
              });
            }
        ''', "DeliteCSE")
        jit.delite.reset_clock()
        assert cf(0) == pytest.approx(12.0)
        assert jit.delite.ops_run == 1          # second launch CSE'd

    def test_stateful_launch_stays_pinned(self):
        # The kernel writes a captured accumulator: the launch must not
        # hoist out of the loop, and must not be deleted as an unused
        # allocation (its result is never read -- only the side effect,
        # observed here through the captured guest array).
        jit, pair = self.make('''
            def mk() {
              var xs = [1.0, 2.0];
              var acc = newArray(1, 0.0);
              var cf = Lancet.compile(fun(n) {
                var i = 0;
                while (i < n) {
                  Optiml.vmap(xs, fun(x) { acc[0] = acc[0] + x; return x; });
                  i = i + 1;
                }
                return i;
              });
              return [cf, acc];
            }
        ''', "DelitePinned")
        cf, acc = pair[0], pair[1]
        jit.delite.reset_clock()
        assert cf(3) == 3
        assert acc[0] == pytest.approx(9.0)     # 3 iterations x sum(xs)
        assert jit.delite.ops_run == 3          # never hoisted or DCE'd

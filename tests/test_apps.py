"""The bundled guest applications (paper's running examples) end-to-end."""

import math

import pytest

from repro import Lancet
from repro.apps import app_source, load_app
from repro.apps.csv_baselines import (accessed_keys, cpp_baseline,
                                      generate_csv)


@pytest.fixture
def jit():
    return Lancet()


class TestCsvApp:
    def test_flag_query_matches_baselines(self, jit):
        lines = generate_csv(300)
        keys = accessed_keys()
        load_app(jit, "csv", module="CsvApp")
        assert jit.vm.call("CsvApp", "flagQuery", [lines, keys]) \
            == cpp_baseline(lines, keys)

    def test_interpreted_query_agrees(self, jit):
        lines = generate_csv(60)
        keys = accessed_keys()
        load_app(jit, "csv", module="CsvApp")
        assert jit.vm.call("CsvApp", "flagQueryInterp", [lines, keys]) \
            == jit.vm.call("CsvApp", "flagQuery", [lines, keys])

    def test_specialized_loop_has_no_record_or_index_lookup(self, jit):
        lines = generate_csv(50)
        load_app(jit, "csv", module="CsvApp")
        jit.vm.call("CsvApp", "flagQuery", [lines, accessed_keys()])
        source = jit.compile_log[-1][1].source
        assert "indexOf" not in source       # name->column mapping gone
        assert "_newinst" not in source      # Record scalar-replaced
        assert "_callv" not in source        # callback fully inlined

    def test_dump_records_unrolls_schema(self, jit):
        load_app(jit, "csv", module="CsvApp")
        small = ["Name,Value,Flag", "A,7,no", "B,2,yes"]
        jit.vm.call("CsvApp", "dumpRecords", [small])
        out = jit.vm.output()
        assert "Name: A" in out and "Value: 7" in out and "Flag: no" in out
        assert "Name: B" in out and "Flag: yes" in out

    def test_per_file_specialization_coexists(self, jit):
        """Two files with different schemas get two live specializations
        (the paper's 'multiple versions active at the same time')."""
        load_app(jit, "csv", module="CsvApp")
        f1 = ["Flag,X,Y", "yes,1,2", "no,3,4"]
        f2 = ["P,Q,Flag", "a,b,yes"]
        runner_count_before = len(jit.compile_log)
        assert jit.vm.call("CsvApp", "flagQuery", [f1, ["X"]]) == [1, 2]
        assert jit.vm.call("CsvApp", "flagQuery", [f2, ["Q"]]) == [1, 1]
        assert len(jit.compile_log) >= runner_count_before + 2


class TestSafeInt:
    def test_product_small_fast_path(self, jit):
        load_app(jit, "safeint", module="Safeint")
        product = jit.vm.call("Safeint", "makeProduct")
        assert product(10) == math.factorial(10)
        assert product.deopt_count == 0

    def test_overflow_deoptimizes_and_stays_correct(self, jit):
        load_app(jit, "safeint", module="Safeint")
        product = jit.vm.call("Safeint", "makeProduct")
        assert product(25) == math.factorial(25)
        assert product.deopt_count == 1

    def test_compiled_fast_path_never_allocates_big(self, jit):
        load_app(jit, "safeint", module="Safeint")
        product = jit.vm.call("Safeint", "makeProduct")
        assert "Big" not in product.source

    def test_interpreted_agrees(self, jit):
        load_app(jit, "safeint", module="Safeint")
        assert jit.vm.call("Safeint", "product", [12]) \
            == math.factorial(12)


class TestStableTree:
    def build(self, jit, pairs):
        root = None
        for k, v in pairs:
            root = jit.vm.call("Stabletree", "insert", [root, k, v])
        return root

    def test_lookup_matches_interpreted(self, jit):
        load_app(jit, "stabletree", module="Stabletree")
        for f in ("key", "value", "left", "right"):
            jit.mark_stable("Node", f)
        pairs = [(50, "a"), (20, "b"), (80, "c"), (10, "d"), (35, "e")]
        root = self.build(jit, pairs)
        compiled = jit.vm.call("Stabletree", "makeLookup", [root])
        for k, v in pairs:
            assert compiled(k) == v
            assert jit.vm.call("Stabletree", "lookup", [root, k]) == v
        assert compiled(99) is None

    def test_structure_compiles_away(self, jit):
        load_app(jit, "stabletree", module="Stabletree")
        for f in ("key", "value", "left", "right"):
            jit.mark_stable("Node", f)
        root = self.build(jit, [(5, "x"), (3, "y"), (8, "z")])
        compiled = jit.vm.call("Stabletree", "makeLookup", [root])
        compiled(3)
        assert "_getf" not in compiled.source
        assert "fields[" not in compiled.source

    def test_update_invalidates(self, jit):
        load_app(jit, "stabletree", module="Stabletree")
        for f in ("key", "value", "left", "right"):
            jit.mark_stable("Node", f)
        root = self.build(jit, [(5, "x")])
        compiled = jit.vm.call("Stabletree", "makeLookup", [root])
        assert compiled(7) is None
        jit.vm.call("Stabletree", "insert", [root, 7, "new"])
        assert not compiled.valid
        assert compiled(7) == "new"


class TestAppLoader:
    def test_app_source_reads(self):
        assert "processCSV" in app_source("csv")

    def test_unknown_app_raises(self):
        with pytest.raises(FileNotFoundError):
            app_source("nonexistent")

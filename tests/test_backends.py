"""Cross-compilation backends (paper 3.5): JavaScript and SQL."""

import pytest

from repro import Lancet
from repro.backends.javascript import cross_compile_js
from repro.backends.sql import (Table, nested_lookup_grouped,
                                nested_lookup_naive, predicate_to_sql)
from repro.backends.sqldb import MiniDB
from repro.errors import CompilationError


class TestJavaScript:
    def test_arithmetic_function(self, jit):
        jit.load("def poly(x) { return x * x + 2 * x + 1; }")
        js = cross_compile_js(jit, "Main", "poly")
        assert "function poly(a1)" in js
        assert "a1 * a1" in js or "(a1 * a1)" in js.replace("var ", "")
        assert "return" in js

    def test_loop_compiles_to_labels(self, jit):
        jit.load('''
            def total(n) {
              var s = 0; var i = 0;
              while (i < n) { s = s + i; i = i + 1; }
              return s;
            }
        ''')
        js = cross_compile_js(jit, "Main", "total")
        assert "switch (__L)" in js
        assert "continue;" in js

    def test_int_division_semantics_preserved(self, jit):
        jit.load("def half(a, b) { return a / b; }")
        js = cross_compile_js(jit, "Main", "half")
        assert "__div" in js            # trunc-toward-zero helper

    def test_dom_style_method_calls(self, jit):
        """The snowflake pattern: methods on an unknown receiver become JS
        method calls (the paper's DOM macro behaviour)."""
        jit.load('''
            def leg(c, n) {
              c.moveTo(0, 0);
              c.lineTo(n, n);
            }
            def snowflake(c, n) {
              c.save();
              c.translate(1, 2);
              leg(c, n);
              c.rotate(0 - 120);
              c.restore();
            }
        ''')
        js = cross_compile_js(jit, "Main", "snowflake")
        for call in ("a1.save()", "a1.translate(1, 2)", "a1.moveTo(0, 0)",
                     "a1.rotate", "a1.restore()"):
            assert call in js, js
        # leg() was inlined: bytecode is available for all functions.
        assert "leg(" not in js

    def test_println_becomes_console_log(self, jit):
        jit.load('def hello(x) { println("v=" + x); }')
        js = cross_compile_js(jit, "Main", "hello")
        assert "console.log" in js

    def test_heap_statics_rejected(self, jit):
        jit.load('''
            def make() {
              var arr = [1, 2, 3];
              return Lancet.compile(fun(i) => arr[i]);
            }
        ''')
        closure_src = jit.vm.call("Main", "make")
        # The compiled closure references the static array — untranslatable.
        from repro.backends.javascript import render_js
        with pytest.raises(CompilationError):
            render_js(closure_src.ir, "f")


def make_predicate(jit, body, module="Preds"):
    import itertools
    for i in itertools.count():
        name = "%s%d" % (module, i)
        if name not in jit.vm.linker.classes:
            jit.load("def mk() { return %s; }" % body, module=name)
            return jit.vm.call(name, "mk")


class TestSQLPredicates:
    def test_simple_comparison(self, jit):
        closure = make_predicate(jit, "fun(x) => x > 0")
        sql, compiled = predicate_to_sql(jit, closure, "price")
        assert sql == "(price > 0)"
        assert compiled(5) is True and compiled(-1) is False

    def test_external_function_is_inlined(self, jit):
        """The paper's headline case: the predicate calls a function
        defined elsewhere — bytecode lifting handles it."""
        jit.load("def p(x) { return x < 100; }", module="Lib")
        closure = make_predicate(jit, "fun(x) => x > 0 && Lib.p(x)")
        sql, compiled = predicate_to_sql(jit, closure, "price")
        assert "price > 0" in sql and "price < 100" in sql
        assert "AND" in sql
        assert compiled(50) is True
        assert compiled(500) is False

    def test_or_and_arithmetic(self, jit):
        closure = make_predicate(jit, "fun(x) => x * 2 == 10 || x == 0")
        sql, __ = predicate_to_sql(jit, closure, "qty")
        assert "OR" in sql
        assert "(qty * 2)" in sql


class TestQueries:
    def setup_db(self, jit):
        db = MiniDB()
        db.create_table("t_item", [
            {"id": 1, "price": 10, "name": "a"},
            {"id": 2, "price": -5, "name": "b"},
            {"id": 3, "price": 30, "name": "c"},
        ])
        db.create_table("t_order", [
            {"order_id": 1, "item": 1, "qty": 2},
            {"order_id": 2, "item": 1, "qty": 1},
            {"order_id": 3, "item": 3, "qty": 5},
        ])
        return db

    def test_filter_count(self, jit):
        db = self.setup_db(jit)
        items = Table(db, "t_item", jit)
        pred = make_predicate(jit, "fun(x) => x > 0")
        res = items.filter("price", pred)
        assert res.count() == 2
        assert "WHERE (price > 0)" in db.query_log[0]

    def test_scalar_reuse_single_trip(self, jit):
        """count + sum over the same query: one round-trip, not two
        (the paper's duplicate-execution problem, solved by context)."""
        db = self.setup_db(jit)
        items = Table(db, "t_item", jit)
        pred = make_predicate(jit, "fun(x) => x > 0")
        res = items.filter("price", pred)
        assert res.count() == 2
        assert res.sum("price") == 40
        assert db.trips() == 1

    def test_without_reuse_two_trips(self, jit):
        db = self.setup_db(jit)
        items = Table(db, "t_item", jit)
        pred = make_predicate(jit, "fun(x) => x > 0")
        res = items.filter("price", pred)
        res.reuse = False
        res.count()
        res.sum("price")
        assert db.trips() == 2

    def test_query_avalanche_vs_grouped(self, jit):
        db = self.setup_db(jit)
        orders = Table(db, "t_order", jit)
        keys = [1, 2, 3]

        naive = nested_lookup_naive(keys, orders, "item")
        naive_trips = db.trips()
        db.reset_log()
        grouped = nested_lookup_grouped(keys, orders, "item")
        grouped_trips = db.trips()

        assert naive_trips == len(keys)      # the avalanche
        assert grouped_trips == 1            # single GROUP BY
        for k in keys:
            assert naive[k] == grouped[k]

    def test_chained_filters(self, jit):
        db = self.setup_db(jit)
        items = Table(db, "t_item", jit)
        p1 = make_predicate(jit, "fun(x) => x > 0")
        p2 = make_predicate(jit, "fun(i) => i != 3")
        res = items.filter("price", p1).filter("id", p2)
        assert res.count() == 1
        assert "AND" in res.to_sql()

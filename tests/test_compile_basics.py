"""Explicit compilation: correctness (differential vs interpreter) and
optimization assertions on the generated code."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import CompileOptions, Lancet
from tests.conftest import load, run_both


class TestCorrectness:
    def test_arith(self):
        assert run_both("def f(x, y) { return (x + y) * (x - y) % 7; }",
                        "f", [10, 3]) == (13 * 7) % 7

    def test_branches(self):
        src = "def f(x) { if (x > 0) { return x; } else { return 0 - x; } }"
        assert run_both(src, "f", [5]) == 5
        assert run_both(src, "f", [-5]) == 5

    def test_loops(self):
        src = '''
            def f(n) {
              var s = 0; var i = 0;
              while (i < n) { s = s + i * i; i = i + 1; }
              return s;
            }
        '''
        assert run_both(src, "f", [10]) == sum(i * i for i in range(10))

    def test_nested_loops(self):
        src = '''
            def f(n) {
              var total = 0;
              var i = 0;
              while (i < n) {
                var j = 0;
                while (j < i) { total = total + 1; j = j + 1; }
                i = i + 1;
              }
              return total;
            }
        '''
        assert run_both(src, "f", [6]) == 15

    def test_objects_and_methods(self):
        src = '''
            class Vec {
              var x; var y;
              def init(x, y) { this.x = x; this.y = y; }
              def dot(o) { return this.x * o.x + this.y * o.y; }
            }
            def f(a, b) {
              var v = new Vec(a, b);
              var w = new Vec(b, a);
              return v.dot(w);
            }
        '''
        assert run_both(src, "f", [3, 4]) == 24

    def test_arrays(self):
        src = '''
            def f(n) {
              var arr = newArray(n, 0);
              var i = 0;
              while (i < n) { arr[i] = i * 2; i = i + 1; }
              var s = 0;
              for (x in arr) { s = s + x; }
              return s;
            }
        '''
        assert run_both(src, "f", [8]) == sum(2 * i for i in range(8))

    def test_strings(self):
        src = '''
            def f(s) {
              var parts = split(s, ",");
              var out = "";
              for (p in parts) { out = out + "[" + p + "]"; }
              return out;
            }
        '''
        assert run_both(src, "f", ["a,b,c"]) == "[a][b][c]"

    def test_closure_calls(self):
        src = '''
            def f(x) {
              var add = fun(a, b) => a + b;
              return add(x, add(x, 1));
            }
        '''
        assert run_both(src, "f", [5]) == 11

    def test_early_returns(self):
        src = '''
            def f(x) {
              if (x < 0) { return -1; }
              if (x == 0) { return 0; }
              return 1;
            }
        '''
        for v in (-3, 0, 3):
            run_both(src, "f", [v])

    def test_division_semantics_match(self):
        src = "def f(a, b) { return [a / b, a % b]; }"
        assert run_both(src, "f", [-7, 2]) == [-3, -1]

    def test_float_math(self):
        src = "def f(x) { return Math.sqrt(x) + Math.exp(0.0); }"
        assert run_both(src, "f", [9.0]) == 4.0

    def test_recursion_residual_call(self):
        src = '''
            def fact(n) {
              if (n <= 1) { return 1; }
              return n * fact(n - 1);
            }
        '''
        assert run_both(src, "fact", [10]) == 3628800

    def test_mutual_recursion(self):
        src = '''
            def isEven(n) { if (n == 0) { return true; } return isOdd(n - 1); }
            def isOdd(n) { if (n == 0) { return false; } return isEven(n - 1); }
        '''
        assert run_both(src, "isEven", [9]) is False

    def test_virtual_dispatch_unknown_receiver(self):
        src = '''
            class A { def tag() { return 1; } }
            class B extends A { def tag() { return 2; } }
            def pick(flag) { if (flag) { return new A(); } return new B(); }
            def f(flag) { return pick(flag).tag(); }
        '''
        assert run_both(src, "f", [True]) == 1
        assert run_both(src, "f", [False]) == 2

    def test_guest_throw(self):
        from repro.interp.interpreter import GuestThrow
        j = load("def f(x) { if (x < 0) { throw \"neg\"; } return x; }")
        compiled = j.compile_function("Main", "f")
        assert compiled(5) == 5
        with pytest.raises(GuestThrow):
            compiled(-1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_property_differential_arith(self, x, y):
        src = '''
            def f(x, y) {
              var a = x * 3 - y;
              var b = 0;
              if (a > x) { b = a - x; } else { b = x - a; }
              var i = 0;
              while (i < 5) { b = b + i * y; i = i + 1; }
              return b;
            }
        '''
        run_both(src, "f", [x, y])


class TestOptimizations:
    def test_constant_folding(self):
        j = load("def f() { return 2 * 3 + 4; }")
        c = j.compile_function("Main", "f")
        assert c() == 10
        assert "return 10" in c.source

    def test_inlining_default(self):
        j = load('''
            def helper(x) { return x + 1; }
            def f(x) { return helper(helper(x)); }
        ''')
        c = j.compile_function("Main", "f")
        assert c(1) == 3
        assert "_callm" not in c.source      # fully inlined

    def test_dead_branch_elimination(self):
        j = load('''
            def f(x) {
              var debug = false;
              if (debug) { println("dbg"); }
              return x;
            }
        ''')
        c = j.compile_function("Main", "f")
        assert "println" not in c.source

    def test_cse(self):
        j = load("def f(x) { return (x * x) + (x * x); }")
        c = j.compile_function("Main", "f")
        assert c(3) == 18
        assert c.source.count("_mul") == 1

    def test_allocation_sinking(self):
        j = load('''
            class Pair { var a; var b;
              def init(a, b) { this.a = a; this.b = b; } }
            def f(x) {
              var p = new Pair(x, x + 1);
              return p.a + p.b;
            }
        ''')
        c = j.compile_function("Main", "f")
        assert c(5) == 11
        assert "_newinst" not in c.source    # Pair scalar-replaced

    def test_algebraic_simplification(self):
        j = load("def f(x) { var zero = 0; return (x + 1) * 1 + zero * x; }")
        c = j.compile_function("Main", "f")
        assert c(4) == 5

    def test_num_fastpath_in_loops(self):
        j = load('''
            def f(n) {
              var s = 0; var i = 0;
              while (i < n) { s = s + i; i = i + 1; }
              return s;
            }
        ''')
        c = j.compile_function("Main", "f")
        # After one iteration the loop vars are known numeric: raw `+`.
        assert " + " in c.source

    def test_warnings_as_errors(self):
        from repro.errors import CompilationWarningList
        j = load('''
            def f() {
              return Lancet.compile(fun(x) {
                if (Lancet.likely(false)) { return 1; }
                return x;
              });
            }
        ''', options=CompileOptions(warnings_as_errors=True))
        with pytest.raises(CompilationWarningList):
            j.vm.call("Main", "f")

    def test_compiled_faster_than_interpreter(self):
        import time
        src = '''
            def work(n) {
              var s = 0; var i = 0;
              while (i < n) { s = s + i * 3 % 7; i = i + 1; }
              return s;
            }
        '''
        j = load(src)
        n = 20000
        t0 = time.perf_counter()
        expected = j.vm.call("Main", "work", [n])
        t_interp = time.perf_counter() - t0
        c = j.compile_function("Main", "work")
        c(n)  # warm
        t0 = time.perf_counter()
        got = c(n)
        t_comp = time.perf_counter() - t0
        assert got == expected
        assert t_comp < t_interp / 5, (t_interp, t_comp)

"""MiniJ recursive-descent parser."""

from __future__ import annotations

from repro.errors import MiniJSyntaxError
from repro.frontend import ast
from repro.frontend.lexer import tokenize


def parse(source):
    """Parse MiniJ source into an :class:`ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    @property
    def tok(self):
        return self.tokens[self.pos]

    def advance(self):
        t = self.tokens[self.pos]
        self.pos += 1
        return t

    def err(self, msg):
        t = self.tok
        raise MiniJSyntaxError("%s (got %r)" % (msg, t.value), t.line, t.col)

    def check(self, kind, value=None):
        t = self.tok
        return t.kind == kind and (value is None or t.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        if not self.check(kind, value):
            self.err("expected %s" % (value or kind))
        return self.advance()

    # -- top level ---------------------------------------------------------------

    def parse_program(self):
        classes = []
        functions = []
        while not self.check("eof"):
            if self.check("kw", "class"):
                classes.append(self.parse_class())
            elif self.check("kw", "def"):
                functions.append(self.parse_func(is_static=True))
            else:
                self.err("expected 'class' or 'def'")
        return ast.Program(classes, functions)

    def parse_class(self):
        line = self.expect("kw", "class").line
        name = self.expect("name").value
        super_name = None
        if self.accept("kw", "extends"):
            super_name = self.expect("name").value
        self.expect("op", "{")
        fields = []
        methods = []
        while not self.accept("op", "}"):
            if self.check("kw", "var") or self.check("kw", "val"):
                is_val = self.advance().value == "val"
                while True:
                    fname = self.expect("name").value
                    fields.append((fname, is_val))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
            elif self.check("kw", "def"):
                methods.append(self.parse_func(is_static=False))
            else:
                self.err("expected field or method")
        return ast.ClassDecl(name, super_name, fields, methods, line)

    def parse_func(self, is_static):
        line = self.expect("kw", "def").line
        name = self.expect("name").value
        params = self.parse_params()
        body = self.parse_block()
        return ast.FuncDecl(name, params, body, line, is_static=is_static)

    def parse_params(self):
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                params.append(self.expect("name").value)
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params

    # -- statements ------------------------------------------------------------------

    def parse_block(self):
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self):
        t = self.tok
        if t.kind == "kw":
            if t.value == "var" or t.value == "val":
                self.advance()
                name = self.expect("name").value
                init = None
                if self.accept("op", "="):
                    init = self.parse_expr()
                self.expect("op", ";")
                return ast.VarDecl(name, init, t.line)
            if t.value == "if":
                return self.parse_if()
            if t.value == "while":
                self.advance()
                self.expect("op", "(")
                cond = self.parse_expr()
                self.expect("op", ")")
                body = self.parse_block()
                return ast.While(cond, body, t.line)
            if t.value == "for":
                self.advance()
                self.expect("op", "(")
                var = self.expect("name").value
                self.expect("kw", "in")
                iterable = self.parse_expr()
                self.expect("op", ")")
                body = self.parse_block()
                return ast.For(var, iterable, body, t.line)
            if t.value == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expr()
                self.expect("op", ";")
                return ast.Return(value, t.line)
            if t.value == "throw":
                self.advance()
                value = self.parse_expr()
                self.expect("op", ";")
                return ast.Throw(value, t.line)
        expr = self.parse_expr()
        if self.accept("op", "="):
            value = self.parse_expr()
            self.expect("op", ";")
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise MiniJSyntaxError("invalid assignment target", t.line, t.col)
            return ast.Assign(expr, value, t.line)
        self.expect("op", ";")
        return ast.ExprStmt(expr, t.line)

    def parse_if(self):
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_block()
        orelse = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse, line)

    # -- expressions (precedence climbing) ----------------------------------------------

    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        lhs = self.parse_and()
        while self.check("op", "||"):
            line = self.advance().line
            rhs = self.parse_and()
            lhs = ast.BinOp("||", lhs, rhs, line)
        return lhs

    def parse_and(self):
        lhs = self.parse_equality()
        while self.check("op", "&&"):
            line = self.advance().line
            rhs = self.parse_equality()
            lhs = ast.BinOp("&&", lhs, rhs, line)
        return lhs

    def parse_equality(self):
        lhs = self.parse_relational()
        while self.check("op", "==") or self.check("op", "!="):
            t = self.advance()
            rhs = self.parse_relational()
            lhs = ast.BinOp(t.value, lhs, rhs, t.line)
        return lhs

    def parse_relational(self):
        lhs = self.parse_additive()
        while True:
            if self.check("kw", "is"):
                line = self.advance().line
                cname = self.expect("name").value
                lhs = ast.InstanceOf(lhs, cname, line)
                continue
            if (self.check("op", "<") or self.check("op", "<=")
                    or self.check("op", ">") or self.check("op", ">=")):
                t = self.advance()
                rhs = self.parse_additive()
                lhs = ast.BinOp(t.value, lhs, rhs, t.line)
                continue
            return lhs

    def parse_additive(self):
        lhs = self.parse_multiplicative()
        while self.check("op", "+") or self.check("op", "-"):
            t = self.advance()
            rhs = self.parse_multiplicative()
            lhs = ast.BinOp(t.value, lhs, rhs, t.line)
        return lhs

    def parse_multiplicative(self):
        lhs = self.parse_unary()
        while (self.check("op", "*") or self.check("op", "/")
               or self.check("op", "%")):
            t = self.advance()
            rhs = self.parse_unary()
            lhs = ast.BinOp(t.value, lhs, rhs, t.line)
        return lhs

    def parse_unary(self):
        if self.check("op", "-") or self.check("op", "!"):
            t = self.advance()
            operand = self.parse_unary()
            if t.value == "-" and isinstance(operand, ast.Literal) \
                    and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value, t.line)
            return ast.UnaryOp(t.value, operand, t.line)
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            if self.accept("op", "."):
                name = self.expect("name").value
                if self.check("op", "("):
                    args = self.parse_args()
                    expr = ast.MethodCall(expr, name, args, self.tok.line)
                else:
                    expr = ast.FieldAccess(expr, name, self.tok.line)
                continue
            if self.check("op", "["):
                line = self.advance().line
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(expr, index, line)
                continue
            if self.check("op", "(") and isinstance(expr, ast.Name):
                line = self.tok.line
                args = self.parse_args()
                expr = ast.Call(expr.id, args, line)
                continue
            if self.check("op", "(") and isinstance(expr, (ast.Lambda,
                                                           ast.MethodCall,
                                                           ast.FieldAccess,
                                                           ast.Index,
                                                           ast.Call)):
                # Calling a computed closure value: e(...) => e.apply(...)
                line = self.tok.line
                args = self.parse_args()
                expr = ast.MethodCall(expr, "apply", args, line)
                continue
            return expr

    def parse_args(self):
        self.expect("op", "(")
        args = []
        if not self.check("op", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return args

    def parse_primary(self):
        t = self.tok
        if t.kind in ("int", "float", "str"):
            self.advance()
            return ast.Literal(t.value, t.line)
        if t.kind == "kw":
            if t.value in ("true", "false"):
                self.advance()
                return ast.Literal(t.value == "true", t.line)
            if t.value == "null":
                self.advance()
                return ast.Literal(None, t.line)
            if t.value == "this":
                self.advance()
                node = ast.This(t.line)
                return node
            if t.value == "new":
                self.advance()
                cname = self.expect("name").value
                args = self.parse_args()
                return ast.New(cname, args, t.line)
            if t.value == "fun":
                self.advance()
                params = self.parse_params()
                if self.accept("op", "=>"):
                    expr = self.parse_expr()
                    body = [ast.Return(expr, t.line)]
                else:
                    body = self.parse_block()
                return ast.Lambda(params, body, t.line)
        if t.kind == "name":
            self.advance()
            return ast.Name(t.value, t.line)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        if self.check("op", "["):
            line = self.advance().line
            elements = []
            if not self.check("op", "]"):
                while True:
                    elements.append(self.parse_expr())
                    if not self.accept("op", ","):
                        break
            self.expect("op", "]")
            return ast.ArrayLit(elements, line)
        self.err("expected expression")

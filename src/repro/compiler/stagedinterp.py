"""The staged interpreter: Lancet's core (paper sections 2.1–2.3).

This is the bytecode interpreter of :mod:`repro.interp` with its value
domain swapped from concrete values to staged values (``Rep``), exactly as
the paper describes: the frame layout, operand-stack handling, and dispatch
logic execute *statically* at compile time; only primitive operations and
heap accesses become residual code.

Layered on top is the abstract interpreter (section 2.2): every staged
value carries an ``AbsVal`` fact, operations fold when their operands are
static, and control-flow joins compute least upper bounds, iterating to a
fixpoint around loops ("dataflow analysis interleaved with
transformation").

Mechanically, compilation explores a graph of *machine states* (an
inline-chain of abstract frames plus an abstract heap of scalar-replaced
allocations):

* straight-line control flow and calls chosen for inlining are absorbed
  into the current block;
* branches whose condition folds to a constant disappear;
* transfers to bytecode join points split blocks. The first edge to a join
  creates a single-predecessor continuation block (which may freely read
  the predecessor's symbols and receive scalar-replaced objects); a second
  edge converts it to a *merge block* with explicit block parameters, and
  the whole compilation restarts with the widened entry state. Passes
  repeat until no entry state changes — the fixpoint of section 2.2.
* under an ``unroll`` dynamic scope, repeated arrivals at a loop header
  with fully-static state clone the header instead of widening
  (polyvariant specialization — this is how loops over frozen data unroll).

JIT macros (section 2.3) intercept calls before native/guest dispatch and
may return staged values or directives (inline-this, guard, slowpath,
fastpath, return) — see :mod:`repro.macros.api`.
"""

from __future__ import annotations

import re
from collections import deque

from repro.absint.absval import (Const, Partial, PartialArray, Static,
                                 Unknown, UNKNOWN, lub, merge_type_hints)
from repro.bytecode.opcodes import Op
from repro.compiler.blocks import join_bcis
from repro.compiler.deopt import (DeoptMeta, FrameTemplate, VirtualArray,
                                  VirtualObject)
from repro.analysis.liveness import live_at
from repro.compiler.options import CompileOptions
from repro.errors import (CompilationError, GuestError, LinkError,
                          MaterializeError, UnrollError)
from repro.lms.ir import Branch, Deopt, Effect, Jump, OsrCompile, Return
from repro.lms.rep import ConstRep, StaticRep, Sym
from repro.lms.staging import StagingContext, _Statics
from repro.macros.api import (FastpathDirective, MacroContext, MacroInline,
                              ReturnDirective, SlowpathDirective)
from repro.runtime import ops as guest_ops
from repro.runtime.natives import lookup_native
from repro.runtime.objects import Obj

_END = "end"
_CONTINUE = "continue"

_DIRECTIVE_SCOPES = {
    "inlineAlways": {"inline": "always"},
    "inlineNever": {"inline": "never"},
    "inlineNonRec": {"inline": "nonrec"},
    "unrollTopLevel": {"unroll": True},
    "unroll": {"unroll": True},
    "checkNoAlloc": {"noalloc": True},
    "checkNoTaint": {"checktaint": True},
}


class AbstractFrame:
    """An interpreter frame over staged values (paper Fig. 7: the locals
    array becomes ``Array[Rep[Object]]``)."""

    __slots__ = ("method", "parent", "bci", "locals", "tos", "scope",
                 "on_return")

    def __init__(self, method, parent=None, scope=None):
        self.method = method
        self.parent = parent
        self.bci = 0
        self.locals = [ConstRep(None)] * method.frame_slots()
        self.tos = method.num_locals
        self.scope = scope if scope is not None else {}
        self.on_return = None

    def push(self, rep):
        if self.tos >= len(self.locals):
            self.locals.append(rep)
        else:
            self.locals[self.tos] = rep
        self.tos += 1

    def pop(self):
        self.tos -= 1
        return self.locals[self.tos]

    def stack_reps(self):
        return self.locals[self.method.num_locals:self.tos]

    def copy_chain(self):
        parent = self.parent.copy_chain() if self.parent is not None else None
        f = AbstractFrame.__new__(AbstractFrame)
        f.method = self.method
        f.parent = parent
        f.bci = self.bci
        f.locals = list(self.locals)
        f.tos = self.tos
        f.scope = dict(self.scope)
        f.on_return = self.on_return
        return f

    def chain(self):
        """Frames from root to this leaf."""
        frames = []
        f = self
        while f is not None:
            frames.append(f)
            f = f.parent
        frames.reverse()
        return frames


class HeapEntry:
    """A scalar-replaced allocation: object or array."""

    __slots__ = ("kind", "cls", "fields", "elems", "materialized")

    def __init__(self, kind, cls=None, fields=None, elems=None,
                 materialized=False):
        self.kind = kind            # 'obj' | 'arr'
        self.cls = cls
        self.fields = fields if fields is not None else {}
        self.elems = elems
        self.materialized = materialized

    def copy(self):
        return HeapEntry(self.kind, self.cls,
                         dict(self.fields) if self.fields is not None else None,
                         list(self.elems) if self.elems is not None else None,
                         self.materialized)


class MachineState:
    """Leaf abstract frame (chain via parents) + abstract heap."""

    __slots__ = ("frame", "heap")

    def __init__(self, frame, heap=None):
        self.frame = frame
        self.heap = heap if heap is not None else {}

    def copy(self):
        return MachineState(self.frame.copy_chain(),
                            {k: e.copy() for k, e in self.heap.items()})

    def key(self):
        parts = []
        f = self.frame
        while f is not None:
            parts.append((id(f.method), f.bci))
            f = f.parent
        return tuple(parts)


class MergeInfo:
    """Persistent (across passes) facts about one reachable program point."""

    __slots__ = ("bid", "mode", "lattice", "shape")

    def __init__(self, bid):
        self.bid = bid
        self.mode = "single"
        self.lattice = None       # list of slot-lattice entries (merge mode)
        self.shape = None         # representative state (frame shape/scopes)


class CompileResult:
    """Everything the JIT driver needs to finish a unit."""

    def __init__(self, blocks, entry_bid, entry_assigns, param_names, metas,
                 statics, stable_deps, warnings, taint_branch_sinks,
                 noalloc_sites):
        self.blocks = blocks
        self.entry_bid = entry_bid
        self.entry_assigns = entry_assigns
        self.param_names = param_names
        self.metas = metas
        self.statics = statics
        self.stable_deps = stable_deps
        self.warnings = warnings
        # (Branch terminator, description) pairs for dynamic branches
        # emitted under a checktaint scope; the taint pass decides which
        # actually branch on tainted data.
        self.taint_branch_sinks = taint_branch_sinks
        # Slowpath deopt sites recorded under a noalloc scope at staging
        # (terminators are never DCE'd; scope info is gone later).
        self.noalloc_sites = noalloc_sites


class StagedInterpreter:
    """Compiles one unit (a guest closure/method under given abstract
    arguments) to a CFG of staged IR."""

    def __init__(self, vm, macros, options=None, telemetry=None):
        self.vm = vm
        self.linker = vm.linker
        self.macros = macros
        self.options = options or CompileOptions()
        self.telemetry = telemetry
        # Decision counters, reset each fixpoint pass so that after
        # compile_unit they describe the final (emitted) code, not the sum
        # over abandoned passes. Mirrored into the unit's CompileReport.
        self.pass_count = 0
        self.inline_count = 0
        self.residual_count = 0
        self.guard_count = 0
        self.deopt_site_count = 0
        self.unroll_clone_count = 0
        self.macro_count = 0
        # Persistent across passes:
        self.statics = _Statics()
        self.merge_infos = {}
        self._next_bid = 0
        self.stable_deps = []          # (obj, field_name)
        # Static arrays the compiled code writes (or passes to residual
        # calls): their element reads must not fold. Discovered writes
        # trigger another pass so earlier folds get undone.
        self._written_statics = set()
        # Per pass:
        self.ctx = None
        self._pass_changed = False
        self._reached_count = None
        self._enqueued = None
        self._generated = None
        self._single_entries = None
        self._pass_versions = None
        self._worklist = None
        self._taint_branch_sinks = []
        self._noalloc_sites = []
        self._stmt_budget = 0

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def compile_unit(self, build_entry_state, param_names):
        """Run generation passes to fixpoint. ``build_entry_state()``
        constructs a fresh entry state (same shape every pass)."""
        entry_bid = None
        entry_assigns = []
        for pass_num in range(self.options.max_passes):
            self.ctx = StagingContext(statics=self.statics)
            self._pass_changed = False
            self._reached_count = {}
            self._enqueued = set()
            self._generated = set()
            self._single_entries = {}
            self._pass_versions = {}
            self._worklist = deque()
            self._taint_branch_sinks = []
            self._noalloc_sites = []
            self._stmt_budget = self.options.max_stmts
            self.stable_deps = []
            self._fresh_arrays = set()
            self.pass_count = pass_num + 1
            self.inline_count = 0
            self.residual_count = 0
            self.guard_count = 0
            self.deopt_site_count = 0
            self.unroll_clone_count = 0
            self.macro_count = 0

            entry_state = build_entry_state()
            # Seed abstract facts for the entry parameter syms.
            prologue = self.ctx.new_block(self._bid_for_prologue())
            self.ctx.set_current(prologue)
            entry_bid, entry_assigns = self.reach(entry_state)
            prologue.terminator = Jump(entry_bid, entry_assigns)

            while self._worklist:
                entry = self._worklist.popleft()
                if entry[0] == "merge":
                    # Build the merge state from the *current* lattice:
                    # predecessors reached after enqueueing may have
                    # upgraded slots (const -> param) in the meantime.
                    bid, state, params = self._merge_entry(entry[1])
                else:
                    __, bid, state = entry
                    params = None
                self._generate_block(bid, state, params)

            self._tel_record("compile.phase", pass_num=pass_num + 1,
                             changed=self._pass_changed,
                             blocks=len(self.ctx.blocks))
            if not self._pass_changed:
                break
        else:
            raise CompilationError(
                "compilation did not converge after %d passes"
                % self.options.max_passes)

        blocks = self.ctx.blocks
        return CompileResult(
            blocks=blocks,
            entry_bid=self._prologue_bid,
            entry_assigns=entry_assigns,
            param_names=param_names,
            metas=self.ctx.deopt_metas,
            statics=self.statics,
            stable_deps=self.stable_deps,
            warnings=self.ctx.warnings,
            taint_branch_sinks=self._taint_branch_sinks,
            noalloc_sites=self._noalloc_sites,
        )

    def _tel_record(self, kind, /, **data):
        tel = self.telemetry
        if tel is not None:
            tel.record(kind, **data)

    def _bid_for_prologue(self):
        if not hasattr(self, "_prologue_bid"):
            self._prologue_bid = self._alloc_bid()
        return self._prologue_bid

    def _alloc_bid(self):
        bid = self._next_bid
        self._next_bid += 1
        return bid

    # ------------------------------------------------------------------
    # Abstract facts
    # ------------------------------------------------------------------

    def eval_abs(self, state, rep):
        """``evalA`` with scalar-replacement awareness."""
        if isinstance(rep, Sym):
            entry = state.heap.get(rep.name)
            if entry is not None and not entry.materialized:
                if entry.kind == "obj":
                    return Partial(entry.cls, entry.fields)
                return PartialArray(entry.elems)
        return self.ctx.eval_abs(rep)

    def eval_m(self, state, rep, _memo=None):
        """``evalM``: materialize a staged value to a concrete one."""
        if _memo is None:
            _memo = {}
        if isinstance(rep, Sym) and rep.name in _memo:
            return _memo[rep.name]
        av = self.eval_abs(state, rep)
        if isinstance(av, Const):
            return av.value
        if isinstance(av, Static):
            return av.obj
        if isinstance(av, Partial):
            obj = Obj(av.cls, {})
            _memo[rep.name] = obj
            for name in av.cls.all_fields:
                obj.fields[name] = None
            for name, frep in av.fields.items():
                obj.fields[name] = self.eval_m(state, frep, _memo)
            return obj
        if isinstance(av, PartialArray):
            arr = []
            _memo[rep.name] = arr
            arr.extend(self.eval_m(state, e, _memo) for e in av.elems)
            return arr
        raise MaterializeError("cannot materialize %r (%r)" % (rep, av))

    def static_value(self, state, rep):
        """Concrete value of a Const/Static rep, or a _NoValue marker."""
        av = self.eval_abs(state, rep)
        if isinstance(av, Const):
            return av.value
        if isinstance(av, Static):
            return av.obj
        return _NO_VALUE

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def emit_flags(self, state):
        scope = state.frame.scope
        # Bytecode provenance for the IR analyses (checkNoAlloc reports,
        # taint sinks): the method and bci this statement came from.
        flags = {"src": (state.frame.method.qualified_name,
                         state.frame.bci)}
        if scope.get("noalloc") or self.options.check_noalloc:
            flags["noalloc"] = True
        if scope.get("checktaint") or self.options.check_taint:
            flags["checktaint"] = True
        return flags

    def emit(self, state, op, args, effect=Effect.PURE, flags=None,
             absval=None, taint=None):
        if self._stmt_budget <= 0:
            raise CompilationError("statement budget exhausted "
                                   "(max_stmts=%d)" % self.options.max_stmts)
        self._stmt_budget -= 1
        merged = self.emit_flags(state)
        if flags:
            merged.update(flags)
        # checkNoAlloc violations are found by the post-optimization IR
        # pass (repro.analysis.alloc), not at emit time: a statement DCE
        # removes never reaches the generated code.
        if effect in (Effect.CALL, Effect.IO):
            # Residual calls may mutate any pre-existing object.
            self._forward.clear()
        self._dead_store_bookkeeping(op, args, effect, merged)
        sym = self.ctx.emit(op, args, effect=effect, flags=merged,
                            absval=absval, taint=taint)
        self._record_pending_store(op, args, merged)
        return sym

    def _record_pending_store(self, op, args, flags):
        block = self.ctx.current_block
        if not block.stmts:
            return
        stmt = block.stmts[-1]
        if stmt.op != op:
            return
        if op == "astore" and flags.get("fast") and "static_id" in flags \
                and isinstance(args[1], ConstRep):
            self._pending_arr_stores[(flags["static_id"],
                                      args[1].value)] = stmt
        elif op == "putfield" and flags.get("objfast") \
                and "static_id" in flags:
            self._pending_field_stores[(flags["static_id"], args[1])] = stmt

    def _dead_store_bookkeeping(self, op, args, effect, flags):
        """Dead-store elimination for forwarded stores to pre-existing
        arrays/objects: a fast store overwritten before any potentially
        aliasing read, call, or deopt point is removed."""
        arr_pending = self._pending_arr_stores
        field_pending = self._pending_field_stores
        if effect in (Effect.CALL, Effect.IO, Effect.GUARD):
            arr_pending.clear()
            field_pending.clear()
            return
        if op == "astore":
            if flags.get("fast") and "static_id" in flags \
                    and isinstance(args[1], ConstRep):
                key = (flags["static_id"], args[1].value)
                old = arr_pending.pop(key, None)
                if old is not None:
                    try:
                        self.ctx.current_block.stmts.remove(old)
                    except ValueError:
                        pass
            else:
                arr_pending.clear()
        elif op == "aload":
            if flags.get("fast"):
                pass  # same-key loads were forwarded; distinct keys are safe
            elif flags.get("known_arr") and isinstance(args[0], Sym) \
                    and args[0].name in self._fresh_arrays:
                pass  # a freshly-allocated array cannot alias a static
            else:
                arr_pending.clear()
        elif op == "putfield":
            if flags.get("objfast") and "static_id" in flags:
                key = (flags["static_id"], args[1])
                old = field_pending.pop(key, None)
                if old is not None:
                    try:
                        self.ctx.current_block.stmts.remove(old)
                    except ValueError:
                        pass
            else:
                field_pending.clear()
        elif op == "getfield":
            if not (flags.get("objfast") and "static_id" in flags):
                field_pending.clear()

    def emit_native(self, state, nat, args):
        if nat.pure:
            effect = Effect.ALLOC if nat.allocates else Effect.PURE
        elif nat.calls_guest:
            effect = Effect.CALL
        elif nat.allocates:
            # Non-pure only to block folding/CSE (each call is a fresh
            # array); the sole effect is the allocation itself, so the
            # result is dead-code removable and mutates nothing existing.
            effect = Effect.ALLOC
        else:
            effect = Effect.IO
        for a in args:
            self.escape(state, a)
        if effect in (Effect.IO, Effect.CALL):
            for a in args:
                self._note_static_write(state, a)
        sym = self.emit(state, "native", (nat,) + tuple(args), effect=effect,
                        absval=Unknown(ty=nat.result_ty,
                                       nonnull=nat.result_ty is not None))
        if nat.allocates:
            self._fresh_arrays.add(sym.name)
        return sym

    # ------------------------------------------------------------------
    # Scalar replacement / escapes
    # ------------------------------------------------------------------

    def escape(self, state, rep):
        """Materialize a scalar-replaced allocation (and everything it
        references) because it becomes visible to residual code."""
        if not isinstance(rep, Sym):
            return
        entry = state.heap.get(rep.name)
        if entry is None or entry.materialized:
            return
        entry.materialized = True
        flags = self.emit_flags(state)
        block = self.ctx.current_block
        if entry.kind == "obj":
            from repro.lms.ir import Stmt
            block.stmts.append(Stmt(rep, "new",
                                    (self.ctx.lift_static(entry.cls),),
                                    Effect.ALLOC, flags))
            self.ctx.abs[rep.name] = Unknown(ty="obj:%s" % entry.cls.name,
                                             nonnull=True)
            for fname in entry.cls.all_fields:
                frep = entry.fields.get(fname, ConstRep(None))
                self.escape(state, frep)
                self.emit(state, "putfield", (rep, fname, frep),
                          effect=Effect.WRITE, flags={"objfast": True})
        else:
            for e in entry.elems:
                self.escape(state, e)
            from repro.lms.ir import Stmt
            block.stmts.append(Stmt(rep, "array_lit", tuple(entry.elems),
                                    Effect.ALLOC, flags))
            self.ctx.abs[rep.name] = Unknown(ty="arr", nonnull=True)

    # ------------------------------------------------------------------
    # Deopt metadata
    # ------------------------------------------------------------------

    def snapshot(self, state, extra_stack=(), kind="interpret", reason=""):
        """Build deopt metadata for the current state; returns
        ``(meta_id, live_reps)``. ``extra_stack`` appends slot templates
        (e.g. the intercepted call's result) to the leaf frame's stack."""
        lives = []
        live_index = {}
        vmemo = {}

        def template(rep):
            if isinstance(rep, ConstRep):
                return ("const", rep.value)
            if isinstance(rep, StaticRep):
                return ("static", rep.obj)
            entry = state.heap.get(rep.name)
            if entry is not None and not entry.materialized:
                hit = vmemo.get(rep.name)
                if hit is not None:
                    return ("virtual", hit)
                if entry.kind == "obj":
                    vobj = VirtualObject(entry.cls, {})
                    vmemo[rep.name] = vobj
                    for fname, frep in entry.fields.items():
                        vobj.fields[fname] = template(frep)
                else:
                    vobj = VirtualArray([None] * len(entry.elems))
                    vmemo[rep.name] = vobj
                    for i, erep in enumerate(entry.elems):
                        vobj.elems[i] = template(erep)
                return ("virtual", vobj)
            idx = live_index.get(rep.name)
            if idx is None:
                idx = len(lives)
                live_index[rep.name] = idx
                lives.append(rep)
            return ("live", idx)

        frames = []
        for f in state.frame.chain():
            live_slots = live_at(f.method, f.bci)
            locals_t = []
            for i in range(f.method.num_locals):
                if i in live_slots:
                    locals_t.append(template(f.locals[i]))
                else:
                    locals_t.append(("const", None))
            stack_t = [template(r) for r in f.stack_reps()]
            if f is state.frame:
                for entry in extra_stack:
                    if entry[0] == "rep":
                        stack_t.append(template(entry[1]))
                    else:
                        stack_t.append(entry)
            frames.append(FrameTemplate(f.method, f.bci, locals_t, stack_t))
        meta = DeoptMeta(frames, reason=reason)
        meta.kind = kind
        meta_id = self.ctx.add_deopt_meta(meta)
        return meta_id, lives

    def emit_guard(self, state, cond_rep, result, kind="interpret",
                   expect=True, reason="guard"):
        """Emit a guard; ``result`` (a Rep, or a constant) is what the
        intercepted call evaluates to on the deoptimized path."""
        from repro.lms.rep import Rep
        if isinstance(result, Rep):
            extra = (("rep", result),)
        else:
            extra = (("const", result),)
        meta_id, lives = self.snapshot(state, extra_stack=extra, kind=kind,
                                       reason=reason)
        self.guard_count += 1
        self._tel_record("guard.install", kind=kind, expect=expect,
                         method=state.frame.method.qualified_name,
                         bci=state.frame.bci, pass_num=self.pass_count)
        op = "guard" if expect else "guard_not"
        return self.emit(state, op, (cond_rep, meta_id) + tuple(lives),
                         effect=Effect.GUARD)

    def make_continuation(self, state):
        """Reify the current continuation as a runtime-callable closure
        (``shiftR``): invoking it with a value resumes the interpreter at
        this point with the value pushed."""
        meta_id, lives = self.snapshot(state, kind="cont", reason="shiftR")
        return self.emit(state, "make_cont", (meta_id,) + tuple(lives),
                         effect=Effect.ALLOC, absval=UNKNOWN)

    # ------------------------------------------------------------------
    # Reaching program points (merging / widening / unrolling)
    # ------------------------------------------------------------------

    def _apply_liveness(self, state):
        for f in state.frame.chain():
            live = live_at(f.method, f.bci)
            for i in range(f.method.num_locals):
                if i not in live and not isinstance(f.locals[i], ConstRep):
                    f.locals[i] = ConstRep(None)
        # Drop heap entries no longer referenced by any slot (dead
        # allocations vanish entirely — allocation sinking).
        if state.heap:
            reachable = set()
            work = []
            for f in state.frame.chain():
                for r in f.locals[:f.method.num_locals] + f.stack_reps():
                    if isinstance(r, Sym):
                        work.append(r.name)
            while work:
                name = work.pop()
                if name in reachable:
                    continue
                reachable.add(name)
                entry = state.heap.get(name)
                if entry is not None and not entry.materialized:
                    children = (entry.fields.values() if entry.kind == "obj"
                                else entry.elems)
                    for r in children:
                        if isinstance(r, Sym):
                            work.append(r.name)
            for name in list(state.heap):
                if name not in reachable:
                    del state.heap[name]

    def _flatten_slots(self, state):
        slots = []
        for f in state.frame.chain():
            slots.extend(f.locals[:f.method.num_locals])
            slots.extend(f.stack_reps())
        return slots

    def _set_slots(self, state, reps):
        it = iter(reps)
        for f in state.frame.chain():
            for i in range(f.method.num_locals):
                f.locals[i] = next(it)
            depth = f.tos - f.method.num_locals
            for i in range(depth):
                f.locals[f.method.num_locals + i] = next(it)

    def reach(self, state):
        """Transfer control to ``state``; returns (block id, phi assigns)."""
        self._apply_liveness(state)
        key = state.key()
        info = self.merge_infos.get(key)
        count = self._reached_count.get(key, 0)

        if info is not None and (count >= 1 or info.mode == "merge"):
            # A join. Under an `unroll` scope with static-only differences,
            # clone the target instead of widening (polyvariance).
            if state.frame.scope.get("unroll") and info.mode != "merge":
                prev = self._single_entries.get(info.bid)
                if prev is None or not _states_equal(prev, state):
                    return self._reach_versioned(key, state)
                return info.bid, []
            if state.frame.scope.get("unroll") and info.mode == "merge":
                return self._reach_versioned(key, state)

        if info is None:
            info = MergeInfo(self._alloc_bid())
            info.shape = state.copy()
            self.merge_infos[key] = info

        self._reached_count[key] = count + 1

        if info.mode == "single":
            if count == 0:
                prev = self._single_entries.get(info.bid)
                self._single_entries[info.bid] = state.copy()
                self._enqueue_single(info, state)
                return info.bid, []
            # Second predecessor: convert to a merge block and restart.
            info.mode = "merge"
            first_state = self._single_entries.get(info.bid)
            info.lattice = None
            self._pass_changed = True
            if first_state is not None:
                self._merge_into(info, first_state)
            return self._merge_into(info, state)
        return self._merge_into(info, state)

    def _reach_versioned(self, key, state):
        n = self._pass_versions.get(key, 0) + 1
        if n > self.options.unroll_limit:
            raise UnrollError(
                "unroll limit (%d) exceeded at %s@%d — is the trip count "
                "really static? (use freeze)" % (
                    self.options.unroll_limit,
                    state.frame.method.qualified_name, state.frame.bci))
        self._pass_versions[key] = n
        self.unroll_clone_count += 1
        self._tel_record("unroll.clone", version=n,
                         method=state.frame.method.qualified_name,
                         bci=state.frame.bci, pass_num=self.pass_count)
        vkey = key + (("v", n),)
        info = self.merge_infos.get(vkey)
        if info is None:
            info = MergeInfo(self._alloc_bid())
            info.shape = state.copy()
            self.merge_infos[vkey] = info
        if info.mode == "merge":
            self._reached_count[vkey] = self._reached_count.get(vkey, 0) + 1
            return self._merge_into(info, state)
        prev_count = self._reached_count.get(vkey, 0)
        self._reached_count[vkey] = prev_count + 1
        if prev_count == 0:
            self._single_entries[info.bid] = state.copy()
            self._enqueue_single(info, state)
            return info.bid, []
        info.mode = "merge"
        first_state = self._single_entries.get(info.bid)
        self._pass_changed = True
        if first_state is not None:
            self._merge_into(info, first_state)
        return self._merge_into(info, state)

    def _merge_into(self, info, state):
        """Merge ``state`` into a merge-mode block's entry lattice and
        compute this predecessor's phi assignments."""
        # Partials cannot cross a merge: materialize in the predecessor.
        for name in list(state.heap):
            entry = state.heap[name]
            if not entry.materialized:
                self.escape(state, Sym(name))
        slots = self._flatten_slots(state)
        if info.lattice is None:
            info.lattice = [("bot",)] * len(slots)
        if len(info.lattice) != len(slots):
            raise CompilationError("inconsistent frame shapes at join")
        assigns = []
        for i, rep in enumerate(slots):
            entry = info.lattice[i]
            new_entry, changed = self._merge_slot(entry, rep, state)
            if changed:
                info.lattice[i] = new_entry
                # If the block was already generated — or is sitting on the
                # worklist where an earlier predecessor computed its phi
                # assigns against the old lattice — another pass is needed
                # so all predecessors agree on the param list.
                if (info.bid in self._generated
                        or info.bid in self._enqueued):
                    self._pass_changed = True
            if new_entry[0] == "param":
                assigns.append(("p%d_%d" % (info.bid, i), rep))
        if info.bid not in self._enqueued and info.bid not in self._generated:
            self._enqueue_merge(info)
        return info.bid, assigns

    def _merge_slot(self, entry, rep, state):
        av = self.eval_abs(state, rep)
        if entry[0] == "bot":
            if isinstance(rep, (ConstRep, StaticRep)):
                return ("const", rep), True
            return ("param", av), True
        if entry[0] == "const":
            if rep == entry[1]:
                return entry, False
            return ("param", lub(self.eval_abs(state, entry[1]), av)), True
        merged = lub(entry[1], av)
        if merged == entry[1]:
            return entry, False
        return ("param", merged), True

    def _enqueue_single(self, info, state):
        self._enqueued.add(info.bid)
        self._worklist.append(("single", info.bid, state))

    def _enqueue_merge(self, info):
        # Only the MergeInfo goes on the worklist; the entry state is built
        # from the *current* lattice at pop time (_merge_entry), so slot
        # upgrades (const -> param) between enqueue and generation are
        # never observed through a stale snapshot.
        self._enqueued.add(info.bid)
        self._worklist.append(("merge", info))

    def _merge_entry(self, info):
        state = info.shape.copy()
        state.heap = {}
        params = []
        reps = []
        for i, entry in enumerate(info.lattice):
            if entry[0] == "param":
                name = "p%d_%d" % (info.bid, i)
                sym = Sym(name)
                self.ctx.abs[name] = entry[1]
                params.append(name)
                reps.append(sym)
            elif entry[0] == "const":
                reps.append(entry[1])
            else:           # 'bot' — never observed; keep a null
                reps.append(ConstRep(None))
        self._set_slots(state, reps)
        return info.bid, state, params

    # ------------------------------------------------------------------
    # Block generation: the staged dispatch loop
    # ------------------------------------------------------------------

    def _generate_block(self, bid, state, params):
        if len(self.ctx.blocks) > self.options.max_blocks:
            raise CompilationError("block budget exhausted (max_blocks=%d)"
                                   % self.options.max_blocks)
        block = self.ctx.new_block(bid, params=params or ())
        self.ctx.set_current(block)
        self._generated.add(bid)
        # Per-block store-to-load forwarding memo for pre-existing
        # arrays/objects: ("arr", id, index) / ("f", id, field) -> Rep.
        self._forward = {}
        # Pending (possibly dead) stores: key -> Stmt, removed when
        # overwritten before any potentially-aliasing read/barrier.
        self._pending_arr_stores = {}
        self._pending_field_stores = {}
        self._exec(state, block)

    def _goto(self, state, block, target_bci):
        """Transfer within the current method; splits at join points."""
        state.frame.bci = target_bci
        if target_bci in join_bcis(state.frame.method):
            tbid, assigns = self.reach(state)
            block.terminator = Jump(tbid, assigns)
            return _END
        return _CONTINUE

    def _exec(self, state, block):
        """Symbolically execute from ``state`` until a terminator."""
        steps = 0
        while True:
            frame = state.frame
            # Split when falling into a join point (but not on block entry).
            if steps > 0 and frame.bci in join_bcis(frame.method):
                tbid, assigns = self.reach(state)
                block.terminator = Jump(tbid, assigns)
                return
            steps += 1
            code = frame.method.code
            ins = code[frame.bci]
            frame.bci += 1
            op = ins.op
            push = frame.push
            pop = frame.pop

            if op is Op.LOAD:
                push(frame.locals[ins.arg])
            elif op is Op.CONST:
                push(ConstRep(ins.arg))
            elif op is Op.STORE:
                frame.locals[ins.arg] = pop()
            elif op in _BIN_OPS:
                b = pop()
                a = pop()
                push(self._binop(state, _BIN_OPS[op], a, b))
            elif op is Op.NEG:
                a = pop()
                av = self.eval_abs(state, a)
                if isinstance(av, Const):
                    try:
                        push(self.ctx.lift(guest_ops.guest_neg(av.value)))
                        continue
                    except GuestError:
                        pass
                flags = {"num": True} if av.type_hint() == "num" else None
                push(self.emit(state, "neg", (a,), flags=flags,
                               absval=Unknown(ty=av.type_hint())))
            elif op is Op.NOT:
                a = pop()
                av = self.eval_abs(state, a)
                if isinstance(av, Const):
                    push(ConstRep(not av.value))
                elif av.is_static_value:
                    push(ConstRep(not self.static_value(state, a)))
                else:
                    push(self.emit(state, "not", (a,),
                                   absval=Unknown(ty="bool")))
            elif op is Op.JUMP:
                if self._goto(state, block, ins.arg) is _END:
                    return
            elif op is Op.JIF_TRUE or op is Op.JIF_FALSE:
                cond = pop()
                av = self.eval_abs(state, cond)
                if av.is_static_value:
                    value = bool(self.static_value(state, cond))
                    taken = value if op is Op.JIF_TRUE else not value
                    if taken:
                        if self._goto(state, block, ins.arg) is _END:
                            return
                    continue
                # Dynamic branch: end the block.
                checktaint = (state.frame.scope.get("checktaint")
                              or self.options.check_taint)
                s_taken = state.copy()
                s_taken.frame.bci = ins.arg
                s_fall = state
                t_bid, t_assigns = self.reach(s_taken)
                f_bid, f_assigns = self.reach(s_fall)
                if op is Op.JIF_TRUE:
                    block.terminator = Branch(cond, t_bid, t_assigns,
                                              f_bid, f_assigns)
                else:
                    block.terminator = Branch(cond, f_bid, f_assigns,
                                              t_bid, t_assigns)
                if checktaint:
                    # Record the terminator as a taint sink; the IR-level
                    # taint pass decides later whether the condition is
                    # actually tainted (flow-sensitively, through phis).
                    self._taint_branch_sinks.append(
                        (block.terminator,
                         "branch on tainted value in %s"
                         % frame.method.qualified_name))
                return
            elif op is Op.RET or op is Op.RET_VAL:
                rep = pop() if op is Op.RET_VAL else ConstRep(None)
                result = self._handle_return(state, block, rep)
                if result is _END:
                    return
            elif op is Op.INVOKE:
                name, argc = ins.arg
                args = [pop() for __ in range(argc)]
                args.reverse()
                recv = pop()
                if self._invoke_virtual(state, block, recv, name, args) is _END:
                    return
            elif op is Op.INVOKE_STATIC:
                cls_name, name, argc = ins.arg
                args = [pop() for __ in range(argc)]
                args.reverse()
                if self._invoke_static(state, block, cls_name, name,
                                       args) is _END:
                    return
            elif op is Op.GETFIELD:
                push(self._getfield(state, pop(), ins.arg))
            elif op is Op.PUTFIELD:
                value = pop()
                obj = pop()
                self._putfield(state, obj, ins.arg, value)
            elif op is Op.NEW:
                cls = self.linker.resolve_class(ins.arg)
                sym = self.ctx.fresh_sym("o")
                state.heap[sym.name] = HeapEntry(
                    "obj", cls=cls,
                    fields={name: ConstRep(None) for name in cls.all_fields})
                push(sym)
            elif op is Op.NEW_ARRAY:
                n = pop()
                av = self.eval_abs(state, n)
                if isinstance(av, Const) and isinstance(av.value, int) \
                        and 0 <= av.value <= 4096:
                    sym = self.ctx.fresh_sym("o")
                    state.heap[sym.name] = HeapEntry(
                        "arr", elems=[ConstRep(None)] * av.value)
                    push(sym)
                else:
                    sym = self.emit(state, "new_array", (n,),
                                    effect=Effect.ALLOC,
                                    absval=Unknown(ty="arr", nonnull=True))
                    self._fresh_arrays.add(sym.name)
                    push(sym)
            elif op is Op.ARRAY_LIT:
                elems = [pop() for __ in range(ins.arg)]
                elems.reverse()
                sym = self.ctx.fresh_sym("o")
                state.heap[sym.name] = HeapEntry("arr", elems=elems)
                push(sym)
            elif op is Op.ALOAD:
                i = pop()
                arr = pop()
                push(self._aload(state, arr, i))
            elif op is Op.ASTORE:
                v = pop()
                i = pop()
                arr = pop()
                self._astore(state, arr, i, v)
            elif op is Op.ALEN:
                push(self._alen(state, pop()))
            elif op is Op.POP:
                pop()
            elif op is Op.DUP:
                top = pop()
                push(top)
                push(top)
            elif op is Op.SWAP:
                a = pop()
                b = pop()
                push(a)
                push(b)
            elif op is Op.INSTANCEOF:
                push(self._instanceof(state, pop(), ins.arg))
            elif op is Op.THROW:
                v = pop()
                self.escape(state, v)
                self.emit(state, "throw", (v,), effect=Effect.IO)
                block.terminator = Return(ConstRep(None))
                return
            else:  # pragma: no cover
                raise CompilationError("bad opcode %r" % (op,))

    # ------------------------------------------------------------------
    # Returns and macro-directive plumbing
    # ------------------------------------------------------------------

    def _handle_return(self, state, block, rep):
        frame = state.frame
        parent = frame.parent
        if parent is None:
            self.escape(state, rep)
            block.terminator = Return(rep)
            return _END
        on_return = frame.on_return
        state.frame = parent
        if on_return is not None:
            return self._apply_macro_result(
                state, block, on_return(self, state, rep))
        parent.push(rep)
        return _CONTINUE

    def _apply_macro_result(self, state, block, result):
        """Interpret a macro's return value (Rep or directive)."""
        from repro.lms.rep import Rep
        if isinstance(result, Rep):
            state.frame.push(result)
            return _CONTINUE
        if isinstance(result, MacroInline):
            self._push_inline(state, result.method, result.receiver,
                              result.args, result.scope_updates,
                              result.on_return)
            return _CONTINUE
        if isinstance(result, SlowpathDirective):
            meta_id, lives = self.snapshot(
                state, extra_stack=(("const", result.result),),
                kind="interpret", reason="slowpath")
            self.deopt_site_count += 1
            self._tel_record("deopt.site", kind="slowpath",
                             method=state.frame.method.qualified_name,
                             bci=state.frame.bci, pass_num=self.pass_count)
            if self.emit_flags(state).get("noalloc"):
                # Deopt terminators carry no flags, so slowpath sites are
                # recorded at staging time and handed to the post-
                # optimization checkNoAlloc pass via CompileResult.
                self._noalloc_sites.append(
                    "deoptimization point (slowpath) in %s (bci %d)"
                    % (state.frame.method.qualified_name, state.frame.bci))
            block.terminator = Deopt(meta_id, lives)
            return _END
        if isinstance(result, FastpathDirective):
            meta_id, lives = self.snapshot(
                state, extra_stack=(("const", result.result),),
                kind="osr", reason="fastpath")
            self.deopt_site_count += 1
            self._tel_record("deopt.site", kind="fastpath",
                             method=state.frame.method.qualified_name,
                             bci=state.frame.bci, pass_num=self.pass_count)
            block.terminator = OsrCompile(meta_id, lives)
            return _END
        if isinstance(result, ReturnDirective):
            self.escape(state, result.rep)
            block.terminator = Return(result.rep)
            return _END
        raise CompilationError("macro returned %r" % (result,))

    def _push_inline(self, state, method, receiver, args, scope_updates=None,
                     on_return=None):
        frame = state.frame
        depth = len(frame.chain())
        if depth >= self.options.max_inline_depth:
            raise CompilationError(
                "inline depth limit (%d) exceeded at %s — recursive "
                "macro expansion?" % (self.options.max_inline_depth,
                                      method.qualified_name))
        callee = AbstractFrame(method, parent=frame, scope=dict(frame.scope))
        if scope_updates:
            callee.scope.update(scope_updates)
        callee.on_return = on_return
        base = 0
        if not method.is_static:
            callee.locals[0] = receiver if receiver is not None \
                else ConstRep(None)
            base = 1
        for i, a in enumerate(args):
            callee.locals[base + i] = a
        state.frame = callee

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _call_policy(self, state, method):
        scope = state.frame.scope
        policy = scope.get("inline", self.options.inline_policy)
        callee_updates = {}
        for pattern, directive, mode in scope.get("triggers", ()):
            if re.search(pattern, method.qualified_name):
                updates = _DIRECTIVE_SCOPES.get(directive, {})
                callee_updates.update(updates)
                if mode == "at" and "inline" in updates:
                    policy = updates["inline"]
        return policy, callee_updates

    def _is_recursive(self, state, method):
        f = state.frame
        while f is not None:
            if f.method is method:
                return True
            f = f.parent
        return False

    def _invoke_virtual(self, state, block, recv, name, args):
        av = self.eval_abs(state, recv)
        cls = None
        if isinstance(av, Static) and isinstance(av.obj, Obj):
            cls = av.obj.cls
        elif isinstance(av, Partial):
            cls = av.cls

        if cls is not None:
            macro = self.macros.lookup_virtual(cls, name)
            if macro is not None:
                result = macro(MacroContext(self, state), recv, args)
                if result is not None:
                    self.macro_count += 1
                    self._tel_record("macro.expand", target="%s.%s"
                                     % (cls.name, name),
                                     pass_num=self.pass_count)
                    return self._apply_macro_result(state, block, result)
            try:
                method = self.linker.resolve_virtual(cls, name)
            except LinkError as exc:
                if name == "init" and not args:
                    # Zero-arg `new` of a class without a constructor.
                    state.frame.push(ConstRep(None))
                    return _CONTINUE
                raise CompilationError(str(exc))
            policy, updates = self._call_policy(state, method)
            if policy == "always" or (policy == "nonrec"
                                      and not self._is_recursive(state, method)):
                self.inline_count += 1
                self._tel_record("inline.decision", action="inline",
                                 callee=method.qualified_name, policy=policy,
                                 pass_num=self.pass_count)
                self._push_inline(state, method, recv, args,
                                  scope_updates=updates)
                return _CONTINUE
            self._tel_record("inline.decision", action="residual",
                             callee=method.qualified_name, policy=policy,
                             pass_num=self.pass_count)
        # Residual virtual call.
        self.residual_count += 1
        self.escape(state, recv)
        for a in args:
            self.escape(state, a)
            self._note_static_write(state, a)
        sym = self.emit(state, "invoke", (name, recv) + tuple(args),
                        effect=Effect.CALL, absval=UNKNOWN)
        state.frame.push(sym)
        return _CONTINUE

    def _invoke_static(self, state, block, cls_name, name, args):
        macro = self.macros.lookup_static(cls_name, name)
        if macro is not None:
            result = macro(MacroContext(self, state), None, args)
            if result is not None:
                self.macro_count += 1
                self._tel_record("macro.expand", target="%s.%s"
                                 % (cls_name, name),
                                 pass_num=self.pass_count)
                return self._apply_macro_result(state, block, result)
        nat = lookup_native(cls_name, name)
        if nat is not None:
            # Fold pure natives over static arguments. Allocating natives
            # (e.g. split) only fold under a `freeze` scope — baking their
            # result as a static would otherwise alias one mutable object
            # across all invocations of the compiled code.
            foldable = nat.pure and not nat.calls_guest and (
                not nat.allocates or state.frame.scope.get("freeze"))
            if foldable:
                values = [self.static_value(state, a) for a in args]
                if _NO_VALUE not in values:
                    try:
                        state.frame.push(
                            self.ctx.lift(nat.fn(self.vm, *values)))
                        return _CONTINUE
                    except GuestError:
                        pass
            state.frame.push(self.emit_native(state, nat, args))
            return _CONTINUE
        try:
            method = self.linker.resolve_static(cls_name, name)
        except LinkError as exc:
            raise CompilationError(str(exc))
        policy, updates = self._call_policy(state, method)
        if policy == "always" or (policy == "nonrec"
                                  and not self._is_recursive(state, method)):
            self.inline_count += 1
            self._tel_record("inline.decision", action="inline",
                             callee=method.qualified_name, policy=policy,
                             pass_num=self.pass_count)
            self._push_inline(state, method, None, args, scope_updates=updates)
            return _CONTINUE
        self.residual_count += 1
        self._tel_record("inline.decision", action="residual",
                         callee=method.qualified_name, policy=policy,
                         pass_num=self.pass_count)
        for a in args:
            self.escape(state, a)
            self._note_static_write(state, a)
        sym = self.emit(state, "invoke_method",
                        (self.ctx.lift_static(method), ConstRep(None))
                        + tuple(args),
                        effect=Effect.CALL, absval=UNKNOWN)
        state.frame.push(sym)
        return _CONTINUE

    # ------------------------------------------------------------------
    # Heap operations (paper 2.2: the getFieldObject shortcut et al.)
    # ------------------------------------------------------------------

    def _getfield(self, state, obj, name):
        av = self.eval_abs(state, obj)
        if isinstance(av, Partial):
            if name in av.fields:
                return av.fields[name]
            if av.cls.field_info(name) is None:
                raise CompilationError("no field %r on %s"
                                       % (name, av.cls.name))
            return ConstRep(None)
        if isinstance(av, Static) and isinstance(av.obj, Obj):
            finfo = av.obj.cls.field_info(name)
            if finfo is None:
                raise CompilationError("no field %r on %s"
                                       % (name, av.obj.cls.name))
            # The paper's `case Static(x) if field.isFinal => read it now`.
            if finfo.is_val and self.options.fold_val_fields:
                return self.ctx.lift(av.obj.get(name))
            if name in av.obj.cls.stable_fields \
                    and self.options.speculate_stable:
                # @stable speculation (paper 3.2): fold the current value;
                # writes invalidate the compiled code.
                self.stable_deps.append((av.obj, name))
                return self.ctx.lift(av.obj.get(name))
            key = ("f", id(av.obj), name)
            hit = self._forward.get(key)
            if hit is not None:
                return hit
            sym = self.emit(state, "getfield", (obj, name),
                            effect=Effect.READ,
                            flags={"objfast": True,
                                   "static_id": id(av.obj)},
                            absval=UNKNOWN)
            self._forward[key] = sym
            return sym
        flags = None
        hint = av.type_hint()
        if hint is not None and hint.startswith("obj") and av.nonnull():
            flags = {"objfast": True}
        return self.emit(state, "getfield", (obj, name), effect=Effect.READ,
                         flags=flags, absval=UNKNOWN)

    def _putfield(self, state, obj, name, value):
        if isinstance(obj, Sym):
            entry = state.heap.get(obj.name)
            if entry is not None and not entry.materialized:
                if entry.cls.field_info(name) is None:
                    raise CompilationError("no field %r on %s"
                                           % (name, entry.cls.name))
                entry.fields[name] = value
                return
        av = self.eval_abs(state, obj)
        self.escape(state, value)
        flags = None
        hint = av.type_hint()
        if hint is not None and hint.startswith("obj") and av.nonnull():
            # Writes to @stable fields must run invalidation, so they take
            # the slow helper even on known objects.
            stable = isinstance(av, Static) and isinstance(av.obj, Obj) \
                and name in av.obj.cls.stable_fields
            if not stable:
                flags = {"objfast": True}
                if isinstance(av, Static):
                    flags["static_id"] = id(av.obj)
        else:
            self._forward.clear()
        self.emit(state, "putfield", (obj, name, value), effect=Effect.WRITE,
                  flags=flags)
        if isinstance(av, Static) and isinstance(av.obj, Obj):
            self._forward[("f", id(av.obj), name)] = value

    def _aload(self, state, arr, i):
        av_arr = self.eval_abs(state, arr)
        av_i = self.eval_abs(state, i)
        if isinstance(av_arr, PartialArray) and isinstance(av_i, Const):
            idx = av_i.value
            if isinstance(idx, int) and 0 <= idx < len(av_arr.elems):
                return av_arr.elems[idx]
        if isinstance(av_arr, Static) and isinstance(av_arr.obj, list) \
                and isinstance(av_i, Const) \
                and self.options.assume_static_arrays \
                and id(av_arr.obj) not in self._written_statics:
            try:
                return self.ctx.lift(guest_ops.guest_aload(av_arr.obj,
                                                           av_i.value))
            except GuestError:
                pass
        if isinstance(arr, Sym):
            self.escape(state, arr)
        flags = None
        key = None
        hint = av_arr.type_hint()
        const_idx = (isinstance(av_i, Const) and isinstance(av_i.value, int)
                     and not isinstance(av_i.value, bool))
        if isinstance(av_arr, Static) and isinstance(av_arr.obj, list) \
                and const_idx and 0 <= av_i.value < len(av_arr.obj):
            # Array lengths are immutable, so a constant in-range index on
            # a pre-existing array can compile to a direct subscript.
            flags = {"fast": True, "static_id": id(av_arr.obj)}
            key = ("arr", id(av_arr.obj), av_i.value)
            hit = self._forward.get(key)
            if hit is not None:
                return hit
        elif hint is not None and hint.startswith("arr") and av_arr.nonnull() \
                and const_idx and av_i.value >= 0:
            flags = {"known_arr": True}
        elem_ty = "str" if hint == "arr:str" else None
        sym = self.emit(state, "aload", (arr, i), effect=Effect.READ,
                        flags=flags,
                        absval=Unknown(ty=elem_ty, nonnull=elem_ty is not None))
        if key is not None:
            self._forward[key] = sym
        return sym

    def _astore(self, state, arr, i, v):
        if isinstance(arr, Sym):
            entry = state.heap.get(arr.name)
            if entry is not None and not entry.materialized \
                    and entry.kind == "arr":
                av_i = self.eval_abs(state, i)
                if isinstance(av_i, Const) and isinstance(av_i.value, int) \
                        and 0 <= av_i.value < len(entry.elems):
                    entry.elems[av_i.value] = v
                    return
            self.escape(state, arr)
        self._note_static_write(state, arr)
        self.escape(state, v)
        av_arr = self.eval_abs(state, arr)
        av_i = self.eval_abs(state, i)
        flags = None
        key = None
        if isinstance(av_arr, Static) and isinstance(av_arr.obj, list) \
                and isinstance(av_i, Const) and isinstance(av_i.value, int) \
                and not isinstance(av_i.value, bool) \
                and 0 <= av_i.value < len(av_arr.obj):
            flags = {"fast": True, "static_id": id(av_arr.obj)}
            key = ("arr", id(av_arr.obj), av_i.value)
        else:
            # Unknown target may alias anything we forward.
            self._forward.clear()
        self.emit(state, "astore", (arr, i, v), effect=Effect.WRITE,
                  flags=flags)
        if key is not None:
            self._forward[key] = v

    def _note_static_write(self, state, rep):
        """Record that a pre-existing array is mutated by compiled code;
        folds of its reads (from earlier passes) must be redone."""
        av = self.eval_abs(state, rep)
        if isinstance(av, Static) and isinstance(av.obj, list):
            if id(av.obj) not in self._written_statics:
                self._written_statics.add(id(av.obj))
                self._pass_changed = True

    def _alen(self, state, arr):
        av = self.eval_abs(state, arr)
        if isinstance(av, PartialArray):
            return ConstRep(len(av.elems))
        if isinstance(av, Static) and isinstance(av.obj, (list, str)) \
                and self.options.assume_static_arrays:
            return ConstRep(len(av.obj))
        if isinstance(av, Const) and isinstance(av.value, str):
            return ConstRep(len(av.value))
        flags = {"arrfast": True} if av.type_hint() in ("arr", "str") \
            and av.nonnull() else None
        return self.emit(state, "alen", (arr,), flags=flags,
                         absval=Unknown(ty="num"))

    def _instanceof(self, state, rep, cls_name):
        av = self.eval_abs(state, rep)
        hint = av.type_hint()
        if isinstance(av, (Partial, Static)) or isinstance(av, Const):
            value = av.obj if isinstance(av, Static) else (
                None if isinstance(av, Const) else None)
            if isinstance(av, Partial):
                return ConstRep(av.cls.is_subclass_of(cls_name))
            if isinstance(av, Static):
                return ConstRep(isinstance(value, Obj)
                                and value.cls.is_subclass_of(cls_name))
            return ConstRep(False)
        if hint is not None and hint.startswith("obj:"):
            cls = self.linker.classes.get(hint[4:])
            if cls is not None and cls.is_subclass_of(cls_name):
                return ConstRep(True)
        if hint in ("num", "bool", "str", "arr"):
            return ConstRep(False)
        return self.emit(state, "instanceof", (rep, cls_name),
                         absval=Unknown(ty="bool"))

    # ------------------------------------------------------------------
    # Arithmetic folding (paper 2.2's infix_+ rewrite, generalized)
    # ------------------------------------------------------------------

    def _binop(self, state, opname, a, b):
        av_a = self.eval_abs(state, a)
        av_b = self.eval_abs(state, b)
        fold = guest_ops.BINOPS[opname.upper()]
        if av_a.is_static_value and av_b.is_static_value:
            va = self.static_value(state, a)
            vb = self.static_value(state, b)
            try:
                return self.ctx.lift(fold(va, vb))
            except GuestError:
                pass  # fold would raise; leave it to runtime
        ta, tb = av_a.type_hint(), av_b.type_hint()
        flags = None
        result_ty = None
        op = opname
        if opname in ("add", "sub", "mul", "div", "mod"):
            if ta == "num" and tb == "num":
                if opname in ("add", "sub", "mul"):
                    flags = {"num": True}
                result_ty = "num"
            elif opname == "add" and ta == "str" and tb == "str":
                op = "concat"
                result_ty = "str"
            elif opname == "add" and ("str" in (ta, tb)):
                result_ty = "str"
        else:
            result_ty = "bool"
            if ta == "num" and tb == "num":
                flags = {"num": True}
            elif ta == "str" and tb == "str":
                flags = {"num": True}
            elif opname in ("eq", "ne") and (isinstance(av_a, Const)
                                             or isinstance(av_b, Const)):
                # Python == agrees with guest_eq whenever one side is a
                # primitive constant (Obj/array identity still works out).
                flags = {"num": True}
        # Algebraic simplifications on partially-static operands.
        simplified = self._algebraic(opname, a, b, av_a, av_b)
        if simplified is not None:
            return simplified
        sym = self.emit(state, op, (a, b), flags=flags,
                        absval=Unknown(ty=result_ty))
        # Type refinement: an order comparison that executes without
        # raising proves its operands comparable; with one side numeric,
        # the other is numeric in everything that follows.
        if opname in ("lt", "le", "gt", "ge"):
            if ta == "num" and tb is None and isinstance(b, Sym):
                self.ctx.abs[b.name] = Unknown(ty="num", nonnull=True)
            elif tb == "num" and ta is None and isinstance(a, Sym):
                self.ctx.abs[a.name] = Unknown(ty="num", nonnull=True)
        return sym

    @staticmethod
    def _algebraic(opname, a, b, av_a, av_b):
        def is_const(av, v):
            return isinstance(av, Const) and av.value == v \
                and not isinstance(av.value, bool)
        if opname == "add":
            if is_const(av_a, 0) and av_b.type_hint() == "num":
                return b
            if is_const(av_b, 0) and av_a.type_hint() == "num":
                return a
        elif opname == "sub":
            if is_const(av_b, 0) and av_a.type_hint() == "num":
                return a
        elif opname == "mul":
            if is_const(av_a, 1) and av_b.type_hint() == "num":
                return b
            if is_const(av_b, 1) and av_a.type_hint() == "num":
                return a
        elif opname == "div":
            if is_const(av_b, 1) and av_a.type_hint() == "num":
                return a
        return None


_BIN_OPS = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.DIV: "div",
    Op.MOD: "mod", Op.EQ: "eq", Op.NE: "ne", Op.LT: "lt", Op.LE: "le",
    Op.GT: "gt", Op.GE: "ge",
}


class _NoValueType:
    def __repr__(self):
        return "<no value>"


_NO_VALUE = _NoValueType()


def _states_equal(a, b):
    """Structural equality of two states (same reps in every slot)."""
    fa, fb = a.frame.chain(), b.frame.chain()
    if len(fa) != len(fb):
        return False
    for x, y in zip(fa, fb):
        if x.method is not y.method or x.bci != y.bci or x.tos != y.tos:
            return False
        if x.locals[:x.tos] != y.locals[:y.tos]:
            return False
    return True

"""Persistent code cache + asynchronous compile service.

This is the repo's first subsystem whose state outlives a process. The
paper's code caches (``makeJIT``/``makeHOT``, §3.1) are in-memory, so
every process pays full warmup; production serving stacks add two
pieces, both provided here:

* :class:`PersistentCodeCache` — an on-disk, integrity-checked store of
  generated backend source + metadata per compilation unit, keyed by a
  content fingerprint (guest bytecode hash × CompileOptions ×
  macro-registry version × tier × backend). Entries carry a format
  version and a sha256 checksum; a corrupt or truncated entry is
  *quarantined* and treated as a clean miss — the cache never crashes a
  compile. A size budget is enforced by LRU eviction (file mtime is the
  recency clock; hits ``touch`` their entry).

* :class:`CompileService` — a bounded worker pool behind a priority
  queue (OSR > tier-2 promote > tier-1 > prefetch) with in-flight
  dedup, per-request timeout, retry-with-backoff on transient failure,
  failure blacklisting, and backpressure (bounded queue that sheds the
  lowest-priority work first). Submissions never raise: when the
  service is saturated or a unit is blacklisted the caller simply keeps
  interpreting — graceful degradation is the contract.

See DESIGN.md ("Persistent caching & the compile service") for why the
macro-registry version must be part of the cache key.
"""

from repro.codecache.fingerprint import (macro_fingerprint,
                                         options_signature,
                                         program_fingerprint,
                                         unit_fingerprint)
from repro.codecache.service import (PRIORITY_OSR, PRIORITY_PREFETCH,
                                     PRIORITY_TIER1, PRIORITY_TIER2,
                                     CompileRequest, CompileService)
from repro.codecache.store import FORMAT_VERSION, PersistentCodeCache

__all__ = [
    "PersistentCodeCache", "FORMAT_VERSION",
    "CompileService", "CompileRequest",
    "PRIORITY_OSR", "PRIORITY_TIER2", "PRIORITY_TIER1", "PRIORITY_PREFETCH",
    "unit_fingerprint", "program_fingerprint", "options_signature",
    "macro_fingerprint",
]

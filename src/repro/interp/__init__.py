"""The MiniJVM interpreter Lancet is derived from (paper Fig. 6)."""

from repro.interp.frame import Frame, InterpreterFrame
from repro.interp.interpreter import Interpreter, GuestThrow
from repro.interp.profiler import Profiler

__all__ = ["Frame", "InterpreterFrame", "Interpreter", "GuestThrow", "Profiler"]

"""Native methods: the guest's window to the host.

Natives are invoked through ``INVOKE_STATIC`` on well-known namespace
classes (``Builtins``, ``Math``, ``IO``, ``Lancet``). Each native carries a
``pure`` flag: pure natives with fully static arguments are executed at
JIT-compile time by the staged interpreter — this is what lets
``indexOf(schema, key)`` fold to a constant in the CSV example.

``Lancet.*`` natives are the *user-facing markers* of the JIT API
(paper 2.3: "the user-facing method is declared with the signature of the
identity function"). Under plain interpretation they have their identity
semantics; under compilation they are intercepted by JIT macros before
native dispatch.
"""

from __future__ import annotations

import math
import time

from repro.errors import GuestError, GuestTypeError


class NativeMethod:
    """A host-implemented static method.

    ``fn(vm, *args)``; ``argc`` is the arity (``None`` disallowed — MiniJVM
    calls are fixed arity). ``pure`` marks compile-time foldable natives;
    ``calls_guest`` marks natives that may invoke guest closures (these are
    never folded blindly — they are macro territory). ``allocates`` marks
    natives that allocate guest-visible heap data (for ``checkNoAlloc``).
    """

    __slots__ = ("class_name", "name", "argc", "fn", "pure", "calls_guest",
                 "allocates", "result_ty", "py_inline")

    def __init__(self, class_name, name, argc, fn, pure=False,
                 calls_guest=False, allocates=False, result_ty=None,
                 py_inline=None):
        self.class_name = class_name
        self.name = name
        self.argc = argc
        self.fn = fn
        self.pure = pure
        self.calls_guest = calls_guest
        self.allocates = allocates
        # Abstract type of the result ('num', 'str', 'arr', 'bool', None).
        self.result_ty = result_ty
        # Optional inline expression template for generated code, e.g.
        # "({0}).split({1})" — avoids the call through the wrapper.
        self.py_inline = py_inline

    @property
    def key(self):
        return (self.class_name, self.name)

    def __repr__(self):
        return "NativeMethod(%s.%s/%d)" % (self.class_name, self.name, self.argc)


NATIVES = {}


def native(class_name, name, argc, pure=False, calls_guest=False,
           allocates=False, result_ty=None, py_inline=None):
    """Decorator registering a native method."""
    def wrap(fn):
        nm = NativeMethod(class_name, name, argc, fn, pure=pure,
                          calls_guest=calls_guest, allocates=allocates,
                          result_ty=result_ty, py_inline=py_inline)
        NATIVES[nm.key] = nm
        return fn
    return wrap


def lookup_native(class_name, method_name):
    return NATIVES.get((class_name, method_name))


# ---------------------------------------------------------------------------
# Builtins: strings, arrays, conversions, output
# ---------------------------------------------------------------------------

@native("Builtins", "len", 1, pure=True, result_ty="num")
def _len(vm, x):
    if isinstance(x, (str, list)):
        return len(x)
    raise GuestTypeError("len() on %r" % type(x).__name__)


@native("Builtins", "print", 1)
def _print(vm, x):
    vm.write(to_guest_string(x))
    return None


@native("Builtins", "println", 1)
def _println(vm, x):
    vm.write(to_guest_string(x) + "\n")
    return None


@native("Builtins", "str", 1, pure=True, result_ty="str")
def _str(vm, x):
    return to_guest_string(x)


@native("Builtins", "split", 2, pure=True, allocates=True,
        result_ty="arr:str", py_inline="({0}).split({1})")
def _split(vm, s, sep):
    return s.split(sep)


@native("Builtins", "splitLines", 1, pure=True, allocates=True,
        result_ty="arr:str", py_inline="({0}).splitlines()")
def _split_lines(vm, s):
    return s.splitlines()


@native("Builtins", "indexOf", 2, pure=True, result_ty="num")
def _index_of(vm, arr, x):
    try:
        return arr.index(x)
    except ValueError:
        return -1


@native("Builtins", "contains", 2, pure=True, result_ty="bool")
def _contains(vm, arr, x):
    return x in arr


@native("Builtins", "charAt", 2, pure=True, result_ty="str")
def _char_at(vm, s, i):
    return s[i]


@native("Builtins", "charCode", 2, pure=True, result_ty="num",
        py_inline="ord(({0})[{1}])")
def _char_code(vm, s, i):
    return ord(s[i])


@native("Builtins", "fromCharCode", 1, pure=True, result_ty="str",
        py_inline="chr({0})")
def _from_char_code(vm, c):
    return chr(c)


@native("Builtins", "substring", 3, pure=True, result_ty="str",
        py_inline="({0})[{1}:{2}]")
def _substring(vm, s, lo, hi):
    return s[lo:hi]


@native("Builtins", "startsWith", 2, pure=True, result_ty="bool",
        py_inline="({0}).startswith({1})")
def _starts_with(vm, s, prefix):
    return s.startswith(prefix)


@native("Builtins", "parseInt", 1, pure=True, result_ty="num",
        py_inline="int({0})")
def _parse_int(vm, s):
    return int(s)


@native("Builtins", "parseFloat", 1, pure=True, result_ty="num",
        py_inline="float({0})")
def _parse_float(vm, s):
    return float(s)


@native("Builtins", "newArray", 2, allocates=True)
def _new_array(vm, n, fill):
    return [fill] * n


@native("Builtins", "copyArray", 1, allocates=True)
def _copy_array(vm, arr):
    return list(arr)


@native("Builtins", "concatArrays", 2, pure=True, allocates=True)
def _concat_arrays(vm, a, b):
    return list(a) + list(b)


@native("Builtins", "now", 0)
def _now(vm):
    return time.perf_counter()


# ---------------------------------------------------------------------------
# Math
# ---------------------------------------------------------------------------

def _math(name, fn, argc=1, py_inline=None):
    NATIVES[("Math", name)] = NativeMethod(
        "Math", name, argc, lambda vm, *a: fn(*a), pure=True,
        result_ty="num", py_inline=py_inline)


_math("exp", math.exp, py_inline="_math.exp({0})")
_math("log", math.log, py_inline="_math.log({0})")
_math("sqrt", math.sqrt, py_inline="_math.sqrt({0})")
_math("floor", lambda x: math.floor(x))
_math("ceil", lambda x: math.ceil(x))
_math("abs", abs, py_inline="abs({0})")
_math("min", min, argc=2)
_math("max", max, argc=2)
_math("pow", math.pow, argc=2)
_math("toFloat", float)
_math("toInt", int)


# ---------------------------------------------------------------------------
# IO
# ---------------------------------------------------------------------------

@native("IO", "readFile", 1)
def _read_file(vm, path):
    with open(path, "r") as f:
        return f.read()


@native("IO", "readLines", 1, allocates=True)
def _read_lines(vm, path):
    with open(path, "r") as f:
        return f.read().splitlines()


@native("IO", "writeFile", 2)
def _write_file(vm, path, text):
    with open(path, "w") as f:
        f.write(text)
    return None


# ---------------------------------------------------------------------------
# Lancet intrinsics: identity semantics under plain interpretation.
# The corresponding JIT macros live in repro.macros.
# ---------------------------------------------------------------------------

@native("Lancet", "freeze", 1, calls_guest=True)
def _freeze(vm, thunk):
    # By-name argument: the frontend wraps the expression in a thunk.
    return vm.call_closure(thunk, [])


@native("Lancet", "unroll", 1, pure=True)
def _unroll(vm, xs):
    return xs


@native("Lancet", "ntimes", 2, calls_guest=True)
def _ntimes(vm, n, f):
    for i in range(n):
        vm.call_closure(f, [i])
    return None


@native("Lancet", "compile", 1, calls_guest=True)
def _compile(vm, f):
    if vm.jit is not None:
        return vm.jit.compile_closure(f)
    return f


@native("Lancet", "likely", 1)
def _likely(vm, c):
    return c


@native("Lancet", "speculate", 1)
def _speculate(vm, c):
    return c


@native("Lancet", "stable", 1, calls_guest=True)
def _stable(vm, thunk):
    return vm.call_closure(thunk, [])


@native("Lancet", "slowpath", 0)
def _slowpath(vm):
    return None


@native("Lancet", "fastpath", 0)
def _fastpath(vm):
    return None


def _run_thunk(vm, thunk):
    return vm.call_closure(thunk, [])


for _name in ("inlineAlways", "inlineNever", "inlineNonRec",
              "unrollTopLevel", "checkNoAlloc", "checkNoTaint",
              "tier1", "tier2"):
    NATIVES[("Lancet", _name)] = NativeMethod(
        "Lancet", _name, 1, _run_thunk, calls_guest=True)


@native("Lancet", "atScope", 3, calls_guest=True)
def _at_scope(vm, pattern, directive, thunk):
    return vm.call_closure(thunk, [])


@native("Lancet", "inScope", 3, calls_guest=True)
def _in_scope(vm, pattern, directive, thunk):
    return vm.call_closure(thunk, [])


@native("Lancet", "taint", 1)
def _taint(vm, x):
    return x


@native("Lancet", "untaint", 1)
def _untaint(vm, x):
    return x


# ---------------------------------------------------------------------------
# Guest string conversion
# ---------------------------------------------------------------------------

def to_guest_string(x):
    """How guest code renders values as strings (ADD-concat, print)."""
    if x is None:
        return "null"
    if x is True:
        return "true"
    if x is False:
        return "false"
    if isinstance(x, float):
        return repr(x)
    if isinstance(x, list):
        return "[" + ", ".join(to_guest_string(v) for v in x) + "]"
    try:
        return str(x)
    except ValueError:
        # CPython's int->str digit guard (sys.int_max_str_digits) fired.
        # Surface it as a guest error so every tier fails identically
        # instead of leaking a host ValueError from whichever tier
        # happened to render the value.
        raise GuestError("integer too large to render as a string")


@native("Lancet", "reset", 1, calls_guest=True)
def _reset(vm, thunk):
    return vm.call_closure(thunk, [])


@native("Lancet", "shift", 1, calls_guest=True)
def _shift(vm, f):
    raise GuestError("Lancet.shift is only supported inside compiled code "
                     "(the delimiter is the compile boundary)")

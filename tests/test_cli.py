"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main

PROGRAM = '''
def main() { println("hello"); return 0; }
def square(x) { return x * x; }
'''


@pytest.fixture
def program(tmp_path):
    path = tmp_path / "prog.mj"
    path.write_text(PROGRAM)
    return str(path)


def test_run_default_main(program, capsys):
    assert main(["run", program]) == 0
    out = capsys.readouterr().out
    assert "hello" in out
    assert "0" in out


def test_run_named_function_with_args(program, capsys):
    assert main(["run", program, "square", "7"]) == 0
    assert "49" in capsys.readouterr().out


def test_jit_runs_compiled(program, capsys):
    assert main(["jit", program, "square", "6"]) == 0
    assert "36" in capsys.readouterr().out


def test_jit_show_code(program, capsys):
    assert main(["jit", program, "square", "2", "--show-code"]) == 0
    captured = capsys.readouterr()
    assert "__compiled" in captured.err


def test_dis_shows_bytecode(program, capsys):
    assert main(["dis", program]) == 0
    out = capsys.readouterr().out
    assert "class Main" in out
    assert "static method square/1" in out
    assert "mul" in out


def test_dump_shows_generated_code(program, capsys):
    assert main(["dump", program, "square"]) == 0
    out = capsys.readouterr().out
    assert "def __compiled" in out


def test_string_args_pass_through(tmp_path, capsys):
    path = tmp_path / "s.mj"
    path.write_text('def shout(s) { return s + "!"; }')
    assert main(["run", str(path), "shout", "hey"]) == 0
    assert "hey!" in capsys.readouterr().out


# -- persistent cache / compile service flags ---------------------------------

def _jit_stats(capsys):
    import json
    err = capsys.readouterr().err
    return json.loads(err[err.index("{"):])


def test_jit_cache_dir_cold_then_warm(program, capsys, tmp_path,
                                      monkeypatch):
    monkeypatch.delenv("REPRO_NO_PERSIST", raising=False)
    cache = str(tmp_path / "cc")
    assert main(["jit", program, "square", "6", "--cache-dir", cache,
                 "--jit-stats"]) == 0
    cold = _jit_stats(capsys)
    assert cold["codecache"]["enabled"] is True
    assert cold["codecache"]["stores"] == 1
    assert cold["compiles"] == 1

    assert main(["jit", program, "square", "6", "--cache-dir", cache,
                 "--jit-stats"]) == 0
    warm = _jit_stats(capsys)
    assert warm["codecache"]["hits"] == 1
    assert warm["compiles"] == 0


def test_jit_no_persist_flag(program, capsys, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NO_PERSIST", raising=False)
    import os
    cache = str(tmp_path / "cc")
    assert main(["jit", program, "square", "6", "--cache-dir", cache,
                 "--no-persist", "--jit-stats"]) == 0
    stats = _jit_stats(capsys)
    assert stats["codecache"]["enabled"] is False
    assert not os.path.exists(cache)


def test_jit_compile_workers_flag(program, capsys):
    assert main(["jit", program, "square", "6", "--compile-workers", "2",
                 "--tier", "0", "--hot-threshold", "1", "--repeat", "8",
                 "--jit-stats"]) == 0
    captured = capsys.readouterr()
    assert "36" in captured.out
    import json
    stats = json.loads(captured.err[captured.err.index("{"):])
    assert stats["compile_service"]["workers"] == 2

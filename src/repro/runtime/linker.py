"""Class loading and resolution.

The linker owns the set of loaded classes and resolves names at
interpretation and compilation time (the ``Runtime`` interface of the
paper's Fig. 6, minus raw ``unsafe`` offsets — MiniJVM fields are named).
"""

from __future__ import annotations

from repro.bytecode.verifier import verify_class
from repro.errors import LinkError
from repro.runtime.objects import RtClass


class Linker:
    """Registry of loaded guest classes."""

    def __init__(self, verify=True):
        self.classes = {}
        self.verify = verify

    def load_classes(self, classfiles):
        """Load a batch of classfiles (resolving supers within the batch
        and against already-loaded classes)."""
        pending = {cf.name: cf for cf in classfiles}
        for name in pending:
            if name in self.classes:
                raise LinkError("class %s already loaded" % name)
        progress = True
        while pending and progress:
            progress = False
            for name in list(pending):
                cf = pending[name]
                if cf.super_name is None:
                    superclass = None
                elif cf.super_name in self.classes:
                    superclass = self.classes[cf.super_name]
                elif cf.super_name in pending:
                    continue  # load the super first
                else:
                    raise LinkError("unknown superclass %s of %s"
                                    % (cf.super_name, name))
                if self.verify:
                    verify_class(cf)
                self.classes[name] = RtClass(name, cf, superclass)
                del pending[name]
                progress = True
        if pending:
            raise LinkError("superclass cycle involving: %s"
                            % ", ".join(sorted(pending)))
        return [self.classes[cf.name] for cf in classfiles]

    def resolve_class(self, name):
        cls = self.classes.get(name)
        if cls is None:
            raise LinkError("unknown class %s" % name)
        return cls

    def resolve_static(self, class_name, method_name):
        """Resolve a static method; walks the super chain."""
        cls = self.resolve_class(class_name)
        m = cls.lookup_method(method_name)
        if m is None or not m.is_static:
            raise LinkError("no static method %s.%s" % (class_name, method_name))
        return m

    def resolve_virtual(self, cls, method_name):
        m = cls.lookup_method(method_name)
        if m is None:
            raise LinkError("no method %s on %s" % (method_name, cls.name))
        return m

    def mark_stable_field(self, class_name, field_name):
        """Declare ``class.field`` @stable (paper 3.2): compiled code may
        speculate on its value; writes invalidate dependents."""
        cls = self.resolve_class(class_name)
        if cls.field_info(field_name) is None:
            raise LinkError("no field %s.%s" % (class_name, field_name))
        cls.stable_fields.add(field_name)
        # Propagate to already-loaded subclasses.
        for other in self.classes.values():
            if other.is_subclass_of(class_name):
                other.stable_fields.add(field_name)

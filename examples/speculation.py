#!/usr/bin/env python
"""Speculative optimization (paper 3.2): overflow-safe integers and
search trees over stable structure.

Run:  python examples/speculation.py
"""

from repro import Lancet
from repro.apps import load_app


def safeint_demo():
    print("=== SafeInt: speculate on machine-size integers ===")
    jit = Lancet()
    load_app(jit, "safeint", module="Safeint")
    product = jit.vm.call("Safeint", "makeProduct")

    # Small products stay on the compiled fast path.
    print("product(10) =", product(10))
    print("deopts so far:", product.deopt_count)

    # 21! overflows 64-bit... and certainly 32-bit: the guard fails, the
    # rest of the computation continues in the interpreter with Big values.
    big = product(21)
    print("product(21) =", big)
    print("deopts now:", product.deopt_count)
    import math
    assert big == math.factorial(21)
    # The compiled fast path contains no Big allocation at all.
    assert "Big" not in product.source


def stable_tree_demo():
    print("\n=== Stable trees: structure compiled to decision code ===")
    jit = Lancet()
    load_app(jit, "stabletree", module="Stabletree")
    jit.mark_stable("Node", "key")
    jit.mark_stable("Node", "value")
    jit.mark_stable("Node", "left")
    jit.mark_stable("Node", "right")

    root = None
    for k, v in [(50, "root"), (25, "left"), (75, "right"), (10, "a"),
                 (30, "b"), (60, "c"), (90, "d")]:
        root = jit.vm.call("Stabletree", "insert", [root, k, v])

    lookup = jit.vm.call("Stabletree", "makeLookup", [root])
    print("lookup(30) =", lookup(30))
    print("lookup(99) =", lookup(99))
    # The tree became branching code: no field reads remain.
    assert "_getf" not in lookup.source and "fields[" not in lookup.source
    print("compiled lookup is pure decision code "
          "(%d lines)" % len(lookup.source.splitlines()))

    # A structural update writes a @stable field -> invalidation ->
    # recompilation against the new structure on the next call.
    root = jit.vm.call("Stabletree", "insert", [root, 65, "new!"])
    print("after insert: valid =", lookup.valid)
    print("lookup(65) =", lookup(65))
    print("compile count:", lookup.compile_count)


if __name__ == "__main__":
    safeint_demo()
    stable_tree_demo()

"""Dynamically-scoped directives (paper 3.1/3.3): inlining control,
atScope/inScope, checkNoAlloc, taint analysis."""

import pytest

from repro import CompileOptions
from repro.errors import MacroError, NoAllocError, TaintError
from tests.conftest import load


class TestInlinePolicies:
    SRC = '''
        def helper(x) { return x * 3; }
        def makeNever() {
          return Lancet.compile(fun(x) =>
            Lancet.inlineNever(fun() => helper(x)));
        }
        def makeAlways() {
          return Lancet.compile(fun(x) =>
            Lancet.inlineAlways(fun() => helper(x)));
        }
    '''

    def test_inline_never_leaves_call(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "makeNever")
        assert f(2) == 6
        assert "_callm" in f.source

    def test_inline_always_removes_call(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "makeAlways")
        assert f(2) == 6
        assert "_callm" not in f.source

    def test_global_policy_never(self):
        j = load("def helper(x) { return x * 3; }\n"
                 "def f(x) { return helper(x); }",
                 options=CompileOptions(inline_policy="never"))
        c = j.compile_function("Main", "f")
        assert c(2) == 6
        assert "_callm" in c.source

    def test_recursive_not_inlined_by_default(self):
        j = load('''
            def fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        ''')
        c = j.compile_function("Main", "fact")
        assert c(5) == 120
        assert "_callm" in c.source


class TestInlineTelemetry:
    SRC = TestInlinePolicies.SRC

    def test_inline_decision_events(self):
        j = load(self.SRC)
        j.telemetry.enable_trace()
        j.vm.call("Main", "makeAlways")
        decisions = j.telemetry.events("inline.decision")
        assert any(d.data["action"] == "inline"
                   and d.data["callee"] == "Main.helper" for d in decisions)

    def test_residual_decision_events(self):
        j = load(self.SRC)
        j.telemetry.enable_trace()
        j.vm.call("Main", "makeNever")
        decisions = j.telemetry.events("inline.decision")
        assert any(d.data["action"] == "residual"
                   and d.data["callee"] == "Main.helper"
                   and d.data["policy"] == "never" for d in decisions)

    def test_inline_counters_in_stats_and_report(self):
        j = load("def helper(x) { return x * 3; }\n"
                 "def f(x) { return helper(x); }")
        c = j.compile_function("Main", "f")
        assert c.report.inlines >= 1
        assert c.report.residual_calls == 0
        stats = j.stats()
        assert stats["inlines"] >= 1
        assert stats["residual_calls"] == 0

    def test_residual_counters(self):
        j = load("def helper(x) { return x * 3; }\n"
                 "def f(x) { return helper(x); }",
                 options=CompileOptions(inline_policy="never"))
        c = j.compile_function("Main", "f")
        assert c.report.inlines == 0
        assert c.report.residual_calls >= 1


class TestScopePatterns:
    SRC = '''
        def ioish(x) { return x + 1; }
        def pure(x) { return x * 2; }
        def make() {
          return Lancet.compile(fun(x) {
            return Lancet.atScope("Main.ioish", "inlineNever", fun() {
              return ioish(x) + pure(x);
            });
          });
        }
        def makeIn() {
          return Lancet.compile(fun(x) {
            return Lancet.inScope("Main.outer", "inlineNever", fun() {
              return outer(x);
            });
          });
        }
        def inner(x) { return x + 5; }
        def outer(x) { return inner(x); }
    '''

    def test_at_scope_pattern_blocks_matching_only(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        assert f(3) == 4 + 6
        # ioish stays a call, pure is inlined
        assert f.source.count("_callm") == 1

    def test_in_scope_applies_inside_match(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "makeIn")
        assert f(3) == 8
        # outer itself is inlined; inner (inside outer) is not.
        assert "_callm" in f.source

    def test_bad_directive_name(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) =>
                Lancet.atScope("x", "frobnicate", fun() => x));
            }
        ''')
        with pytest.raises(MacroError, match="unknown directive"):
            j.vm.call("Main", "make")

    def test_pattern_must_be_constant(self):
        j = load('''
            def make(pat) {
              return Lancet.compile(fun(x) =>
                Lancet.atScope(x, "inlineNever", fun() => x));
            }
        ''')
        with pytest.raises(MacroError, match="constant string"):
            j.vm.call("Main", "make", ["p"])


class TestCheckNoAlloc:
    def test_scalar_replaced_code_passes(self):
        j = load('''
            class P { var a; var b; def init(a, b) { this.a = a; this.b = b; } }
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoAlloc(fun() {
                  var p = new P(x, x * 2);
                  return p.a + p.b;
                });
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(4) == 12

    def test_escaping_allocation_fails(self):
        j = load('''
            class P { var a; def init(a) { this.a = a; } }
            def consume(p) { return p.a; }
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoAlloc(fun() {
                  var p = new P(x);
                  return Lancet.inlineNever(fun() => consume(p));
                });
              });
            }
        ''')
        with pytest.raises(NoAllocError):
            j.vm.call("Main", "make")

    def test_native_allocation_fails(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoAlloc(fun() => len(newArray(x, 0)));
              });
            }
        ''')
        with pytest.raises(NoAllocError) as exc:
            j.vm.call("Main", "make")
        assert exc.value.sites

    def test_deopt_point_fails(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoAlloc(fun() {
                  if (Lancet.speculate(x > 0)) { return x; }
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(NoAllocError, match="deopt"):
            j.vm.call("Main", "make")

    def test_outside_scope_not_affected(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                var arr = newArray(x, 1);   // outside the directive: fine
                return Lancet.checkNoAlloc(fun() => x + 1) + len(arr);
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 7

    def test_global_option(self):
        j = load("def f(x) { return newArray(x, 0); }",
                 options=CompileOptions(check_noalloc=True))
        with pytest.raises(NoAllocError):
            j.compile_function("Main", "f")


class TestTaint:
    def test_leak_to_println(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  println(secret);
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        assert "println" in exc.value.leaks[0]

    def test_taint_propagates_through_arithmetic(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  var derived = secret * 2 + 1;
                  println(derived);
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError):
            j.vm.call("Main", "make")

    def test_branch_on_taint_detected(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  if (secret > 0) { return 1; }
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        assert any("branch" in leak for leak in exc.value.leaks)

    def test_untaint_declassifies(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  var ok = Lancet.untaint(secret);
                  println(ok);
                  return 0;
                });
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 0

    def test_untainted_flow_passes(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  println(42);             // constant, not tainted
                  return secret - secret;  // result tainted but not leaked
                });
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(7) == 0

"""Control macros: slowpath / fastpath / shift / reset (paper 3.2).

``slowpath()`` and ``fastpath()`` perform on-stack replacement: they
discard the rest of the compiled continuation and replace it with an
interpreted (slowpath) or freshly-compiled (fastpath) version. Both are
built on the same mechanism as ``shiftR``: the chain of abstract frames
*is* the current continuation, and deopt metadata reifies it.

``shift(f)`` passes the current continuation — reified as a runtime
closure — to ``f`` and makes ``f``'s result the result of the compiled
unit (the delimiter is the enclosing ``compile`` boundary).
"""

from __future__ import annotations

from repro.macros.api import (FastpathDirective, ReturnDirective,
                              SlowpathDirective)


def slowpath(ctx, recv, args):
    """Continue this execution in the interpreter from here on."""
    return SlowpathDirective(result=None)


def fastpath(ctx, recv, args):
    """Recompile the current continuation with current values as
    constants, then run it."""
    return FastpathDirective(result=None)


def shift(ctx, recv, args):
    """Delimited control: ``shift(f)`` calls ``f`` with the current
    continuation; the continuation is aborted (its value is whatever
    ``f`` returns)."""
    k = ctx.machine.make_continuation(ctx.state)

    def after(machine, state, result):
        return ReturnDirective(result)

    return ctx.fun_r(args[0], [k], on_return=after)


def reset(ctx, recv, args):
    """Delimiter marker. In this implementation the delimiter is the
    compiled-unit boundary, so ``reset`` simply inlines its thunk; it
    exists so code using shift/reset reads like the paper's."""
    return ctx.fun_r(args[0], [])

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

# The speculation-soundness checkers (per-pass translation validation +
# deopt-state verification) run default-ON across the test suite, so
# every compile in every test doubles as a validator run. An explicit
# REPRO_VALIDATE=0 in the environment still wins.
os.environ.setdefault("REPRO_VALIDATE", "1")

import pytest

from repro import Lancet
from repro.interp.interpreter import Interpreter


@pytest.fixture
def vm():
    return Interpreter()


@pytest.fixture
def jit():
    return Lancet()


def load(source, **kw):
    """Fresh Lancet with ``source`` loaded."""
    j = Lancet(**kw)
    j.load(source)
    return j


def run_both(source, fn_name, args, module="Main"):
    """Differential helper: run a guest function both interpreted and
    compiled; assert results agree; return the (shared) result."""
    j = load(source)
    interp_result = j.vm.call(module, fn_name, list(args))
    compiled = j.compile_function(module, fn_name)
    compiled_result = compiled(*args)
    assert compiled_result == interp_result, (
        "compiled %r != interpreted %r for %s%r"
        % (compiled_result, interp_result, fn_name, tuple(args)))
    return compiled_result

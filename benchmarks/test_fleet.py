"""Fleet benchmark: the compile server's scale-out economics (ISSUE 9).

Simulates a fleet of Lancet VMs (threads-as-tenants) attached to one
CompileServer and serving streams of guest requests. Two headline
assertions, both enforced in the ``fleet-smoke`` CI job:

1. **Total compiles grow sublinearly (~constant) in VM count** — the
   whole fleet pays each program shape roughly once, whether 1, 4, or
   16 VMs run the identical workload (cross-VM dedup + the shared
   sharded store).
2. **A warm fleet's p99 request latency is below a cold fleet's** —
   first-touch requests against a prewarmed store rehydrate instead of
   compiling (or waiting on a leader's compile). The functional claim
   (zero warm compiles) is a hard gate; the wall-clock comparison
   carries a small noise tolerance so shared CI runners don't flake it.

Parameterized for CI via ``REPRO_FLEET_VMS`` / ``REPRO_FLEET_REQUESTS``;
``REPRO_FLEET_JSON=path`` merges each test's numbers into a JSON
artifact the CI job uploads.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro import Lancet
from repro.server import CompileServer

SRC = '''
    def poly(x) {
      var acc = 0;
      var i = 0;
      while (i < 40) { acc = acc + x * i + (acc / 7); i = i + 1; }
      return acc;
    }
    def sq(x) {
      var s = 0;
      var i = 0;
      while (i < x) { s = s + i * i; i = i + 1; }
      return s;
    }
    def scale(x) { return x * 3 + 1; }
    def shift(x) { return x + 11; }
'''

#: The workload's program shapes: every VM touches all of them.
SHAPES = ["poly", "sq", "scale", "shift"]

FLEET_VMS = int(os.environ.get("REPRO_FLEET_VMS", "8"))
FLEET_REQUESTS = int(os.environ.get("REPRO_FLEET_REQUESTS", "200"))


def run_fleet(cache_dir, n_vms, requests_per_vm):
    """One fleet run: ``n_vms`` tenants each serve ``requests_per_vm``
    guest requests round-robin over the shapes. Returns per-request
    latencies, the fleet's total compile count, and server stats."""
    server = CompileServer(cache_dir=cache_dir, workers=2)
    lock = threading.Lock()
    latencies = []
    compiles = []
    failures = []

    def tenant(idx):
        try:
            jit = Lancet()
            jit.load(SRC)
            jit.attach_compile_server(server)
            lat = []
            for r in range(requests_per_vm):
                shape = SHAPES[r % len(SHAPES)]
                t0 = time.perf_counter()
                fn = jit.compile_function("Main", shape)
                fn(9)
                lat.append(time.perf_counter() - t0)
            n_compiles = jit.telemetry.metrics.get("compiles")
            jit.close()
            with lock:
                latencies.extend(lat)
                compiles.append(n_compiles)
        except Exception as exc:            # surface, don't hang the join
            with lock:
                failures.append("vm-%d: %s" % (idx, exc))

    threads = [threading.Thread(target=tenant, args=(i,))
               for i in range(n_vms)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stats = server.stats()
    server.close()
    assert not failures, failures
    return {"latencies": latencies, "compiles": sum(compiles),
            "server": stats}


def p99(latencies):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def _record(section, payload):
    """Merge one test's numbers into the CI artifact (REPRO_FLEET_JSON)."""
    path = os.environ.get("REPRO_FLEET_JSON")
    if not path:
        return
    data = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    data[section] = payload
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)


def test_total_compiles_sublinear_in_vm_count(tmp_path):
    """Headline 1: an identical workload on 1 / 4 / 16 VMs costs the
    fleet a ~constant number of compiles, not one per VM."""
    per_vm = max(8, len(SHAPES) * 2)
    totals = {}
    for n_vms in (1, 4, 16):
        run = run_fleet(str(tmp_path / ("fleet-%d" % n_vms)), n_vms,
                        per_vm)
        totals[n_vms] = run["compiles"]
    base = totals[1]
    assert base >= len(SHAPES)
    # Sublinear, ~constant: a race may let one straggler tenant compile
    # a shape twice, but growth must stay O(shapes), not O(vms).
    for n_vms in (4, 16):
        assert totals[n_vms] <= base + len(SHAPES), totals
        assert totals[n_vms] < n_vms * base, totals
    _record("sublinear_compiles", {
        "per_vm_requests": per_vm,
        "total_compiles_by_vms": {str(k): v for k, v in totals.items()},
        "shapes": len(SHAPES),
    })


def test_warm_fleet_p99_strictly_below_cold(tmp_path):
    """Headline 2: a fleet inheriting a populated store answers its
    slowest (first-touch) requests by rehydrating, not compiling.

    ``compiles == 0`` is the hard functional gate; the latency check
    carries a 5% noise allowance so a GC pause or noisy CI neighbor
    during the warm run cannot flake an otherwise-correct cache."""
    cache_dir = str(tmp_path / "fleet-cc")
    cold = run_fleet(cache_dir, FLEET_VMS, FLEET_REQUESTS)
    warm = run_fleet(cache_dir, FLEET_VMS, FLEET_REQUESTS)
    cold_p99 = p99(cold["latencies"])
    warm_p99 = p99(warm["latencies"])
    assert warm["compiles"] == 0        # every first touch was a warm hit
    assert warm_p99 < cold_p99 * 1.05, (
        "warm p99 %.6fs not below cold p99 %.6fs (+5%% tolerance)"
        % (warm_p99, cold_p99))
    _record("cold_vs_warm", {
        "vms": FLEET_VMS,
        "requests_per_vm": FLEET_REQUESTS,
        "cold": {"p99_s": cold_p99, "compiles": cold["compiles"],
                 "dedup_waits": cold["server"]["dedup_waits"]},
        "warm": {"p99_s": warm_p99, "compiles": warm["compiles"],
                 "dedup_waits": warm["server"]["dedup_waits"]},
        "p99_speedup": (cold_p99 / warm_p99) if warm_p99 else None,
    })

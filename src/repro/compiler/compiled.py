"""Compiled code objects: guards, deoptimization, invalidation, OSR.

:class:`CompiledFunction` wraps a generated Python function. When a guard
fails the generated code raises :class:`DeoptException`; the wrapper
rebuilds the interpreter frames recorded in the deopt metadata and resumes
interpretation (paper 3.2, ``slowpath``), or — for ``stable`` guards —
additionally invalidates itself so the next call recompiles against the
new value (``fastpath``-style recompilation).

:class:`ContinuationClosure` is the runtime face of ``shiftR``: a captured
continuation that, when invoked, resumes the interpreter at its capture
point with the argument pushed.
"""

from __future__ import annotations

from repro.compiler.deopt import DeoptException, reconstruct_frames


class CompiledFunction:
    """A JIT-compiled guest closure/method, callable from host and guest.

    Attributes of interest to users (the paper's "reflective high-level
    API"): ``source`` (generated Python), ``deopt_count``,
    ``compile_count``, ``warnings``, ``invalidated_reason``.
    """

    def __init__(self, jit, fn, source, metas, recompile=None, name="unit",
                 warnings=()):
        self.jit = jit
        self.vm = jit.vm
        self.fn = fn
        self.source = source
        self.metas = metas
        self.name = name
        self.warnings = list(warnings)
        self._recompile = recompile
        self.valid = True
        self.invalidated_reason = None
        self.deopt_count = 0
        self.compile_count = 1
        # Set when this unit was stored in / loaded from the persistent
        # code cache; invalidation then reaches through to disk.
        self.persist_key = None

    # -- invalidation / recompilation ------------------------------------------

    def invalidate(self, reason):
        """Discard this compiled code; the next call recompiles. A unit
        backed by a persistent-cache entry drops that entry too: the
        reason we are invalid (a stable value changed, a @stable field
        was written) outlives the process exactly like the entry does."""
        self.valid = False
        self.invalidated_reason = reason
        if self.persist_key is not None:
            codecache = getattr(self.jit, "codecache", None)
            if codecache is not None:
                codecache.invalidate(self.persist_key, reason=reason)
            self.persist_key = None
        tel = getattr(self.jit, "telemetry", None)
        if tel is not None:
            tel.inc("invalidations")
            tel.record("invalidate", unit=self.name, reason=reason)

    def recompile(self):
        if self._recompile is None:
            raise RuntimeError("%s cannot be recompiled" % self.name)
        fresh = self._recompile()
        self.fn = fresh.fn
        self.source = fresh.source
        self.metas = fresh.metas
        self.warnings = fresh.warnings
        self.valid = True
        self.invalidated_reason = None
        self.compile_count += 1
        return self

    # -- execution ----------------------------------------------------------------

    def __call__(self, *args):
        if not self.valid:
            self.recompile()
        try:
            return self.fn(*args)
        except DeoptException as deopt:
            return self._deoptimize(deopt)
        except IndexError as exc:
            # Direct subscripts in fast paths surface Python IndexError;
            # re-raise with the interpreter's error type.
            from repro.errors import GuestIndexError
            raise GuestIndexError(str(exc))

    def _deoptimize(self, deopt):
        self.deopt_count += 1
        meta = self.metas[deopt.meta_id]
        kind = getattr(meta, "kind", "interpret")
        tel = getattr(self.jit, "telemetry", None)
        if tel is not None:
            tel.inc("deopts")
            if meta.reason in ("guard", "stable"):
                tel.inc("guard_failures")
            tel.record("deopt", unit=self.name, kind=kind,
                       reason=meta.reason,
                       method=meta.frames[-1].method.qualified_name,
                       bci=meta.frames[-1].bci)
        if kind == "recompile":
            # `stable` guard: recompile for future calls, finish this one
            # in the interpreter.
            self.invalidate("stable guard failed (%s)" % meta.reason)
        tiers = getattr(self.jit, "tiers", None)
        if tiers is not None:
            # Deopt storms demote tiered units (budget lives in the policy).
            tiers.on_deopt(self)
        trace_owner = getattr(self, "trace_owner", None)
        if trace_owner is not None:
            # Trace side exit: count it, and possibly arm bridge
            # recording *before* we resume interpreting, so the recorder
            # shadows exactly the execution the deopt is about to run.
            trace_owner.on_exit(deopt.meta_id)
        leaf = reconstruct_frames(meta, deopt.lives)
        return self.vm.run_frames(leaf)

    def __repr__(self):
        state = "valid" if self.valid else "invalidated"
        return "<CompiledFunction %s (%s, %d deopts)>" % (
            self.name, state, self.deopt_count)


class ContinuationClosure:
    """A reified continuation (``shiftR``). One-shot semantics are not
    enforced; each invocation rebuilds fresh frames, so calling it twice
    replays the continuation (usable for generators/retry patterns)."""

    def __init__(self, vm, meta, lives):
        self.vm = vm
        self.meta = meta
        self.lives = lives

    def __call__(self, *args):
        if len(args) > 1:
            raise TypeError("continuation takes at most one argument")
        leaf = reconstruct_frames(self.meta, self.lives)
        leaf.push(args[0] if args else None)
        return self.vm.run_frames(leaf)

    def __repr__(self):
        return "<continuation at %s@%d>" % (
            self.meta.frames[-1].method.qualified_name,
            self.meta.frames[-1].bci)

"""The Delite execution runtime: sequential, simulated-SMP, and "GPU"
backends, with a simulated wall clock for the parallel backends.

Why simulated: CPython's GIL prevents real thread scaling for compute
kernels, and the paper's evaluation machine (multi-socket x86 + CUDA GPU)
is unavailable (repro band: hardware gate). The SMP backend *actually
executes* every chunk (results are real); only the reported time models
parallelism::

    t_parallel = max(chunk times) + sync_overhead(cores)

The GPU backend executes whole-array numpy (vectorized kernels are the
CUDA stand-in) and adds a per-kernel launch overhead.

Parallel-safety gating (``REPRO_PARSAFE`` / ``CompileOptions.parsafe``):
with the mode at ``check`` or ``enforce``, an op must be statically
classified ``ProvenParallel`` by :mod:`repro.analysis.parsafe` before
the smp/gpu backends will touch it — unproven ops fall back to ``seq``
with a ``parsafe.fallback`` event. In ``check`` mode, chunked execution
additionally runs under the :mod:`repro.analysis.raced` write sanitizer,
which records per-chunk write footprints and raises ``RaceDetected`` on
overlap — the dynamic cross-check of the static verdicts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.parsafe import classify_op, parsafe_mode_from_env
from repro.analysis.raced import WriteSanitizer
from repro.delite.ops import (DeliteOp, ElementwiseBuiltin, MapIndexedOp,
                              MapOp, MapReduceOp, RangeMapReduceOp,
                              ReduceBuiltin, ReduceOp, ZipMapOp,
                              ZipWithIndexOp)


class DeliteRuntime:
    """Executes Delite ops; owns the backend config and the sim clock."""

    def __init__(self, backend="seq", cores=1, sync_overhead_us=25.0,
                 gpu_launch_us=40.0, gpu_speed_factor=16.0, parsafe=None):
        self.backend = backend           # 'seq' | 'smp' | 'gpu'
        self.cores = cores
        self.sync_overhead_us = sync_overhead_us
        self.gpu_launch_us = gpu_launch_us
        # Modeled GPU throughput relative to one CPU core on vectorized
        # kernels (calibrated to the paper's GPU-vs-8-core ratios; the
        # actual execution is whole-array numpy either way).
        self.gpu_speed_factor = gpu_speed_factor
        self.sim_time = 0.0              # modeled wall-clock, seconds
        self.real_time = 0.0
        self.ops_run = 0
        self.fused_ops_run = 0
        # Parallel-safety gate: 'off' | 'check' | 'enforce'.
        self.parsafe = parsafe if parsafe is not None \
            else parsafe_mode_from_env()
        self.parsafe_fallbacks = 0       # unproven ops demoted to seq
        self.parsafe_checks = 0          # sanitized chunked launches
        self._np_cache = {}
        self.telemetry = None            # set by repro.jit.api.Lancet

    def configure(self, backend, cores=1):
        self.backend = backend
        self.cores = cores
        return self

    def reset_clock(self):
        self.sim_time = 0.0
        self.real_time = 0.0
        self.ops_run = 0
        self.fused_ops_run = 0

    # -- data conversion -----------------------------------------------------

    def register_data(self, arr):
        """Pre-convert a (large, immutable) guest array to numpy; cached by
        identity so per-op conversion cost disappears, the way Delite keeps
        DeliteArray data device-resident."""
        hit = self._np_cache.get(id(arr))
        if hit is not None:
            return hit
        converted = np.asarray(arr, dtype=np.float64)
        self._np_cache[id(arr)] = converted
        return converted

    def _as_array(self, x):
        if isinstance(x, np.ndarray):
            return x
        hit = self._np_cache.get(id(x))
        if hit is not None:
            return hit
        return np.asarray(x, dtype=np.float64)

    # -- execution ---------------------------------------------------------------

    def run(self, op, *args):
        """Execute one op. The first ``op.n_elem`` args are element inputs."""
        self.ops_run += 1
        fused = "∘" in getattr(getattr(op, "kernel", None), "name", "")
        if fused:
            self.fused_ops_run += 1
        tel = self.telemetry
        if tel is not None:
            tel.inc("delite.kernels")
            if fused:
                tel.inc("delite.fused_kernels")
            tel.record("delite.launch", op=type(op).__name__,
                       backend=self.backend, fused=fused,
                       kernel=getattr(getattr(op, "kernel", None), "name",
                                      None))
        t0 = time.perf_counter()
        if isinstance(op, ZipWithIndexOp):
            result = self._run_zip_with_index(op, args[0])
            elapsed = time.perf_counter() - t0
            self.real_time += elapsed
            self.sim_time += elapsed     # never parallelized (AoS building)
            return result
        if isinstance(op, RangeMapReduceOp):
            # Materialize the index range as the single element input.
            start, end = int(args[0]), int(args[1])
            idx = np.arange(start, end, dtype=np.float64) \
                if op.kernel.vectorized else list(range(start, end))
            args = (idx,) + tuple(args[2:])
            op_n_elem = 1
            elems = [idx]
            uniforms = [self._as_uniform(u) for u in args[1:]]
        else:
            elems = [self._as_elem(op, a) for a in args[:op.n_elem]]
            uniforms = [self._as_uniform(u) for u in args[op.n_elem:]]
        if self._is_indexed(op) and elems:
            # Indexed ops get the index space as an explicit element input
            # so chunked execution sees globally-correct indices.
            elems.append(np.arange(len(elems[0]), dtype=np.float64)
                         if _wants_numpy(op) else list(range(len(elems[0]))))
        want_gpu = self.backend == "gpu" and op.gpu_capable
        want_smp = self.backend == "smp" and self.cores > 1
        if (want_gpu or want_smp) and self.parsafe != "off" \
                and not self._parsafe_admit(op, tel):
            want_gpu = want_smp = False      # refused: run sequentially
        if want_gpu:
            result, sim = self._run_whole(op, elems, uniforms, 0.0)
            sim = sim / self.gpu_speed_factor + self.gpu_launch_us * 1e-6
        elif want_smp:
            result, sim = self._run_chunked(op, elems, uniforms)
        else:
            result, sim = self._run_whole(op, elems, uniforms, 0.0)
        self.real_time += time.perf_counter() - t0
        self.sim_time += sim
        return result

    def _parsafe_admit(self, op, tel):
        """May this op run on a parallel backend? Only statically
        ``ProvenParallel`` ops are admitted; everything else (including
        ``Unknown`` — unproven is unsafe) demotes to ``seq`` with a
        ``parsafe.fallback`` diagnostic."""
        verdict = classify_op(op)
        if verdict.proven_parallel:
            return True
        self.parsafe_fallbacks += 1
        if tel is not None:
            tel.inc("parsafe.fallbacks")
            tel.record("parsafe.fallback", op=type(op).__name__,
                       name=op.name, backend=self.backend,
                       verdict=verdict.status, checker=verdict.checker,
                       blame=verdict.blame)
        return False

    @staticmethod
    def _is_indexed(op):
        return isinstance(op, MapIndexedOp) or (
            isinstance(op, MapReduceOp) and op.indexed)

    def _as_elem(self, op, a):
        if _wants_numpy(op):
            return self._as_array(a)
        return a

    def _as_uniform(self, u):
        if isinstance(u, list):
            return [float(v) if isinstance(v, (int, float)) else v
                    for v in u]
        return u

    # -- whole-array execution ------------------------------------------------------

    def _run_whole(self, op, elems, uniforms, overhead):
        t0 = time.perf_counter()
        result = self._execute(op, elems, uniforms)
        return result, (time.perf_counter() - t0) + overhead

    # -- chunked (simulated SMP) execution ----------------------------------------------

    def _run_chunked(self, op, elems, uniforms):
        from repro.delite.ops import RowSumsOp
        if isinstance(op, RowSumsOp):
            # Chunk boundaries must align with rows; run whole-array.
            return self._run_whole(op, elems, uniforms, 0.0)
        n = len(elems[0]) if elems else 0
        cores = max(1, self.cores)
        if n < cores * 4:
            return self._run_whole(op, elems, uniforms, 0.0)
        bounds = [(i * n) // cores for i in range(cores + 1)]
        sanitizer = None
        if self.parsafe == "check":
            # Dynamic cross-check of the static ProvenParallel verdict:
            # record each chunk's write footprint, fail on overlap.
            sanitizer = WriteSanitizer(op, elems, uniforms)
            self.parsafe_checks += 1
            if self.telemetry is not None:
                self.telemetry.inc("parsafe.checks")
        partials = []
        chunk_times = []
        for c in range(cores):
            lo, hi = bounds[c], bounds[c + 1]
            chunk = [e[lo:hi] for e in elems]
            t0 = time.perf_counter()
            partials.append(self._execute(op, chunk, uniforms))
            chunk_times.append(time.perf_counter() - t0)
            if sanitizer is not None:
                sanitizer.after_chunk(c, lo, hi)
        if sanitizer is not None:
            sanitizer.finish(telemetry=self.telemetry)
        sim = max(chunk_times) + self.sync_overhead_us * 1e-6
        result = self._combine(op, partials)
        return result, sim

    def _combine(self, op, partials):
        if isinstance(op, (ReduceBuiltin,)):
            acc = partials[0]
            for p in partials[1:]:
                acc = op.combine(acc, p)
            if op.finalize is not None:
                acc = op.finalize(acc)
            return acc
        if isinstance(op, (ReduceOp, MapReduceOp, RangeMapReduceOp)):
            acc = partials[0]
            for p in partials[1:]:
                acc = self._reduce_pairwise(op, acc, p)
            return acc
        # Elementwise: concatenate chunk outputs.
        if isinstance(partials[0], np.ndarray):
            return np.concatenate(partials)
        out = []
        for p in partials:
            out.extend(p)
        return out

    def _reduce_pairwise(self, op, a, b):
        kernel = getattr(op, "reduce_kernel", None)
        if kernel is not None:
            return kernel.scalar_fn(a, b)
        # Chunk partials merge with '+'. Only sound when the op's fold is
        # additive — exactly what the parsafe gate requires before a
        # ReduceOp-with-kernel is admitted to smp (a non-associative fold
        # stays ProvenSequential and never reaches this combiner).
        return a + b

    # -- the actual per-pattern execution -----------------------------------------------

    def _execute(self, op, elems, uniforms):
        if isinstance(op, ElementwiseBuiltin):
            return op.numpy_fn(elems, uniforms)
        if isinstance(op, ReduceBuiltin):
            partial = op.numpy_fn(elems, uniforms)
            if op.finalize is not None and self.backend != "smp":
                partial = op.finalize(partial)
            return partial
        if isinstance(op, (MapOp, ZipMapOp)):
            kernel = op.kernel
            if kernel.vectorized and isinstance(elems[0], np.ndarray):
                return kernel.numpy_fn(*elems)
            fn = kernel.scalar_fn
            if len(elems) == 1:
                return [fn(x) for x in elems[0]]
            return [fn(x, y) for x, y in zip(*elems)]
        if isinstance(op, MapIndexedOp):
            # The index array was appended as the last element input.
            kernel = op.kernel
            if kernel.vectorized and isinstance(elems[0], np.ndarray):
                return kernel.numpy_fn(*elems)
            fn = kernel.scalar_fn
            return [fn(x, int(i)) for x, i in zip(*elems)]
        if isinstance(op, MapReduceOp):
            kernel = op.kernel
            if kernel.vectorized and isinstance(elems[0], np.ndarray):
                return float(np.sum(kernel.numpy_fn(*elems)))
            fn = kernel.scalar_fn
            acc = 0
            if op.indexed:
                for x, i in zip(*elems):
                    acc += fn(x, int(i))
            elif len(elems) == 1:
                for x in elems[0]:
                    acc += fn(x)
            else:
                for xs in zip(*elems):
                    acc += fn(*xs)
            return acc
        if isinstance(op, RangeMapReduceOp):
            kernel = op.kernel
            if kernel.vectorized and isinstance(elems[0], np.ndarray):
                return float(np.sum(kernel.numpy_fn(elems[0])))
            acc = 0
            fn = kernel.scalar_fn
            for i in elems[0]:
                acc += fn(int(i))
            return acc
        if isinstance(op, ReduceOp):
            if op.kernel is None:
                if isinstance(elems[0], np.ndarray):
                    return float(np.sum(elems[0]))
                return sum(elems[0], op.zero)
            acc = op.zero
            fn = op.kernel.scalar_fn
            for x in elems[0]:
                acc = fn(acc, x)
            return acc
        raise TypeError("cannot execute %r" % (op,))

    def _run_zip_with_index(self, op, xs):
        # Unfused semantics: materialize pair objects (the AoS cost the
        # paper's fusion+SoA transformation removes).
        make = op.pair_factory
        if make is None:
            return [(x, i) for i, x in enumerate(xs)]
        return [make(x, i) for i, x in enumerate(xs)]


def _wants_numpy(op):
    if isinstance(op, (ElementwiseBuiltin, ReduceBuiltin)):
        return True
    kernel = getattr(op, "kernel", None)
    return kernel is not None and kernel.vectorized

"""Abstract interpretation: the analysis layer on top of the staged
interpreter (paper section 2.2: "Compiler + Abstract Interpreter =
Optimizer")."""

from repro.absint.absval import (AbsVal, Const, Static, Partial,
                                 PartialArray, Unknown, lub, abs_of_value)

__all__ = ["AbsVal", "Const", "Static", "Partial", "PartialArray",
           "Unknown", "lub", "abs_of_value"]

"""Effect and purity inference for IR statements and called units.

Three layers of facts, consumed by the optimization passes in
:mod:`repro.pipeline` (GVN, LICM, scalar replacement):

* **per-op**: which statements are pure (value depends only on operands),
  which are *total* (can never raise a guest error), and which read or
  write the guest heap. Purity makes a statement CSE-able; totality makes
  it hoistable to places it was not guaranteed to execute.
* **aliasing**: a cheap must-not-alias test between heap base values.
  Distinct statics are distinct objects (``StaticRep`` is identity-keyed),
  and a value defined by an allocation statement is *fresh* — it cannot
  alias any pre-existing static nor the result of a different allocation
  site. Everything else conservatively may-alias.
* **per-callee**: an interprocedural effect summary of a guest method,
  computed by a linear walk over its bytecode and memoized on the method
  object (the same identity the unit cache keys on). A residual
  ``invoke_method`` whose callee summary proves it side-effect-free can
  participate in value numbering like a pure op.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.lms.ir import Effect
from repro.lms.rep import ConstRep, StaticRep, Sym

#: Ops whose statement can be deleted/merged when the value is available
#: elsewhere (Effect.PURE already says "CSE-able"; this names the identity
#: ops that move values without computing).
COPY_OPS = ("id", "taint", "untaint")

#: Ops that allocate guest-visible heap data.
ALLOC_OPS = ("new", "new_array", "array_lit")

#: Heap reads keyed as (op, base, key): invalidated by aliasing writes.
LOAD_OPS = ("getfield", "aload", "alen")

#: Heap writes as (op, base, key, value).
STORE_OPS = ("putfield", "putfield_stablecheck", "astore")

#: Ops that are total for any operands (no guest error possible).
_ALWAYS_TOTAL = ("eq", "ne", "not", "truthy", "instanceof", "class_is",
                 "to_str", "id", "taint", "untaint")

#: Infix-foldable ops that are total once staging proved numeric operands
#: (``flags['num']``); div/mod stay out — a zero divisor raises.
_NUM_TOTAL = ("add", "sub", "mul", "neg", "lt", "le", "gt", "ge")


def is_total(stmt):
    """True when the statement can never raise a guest error, so it may
    execute on paths where the original program would not have reached it
    (the LICM hoisting criterion)."""
    op = stmt.op
    if op in _ALWAYS_TOTAL:
        return True
    if op in _NUM_TOTAL and stmt.flags.get("num"):
        return True
    if op == "concat":
        # Emitted only once staging proved both operands are strings.
        return True
    if op == "alen" and stmt.flags.get("arrfast"):
        return True
    if op == "getfield" and stmt.flags.get("objfast"):
        # Proven Obj whose class declares the field; reads default to null.
        return True
    if op in ALLOC_OPS:
        return op != "new_array" or isinstance(stmt.args[0], ConstRep)
    if op == "native":
        nat = stmt.args[0]
        return bool(getattr(nat, "pure", False)) \
            and not getattr(nat, "allocates", False)
    return False


def is_pure(stmt):
    """True when the statement's value depends only on its operands (no
    heap reads), making it a value-numbering candidate."""
    return stmt.effect is Effect.PURE and stmt.op != "make_cont"


def fresh_syms(blocks):
    """Names defined directly by an allocation statement: each holds a
    fresh object distinct from every static and from every other
    allocation site's result. Copies (``id``/phi) are deliberately not
    tracked — a copied name falls back to may-alias."""
    fresh = set()
    for block in blocks.values():
        for stmt in block.stmts:
            if stmt.op in ALLOC_OPS or (
                    stmt.op == "native"
                    and getattr(stmt.args[0], "allocates", False)):
                fresh.add(stmt.sym.name)
    return fresh


def may_alias(a, b, fresh=frozenset()):
    """May the base values ``a`` and ``b`` refer to the same heap object?
    Sound in the False direction only."""
    if isinstance(a, ConstRep) or isinstance(b, ConstRep):
        # Constants are primitives/null: only equal constants "alias".
        return a == b
    if isinstance(a, StaticRep) and isinstance(b, StaticRep):
        return a.index == b.index
    if isinstance(a, StaticRep):
        a, b = b, a
    if isinstance(b, StaticRep):
        # Fresh allocations cannot be pre-existing statics.
        return not (isinstance(a, Sym) and a.name in fresh)
    if isinstance(a, Sym) and isinstance(b, Sym):
        if a.name == b.name:
            return True
        # Two distinct allocation sites always produce distinct objects.
        return not (a.name in fresh and b.name in fresh)
    return True


def _store_key(stmt):
    """(base, key) of a store; key is the immediate field name or the
    index rep."""
    if stmt.op in ("putfield", "putfield_stablecheck"):
        return stmt.args[0], stmt.args[1]
    return stmt.args[0], stmt.args[1]       # astore: (arr, index, value)


def load_key(stmt):
    """Hashable cache key of a heap read (None when not a load)."""
    if stmt.op == "getfield":
        return ("getfield", stmt.args[0], stmt.args[1])
    if stmt.op == "aload":
        return ("aload", stmt.args[0], stmt.args[1])
    if stmt.op == "alen":
        return ("alen", stmt.args[0])
    return None


def clobbers(stmt, key, fresh=frozenset()):
    """Does executing ``stmt`` invalidate a cached heap read ``key`` (as
    returned by :func:`load_key`)?"""
    effect = stmt.effect
    if stmt.op == "delite":
        # A Delite launch stages as Effect.ALLOC (it produces a fresh
        # output array), but its *kernel* may still write captured
        # state. The kernel effect summary (repro.analysis.parsafe)
        # answers precisely: a proven write-free kernel cannot clobber
        # any pre-existing heap read; anything unproven clobbers
        # everything.
        from repro.analysis.parsafe import delite_write_free
        return not delite_write_free(stmt)
    if effect in (Effect.PURE, Effect.ALLOC, Effect.GUARD):
        return False
    if stmt.op in COPY_OPS:
        # Fusion materializes phi moves as ``id`` with Effect.WRITE; pure
        # data movement never touches the heap.
        return False
    if stmt.op in STORE_OPS:
        if key[0] == "alen":
            # MiniJVM arrays are fixed-length; no op resizes them.
            return False
        base, written = _store_key(stmt)
        if stmt.op == "astore":
            if key[0] != "aload":
                return False
            if not may_alias(base, key[1], fresh):
                return False
            # Even aliasing bases cannot conflict on distinct constant
            # indices.
            idx = key[2]
            if isinstance(written, ConstRep) and isinstance(idx, ConstRep) \
                    and written.value != idx.value:
                return False
            return True
        if key[0] != "getfield" or written != key[2]:
            return False
        return may_alias(base, key[1], fresh)
    # Residual calls, natives, IO: assume arbitrary writes.
    return True


# -- interprocedural summaries ---------------------------------------------------

class EffectSummary:
    """What a guest method may do, derived from its bytecode."""

    __slots__ = ("reads", "writes", "allocates", "calls", "may_throw")

    def __init__(self, reads=False, writes=False, allocates=False,
                 calls=False, may_throw=False):
        self.reads = reads
        self.writes = writes
        self.allocates = allocates
        self.calls = calls
        self.may_throw = may_throw

    @property
    def is_pure(self):
        """Value depends only on arguments: CSE-able anywhere dominated by
        an equivalent call."""
        return not (self.reads or self.writes or self.allocates
                    or self.calls)

    @property
    def is_read_only(self):
        """No observable effect, but the value may depend on the heap:
        CSE-able only while no intervening write/call can run."""
        return not (self.writes or self.allocates or self.calls)

    def __repr__(self):
        tags = [t for t, on in (("reads", self.reads), ("writes", self.writes),
                                ("allocates", self.allocates),
                                ("calls", self.calls),
                                ("throws", self.may_throw)) if on]
        return "EffectSummary(%s)" % ", ".join(tags or ["pure"])


_WRITE_OPS = (Op.PUTFIELD, Op.ASTORE)
_READ_OPS = (Op.GETFIELD, Op.ALOAD, Op.ALEN)
_ALLOC_BC = (Op.NEW, Op.NEW_ARRAY, Op.ARRAY_LIT)
_CALL_BC = (Op.INVOKE, Op.INVOKE_STATIC)
_THROW_BC = (Op.THROW, Op.DIV, Op.MOD, Op.ADD, Op.SUB, Op.MUL, Op.NEG,
             Op.LT, Op.LE, Op.GT, Op.GE)

# Memoized per method object; keyed by identity (the method is pinned in
# the value so ids cannot be recycled while cached).
_SUMMARY_CACHE = {}


def method_effect_summary(method):
    """Effect summary of one guest method, by a linear walk over its
    bytecode (no recursion into callees: any INVOKE makes the summary
    opaque). Memoized on the method object, the same identity the unit
    cache keys compilations on."""
    cached = _SUMMARY_CACHE.get(id(method))
    if cached is not None and cached[0] is method:
        return cached[1]
    summary = EffectSummary()
    for ins in method.code:
        op = ins.op
        if op in _WRITE_OPS:
            summary.writes = True
        elif op in _READ_OPS:
            summary.reads = True
            summary.may_throw = True         # null base / bad index
        elif op in _ALLOC_BC:
            summary.allocates = True
        elif op in _CALL_BC:
            summary.calls = True
            summary.may_throw = True
        elif op in _THROW_BC:
            summary.may_throw = True
    _SUMMARY_CACHE[id(method)] = (method, summary)
    return summary


def invoke_summary(stmt):
    """Effect summary of a residual call statement, when its callee is
    statically known (``invoke_method`` carries the method object as a
    static); None for virtual dispatch and unknown callees."""
    if stmt.op != "invoke_method":
        return None
    target = stmt.args[0]
    if not isinstance(target, StaticRep):
        return None
    method = target.obj
    if method is None or not hasattr(method, "code"):
        return None
    return method_effect_summary(method)

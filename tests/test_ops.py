"""Guest operator semantics, including property-based checks.

These matter doubly: the interpreter AND compiled code share these
helpers, so they define the observable semantics deoptimization must
preserve.
"""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (GuestArithmeticError, GuestIndexError,
                          GuestNullError, GuestTypeError)
from repro.runtime import ops
from repro.runtime.objects import Obj, RtClass
from repro.bytecode.classfile import ClassFile


def make_obj():
    cf = ClassFile("T")
    cf.add_field("x")
    return Obj(RtClass("T", cf, None), {"x": None})


class TestAdd:
    def test_numbers(self):
        assert ops.guest_add(2, 3) == 5
        assert ops.guest_add(2.5, 0.5) == 3.0

    def test_string_concat(self):
        assert ops.guest_add("a", "b") == "ab"

    def test_string_plus_number(self):
        assert ops.guest_add("n=", 3) == "n=3"
        assert ops.guest_add(3, "=n") == "3=n"

    def test_string_plus_bool_null(self):
        assert ops.guest_add("", True) == "true"
        assert ops.guest_add("", None) == "null"

    def test_add_none_raises(self):
        with pytest.raises(GuestTypeError):
            ops.guest_add(None, 1)


class TestDivMod:
    def test_int_div_truncates_toward_zero(self):
        assert ops.guest_div(7, 2) == 3
        assert ops.guest_div(-7, 2) == -3     # Python would give -4
        assert ops.guest_div(7, -2) == -3
        assert ops.guest_div(-7, -2) == 3

    def test_float_div(self):
        assert ops.guest_div(7.0, 2) == 3.5

    def test_div_by_zero(self):
        with pytest.raises(GuestArithmeticError):
            ops.guest_div(1, 0)

    def test_mod_sign_follows_dividend(self):
        assert ops.guest_mod(7, 3) == 1
        assert ops.guest_mod(-7, 3) == -1     # Python would give 2
        assert ops.guest_mod(7, -3) == 1

    def test_mod_by_zero(self):
        with pytest.raises(GuestArithmeticError):
            ops.guest_mod(1, 0)

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_div_mod_identity(self, a, b):
        """Java invariant: a == (a / b) * b + (a % b)."""
        if b == 0:
            return
        q = ops.guest_div(a, b)
        r = ops.guest_mod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)

    @given(st.integers(-10**6, 10**6), st.integers(1, 10**6))
    def test_trunc_div_matches_c(self, a, b):
        import math
        assert ops.guest_div(a, b) == math.trunc(a / b) or abs(a) > 2**52


class TestEq:
    def test_primitives_by_value(self):
        assert ops.guest_eq(1, 1)
        assert ops.guest_eq("x", "x")
        assert not ops.guest_eq(1, 2)

    def test_objects_by_reference(self):
        a, b = make_obj(), make_obj()
        assert ops.guest_eq(a, a)
        assert not ops.guest_eq(a, b)

    def test_arrays_by_reference(self):
        a = [1, 2]
        assert ops.guest_eq(a, a)
        assert not ops.guest_eq(a, [1, 2])

    def test_null(self):
        assert ops.guest_eq(None, None)
        assert not ops.guest_eq(None, 0)


class TestCompare:
    def test_numbers(self):
        assert ops.guest_lt(1, 2)
        assert ops.guest_ge(2, 2)

    def test_strings(self):
        assert ops.guest_lt("a", "b")

    def test_mixed_raises(self):
        with pytest.raises(GuestTypeError):
            ops.guest_lt("a", 1)

    def test_null_raises(self):
        with pytest.raises(GuestNullError):
            ops.guest_lt(None, 1)


class TestArrays:
    def test_load_store(self):
        arr = [1, 2, 3]
        assert ops.guest_aload(arr, 1) == 2
        ops.guest_astore(arr, 1, 9)
        assert arr[1] == 9

    def test_negative_index_rejected(self):
        # Python would wrap; guest semantics must not.
        with pytest.raises(GuestIndexError):
            ops.guest_aload([1, 2], -1)

    def test_out_of_bounds(self):
        with pytest.raises(GuestIndexError):
            ops.guest_aload([1], 1)
        with pytest.raises(GuestIndexError):
            ops.guest_astore([1], 5, 0)

    def test_bool_index_rejected(self):
        with pytest.raises(GuestIndexError):
            ops.guest_aload([1, 2], True)

    def test_null_array(self):
        with pytest.raises(GuestNullError):
            ops.guest_aload(None, 0)
        with pytest.raises(GuestNullError):
            ops.guest_alen(None)

    def test_alen_on_string(self):
        assert ops.guest_alen("abc") == 3


class TestFields:
    def test_get_put(self):
        o = make_obj()
        ops.guest_putfield(o, "x", 5)
        assert ops.guest_getfield(o, "x") == 5

    def test_null_object(self):
        with pytest.raises(GuestNullError):
            ops.guest_getfield(None, "x")
        with pytest.raises(GuestNullError):
            ops.guest_putfield(None, "x", 1)

    def test_non_object(self):
        with pytest.raises(GuestTypeError):
            ops.guest_getfield(3, "x")


class TestMulGuards:
    def test_string_mul_rejected(self):
        # Python would repeat the string; guest semantics must not.
        with pytest.raises(GuestTypeError):
            ops.guest_mul("ab", 3)

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_mul_matches_python_for_ints(self, a, b):
        assert ops.guest_mul(a, b) == a * b

"""Tier-T: the trace-recording tier, amalgamated with the method ladder.

The method tiers (0/1/2) compile whole methods; this module adds a
PyPy-style *trace* tier following the Izawa et al. amalgamation papers
(see PAPERS.md): when a loop back-edge gets hot, the interpreter's
dispatch loop flips into *recording mode* (the ``can_enter_jit`` /
``jit_merge_point`` pair collapses to one hook at the back-edge), and one
concrete iteration is recorded as a linear trace — inlining straight
through guest calls, with an explicit guard at every point where the
recorded path speculated (branch directions, receiver classes).

The recorded trace is ordinary staged IR: a two-block CFG (prologue +
loop body whose back-edge jumps to itself) with block parameters for the
loop-carried locals and ``DeoptMeta`` snapshots at every guard. It then
flows through the very same machinery as a method unit — the PassManager
(so GVN/LICM/range-guard-pruning run on traces for free), the Python
backend, the unit cache, the CompileService, and the persistent code
cache. A guard failure raises the ordinary ``DeoptException``; the
wrapper rebuilds interpreter frames *rooted at the loop method* and
resumes, so a trace exit completes the remaining method execution
exactly like any other deopt.

Side exits are counted per guard. A hot exit triggers *bridge
recording*: the interpreter resumes from the deopt as usual, but the
recorder shadows it from the failed guard's snapshot until execution
either reaches the loop header again (the bridge re-enters the loop) or
returns from the loop method (the bridge ends in ``Return``). The bridge
is then *stitched* into the trace CFG — the guard becomes a ``Branch``
whose off-side is the bridge block — and the whole unit is recompiled
through the pipeline. On megamorphic call sites this yields a chain of
class-guard bridges: an emergent polymorphic inline cache. Exits that
stay hot after the exit budget is spent blacklist the trace back to the
interpreter/method ladder.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.analysis.liveness import live_at
from repro.bytecode.opcodes import Op
from repro.compiler.deopt import DeoptMeta, FrameTemplate
from repro.compiler.stagedinterp import CompileResult
from repro.errors import ReproError
from repro.lms.ir import Block, Branch, Effect, Jump, Return, Stmt
from repro.lms.rep import ConstRep, Sym
from repro.lms.staging import _Statics
from repro.observability import CompileReport
from repro.pipeline.tiers import TIER_T, tier_options
from repro.runtime import ops as guest_ops
from repro.runtime.natives import lookup_native
from repro.runtime.objects import Obj

#: Per-site failed-recording budget before the site is never traced again.
ABORT_BUDGET = 5

#: Interpreted instructions a residual (non-inlined) call may execute
#: before the recording gives up waiting for it to return.
_SKIP_BUDGET = 200_000

_BIN_OPS = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.DIV: "div",
    Op.MOD: "mod", Op.EQ: "eq", Op.NE: "ne", Op.LT: "lt", Op.LE: "le",
    Op.GT: "gt", Op.GE: "ge",
}


def trace_options(base):
    """The CompileOptions a trace unit compiles under (Tier T)."""
    return tier_options(base, TIER_T)


class TraceAbort(Exception):
    """Recording cannot continue (unsupported op, desync, too long)."""

    def __init__(self, reason):
        self.reason = reason
        super().__init__(reason)


class _ShadowFrame:
    """The recorder's abstract mirror of one interpreter frame: every
    local slot and stack entry holds the Rep computing that value."""

    __slots__ = ("method", "bci", "locals", "stack")

    def __init__(self, method):
        self.method = method
        self.bci = 0
        self.locals = [ConstRep(None)] * method.num_locals
        self.stack = []


class TraceRecording:
    """One in-progress recording (a root loop trace or a bridge).

    ``record`` is called by the interpreter dispatch loop *before* each
    instruction executes, so concrete operands (branch conditions,
    receiver objects) are still on the real operand stack to peek at.
    The recorder steps a shadow frame chain of Reps in lockstep and
    aborts on any divergence from the expected control path.
    """

    def __init__(self, manager, mode, root_method, header_bci, shadow,
                 expect_bci, prefix, statics):
        self.manager = manager
        self.mode = mode                  # "loop" | "bridge"
        self.root_method = root_method
        self.header_bci = header_bci
        self.shadow = shadow              # root -> leaf
        self.expect_bci = expect_bci
        self.prefix = prefix              # sym prefix, unique per recording
        self.statics = statics
        self.stmts = []
        self.metas = []
        self.ops = 0
        self.done = False
        self.live_slots = ()              # set by the manager
        self.trace = None                 # bridge mode: the LoopTrace
        self.bridge_meta_id = None        # bridge mode: the exit bridged
        self._n = 0
        self._skip = None    # (frame, resume bci, result rep, budget)

    # -- IR emission -----------------------------------------------------------

    def _fresh(self):
        self._n += 1
        return Sym("%s%d" % (self.prefix, self._n))

    def emit(self, op, args, effect):
        flags = None
        if (self.manager.options.check_noalloc
                and effect is not Effect.GUARD):
            # The demand on a trace is an allocation-free loop body.
            # Side-exit guards are Tier T's own mechanism — every trace
            # has them — so they are not residual deopt points in the
            # demanded region the way a method-compile guard is.
            flags = {"noalloc": True}
        stmt = Stmt(self._fresh(), op, args, effect, flags)
        self.stmts.append(stmt)
        return stmt.sym

    def lift_static(self, obj):
        from repro.lms.rep import StaticRep
        return StaticRep(self.statics.index_of(obj), obj)

    # -- deopt snapshots -------------------------------------------------------

    def _snapshot(self, extra_stack, reason):
        """Build a DeoptMeta for the current shadow state (resuming at the
        leaf's ``bci`` with ``extra_stack`` re-pushed); returns
        ``(meta_id, live reps)`` exactly like the staged interpreter's
        snapshot, so guards render identically."""
        lives = []
        index = {}

        def template(rep):
            if isinstance(rep, ConstRep):
                return ("const", rep.value)
            idx = index.get(rep.name)
            if idx is None:
                idx = len(lives)
                index[rep.name] = idx
                lives.append(rep)
            return ("live", idx)

        frames = []
        leaf = self.shadow[-1]
        for sf in self.shadow:
            live = live_at(sf.method, sf.bci)
            locals_t = [template(sf.locals[i]) if i in live
                        else ("const", None)
                        for i in range(sf.method.num_locals)]
            stack_t = [template(r) for r in sf.stack]
            if sf is leaf:
                stack_t += [template(r) for r in extra_stack]
            frames.append(FrameTemplate(sf.method, sf.bci, locals_t,
                                        stack_t))
        self.metas.append(DeoptMeta(frames, reason=reason,
                                    kind="interpret"))
        return len(self.metas) - 1, lives

    def emit_guard(self, cond, expect, extra_stack, reason):
        """Guard that ``cond`` is truthy (``expect=True``) or falsy at
        trace runtime; on failure deopt to the current shadow state."""
        meta_id, lives = self._snapshot(extra_stack, reason)
        op = "guard" if expect else "guard_not"
        return self.emit(op, (cond, meta_id) + tuple(lives), Effect.GUARD)

    # -- the per-instruction hook ----------------------------------------------

    def record(self, vm, frame, ins, bci):
        if self.done:
            return
        try:
            self._step(vm, frame, ins, bci)
        except TraceAbort as abort:
            self.manager.abort(self, abort.reason)
        except ReproError as exc:
            # The instruction is about to raise for real in the
            # interpreter; traces never capture guest error paths.
            self.manager.abort(self, "guest error: %s" % exc)
        except Exception as exc:  # defensive: never break interpretation
            self.manager.abort(self, "recorder error: %r" % exc)

    def _step(self, vm, frame, ins, bci):
        skip = self._skip
        if skip is not None:
            sframe, resume, rep, budget = skip
            if frame is not sframe:
                budget -= 1
                if budget <= 0:
                    raise TraceAbort("residual call ran too long")
                self._skip = (sframe, resume, rep, budget)
                return
            if bci != resume:
                raise TraceAbort("desync after residual call")
            self._skip = None
            self.shadow[-1].stack.append(rep)
            # fall through: record this instruction normally

        sf = self.shadow[-1]
        if frame.method is not sf.method or bci != self.expect_bci:
            raise TraceAbort("desync at %s@%d"
                             % (frame.method.qualified_name, bci))
        sf.bci = bci

        # Arrived back at the loop header with the root frame on top:
        # the trace (or bridge) closes into the loop.
        if (len(self.shadow) == 1 and frame.method is self.root_method
                and bci == self.header_bci and self.ops):
            if sf.stack:
                raise TraceAbort("non-empty stack at loop header")
            self.manager.close_at_anchor(self)
            return

        self.ops += 1
        if self.ops > self.manager.options.trace_max_ops:
            raise TraceAbort("trace too long")

        op = ins.op
        push = sf.stack.append
        pop = sf.stack.pop
        nbci = bci + 1

        if op is Op.LOAD:
            push(sf.locals[ins.arg])
        elif op is Op.CONST:
            push(ConstRep(ins.arg))
        elif op is Op.STORE:
            sf.locals[ins.arg] = pop()
        elif op in _BIN_OPS:
            b = pop(); a = pop()
            push(self._binop(_BIN_OPS[op], a, b))
        elif op is Op.NEG:
            a = pop()
            if isinstance(a, ConstRep):
                push(ConstRep(guest_ops.guest_neg(a.value)))
            else:
                push(self.emit("neg", (a,), Effect.PURE))
        elif op is Op.NOT:
            a = pop()
            if isinstance(a, ConstRep):
                push(ConstRep(not a.value))
            else:
                push(self.emit("not", (a,), Effect.PURE))
        elif op is Op.JUMP:
            target = ins.arg
            if (len(self.shadow) == 1 and frame.method is self.root_method
                    and target == self.header_bci):
                if sf.stack:
                    raise TraceAbort("non-empty stack at back-edge")
                sf.bci = target
                self.manager.close_at_anchor(self)
                return
            nbci = target      # inner loops unroll into the trace
        elif op is Op.JIF_TRUE or op is Op.JIF_FALSE:
            cond = pop()
            taken = bool(frame.peek())      # the concrete condition
            if not isinstance(cond, ConstRep):
                # Resume at the branch itself with the condition re-pushed.
                self.emit_guard(cond, expect=taken, extra_stack=(cond,),
                                reason="branch")
            if op is Op.JIF_TRUE:
                nbci = ins.arg if taken else bci + 1
            else:
                nbci = bci + 1 if taken else ins.arg
        elif op is Op.RET or op is Op.RET_VAL:
            rep = pop() if op is Op.RET_VAL else ConstRep(None)
            if len(self.shadow) == 1:
                if self.mode == "bridge":
                    self.manager.close_with_return(self, rep)
                    return
                raise TraceAbort("loop exited through return")
            if sf.stack:
                raise TraceAbort("non-empty stack at return")
            self.shadow.pop()
            parent = self.shadow[-1]
            parent.stack.append(rep)
            nbci = parent.bci
        elif op is Op.INVOKE:
            nbci = self._invoke(vm, frame, ins, bci)
        elif op is Op.INVOKE_STATIC:
            nbci = self._invoke_static(vm, frame, ins, bci)
        elif op is Op.GETFIELD:
            obj = pop()
            if not isinstance(frame.peek(), Obj):
                raise TraceAbort("getfield on non-object")
            push(self.emit("getfield", (obj, ins.arg), Effect.READ))
        elif op is Op.PUTFIELD:
            value = pop(); obj = pop()
            if not isinstance(frame.peek(1), Obj):
                raise TraceAbort("putfield on non-object")
            self.emit("putfield", (obj, ins.arg, value), Effect.WRITE)
        elif op is Op.NEW:
            cls = vm.linker.resolve_class(ins.arg)
            push(self.emit("new", (self.lift_static(cls),), Effect.ALLOC))
        elif op is Op.INSTANCEOF:
            v = pop()
            if isinstance(v, ConstRep):
                push(ConstRep(False))    # primitives are never instances
            else:
                push(self.emit("instanceof", (v, ins.arg), Effect.PURE))
        elif op is Op.NEW_ARRAY:
            n = pop()
            concrete = frame.peek()
            if not isinstance(concrete, int) or isinstance(concrete, bool) \
                    or concrete < 0:
                raise TraceAbort("bad array length")
            push(self.emit("new_array", (n,), Effect.ALLOC))
        elif op is Op.ALOAD:
            i = pop(); arr = pop()
            push(self.emit("aload", (arr, i), Effect.READ))
        elif op is Op.ASTORE:
            v = pop(); i = pop(); arr = pop()
            self.emit("astore", (arr, i, v), Effect.WRITE)
        elif op is Op.ALEN:
            push(self.emit("alen", (pop(),), Effect.PURE))
        elif op is Op.ARRAY_LIT:
            vals = [pop() for __ in range(ins.arg)]
            vals.reverse()
            push(self.emit("array_lit", tuple(vals), Effect.ALLOC))
        elif op is Op.POP:
            pop()
        elif op is Op.DUP:
            push(sf.stack[-1])
        elif op is Op.SWAP:
            a = pop(); b = pop()
            push(a); push(b)
        elif op is Op.THROW:
            raise TraceAbort("guest throw")
        else:
            raise TraceAbort("unsupported op %s" % op.name)

        self.expect_bci = nbci

    # -- op helpers ------------------------------------------------------------

    def _binop(self, opname, a, b):
        if isinstance(a, ConstRep) and isinstance(b, ConstRep):
            try:
                return ConstRep(guest_ops.BINOPS[opname.upper()](a.value,
                                                                 b.value))
            except ReproError:
                pass   # fold would raise: leave it residual
        # Helper form, no type flags: the recorder proves nothing about
        # operand types, so the shared guest-ops semantics do the work.
        return self.emit(opname, (a, b), Effect.PURE)

    def _can_inline(self, method):
        if len(self.shadow) >= self.manager.options.trace_max_depth:
            return False
        return all(sf.method is not method for sf in self.shadow)

    def _invoke(self, vm, frame, ins, bci):
        sf = self.shadow[-1]
        name, argc = ins.arg
        if len(sf.stack) < argc + 1:
            raise TraceAbort("stack underflow at invoke")
        receiver = frame.peek(argc)          # concrete, pre-execution
        recv_rep = sf.stack[-1 - argc]

        if isinstance(receiver, Obj):
            method = receiver.cls.lookup_method(name)
            residual = (method is not None
                        and (method.is_static
                             or not self._can_inline(method)))
            if not residual:
                # Speculate on the exact receiver class; the snapshot
                # resumes at the INVOKE itself (args still on stack), so
                # a different class re-dispatches in the interpreter.
                if isinstance(recv_rep, ConstRep):
                    raise TraceAbort("constant receiver")
                cond = self.emit("class_is", (recv_rep, receiver.cls.name),
                                 Effect.PURE)
                self.emit_guard(cond, expect=True, extra_stack=(),
                                reason="receiver class")
            args = [sf.stack.pop() for __ in range(argc)]
            args.reverse()
            sf.stack.pop()                   # the receiver
            if method is None:
                if name == "init" and not argc:
                    sf.stack.append(ConstRep(None))
                    return bci + 1
                raise TraceAbort("missing method %s" % name)
            if residual:
                rep = self.emit("invoke", (name, recv_rep) + tuple(args),
                                Effect.CALL)
                self.expect_bci = bci + 1
                self._skip = (frame, bci + 1, rep, _SKIP_BUDGET)
                return bci + 1
            if method.num_params != len(args):
                raise TraceAbort("arity mismatch")
            sf.bci = bci + 1                 # resume point for RET/deopt
            callee = _ShadowFrame(method)
            callee.locals[0] = recv_rep
            for i, a in enumerate(args):
                callee.locals[1 + i] = a
            self.shadow.append(callee)
            return 0

        if callable(receiver) and name == "apply":
            # Host callable (e.g. a compiled closure): residualize.
            args = [sf.stack.pop() for __ in range(argc)]
            args.reverse()
            sf.stack.pop()
            rep = self.emit("invoke", (name, recv_rep) + tuple(args),
                            Effect.CALL)
            self.expect_bci = bci + 1
            self._skip = (frame, bci + 1, rep, _SKIP_BUDGET)
            return bci + 1

        raise TraceAbort("invoke on %r" % type(receiver).__name__)

    def _invoke_static(self, vm, frame, ins, bci):
        sf = self.shadow[-1]
        cls_name, name, argc = ins.arg
        if len(sf.stack) < argc:
            raise TraceAbort("stack underflow at invoke_static")
        nat = lookup_native(cls_name, name)
        if nat is not None:
            if nat.argc != argc:
                raise TraceAbort("native arity mismatch")
            args = [sf.stack.pop() for __ in range(argc)]
            args.reverse()
            if nat.calls_guest:
                effect = Effect.CALL
            elif nat.allocates:
                effect = Effect.ALLOC
            elif nat.pure:
                effect = Effect.PURE
            else:
                effect = Effect.IO
            rep = self.emit("native", (nat,) + tuple(args), effect)
            if nat.calls_guest:
                # The native may interpret guest frames before producing
                # its result: wait for control to return here.
                self.expect_bci = bci + 1
                self._skip = (frame, bci + 1, rep, _SKIP_BUDGET)
            else:
                sf.stack.append(rep)
            return bci + 1

        method = vm.linker.resolve_static(cls_name, name)
        args = [sf.stack.pop() for __ in range(argc)]
        args.reverse()
        if method.num_params != len(args):
            raise TraceAbort("arity mismatch")
        if self._can_inline(method):
            sf.bci = bci + 1
            callee = _ShadowFrame(method)
            for i, a in enumerate(args):
                callee.locals[i] = a
            self.shadow.append(callee)
            return 0
        rep = self.emit("invoke_method",
                        (self.lift_static(method), ConstRep(None))
                        + tuple(args), Effect.CALL)
        self.expect_bci = bci + 1
        self._skip = (frame, bci + 1, rep, _SKIP_BUDGET)
        return bci + 1


class LoopTrace:
    """One compiled loop trace (plus its bridges) anchored at a loop
    header. ``result`` stays attached so hot guard exits can be stitched;
    traces reloaded from the persistent cache have no IR and never grow
    bridges (``result is None``)."""

    def __init__(self, manager, site, method, header_bci, live_slots):
        self.manager = manager
        self.site = site
        self.method = method
        self.header_bci = header_bci
        self.live_slots = tuple(live_slots)
        self.result = None          # CompileResult (None once blacklisted
        self.compiled = None        # or when loaded from disk)
        self.cache_key = None
        self.fingerprint = None
        self.exits = Counter()      # meta_id -> count
        self.total_exits = 0
        self.bridged = set()        # meta ids stitched
        self.bridge_failed = set()  # meta ids we gave up bridging
        self.blacklisted = False

    def on_exit(self, meta_id):
        """Called by ``CompiledFunction._deoptimize`` before resuming the
        interpreter, so a hot exit can arm bridge recording in time to
        shadow the resumed execution."""
        self.manager.on_trace_exit(self, meta_id)

    def __repr__(self):
        return "<LoopTrace %s:%d (%s, %d exits, %d bridges)>" % (
            self.site[0], self.site[1],
            "compiled" if self.compiled else "pending",
            self.total_exits, len(self.bridged))


class TraceManager:
    """Per-Lancet Tier-T machinery: recording policy, trace compilation,
    side-exit accounting, bridge stitching, and blacklisting."""

    def __init__(self, jit):
        self.jit = jit
        self.vm = jit.vm
        self.telemetry = jit.telemetry
        self.enabled = True
        self.traces = {}             # (qualified name, header bci) -> LoopTrace
        self.recording = None
        self._blacklist = set()      # sites never to trace again
        self._aborts = Counter()     # site -> failed recordings
        self._gen = 0                # sym-prefix generation counter

    @property
    def options(self):
        return self.jit.options

    def trace_options(self):
        return trace_options(self.jit.options)

    # -- back-edge policy ------------------------------------------------------

    def on_backedge(self, controller, vm, frame):
        """Called from TierController.on_backedge (before the method-OSR
        path). Returns a continuation entering the compiled trace, or
        None to keep interpreting."""
        if not self.enabled or self.recording is not None:
            return None
        method = frame.method
        site = (method.qualified_name, frame.bci)
        trace = self.traces.get(site)
        if trace is not None:
            if trace.compiled is None or trace.blacklisted:
                return None
            if frame.tos != method.num_locals:
                return None
            return self._entry(trace, vm, frame)
        if site in self._blacklist:
            return None
        if frame.tos != method.num_locals:
            return None
        if vm.profiler.backedge_count(*site) < self.options.trace_threshold:
            return None
        owner = controller.unit(site[0])
        if (owner is not None and not owner.blacklisted
                and not vm.profiler.polymorphic_in(site[0])):
            # The method ladder owns this unit and its call sites are
            # monomorphic: a whole-method compile covers it at least as
            # well, so leave the back-edge to method OSR.
            return None
        if self._load_persisted(method, site):
            trace = self.traces[site]
            return self._entry(trace, vm, frame)
        self._start_recording(vm, frame, site)
        return None

    def _entry(self, trace, vm, frame):
        manager = self

        def cont():
            parent = frame.parent
            args = [frame.locals[i] for i in trace.live_slots]
            manager.telemetry.inc("trace.enters")
            value = trace.compiled(*args)
            if parent is None:
                return value
            # The trace's deopt metas are rooted at the loop method, so
            # the call above completed that method: emulate its RET into
            # the suspended caller chain.
            parent.push(value)
            return vm.run_frames(parent)

        return cont

    # -- recording lifecycle ---------------------------------------------------

    def _start_recording(self, vm, frame, site):
        method = frame.method
        header = frame.bci
        live = sorted(live_at(method, header))
        shadow = _ShadowFrame(method)
        shadow.bci = header
        for i in live:
            shadow.locals[i] = Sym("p1_%d" % i)
        self._gen += 1
        rec = TraceRecording(self, "loop", method, header, [shadow],
                             expect_bci=header,
                             prefix="t%d_" % self._gen, statics=_Statics())
        rec.live_slots = tuple(live)
        self.recording = rec
        vm.trace_recorder = rec
        self.telemetry.inc("trace.records")
        self.telemetry.record("trace.record", site="%s:%d" % site,
                              mode="loop")

    def _start_bridge(self, trace, meta_id):
        result = trace.result
        guard = self._find_guard(result, meta_id)
        if guard is None:
            trace.bridge_failed.add(meta_id)
            return
        lives = guard.args[2:]
        meta = result.metas[meta_id]
        shadow = []
        for ft in meta.frames:
            sf = _ShadowFrame(ft.method)
            sf.bci = ft.bci
            try:
                sf.locals = [self._resolve_template(t, lives)
                             for t in ft.locals_t]
                sf.stack = [self._resolve_template(t, lives)
                            for t in ft.stack_t]
            except TraceAbort:
                trace.bridge_failed.add(meta_id)
                return
            shadow.append(sf)
        self._gen += 1
        rec = TraceRecording(self, "bridge", trace.method, trace.header_bci,
                             shadow, expect_bci=shadow[-1].bci,
                             prefix="t%d_" % self._gen,
                             statics=result.statics)
        rec.live_slots = trace.live_slots
        rec.trace = trace
        rec.bridge_meta_id = meta_id
        # Snapshot the root frame's locals: the stitcher must know which
        # slots the bridge *wrote* (vs merely started from).
        rec.start_root_locals = list(shadow[0].locals)
        self.recording = rec
        self.vm.trace_recorder = rec
        self.telemetry.inc("trace.records")
        self.telemetry.record("trace.record", site="%s:%d" % trace.site,
                              mode="bridge", meta=meta_id)

    @staticmethod
    def _resolve_template(t, lives):
        kind = t[0]
        if kind == "live":
            return lives[t[1]]
        if kind == "const":
            return ConstRep(t[1])
        raise TraceAbort("unresumable %s template" % kind)

    def _detach(self, rec):
        rec.done = True
        if self.recording is rec:
            self.recording = None
        if self.vm.trace_recorder is rec:
            self.vm.trace_recorder = None

    def abort(self, rec, reason):
        self._detach(rec)
        self.telemetry.inc("trace.aborts")
        site = (rec.root_method.qualified_name, rec.header_bci)
        self.telemetry.record("trace.abort", site="%s:%d" % site,
                              mode=rec.mode, reason=reason, ops=rec.ops)
        if rec.mode == "bridge":
            rec.trace.bridge_failed.add(rec.bridge_meta_id)
            return
        self._aborts[site] += 1
        if self._aborts[site] >= ABORT_BUDGET:
            self._blacklist.add(site)

    def close_at_anchor(self, rec):
        """The recording reached the loop header with an empty stack."""
        self._detach(rec)
        if rec.mode == "bridge":
            self._stitch(rec, kind="loop")
        else:
            self._install_loop(rec)

    def close_with_return(self, rec, rep):
        """A bridge recording returned from the loop method."""
        self._detach(rec)
        self._stitch(rec, kind="return", ret=rep)

    # -- building and compiling the trace unit ---------------------------------

    def _build_result(self, rec):
        live = rec.live_slots
        params = ["a%d" % (k + 1) for k in range(len(live))]
        header_params = ["p1_%d" % i for i in live]
        b0 = Block(0)
        b0.terminator = Jump(1, [(p, Sym(a))
                                 for p, a in zip(header_params, params)])
        b1 = Block(1, params=header_params)
        b1.stmts = rec.stmts
        b1.terminator = Jump(1, [(p, rec.shadow[0].locals[i])
                                 for p, i in zip(header_params, live)])
        return CompileResult(
            blocks={0: b0, 1: b1}, entry_bid=0,
            entry_assigns=b0.terminator.phi_assigns, param_names=params,
            metas=rec.metas, statics=rec.statics, stable_deps=[],
            warnings=[], taint_branch_sinks=[], noalloc_sites=[])

    def _unit_name(self, site):
        return "trace@%s:%d" % site

    def _install_loop(self, rec):
        site = (rec.root_method.qualified_name, rec.header_bci)
        trace = LoopTrace(self, site, rec.root_method, rec.header_bci,
                          rec.live_slots)
        trace.result = self._build_result(rec)
        self.traces[site] = trace
        name = self._unit_name(site)

        service = self.jit.async_compiler
        if service is not None:
            req = service.submit(
                ("trace",) + site,
                lambda: self._compile_trace(trace, name),
                priority=self._priority(),
                on_complete=lambda compiled: self._install(trace, compiled),
                on_error=lambda error: self._compile_failed(trace, error))
            if not req.rejected:
                return
        try:
            compiled = self._compile_trace(trace, name)
        except Exception as exc:
            self._compile_failed(trace, exc)
            return
        self._install(trace, compiled)

    @staticmethod
    def _priority():
        from repro.codecache.service import PRIORITY_OSR
        return PRIORITY_OSR

    def _compile_trace(self, trace, name):
        """Run the trace's CompileResult through the ordinary pipeline:
        PassManager (full Tier-2 pass list) then the Python backend."""
        import time

        from repro.pipeline.backend import CompilationUnit, get_backend
        from repro.pipeline.passes import PassManager

        jit = self.jit
        opts = self.trace_options()
        tel = self.telemetry
        tel.record("compile.start", unit=name, tier=TIER_T)
        t0 = time.perf_counter()
        report = CompileReport(name=name, tier=TIER_T)
        manager = PassManager(opts, telemetry=tel)
        manager.run(trace.result, name, report=report)
        unit = CompilationUnit(result=trace.result, name=name, jit=jit,
                               recompile=None, report=report, options=opts)
        compiled = get_backend("python").emit(unit)
        compiled.report = report
        compiled.tier = TIER_T
        compiled.trace_owner = trace
        jit.compile_log.append((name, compiled))
        total = time.perf_counter() - t0
        tel.inc("compiles")
        tel.inc("compiles.tier%d" % TIER_T)
        tel.inc("trace.compiles")
        tel.observe("compile.tier%d.total" % TIER_T, total)
        tel.observe("compile.total", total)
        tel.record("compile.end", unit=name, tier=TIER_T, seconds=total,
                   blocks=report.blocks, stmts=report.stmts,
                   guards=sum(1 for b in trace.result.blocks.values()
                              for s in b.stmts
                              if s.op in ("guard", "guard_not")))
        return compiled

    def _compile_failed(self, trace, error):
        self.traces.pop(trace.site, None)
        self._blacklist.add(trace.site)
        self.telemetry.inc("trace.aborts")
        self.telemetry.record("trace.abort", site="%s:%d" % trace.site,
                              mode="compile", reason=str(error), ops=0)

    def _install(self, trace, compiled):
        """Make ``compiled`` the trace's active code: swap it into the
        unit cache and (re)store it in the persistent code cache."""
        trace.compiled = compiled
        jit = self.jit
        opts = self.trace_options()
        key = ("trace", trace.site[0], trace.site[1],
               dataclasses.astuple(opts))
        if trace.cache_key is not None:
            jit.unit_cache.remove(trace.cache_key)
        jit.unit_cache.get_or_else_update(key, lambda: compiled)
        trace.cache_key = key
        if jit.codecache is not None:
            from repro.codecache.fingerprint import trace_fingerprint
            fp = trace_fingerprint(jit, trace.method, trace.header_bci,
                                   opts)
            if jit.codecache.store(fp, compiled, opts):
                trace.fingerprint = fp
        self.telemetry.inc("trace.installed")

    def _load_persisted(self, method, site):
        """Warm start: adopt a persisted trace unit for this site. Loaded
        traces execute and count exits but never grow new bridges (their
        IR did not survive the process boundary)."""
        cc = self.jit.codecache
        if cc is None:
            return False
        from repro.codecache.fingerprint import trace_fingerprint
        opts = self.trace_options()
        fp = trace_fingerprint(self.jit, method, site[1], opts)
        compiled = cc.load(fp, self.jit, recompile=None, kind="trace")
        if compiled is None:
            return False
        live = sorted(live_at(method, site[1]))
        trace = LoopTrace(self, site, method, site[1], live)
        trace.compiled = compiled
        trace.fingerprint = fp
        compiled.trace_owner = trace
        compiled.tier = TIER_T
        self.traces[site] = trace
        key = ("trace", site[0], site[1], dataclasses.astuple(opts))
        self.jit.unit_cache.get_or_else_update(key, lambda: compiled)
        trace.cache_key = key
        self.jit.compile_log.append((self._unit_name(site), compiled))
        self.telemetry.inc("trace.cache_loads")
        return True

    # -- side exits, bridges, blacklisting -------------------------------------

    def on_trace_exit(self, trace, meta_id):
        trace.exits[meta_id] += 1
        trace.total_exits += 1
        tel = self.telemetry
        tel.inc("trace.exits")
        reason = ""
        if trace.result is not None and meta_id < len(trace.result.metas):
            reason = trace.result.metas[meta_id].reason
        tel.record("trace.exit", site="%s:%d" % trace.site, meta=meta_id,
                   count=trace.exits[meta_id], reason=reason)
        if trace.blacklisted or not self.enabled:
            return
        if (trace.result is not None and self.recording is None
                and meta_id not in trace.bridged
                and meta_id not in trace.bridge_failed
                and trace.exits[meta_id] >= self.options.bridge_threshold):
            # Shadow the interpreter resume that is about to happen.
            self._start_bridge(trace, meta_id)
            return
        if trace.total_exits > self.options.trace_exit_budget:
            self._blacklist_trace(trace, "exit budget exhausted")

    def _find_guard(self, result, meta_id):
        for bid in sorted(result.blocks):
            for stmt in result.blocks[bid].stmts:
                if stmt.op in ("guard", "guard_not") \
                        and stmt.args[1] == meta_id:
                    return stmt
        return None

    def _stitch(self, rec, kind, ret=None):
        """Splice a finished bridge into its trace: the bridged guard
        becomes a Branch whose off-side runs the bridge block (back into
        the loop, or out through a Return), then the whole unit goes
        through the pipeline and caches again."""
        trace = rec.trace
        meta_id = rec.bridge_meta_id
        result = trace.result
        guard = None
        host_bid = None
        if result is not None:
            for bid in sorted(result.blocks):
                for stmt in result.blocks[bid].stmts:
                    if stmt.op in ("guard", "guard_not") \
                            and stmt.args[1] == meta_id:
                        guard = stmt
                        host_bid = bid
                        break
                if guard is not None:
                    break
        if guard is None:
            trace.bridge_failed.add(meta_id)
            return

        if kind == "loop":
            # The pass pipeline prunes loop-invariant header params. A
            # bridge that *writes* such a slot (e.g. the inner loop of a
            # nest bridging through the outer loop's increment) cannot
            # be stitched: the pruned back edge has nowhere to carry the
            # new value, so the stitched loop would re-run the bridge
            # from the entry value forever. The deopt-state verifier
            # reports the violation statically (with bci provenance);
            # keep the deopt exit instead — the enclosing loop's own
            # trace covers this path.
            from repro.analysis.deoptcheck import check_bridge_stitch
            findings = check_bridge_stitch(
                result, trace.live_slots, rec.start_root_locals,
                rec.shadow[0].locals, rec.root_method, rec.header_bci)
            if findings:
                trace.bridge_failed.add(meta_id)
                self.telemetry.inc("deoptcheck.bridge_rejects")
                self.telemetry.record(
                    "deoptcheck.reject", site="%s:%d" % trace.site,
                    findings=list(findings))
                self.telemetry.record(
                    "trace.abort", site="%s:%d" % trace.site,
                    mode="stitch", ops=rec.ops, reason=findings[0])
                return

        offset = len(result.metas)
        result.metas.extend(rec.metas)
        bridge_stmts = []
        for stmt in rec.stmts:
            if stmt.op in ("guard", "guard_not"):
                stmt = Stmt(stmt.sym, stmt.op,
                            (stmt.args[0], stmt.args[1] + offset)
                            + stmt.args[2:], stmt.effect, stmt.flags)
            bridge_stmts.append(stmt)

        host = result.blocks[host_bid]
        idx = host.stmts.index(guard)
        cont_bid = max(result.blocks) + 1
        bridge_bid = cont_bid + 1
        cont = Block(cont_bid)
        cont.stmts = host.stmts[idx + 1:]
        cont.terminator = host.terminator
        bridge = Block(bridge_bid)
        bridge.stmts = bridge_stmts
        if kind == "loop":
            # The pass pipeline may have pruned loop-invariant header
            # params, so map by name (``p1_<slot>``), not by position.
            header_params = result.blocks[1].params
            bridge.terminator = Jump(
                1, [(p, rec.shadow[0].locals[int(p.rsplit("_", 1)[1])])
                    for p in header_params])
        else:
            bridge.terminator = Return(ret)
        host.stmts = host.stmts[:idx]
        cond = guard.args[0]
        if guard.op == "guard":
            host.terminator = Branch(cond, cont_bid, [], bridge_bid, [])
        else:
            host.terminator = Branch(cond, bridge_bid, [], cont_bid, [])
        result.blocks[cont_bid] = cont
        result.blocks[bridge_bid] = bridge

        name = "%s+b%d" % (self._unit_name(trace.site),
                           len(trace.bridged) + 1)
        try:
            compiled = self._compile_trace(trace, name)
        except Exception as exc:
            # The IR is now mutated; stop bridging this trace but keep
            # the old compiled code running.
            trace.bridge_failed.add(meta_id)
            trace.result = None
            self.telemetry.record("trace.abort", site="%s:%d" % trace.site,
                                  mode="stitch", reason=str(exc), ops=0)
            return
        trace.bridged.add(meta_id)
        trace.exits[meta_id] = 0
        trace.total_exits = 0      # the stitched code earns a fresh budget
        self._install(trace, compiled)
        self.telemetry.inc("trace.stitches")
        self.telemetry.record("trace.stitch", site="%s:%d" % trace.site,
                              meta=meta_id, kind=kind,
                              bridges=len(trace.bridged))

    def _blacklist_trace(self, trace, reason):
        trace.blacklisted = True
        trace.result = None
        self.traces.pop(trace.site, None)
        self._blacklist.add(trace.site)
        if trace.cache_key is not None:
            self.jit.unit_cache.remove(trace.cache_key)
            trace.cache_key = None
        if trace.fingerprint is not None and self.jit.codecache is not None:
            self.jit.codecache.invalidate(trace.fingerprint, reason=reason)
            trace.fingerprint = None
        self.telemetry.inc("trace.blacklists")
        self.telemetry.record("trace.blacklist", site="%s:%d" % trace.site,
                              reason=reason, exits=trace.total_exits)

    # -- stats -----------------------------------------------------------------

    def snapshot(self):
        m = self.telemetry.metrics
        return {
            "enabled": self.enabled,
            "recordings": m.get("trace.records"),
            "aborts": m.get("trace.aborts"),
            "compiles": m.get("trace.compiles"),
            "entries": m.get("trace.enters"),
            "exits": m.get("trace.exits"),
            "stitches": m.get("trace.stitches"),
            "blacklists": m.get("trace.blacklists"),
            "cache_loads": m.get("trace.cache_loads"),
            "traces": {
                "%s:%d" % site: {
                    "compiled": t.compiled is not None,
                    "exits": t.total_exits,
                    "bridges": len(t.bridged),
                    "blacklisted": t.blacklisted,
                }
                for site, t in sorted(self.traces.items())
            },
        }

"""MiniJ abstract syntax."""

from __future__ import annotations


class Node:
    """Base class; every node records its source line."""

    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line

    def __repr__(self):
        slots = []
        for cls in type(self).__mro__:
            slots.extend(getattr(cls, "__slots__", ()))
        fields = ", ".join("%s=%r" % (s, getattr(self, s))
                           for s in slots if s != "line")
        return "%s(%s)" % (type(self).__name__, fields)


# -- top level ---------------------------------------------------------------

class Program(Node):
    __slots__ = ("classes", "functions")

    def __init__(self, classes, functions, line=1):
        super().__init__(line)
        self.classes = classes
        self.functions = functions


class ClassDecl(Node):
    __slots__ = ("name", "super_name", "fields", "methods")

    def __init__(self, name, super_name, fields, methods, line):
        super().__init__(line)
        self.name = name
        self.super_name = super_name
        self.fields = fields      # list of (name, is_val)
        self.methods = methods    # list of FuncDecl


class FuncDecl(Node):
    __slots__ = ("name", "params", "body", "is_static")

    def __init__(self, name, params, body, line, is_static=True):
        super().__init__(line)
        self.name = name
        self.params = params
        self.body = body          # list of statements
        self.is_static = is_static


# -- statements ---------------------------------------------------------------

class VarDecl(Node):
    __slots__ = ("name", "init")

    def __init__(self, name, init, line):
        super().__init__(line)
        self.name = name
        self.init = init          # may be None


class If(Node):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse, line):
        super().__init__(line)
        self.cond = cond
        self.then = then          # list of statements
        self.orelse = orelse      # list of statements (possibly empty)


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    """``for (x in arr) { ... }`` — desugared to an index loop."""

    __slots__ = ("var", "iterable", "body")

    def __init__(self, var, iterable, body, line):
        super().__init__(line)
        self.var = var
        self.iterable = iterable
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value        # may be None


class Throw(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


class Assign(Node):
    """``target = value`` where target is Name, FieldAccess, or Index."""

    __slots__ = ("target", "value")

    def __init__(self, target, value, line):
        super().__init__(line)
        self.target = target
        self.value = value


# -- expressions ------------------------------------------------------------------

class Literal(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Name(Node):
    __slots__ = ("id",)

    def __init__(self, id_, line):
        super().__init__(line)
        self.id = id_


class This(Node):
    __slots__ = ()


class BinOp(Node):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs, line):
        super().__init__(line)
        self.op = op              # '+','-','*','/','%','==','!=','<','<=','>','>=','&&','||'
        self.lhs = lhs
        self.rhs = rhs


class UnaryOp(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op              # '-', '!'
        self.operand = operand


class Call(Node):
    """``f(args)`` where f is a bare name: local closure, module function,
    or builtin."""

    __slots__ = ("func", "args")

    def __init__(self, func, args, line):
        super().__init__(line)
        self.func = func
        self.args = args


class MethodCall(Node):
    """``recv.name(args)``; if recv is a bare class/namespace name this is a
    static call."""

    __slots__ = ("recv", "name", "args")

    def __init__(self, recv, name, args, line):
        super().__init__(line)
        self.recv = recv
        self.name = name
        self.args = args


class FieldAccess(Node):
    __slots__ = ("recv", "name")

    def __init__(self, recv, name, line):
        super().__init__(line)
        self.recv = recv
        self.name = name


class Index(Node):
    __slots__ = ("arr", "index")

    def __init__(self, arr, index, line):
        super().__init__(line)
        self.arr = arr
        self.index = index


class ArrayLit(Node):
    __slots__ = ("elements",)

    def __init__(self, elements, line):
        super().__init__(line)
        self.elements = elements


class New(Node):
    __slots__ = ("class_name", "args")

    def __init__(self, class_name, args, line):
        super().__init__(line)
        self.class_name = class_name
        self.args = args


class Lambda(Node):
    __slots__ = ("params", "body")

    def __init__(self, params, body, line):
        super().__init__(line)
        self.params = params
        self.body = body          # list of statements


class InstanceOf(Node):
    """``expr is ClassName``."""

    __slots__ = ("expr", "class_name")

    def __init__(self, expr, class_name, line):
        super().__init__(line)
        self.expr = expr
        self.class_name = class_name

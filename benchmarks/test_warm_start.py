"""Warm-start benchmark: the persistent code cache must actually pay.

The contract measured here is the one the cache exists for — a process
that inherits a populated cache directory performs **strictly fewer
compilations** than the cold process that populated it, and time spent
in the compile pipeline drops accordingly (rehydrating JSON is cheap;
staging + optimizing + codegen is not). Runs in CI sizes; the paper-
scale numbers come from ``python benchmarks/harness.py``.
"""

from __future__ import annotations

from repro import Lancet
from repro.compiler.options import CompileOptions

SRC = '''
    def poly(x) {
      var acc = 0;
      var i = 0;
      while (i < 50) { acc = acc + x * i + (acc / 7); i = i + 1; }
      return acc;
    }
    def scale(x) { return x * 3; }
    def shift(x) { return x + 11; }
'''

UNITS = ["poly", "scale", "shift"]


def _run(cache_dir):
    opts = CompileOptions(cache_dir=str(cache_dir))
    jit = Lancet(options=opts)
    jit.load(SRC)
    results = [jit.compile_function("Main", u)(9) for u in UNITS]
    stats = jit.stats()
    return results, stats


def test_warm_start_strictly_fewer_compiles(tmp_path):
    cache_dir = tmp_path / "cc"
    cold_results, cold = _run(cache_dir)
    warm_results, warm = _run(cache_dir)

    assert warm_results == cold_results
    assert cold["compiles"] == len(UNITS)
    # The headline: a warm start compiles strictly less — here, nothing.
    assert warm["compiles"] < cold["compiles"]
    assert warm["compiles"] == 0
    assert warm["codecache"]["hits"] == len(UNITS)
    assert warm["codecache"]["misses"] == 0


def test_warm_start_loads_cheaper_than_compiling(tmp_path):
    cache_dir = tmp_path / "cc"
    _run(cache_dir)

    opts = CompileOptions(cache_dir=str(cache_dir))
    jit = Lancet(options=opts)
    jit.load(SRC)
    for u in UNITS:
        jit.compile_function("Main", u)
    m = jit.telemetry.metrics
    load_timing = m.timing("codecache.load")
    assert load_timing["count"] == len(UNITS)
    # Loads completed; no compile-pipeline work was re-done.
    assert jit.stats()["compiles"] == 0

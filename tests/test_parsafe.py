"""Parallel-safety analysis: kernel footprint summaries, the verdict
lattice, backend gating, the dynamic write sanitizer, and fusion
legality. Each hand-built racy kernel must be caught by exactly the
checker named in its verdict."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompileOptions, Lancet
from repro.analysis.parsafe import (PROVEN_PARALLEL, PROVEN_SEQUENTIAL,
                                    UNKNOWN, ParVerdict, classify_op,
                                    probe_combine, summarize_kernel)
from repro.analysis.raced import WriteSanitizer
from repro.delite.kernels import Kernel
from repro.delite.ops import (CLUSTER_SUMS_2D, DOT, NEAREST_2D, SIGMOID,
                              VSUB, VSUM, MapOp, ReduceBuiltin, ReduceOp,
                              ZipMapOp, ZipWithIndexOp, mat_vec_cols,
                              weighted_col_sums)
from repro.delite.runtime import DeliteRuntime
from repro.errors import RaceDetected


@pytest.fixture
def jit():
    return Lancet()


_COUNT = [0]


def guest_closure(jit, source, module=None):
    """Load ``source`` (defining ``mk``) and return ``mk()``."""
    _COUNT[0] += 1
    module = module or "ParsafeSrc%d" % _COUNT[0]
    jit.load(source, module=module)
    return jit.vm.call(module, "mk")


def kernel_of(jit, fun_expr):
    closure = guest_closure(jit, "def mk() { return %s; }" % fun_expr)
    return Kernel.from_closure(jit, closure)


# A map kernel that folds into a captured accumulator: the classic
# shared-write race under chunked execution.
_RACY_MAP = """
def mk() {
  var acc = newArray(1, 0.0);
  return fun(x) { acc[0] = acc[0] + x; return x + 1.0; };
}
"""


class TestKernelSummaries:
    def test_pure_kernel_is_write_free(self, jit):
        kernel = kernel_of(jit, "fun(x) => x * x + 1.0")
        summary = summarize_kernel(kernel)
        assert summary is not None and summary.write_free

    def test_shared_accumulator_is_a_shared_write(self, jit):
        kernel = Kernel.from_closure(jit, guest_closure(jit, _RACY_MAP))
        summary = summarize_kernel(kernel)
        assert not summary.write_free
        assert summary.shared_writes
        assert "shared" in summary.blame

    def test_host_kernel_has_no_ir(self):
        kernel = Kernel.from_host(lambda x: x, 1)
        assert summarize_kernel(kernel) is None


class TestVerdicts:
    """Static classification: each racy pattern caught by the intended
    checker, each safe pattern proven."""

    def test_pure_map_proven_parallel(self, jit):
        v = classify_op(MapOp(kernel_of(jit, "fun(x) => x * 2.0")))
        assert v.status == PROVEN_PARALLEL
        assert v.checker == "kernel-footprint"

    def test_shared_accumulator_map_caught_by_kernel_footprint(self, jit):
        kernel = Kernel.from_closure(jit, guest_closure(jit, _RACY_MAP))
        v = classify_op(MapOp(kernel))
        assert v.status == PROVEN_SEQUENTIAL
        assert v.checker == "kernel-footprint"
        assert "shared" in v.blame

    def test_host_kernel_is_unknown_hence_unsafe(self):
        v = classify_op(MapOp(Kernel.from_host(lambda x: x, 1)))
        assert v.status == UNKNOWN
        assert not v.proven_parallel      # unproven is unsafe

    def test_zipwithindex_caught_by_aos_materialize(self):
        v = classify_op(ZipWithIndexOp())
        assert v.status == PROVEN_SEQUENTIAL
        assert v.checker == "aos-materialize"

    def test_elementwise_builtins_proven_by_contract(self):
        for op in (NEAREST_2D, SIGMOID, VSUB):
            v = classify_op(op)
            assert v.status == PROVEN_PARALLEL
            assert v.checker == "builtin-contract"

    def test_reduce_builtins_proven_by_combine_probe(self):
        for op in (VSUM, DOT, CLUSTER_SUMS_2D):
            v = classify_op(op)
            assert v.status == PROVEN_PARALLEL
            assert v.checker == "combine-probe"

    def test_subtractive_combine_caught_by_probe(self):
        bad = ReduceBuiltin("sub-combine", 1,
                            lambda elems, uniforms: float(np.sum(elems[0])),
                            combine=lambda a, b: a - b, scalar_result=True)
        v = classify_op(bad)
        assert v.status == PROVEN_SEQUENTIAL
        assert v.checker == "combine-probe"
        assert not probe_combine(bad.combine)

    def test_builtin_sum_reduce_proven(self):
        v = classify_op(ReduceOp(None))
        assert v.status == PROVEN_PARALLEL
        assert v.checker == "reduce-combine"

    def test_additive_fold_proven(self, jit):
        v = classify_op(ReduceOp(kernel_of(jit, "fun(a, x) => a + x * x")))
        assert v.status == PROVEN_PARALLEL
        assert v.checker == "reduce-combine"

    def test_non_associative_fold_caught_by_reduce_combine(self, jit):
        v = classify_op(ReduceOp(kernel_of(jit, "fun(a, x) => a - x")))
        assert v.status == PROVEN_SEQUENTIAL
        assert v.checker == "reduce-combine"


class TestBackendGate:
    """Unproven ops must never reach a parallel backend: the runtime
    demotes them to seq and the answer matches sequential execution."""

    def test_racy_map_demoted_from_smp(self, jit):
        kernel = Kernel.from_closure(jit, guest_closure(jit, _RACY_MAP))
        xs = [float(i) for i in range(32)]
        seq = DeliteRuntime(backend="seq", parsafe="enforce").run(
            MapOp(kernel), xs)
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="enforce")
        out = smp.run(MapOp(kernel), xs)
        assert np.allclose(np.asarray(out), np.asarray(seq))
        assert smp.parsafe_fallbacks == 1
        assert smp.parsafe_checks == 0       # ran sequentially: no chunks

    def test_non_associative_fold_demoted(self, jit):
        # The smp combiner merges partials with '+': chunking fun(a,x)=>a-x
        # would flip the sign of later chunks. The gate keeps it whole.
        op = ReduceOp(kernel_of(jit, "fun(a, x) => a - x"))
        xs = [float(i) for i in range(40)]
        seq = DeliteRuntime(backend="seq").run(op, xs)
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="enforce")
        assert smp.run(op, xs) == pytest.approx(seq)
        assert smp.parsafe_fallbacks == 1

    def test_gate_off_means_no_demotion(self, jit):
        kernel = Kernel.from_closure(jit, guest_closure(jit, _RACY_MAP))
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="off")
        smp.run(MapOp(kernel), [float(i) for i in range(32)])
        assert smp.parsafe_fallbacks == 0

    def test_proven_op_admitted(self):
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="enforce")
        xs = [float(i) for i in range(64)]
        assert smp.run(VSUM, xs) == pytest.approx(sum(xs))
        assert smp.parsafe_fallbacks == 0


class TestWriteSanitizer:
    """check mode: the dynamic cross-check of the static verdicts."""

    def test_overlapping_chunk_writes_raise(self):
        op = MapOp(Kernel.from_host(lambda x: x, 1))
        shared = [0.0]
        san = WriteSanitizer(op, [[0.0] * 8], [shared])
        shared[0] = 1.0
        san.after_chunk(0, 0, 4)
        shared[0] = 2.0
        san.after_chunk(1, 4, 8)
        with pytest.raises(RaceDetected) as exc:
            san.finish()
        assert "uniform[0]" in str(exc.value)

    def test_disjoint_chunk_writes_pass(self):
        op = MapOp(Kernel.from_host(lambda x: x, 1))
        xs = [0.0] * 8
        san = WriteSanitizer(op, [xs], [])
        xs[1] = 1.0
        san.after_chunk(0, 0, 4)
        xs[5] = 1.0
        fp = san.after_chunk(1, 4, 8)
        assert fp == {"elem[0]": [(5, 5)]}
        assert san.finish() == {0: {"elem[0]": [(1, 1)]},
                                1: {"elem[0]": [(5, 5)]}}

    def test_forged_verdict_caught_at_runtime(self, jit):
        # Forge a ProvenParallel verdict onto a genuinely racy op (the
        # mutation-test stance: break the prover, the checker must fire).
        # The kernel folds into a captured accumulator; chunks 0 and 1
        # both write it and the sanitizer reports the overlap.
        kernel = Kernel.from_closure(jit, guest_closure(jit, _RACY_MAP))
        op = MapOp(kernel)
        op._parsafe_verdict = ParVerdict(
            PROVEN_PARALLEL, "forged", "forged for mutation test",
            op_kind="MapOp", op_name="map")
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="check")
        with pytest.raises(RaceDetected) as exc:
            smp.run(op, [float(i + 1) for i in range(16)])
        assert smp.parsafe_checks == 1
        assert exc.value.overlaps

    def test_clean_chunked_run_sanitized_without_findings(self):
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="check")
        xs = [float(i) for i in range(64)]
        assert np.allclose(smp.run(SIGMOID, xs),
                           1.0 / (1.0 + np.exp(-np.asarray(xs))))
        assert smp.parsafe_checks == 1


class TestFusionLegality:
    def make(self, jit, body, module):
        from repro.optiml import load_optiml
        load_optiml(jit)
        jit.telemetry.enable_trace()
        jit.load(body, module=module)
        return jit.vm.call(module, "mk")

    def test_stateful_producer_blocks_map_map_fusion(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0, 3.0];
              var acc = newArray(1, 0.0);
              return Lancet.compile(fun(d) {
                var a = Optiml.vmap(xs, fun(x) {
                  acc[0] = acc[0] + x; return x + 1.0; });
                var b = Optiml.vmap(a, fun(x) => x * 2.0);
                return b;
              });
            }
        ''', "FuseStateful")
        out = cf(0)
        assert np.allclose(np.asarray(out), [(x + 1) * 2 for x in [1, 2, 3]])
        assert cf.source.count("_drun") == 2      # rewrite refused
        rejects = jit.telemetry.events("fusion.reject")
        assert rejects and rejects[0].data["checker"] == "stateful-kernel"
        assert jit.telemetry.metrics.get("fusion.rejects") >= 1

    def test_aliased_zip_inputs_block_map_reduce_fusion(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0, 3.0, 4.0];
              var acc = newArray(1, 0.0);
              return Lancet.compile(fun(d) {
                var z = Optiml.vzip(xs, xs, fun(x, y) {
                  acc[0] = x; return x + y; });
                return Optiml.reduceSum(z);
              });
            }
        ''', "FuseAlias")
        assert cf(0) == pytest.approx(2.0 * (1 + 2 + 3 + 4))
        assert cf.source.count("_drun") == 2      # rewrite refused
        rejects = jit.telemetry.events("fusion.reject")
        assert rejects and rejects[0].data["checker"] == "zip-alias"

    def test_pure_fusion_unaffected(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0, 3.0];
              return Lancet.compile(fun(d) {
                var a = Optiml.vmap(xs, fun(x) => x + 1.0);
                var b = Optiml.vmap(a, fun(x) => x * 2.0);
                return b;
              });
            }
        ''', "FusePure")
        assert np.allclose(np.asarray(cf(0)), [4.0, 6.0, 8.0])
        assert cf.source.count("_drun") == 1      # fused as before
        assert jit.telemetry.metrics.get("fusion.rejects") == 0


class TestAppsProvenParallel:
    """The acceptance gate: every Delite op in the compiled OptiML apps
    classifies ProvenParallel, and the smp backend under the sanitizer
    (REPRO_PARSAFE=check) reproduces sequential results with zero
    fallbacks and zero races."""

    def compiled_app(self, name, module, fn_args):
        from repro.apps import load_app
        from repro.optiml import load_optiml
        jit = Lancet(options=CompileOptions(parsafe="check"))
        load_optiml(jit)
        load_app(jit, name, module=module)
        cf = jit.vm.call(module, "makeCompiled", fn_args)
        return jit, cf

    def delite_verdicts(self, cf):
        return [(stmt.flags.get("parsafe"), stmt.flags["parsafe_verdict"])
                for block in cf.ir.blocks.values()
                for stmt in block.stmts if stmt.op == "delite"]

    def check_app(self, name, module, fn_args):
        jit, cf = self.compiled_app(name, module, fn_args)
        verdicts = self.delite_verdicts(cf)
        assert verdicts, "no delite ops compiled for %s" % name
        assert all(status == PROVEN_PARALLEL for status, _ in verdicts), \
            [v.to_dict() for _, v in verdicts]
        jit.delite.configure("seq")
        seq = cf(0)
        jit.delite.configure("smp", cores=4)
        smp = cf(0)
        assert _nested_close(seq, smp)
        assert jit.delite.parsafe_fallbacks == 0
        assert jit.delite.parsafe_checks > 0
        assert jit.telemetry.metrics.get("parsafe.races") == 0

    def test_kmeans_all_ops_proven(self):
        from repro.optiml.reference import kmeans_data
        px, py = kmeans_data(120, 3)
        self.check_app("kmeans", "Kmeans", [px, py, 3, 2])

    def test_logreg_all_ops_proven(self):
        from repro.optiml.reference import logreg_data
        cols, y = logreg_data(80, 2)
        self.check_app("logreg", "Logreg", [cols, y, 3, 0.1])

    def test_namescore_all_ops_proven(self):
        from repro.optiml.reference import names_data
        names = names_data(60)
        self.check_app("namescore", "Namescore", [names])


def _nested_close(a, b):
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(_nested_close(x, y)
                                        for x, y in zip(a, b))
    return np.allclose(np.asarray(a, dtype=np.float64),
                       np.asarray(b, dtype=np.float64))


class TestSeqSmpEquivalence:
    """Hypothesis leg: for every ProvenParallel op the OptiML apps use,
    sanitized chunked execution must agree with sequential execution on
    arbitrary inputs (and the sanitizer must observe no overlap)."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=16,
                    max_size=64))
    def test_elementwise_and_reduce_builtins(self, xs):
        for op in (SIGMOID, VSUM):
            assert classify_op(op).proven_parallel
            seq = DeliteRuntime(backend="seq").run(op, xs)
            smp = DeliteRuntime(backend="smp", cores=4, parsafe="check")
            assert np.allclose(seq, smp.run(op, xs))
            assert smp.parsafe_fallbacks == 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 5), st.lists(
        st.floats(-50, 50, allow_nan=False), min_size=20, max_size=48))
    def test_app_pipeline_builtins(self, k, px):
        py = [x * 0.5 - 1.0 for x in px]
        cx, cy = px[:k], py[:k]
        for op, args in ((NEAREST_2D, (px, py, cx, cy)),
                         (VSUB, (px, py)),
                         (DOT, (px, py)),
                         (mat_vec_cols(2), (px, py, [0.5, -0.25])),
                         (weighted_col_sums(2), (px, py, py))):
            assert classify_op(op).proven_parallel
            seq = DeliteRuntime(backend="seq").run(op, *args)
            smp = DeliteRuntime(backend="smp", cores=4, parsafe="check")
            assert np.allclose(seq, smp.run(op, *args))
            assert smp.parsafe_fallbacks == 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(2, 4), st.lists(
        st.floats(-10, 10, allow_nan=False), min_size=16, max_size=40))
    def test_cluster_sums(self, k, px):
        py = [x + 1.0 for x in px]
        assign = [i % k for i in range(len(px))]
        assert classify_op(CLUSTER_SUMS_2D).proven_parallel
        seq = DeliteRuntime(backend="seq").run(
            CLUSTER_SUMS_2D, px, py, assign, k)
        smp = DeliteRuntime(backend="smp", cores=4, parsafe="check")
        assert np.allclose(seq, smp.run(CLUSTER_SUMS_2D, px, py, assign, k))

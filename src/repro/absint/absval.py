"""The abstract value domain (paper section 2.2).

    abstract class AbsVal[T]
    case class Const[T](x: T) extends AbsVal[T]
    case class Static[T](x: T) extends AbsVal[T]
    case class Partial[T](f: Map[JavaField,Rep[Any]]) extends AbsVal[T]
    case class Unknown[T]() extends AbsVal[T]

* ``Const``: a compile-time constant primitive (int/float/bool/str/None).
* ``Static``: a pre-existing heap object (guest ``Obj``, array, host
  callable) the compiled code references through its statics table.
* ``Partial``: an object allocated during compilation (or whose fields the
  compiler fully tracks); its field map holds staged values. Partial
  objects are scalar-replaced unless they escape.
* ``Unknown``: residual/dynamic; optionally refined with a type hint and a
  non-nullness fact.

``lub`` computes least upper bounds at control-flow joins.
"""

from __future__ import annotations

PRIMITIVES = (int, float, bool, str, type(None))

# Type hints carried by Unknown (and implied by the others):
#   'num', 'bool', 'str', 'arr', 'obj:<ClassName>', 'obj', None (anything)


class AbsVal:
    """Base class of abstract values."""

    __slots__ = ()

    @property
    def is_static_value(self):
        """True when a concrete value is available at compile time."""
        return False

    def type_hint(self):
        return None

    def nonnull(self):
        return False


class Const(AbsVal):
    """A compile-time constant primitive."""

    __slots__ = ("value",)

    def __init__(self, value):
        assert isinstance(value, PRIMITIVES), value
        self.value = value

    @property
    def is_static_value(self):
        return True

    def type_hint(self):
        return type_hint_of(self.value)

    def nonnull(self):
        return self.value is not None

    def __eq__(self, other):
        return (isinstance(other, Const) and self.value == other.value
                and type(self.value) is type(other.value))

    def __hash__(self):
        return hash(("Const", self.value))

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class Static(AbsVal):
    """A pre-existing heap object, identified by reference."""

    __slots__ = ("obj",)

    def __init__(self, obj):
        self.obj = obj

    @property
    def is_static_value(self):
        return True

    def type_hint(self):
        return type_hint_of(self.obj)

    def nonnull(self):
        return self.obj is not None

    def __eq__(self, other):
        return isinstance(other, Static) and self.obj is other.obj

    def __hash__(self):
        return hash(("Static", id(self.obj)))

    def __repr__(self):
        return "Static(%r)" % (self.obj,)


class Partial(AbsVal):
    """An object allocated under compilation: class + staged field map.

    ``materialized`` flips to True once the allocation has been emitted
    into residual code (the object escaped); afterwards field knowledge is
    no longer trusted for writes from residual code.
    """

    __slots__ = ("cls", "fields", "materialized")

    def __init__(self, cls, fields=None, materialized=False):
        self.cls = cls              # RtClass
        self.fields = fields if fields is not None else {}
        self.materialized = materialized

    def type_hint(self):
        return "obj:%s" % self.cls.name

    def nonnull(self):
        return True

    def __repr__(self):
        return "Partial(%s, %r)" % (self.cls.name, sorted(self.fields))


class PartialArray(AbsVal):
    """An array allocated under compilation with per-element staged values."""

    __slots__ = ("elems", "materialized")

    def __init__(self, elems, materialized=False):
        self.elems = list(elems)
        self.materialized = materialized

    def type_hint(self):
        return "arr"

    def nonnull(self):
        return True

    def __repr__(self):
        return "PartialArray(len=%d)" % len(self.elems)


class Unknown(AbsVal):
    """A dynamic value, optionally refined by a type hint / non-nullness."""

    __slots__ = ("ty", "_nonnull")

    def __init__(self, ty=None, nonnull=False):
        self.ty = ty
        self._nonnull = nonnull

    def type_hint(self):
        return self.ty

    def nonnull(self):
        return self._nonnull

    def __eq__(self, other):
        return (isinstance(other, Unknown) and other.ty == self.ty
                and other._nonnull == self._nonnull)

    def __hash__(self):
        return hash(("Unknown", self.ty, self._nonnull))

    def __repr__(self):
        bits = []
        if self.ty:
            bits.append(self.ty)
        if self._nonnull:
            bits.append("nonnull")
        return "Unknown(%s)" % ", ".join(bits)


UNKNOWN = Unknown()


def type_hint_of(value):
    """The type hint of a concrete value."""
    from repro.runtime.objects import Obj
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "num"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "arr"
    if isinstance(value, Obj):
        return "obj:%s" % value.cls.name
    if value is None:
        return None
    return "obj"


def merge_type_hints(a, b):
    if a == b:
        return a
    if a is None or b is None:
        return None
    if a.startswith("obj") and b.startswith("obj"):
        return "obj"
    return None


def abs_of_value(value):
    """Lift a concrete value to the most precise abstract value."""
    if isinstance(value, PRIMITIVES):
        return Const(value)
    return Static(value)


def lub(a, b):
    """Least upper bound of two abstract values.

    Partial values never survive a lub — callers must materialize them
    before joining (the staged interpreter's merge logic guarantees this).
    """
    if a == b and not isinstance(a, (Partial, PartialArray)):
        return a
    ty = merge_type_hints(a.type_hint(), b.type_hint())
    return Unknown(ty=ty, nonnull=a.nonnull() and b.nonnull())

"""Per-pass translation validation (Alive-style) for the optimizer.

PR 6 found a real miscompile (bridges writing pruned-invariant header
slots) only because the differential fuzzer happened to trip over it.
This module turns that kind of luck into a per-compile guarantee: the
PassManager snapshots a summary of the IR before each tier-2/trace pass
and, after the pass, checks a *simulation relation* between the two
versions instead of trusting the pass:

* **defined-value preservation** — the after-IR still satisfies the IR
  verifier (every use dominated by its definition, phi discipline, deopt
  metadata well-formed), so a pass cannot leave a dangling reference;
* **effectful-op order and count** — the multiset of externally visible
  operations (heap writes, IO, residual calls) is preserved, and within
  each surviving block their relative order is a subsequence of the
  original.  Per-pass policy encodes the *allowed* deltas: scalar
  replacement may delete stores to a sunk allocation, range pruning may
  delete whole proven-unreachable blocks, GVN may deduplicate calls a
  summary proves pure — but no pass may *introduce* or *reorder*
  effects;
* **guard weakening only** — the multiset of guards (kind, condition
  term, deopt reason) after the pass is a sub-multiset of the guards
  before it.  A pass may prove a check redundant and drop it; it may
  never add a speculation or silently change what an existing guard
  tests;
* **symbolic evaluation of the straight-line entry segment** — both
  versions are executed on a small abstract store (terms over an
  uninterpreted heap with a store epoch); the effect event sequences
  and the final terminator (branch condition / return value term) must
  agree.

Comparisons are *name-insensitive*: every value is reduced to a
structural term by resolving ``id`` copies, folding redundant block
parameters exactly the way GVN's phi simplification does, and
canonicalizing commutative operands — so sound renames never trip the
validator, while a dropped store, a reordered call, or a strengthened
guard always does.

Findings are plain strings; :class:`repro.pipeline.passes.PassManager`
raises :class:`~repro.errors.TranslationValidationError` (enforce mode)
or records ``validate`` diagnostics (collect mode) and the compile falls
back to an unvalidated-pass-off recompile.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.cfg import phi_assigns_for_edge, reachable_from
from repro.analysis.effects import COPY_OPS
from repro.analysis.verify import verify_ir
from repro.lms.ir import Branch, Effect, Jump, Return
from repro.lms.rep import ConstRep, Rep, StaticRep, Sym

#: Passes the validator knows a simulation policy for (the PassManager
#: snapshots before exactly these).
VALIDATED_PASSES = ("fuse", "gvn", "licm", "sink", "range", "dce", "guards")

#: Effects that are externally visible and therefore tracked.
_TRACKED = (Effect.WRITE, Effect.IO, Effect.CALL)

# Per-pass simulation policy. A pass outside the "equal" set for an
# effect class is allowed to *delete* ops of that class (never to add):
# sink deletes stores to scalar-replaced allocations, range deletes
# proven-unreachable blocks wholesale, gvn deduplicates calls whose
# summary proves them pure.
_EQUAL_WRITE_IO = frozenset(("fuse", "gvn", "licm", "dce", "guards"))
_EQUAL_CALL = frozenset(("fuse", "licm", "sink", "dce", "guards"))
#: Structure-preserving passes: per-block effect order must survive.
_ORDERED = frozenset(("gvn", "licm", "sink", "dce", "guards"))
#: Passes whose straight-line segment must replay *identically*.
_SEGMENT_EXACT = frozenset(("fuse", "gvn", "licm", "dce", "guards"))

_COMMUTATIVE_ALWAYS = ("eq", "ne")
_COMMUTATIVE_NUM = ("add", "mul")
_MAX_TERM_DEPTH = 80
_MAX_SEGMENT_STMTS = 500
_MAX_SEGMENT_BLOCKS = 80


def _hashable(value):
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


class _TermBuilder:
    """Structural value numbering for one IR version.

    ``term(rep)`` reduces a Rep to a hashable tree that is invariant
    under renaming: ``id``/taint copies are transparent, block params
    whose every incoming edge carries one same term fold to it (the
    relation GVN's ``_simplify_phis`` rewrites by), commutative operands
    are sorted, and non-pure results become opaque ``("eff", op, args)``
    nodes.
    """

    def __init__(self, blocks, fn_params):
        self.defs = {}          # sym name -> defining Stmt
        self.block_params = set()
        self.param_edges = {}   # param name -> [incoming Rep, ...]
        self.fn_params = frozenset(fn_params)
        for block in blocks.values():
            self.block_params.update(block.params)
            for stmt in block.stmts:
                self.defs[stmt.sym.name] = stmt
        for block in blocks.values():
            for succ in set(block.terminator.successors()):
                if succ not in blocks:
                    continue
                for name, rep in phi_assigns_for_edge(block.terminator,
                                                      succ):
                    self.param_edges.setdefault(name, []).append(rep)
        self.memo = {}
        self._active = set()

    def term(self, rep, depth=0):
        if isinstance(rep, ConstRep):
            return ("const", type(rep.value).__name__,
                    _hashable(rep.value))
        if isinstance(rep, StaticRep):
            return ("static", rep.index)
        if not isinstance(rep, Sym):
            return ("imm", _hashable(rep))
        name = rep.name
        hit = self.memo.get(name)
        if hit is not None:
            return hit
        if name in self._active or depth > _MAX_TERM_DEPTH:
            return ("rec", name)
        self._active.add(name)
        try:
            t = self._term_of_name(name, depth)
        finally:
            self._active.discard(name)
        self.memo[name] = t
        return t

    def _term_of_name(self, name, depth):
        stmt = self.defs.get(name)
        if stmt is not None:
            if stmt.op in COPY_OPS and stmt.args:
                return self.term(stmt.args[0], depth + 1)
            args = self.arg_terms(stmt, depth + 1)
            if stmt.effect is Effect.PURE:
                return (stmt.op,) + args
            return ("eff", stmt.op) + args
        if name in self.block_params:
            cands = [r for r in self.param_edges.get(name, ())
                     if not (isinstance(r, Sym) and r.name == name)]
            if cands:
                terms = {self.term(r, depth + 1) for r in cands}
                if len(terms) == 1:
                    return terms.pop()
            return ("param", name)
        return ("free", name)

    def arg_terms(self, stmt, depth=0):
        """The statement's operand terms, commutatively canonicalized."""
        args = tuple(self.term(a, depth) if isinstance(a, Rep)
                     else ("imm", _hashable(a)) for a in stmt.args)
        if len(args) == 2 and (
                stmt.op in _COMMUTATIVE_ALWAYS
                or (stmt.op in _COMMUTATIVE_NUM and stmt.flags.get("num"))):
            args = tuple(sorted(args, key=repr))
        return args


class IRSummary:
    """Everything the simulation relation compares, computed eagerly so
    in-place pass mutation cannot corrupt the 'before' side."""

    __slots__ = ("block_effects", "write_io", "calls", "guards", "segment")

    def __init__(self, block_effects, write_io, calls, guards, segment):
        self.block_effects = block_effects  # {bid: [skeleton, ...]}
        self.write_io = write_io            # Counter of skeletons
        self.calls = calls                  # Counter of skeletons
        self.guards = guards                # Counter of guard identities
        self.segment = segment              # (kind, term, events tuple)


def snapshot_ir(result):
    """Summarize ``result``'s IR for later comparison by
    :func:`validate_pass`."""
    blocks, entry = result.blocks, result.entry_bid
    metas = result.metas
    tb = _TermBuilder(blocks, result.param_names)
    reachable = reachable_from(blocks, entry)
    block_effects = {}
    write_io, calls, guards = Counter(), Counter(), Counter()
    for bid in sorted(reachable):
        seq = []
        for stmt in blocks[bid].stmts:
            if stmt.op in ("guard", "guard_not"):
                meta = None
                if len(stmt.args) >= 2 and isinstance(stmt.args[1], int) \
                        and 0 <= stmt.args[1] < len(metas):
                    meta = metas[stmt.args[1]]
                guards[(stmt.op, tb.term(stmt.args[0]) if stmt.args
                        else ("imm", None),
                        getattr(meta, "reason", None),
                        getattr(meta, "kind", None))] += 1
                continue
            if stmt.op in COPY_OPS or stmt.effect not in _TRACKED:
                continue
            skeleton = (stmt.op,) + tb.arg_terms(stmt)
            seq.append(skeleton)
            if stmt.effect is Effect.CALL:
                calls[skeleton] += 1
            else:
                write_io[skeleton] += 1
        block_effects[bid] = seq
    return IRSummary(block_effects, write_io, calls, guards,
                     _segment(result))


def _segment(result):
    """Symbolically evaluate the straight-line entry segment on a small
    abstract store: terms over an uninterpreted heap whose reads carry
    the current store epoch.  Returns ``(kind, terminator term, effect
    events)`` where kind is 'branch' | 'return' | 'loop' | 'deopt' |
    'cap'."""
    blocks, entry = result.blocks, result.entry_bid
    env = {p: ("free", p) for p in result.param_names}
    events = []
    visited = set()
    steps = 0

    def ev(rep):
        if isinstance(rep, Sym):
            return env.get(rep.name, ("free", rep.name))
        if isinstance(rep, ConstRep):
            return ("const", type(rep.value).__name__, _hashable(rep.value))
        if isinstance(rep, StaticRep):
            return ("static", rep.index)
        return ("imm", _hashable(rep))

    bid = entry
    while bid in blocks and bid not in visited \
            and len(visited) < _MAX_SEGMENT_BLOCKS:
        visited.add(bid)
        block = blocks[bid]
        for stmt in block.stmts:
            steps += 1
            if steps > _MAX_SEGMENT_STMTS:
                return ("cap", None, tuple(events))
            name = stmt.sym.name
            if stmt.op in COPY_OPS and stmt.args:
                env[name] = ev(stmt.args[0])
                continue
            if stmt.op in ("guard", "guard_not"):
                env[name] = ("guarded",)
                continue
            args = tuple(ev(a) if isinstance(a, Rep)
                         else ("imm", _hashable(a)) for a in stmt.args)
            if len(args) == 2 and (
                    stmt.op in _COMMUTATIVE_ALWAYS
                    or (stmt.op in _COMMUTATIVE_NUM
                        and stmt.flags.get("num"))):
                args = tuple(sorted(args, key=repr))
            if stmt.effect is Effect.PURE:
                env[name] = (stmt.op,) + args
            elif stmt.effect is Effect.READ:
                env[name] = ("read", stmt.op, args, len(events))
            elif stmt.effect is Effect.ALLOC:
                env[name] = ("alloc", stmt.op, args)
            else:
                events.append((stmt.op,) + args)
                env[name] = ("effres", stmt.op, args, len(events))
        term = block.terminator
        if isinstance(term, Jump):
            # Bind phi values before entering the target (simultaneous
            # assignment: evaluate all under the current env first).
            bound = [(n, ev(r)) for n, r in term.phi_assigns]
            env.update(bound)
            bid = term.target
            continue
        if isinstance(term, Branch):
            return ("branch", ev(term.cond), tuple(events))
        if isinstance(term, Return):
            return ("return", ev(term.value), tuple(events))
        return ("deopt", None, tuple(events))
    return ("loop", None, tuple(events))


def _is_subsequence(needle, haystack):
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


def _describe(counter, limit=3):
    items = ["%s x%d" % (sk[0] if isinstance(sk, tuple) else sk, n)
             for sk, n in list(counter.items())[:limit]]
    extra = len(counter) - limit
    if extra > 0:
        items.append("(+%d more)" % extra)
    return ", ".join(items)


def validate_pass(pass_name, before, result):
    """Check the simulation relation between ``before`` (an
    :class:`IRSummary` snapshot) and ``result``'s current IR; returns a
    list of finding strings (empty = the pass simulates)."""
    after = snapshot_ir(result)
    findings = []

    # 1. Defined-value preservation: the after-IR must still verify.
    for err in verify_ir(result.blocks, result.entry_bid,
                         params=result.param_names, metas=result.metas,
                         stage="after %s" % pass_name, collect=True):
        findings.append("%s: ill-formed IR after pass: %s"
                        % (pass_name, err))

    # 2. Effectful-op count: never introduce; delete only where the
    #    pass's policy allows it.
    new_w = after.write_io - before.write_io
    if new_w:
        findings.append("%s: introduced effectful op(s): %s"
                        % (pass_name, _describe(new_w)))
    lost_w = before.write_io - after.write_io
    if lost_w and pass_name in _EQUAL_WRITE_IO:
        findings.append("%s: dropped effectful op(s): %s"
                        % (pass_name, _describe(lost_w)))
    new_c = after.calls - before.calls
    if new_c:
        findings.append("%s: introduced residual call(s): %s"
                        % (pass_name, _describe(new_c)))
    lost_c = before.calls - after.calls
    if lost_c and pass_name in _EQUAL_CALL:
        findings.append("%s: dropped residual call(s): %s"
                        % (pass_name, _describe(lost_c)))

    # 3. Effectful-op order: for structure-preserving passes each
    #    surviving block's effect sequence is a subsequence of what it
    #    was (with the count check above, equal multisets + subsequence
    #    means the order is untouched).
    if pass_name in _ORDERED:
        for bid, seq in after.block_effects.items():
            before_seq = before.block_effects.get(bid)
            if before_seq is None:
                continue
            if not _is_subsequence(seq, before_seq):
                findings.append(
                    "%s: effectful ops reordered in B%d" % (pass_name, bid))

    # 4. Guard weakening only: dropping a proven-redundant guard is
    #    fine; adding one, or changing what one tests, is not.
    new_g = after.guards - before.guards
    if new_g:
        findings.append(
            "%s: introduced or strengthened guard(s): %s"
            % (pass_name,
               ", ".join("%s[%s]" % (g[0], g[2]) for g in list(new_g)[:3])))

    # 5. Straight-line symbolic evaluation. Skipped for sink: scalar
    #    replacement legitimately deletes stores mid-sequence and
    #    rewrites the operands of surviving ops (field loads of a sunk
    #    allocation become the stored value), so neither prefix nor
    #    term equality holds; its effect deltas are covered by the
    #    counter policies above. For range the shared prefix must
    #    match (a folded branch may only *extend* the segment).
    if pass_name == "sink":
        return findings
    b_kind, b_term, b_events = before.segment
    a_kind, a_term, a_events = after.segment
    n = min(len(b_events), len(a_events))
    if b_events[:n] != a_events[:n]:
        at = next(i for i in range(n) if b_events[i] != a_events[i])
        findings.append(
            "%s: straight-line effect sequence diverges at event %d: "
            "%s vs %s" % (pass_name, at, b_events[at][0], a_events[at][0]))
    elif pass_name in _SEGMENT_EXACT:
        if len(b_events) != len(a_events):
            findings.append(
                "%s: straight-line effect count changed (%d -> %d)"
                % (pass_name, len(b_events), len(a_events)))
        elif b_kind == a_kind and b_kind in ("branch", "return") \
                and b_term != a_term:
            findings.append(
                "%s: straight-line %s value changed" % (pass_name, b_kind))
    return findings

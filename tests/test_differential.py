"""Property-based differential testing: for randomly generated MiniJ
programs, the JIT-compiled function must be observationally equal to the
interpreter (same result, same printed output, same guest errors).

This is the strongest end-to-end invariant in the suite: it exercises the
frontend, the interpreter, the staged interpreter (folding, merging,
widening), codegen, and the shared operator semantics all at once.
"""

from __future__ import annotations

import shutil
import subprocess

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompileOptions, Lancet
from repro.errors import GuestError

NODE = shutil.which("node")


# -- structured program generator ---------------------------------------------
# Programs are generated as (source, free variables used). Loops are always
# canonical counting loops, so every program terminates.

VARS = ["a", "b", "t0", "t1", "t2"]


@st.composite
def int_expr(draw, depth=0, env=("a", "b")):
    if depth >= 3:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 6))
    if choice == 0:
        return str(draw(st.integers(-9, 9)))
    if choice == 1:
        return draw(st.sampled_from(list(env)))
    lhs = draw(int_expr(depth=depth + 1, env=env))
    rhs = draw(int_expr(depth=depth + 1, env=env))
    if choice <= 4:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (lhs, op, rhs)
    if choice == 5:
        # Division/modulo by a guaranteed-nonzero constant.
        k = draw(st.integers(1, 7)) * draw(st.sampled_from([1, -1]))
        op = draw(st.sampled_from(["/", "%"]))
        return "(%s %s %d)" % (lhs, op, k)
    cond = draw(bool_expr(depth=depth + 1, env=env))
    # Branchy value via Math.min/max to stay an expression.
    return "Math.max(%s, (%s) * (0 - 1))" % (lhs, rhs) if draw(st.booleans()) \
        else "(%s + %s)" % (lhs, cond_to_int(cond))


def cond_to_int(cond):
    # booleans participate in arithmetic like ints would be messy; gate it
    return "0"


@st.composite
def bool_expr(draw, depth=0, env=("a", "b")):
    lhs = draw(int_expr(depth=depth + 1, env=env))
    rhs = draw(int_expr(depth=depth + 1, env=env))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    base = "(%s %s %s)" % (lhs, op, rhs)
    if depth < 2 and draw(st.integers(0, 3)) == 0:
        other = draw(bool_expr(depth=depth + 1, env=env))
        join = draw(st.sampled_from(["&&", "||"]))
        return "(%s %s %s)" % (base, join, other)
    if depth < 2 and draw(st.integers(0, 5)) == 0:
        return "(!%s)" % base
    return base


@st.composite
def stmt_block(draw, depth, env):
    stmts = []
    n = draw(st.integers(1, 3))
    env = list(env)
    for __ in range(n):
        kind = draw(st.integers(0, 5 if depth < 2 else 3))
        if kind == 0:           # new local
            name = "t%d" % len([v for v in env if v.startswith("t")])
            if name in env:
                kind = 1
            else:
                stmts.append("var %s = %s;"
                             % (name, draw(int_expr(env=tuple(env)))))
                env.append(name)
                continue
        if kind == 1:           # assignment
            target = draw(st.sampled_from(env))
            stmts.append("%s = %s;" % (target,
                                       draw(int_expr(env=tuple(env)))))
        elif kind == 2:         # print
            stmts.append("println(%s);" % draw(int_expr(env=tuple(env))))
        elif kind == 3:         # accumulate via arithmetic
            target = draw(st.sampled_from(env))
            stmts.append("%s = %s + %s;"
                         % (target, target, draw(int_expr(env=tuple(env)))))
        elif kind == 4:         # if/else
            cond = draw(bool_expr(env=tuple(env)))
            then = draw(stmt_block(depth + 1, tuple(env)))
            orelse = draw(stmt_block(depth + 1, tuple(env)))
            stmts.append("if (%s) { %s } else { %s }"
                         % (cond, " ".join(then), " ".join(orelse)))
        else:                   # bounded counting loop
            bound = draw(st.integers(1, 6))
            ctr = "i%d" % depth
            body = draw(stmt_block(depth + 1, tuple(env)))
            stmts.append(
                "var %s = 0; while (%s < %d) { %s %s = %s + 1; }"
                % (ctr, ctr, bound, " ".join(body), ctr, ctr))
    return stmts


@st.composite
def guest_program(draw):
    body = draw(stmt_block(0, ("a", "b")))
    ret = draw(int_expr(env=("a", "b")))
    return "def f(a, b) { %s return %s; }" % (" ".join(body), ret)


class TestDifferential:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_compiled_equals_interpreted(self, source, a, b):
        jit = Lancet()
        jit.load(source)

        interp_err = comp_err = None
        interp_result = comp_result = None
        try:
            interp_result = jit.vm.call("Main", "f", [a, b])
        except GuestError as exc:
            interp_err = type(exc)
        interp_out = jit.vm.output()
        jit.vm.clear_output()

        compiled = jit.compile_function("Main", "f")
        try:
            comp_result = compiled(a, b)
        except GuestError as exc:
            comp_err = type(exc)
        comp_out = jit.vm.output()

        assert interp_err == comp_err, source
        assert interp_result == comp_result, source
        assert interp_out == comp_out, source

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(guest_program(), st.integers(-10, 10), st.integers(-10, 10))
    def test_compiled_equals_interpreted_no_inlining(self, source, a, b):
        """Same property with inlining disabled (residual-call paths)."""
        jit = Lancet(options=CompileOptions(inline_policy="never"))
        jit.load(source)
        expected = jit.vm.call("Main", "f", [a, b])
        jit.vm.clear_output()
        compiled = jit.compile_function("Main", "f")
        assert compiled(a, b) == expected


# Option variants that must not change observable behaviour: inlining
# policies, loop-unroll budget clamped, unit cache off, partial-evaluation
# aggressiveness dialed down, fusion off, analysis-powered optimization
# passes off (and one at a time).
NO_OPT = CompileOptions(opt_gvn=False, opt_licm=False,
                        opt_scalar_replace=False, opt_range_guards=False)

OPTION_VARIANTS = [
    CompileOptions(inline_policy="never"),
    CompileOptions(inline_policy="always"),
    CompileOptions(unroll_limit=1),
    CompileOptions(unit_cache=False),
    CompileOptions(delite_fusion=False, fold_val_fields=False),
    CompileOptions(assume_static_arrays=False, speculate_stable=False),
    NO_OPT,
    CompileOptions(opt_gvn=False),
    CompileOptions(opt_licm=False),
    CompileOptions(opt_scalar_replace=False),
    CompileOptions(opt_range_guards=False),
]


class TestOptionMatrix:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-10, 10), st.integers(-10, 10))
    def test_option_variants_equal_interpreter(self, source, a, b):
        """The interpreter is the oracle: every CompileOptions variant must
        produce the same result and the same printed output."""
        jit = Lancet()
        jit.load(source)
        expected = jit.vm.call("Main", "f", [a, b])
        expected_out = jit.vm.output()
        jit.vm.clear_output()
        for opts in OPTION_VARIANTS:
            compiled = jit.compile_function("Main", "f", options=opts)
            got = compiled(a, b)
            got_out = jit.vm.output()
            jit.vm.clear_output()
            assert got == expected, (source, opts)
            assert got_out == expected_out, (source, opts)


# -- trace-tier differential ---------------------------------------------------


def trace_lancet(source, **knobs):
    knobs.setdefault("trace_threshold", 4)
    knobs.setdefault("bridge_threshold", 3)
    j = Lancet(options=CompileOptions(trace_tier=True, verify_ir=True,
                                      **knobs))
    j.load(source)
    return j


class TestTraceDifferential:
    """Tier-T leg (ISSUE 6): interpreted, method-compiled, and
    trace-compiled runs of the same random loopy program must agree.
    The trace jit is called repeatedly with low thresholds so recording,
    trace entry, side exits, and bridge stitching all happen mid-run."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_trace_tier_equals_interpreted_and_compiled(self, source, a, b):
        oracle = Lancet()
        oracle.load(source)
        interp_err = interp_result = None
        try:
            interp_result = oracle.vm.call("Main", "f", [a, b])
        except GuestError as exc:
            interp_err = type(exc)
        interp_out = oracle.vm.output()
        oracle.vm.clear_output()
        expected = (interp_err, interp_result, interp_out)

        comp_err = comp_result = None
        compiled = oracle.compile_function("Main", "f")
        try:
            comp_result = compiled(a, b)
        except GuestError as exc:
            comp_err = type(exc)
        assert (comp_err, comp_result, oracle.vm.output()) == expected, \
            source

        traced = trace_lancet(source)
        for _ in range(6):
            err = result = None
            try:
                result = traced.vm.call("Main", "f", [a, b])
            except GuestError as exc:
                err = type(exc)
            out = traced.vm.output()
            traced.vm.clear_output()
            assert (err, result, out) == expected, source

    # Deterministic programs engineered to hit guard exits mid-loop: a
    # branch that flips partway through, plus a modulus branch that
    # alternates, so the recorded speculation fails while the trace is
    # live (and again after bridges stitch in).
    GUARDY_SRC = '''
        def f(a, b) {
          var acc = 0;
          var i = 0;
          while (i < 60) {
            if (i < a) { acc = acc + (i * b); }
            else { acc = acc - i; }
            if ((i % 7) == 3) { acc = acc + 1; }
            i = i + 1;
          }
          return acc;
        }
    '''

    def test_engineered_guard_exits_agree(self):
        for a, b in [(10, 3), (30, -2), (59, 5), (0, 4)]:
            oracle = Lancet()
            oracle.load(self.GUARDY_SRC)
            expected = oracle.vm.call("Main", "f", [a, b])

            traced = trace_lancet(self.GUARDY_SRC, trace_threshold=5)
            for _ in range(4):
                assert traced.vm.call("Main", "f", [a, b]) == expected, \
                    (a, b)
            stats = traced.stats()["traces"]
            assert stats["compiles"] >= 1, (a, b)
            assert stats["exits"] >= 1, (a, b)


# -- baseline-tier differential ------------------------------------------------


class TestBaselineDifferential:
    """Baseline leg (ISSUE 8): the template-compiled Tier-1 unit must be
    observationally equal to the interpreter and the staged compile —
    same result, same printed output, same guest errors. The baseline
    shares the runtime helpers with the interpreter but nothing with the
    staged pipeline, so this leg catches template/assembler bugs the
    staged differential cannot."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_baseline_tier1_equals_interpreted_and_staged(self, source,
                                                          a, b):
        from repro.baseline import baseline_supported
        if not baseline_supported():
            pytest.skip("baseline templates target CPython 3.11")
        from repro.pipeline import TIER1, tier_options

        oracle = Lancet()
        oracle.load(source)
        interp_err = interp_result = None
        try:
            interp_result = oracle.vm.call("Main", "f", [a, b])
        except GuestError as exc:
            interp_err = type(exc)
        interp_out = oracle.vm.output()
        oracle.vm.clear_output()
        expected = (interp_err, interp_result, interp_out)

        jit = Lancet()
        jit.load(source)
        quick = jit.compile_function(
            "Main", "f", options=tier_options(jit.options, TIER1))
        assert getattr(quick, "kind", None) == "baseline", source
        for _ in range(2):              # second run reuses the code object
            err = result = None
            try:
                result = quick(a, b)
            except GuestError as exc:
                err = type(exc)
            out = jit.vm.output()
            jit.vm.clear_output()
            assert (err, result, out) == expected, source

        staged_err = staged_result = None
        staged = oracle.compile_function("Main", "f")
        try:
            staged_result = staged(a, b)
        except GuestError as exc:
            staged_err = type(exc)
        assert (staged_err, staged_result, oracle.vm.output()) == expected, \
            source


# -- JS-backend differential ---------------------------------------------------
# A magnitude-bounded program generator: every variable assignment is
# reduced mod 997 and expression depth is capped, so all intermediate
# values stay far below 2^53 and JS double arithmetic is exact.

@st.composite
def js_int_expr(draw, depth=0, env=("a", "b")):
    if depth >= 2:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 5))
    if choice == 0:
        return str(draw(st.integers(-9, 9)))
    if choice == 1:
        return draw(st.sampled_from(list(env)))
    lhs = draw(js_int_expr(depth=depth + 1, env=env))
    rhs = draw(js_int_expr(depth=depth + 1, env=env))
    if choice <= 3:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return "(%s %s %s)" % (lhs, op, rhs)
    if choice == 4:
        k = draw(st.integers(1, 7)) * draw(st.sampled_from([1, -1]))
        op = draw(st.sampled_from(["/", "%"]))
        return "(%s %s %d)" % (lhs, op, k)
    return "Math.max(%s, Math.min(%s, 9))" % (lhs, rhs)


@st.composite
def js_bool_expr(draw, env=("a", "b")):
    lhs = draw(js_int_expr(depth=1, env=env))
    rhs = draw(js_int_expr(depth=1, env=env))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    return "(%s %s %s)" % (lhs, op, rhs)


@st.composite
def js_stmt_block(draw, depth, env):
    stmts = []
    env = list(env)
    for __ in range(draw(st.integers(1, 3))):
        kind = draw(st.integers(0, 5 if depth < 2 else 3))
        if kind == 0 and depth == 0:
            name = "t%d" % len([v for v in env if v.startswith("t")])
            if name not in env:
                stmts.append("var %s = (%s) %% 997;"
                             % (name, draw(js_int_expr(env=tuple(env)))))
                env.append(name)
                continue
            kind = 1
        if kind in (0, 1):      # bounded assignment
            target = draw(st.sampled_from(env))
            stmts.append("%s = (%s) %% 997;"
                         % (target, draw(js_int_expr(env=tuple(env)))))
        elif kind == 2:         # print
            stmts.append("println(%s);" % draw(js_int_expr(env=tuple(env))))
        elif kind == 3:         # accumulate, bounded
            target = draw(st.sampled_from(env))
            stmts.append("%s = (%s + %s) %% 997;"
                         % (target, target, draw(js_int_expr(env=tuple(env)))))
        elif kind == 4:         # if/else
            cond = draw(js_bool_expr(env=tuple(env)))
            then = draw(js_stmt_block(depth + 1, tuple(env)))
            orelse = draw(js_stmt_block(depth + 1, tuple(env)))
            stmts.append("if (%s) { %s } else { %s }"
                         % (cond, " ".join(then), " ".join(orelse)))
        else:                   # bounded counting loop
            bound = draw(st.integers(1, 5))
            ctr = "i%d" % depth
            body = draw(js_stmt_block(depth + 1, tuple(env)))
            stmts.append(
                "var %s = 0; while (%s < %d) { %s %s = %s + 1; }"
                % (ctr, ctr, bound, " ".join(body), ctr, ctr))
    return stmts


@st.composite
def js_guest_program(draw):
    body = draw(js_stmt_block(0, ("a", "b")))
    ret = draw(js_int_expr(env=("a", "b")))
    return "def f(a, b) { %s return %s; }" % (" ".join(body), ret)


def _normalize_js_lines(text):
    # JS prints integer negative zero as "-0" (e.g. trunc-div of -1/7);
    # guest/Python semantics have a single zero.
    return [("0" if line == "-0" else line) for line in text.splitlines()]


@pytest.mark.skipif(NODE is None, reason="node interpreter not available")
class TestJsDifferential:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(js_guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_js_backend_equals_interpreted(self, source, a, b):
        from repro.backends.javascript import cross_compile_js
        jit = Lancet()
        jit.load(source)
        expected = jit.vm.call("Main", "f", [a, b])
        expected_out = jit.vm.output()
        jit.vm.clear_output()

        js = cross_compile_js(jit, "Main", "f")
        harness = "%s\nconsole.log('RESULT:' + String(f(%d, %d)));\n" \
            % (js, a, b)
        proc = subprocess.run([NODE, "-e", harness], capture_output=True,
                              text=True, timeout=60)
        assert proc.returncode == 0, (source, proc.stderr)
        lines = _normalize_js_lines(proc.stdout)
        assert lines, (source, proc.stdout)
        assert lines[-1] == "RESULT:%s" % expected, source
        assert lines[:-1] == _normalize_js_lines(expected_out), source


# -- optimized vs unoptimized --------------------------------------------------
# The analysis-powered passes (GVN, LICM, scalar replacement, range-based
# guard pruning) must be semantics-preserving on every backend: the same
# post-pipeline IR feeds Python, JS, and SQL code generation.

class TestOptimizationDifferential:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_optimized_equals_unoptimized_python(self, source, a, b):
        jit = Lancet()
        jit.load(source)

        def observe(options):
            err = result = None
            try:
                result = jit.compile_function("Main", "f",
                                              options=options)(a, b)
            except GuestError as exc:
                err = type(exc)
            out = jit.vm.output()
            jit.vm.clear_output()
            return err, result, out

        plain = observe(NO_OPT)
        optimized = observe(CompileOptions())
        assert optimized == plain, source

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(st.sampled_from(["x > 0", "x * 2 == 10 || x == 0",
                            "x >= 0 && x < 100", "x % 7 != 3",
                            "x + x > x * 2 - 1"]),
           st.integers(-20, 20))
    def test_optimized_equals_unoptimized_sql(self, body, value):
        """Both variants must render to SQL and agree as predicates (the
        mini database cannot execute SQL text, so the compiled host
        callables stand in for the rendered expression — the SQL backend
        consumes exactly the post-pipeline IR they were built from)."""
        from repro.backends.sql import predicate_to_sql

        def observe(options):
            jit = Lancet(options=options)
            jit.load("def mk() { return fun(x) => %s; }" % body,
                     module="Preds")
            closure = jit.vm.call("Preds", "mk")
            sql, compiled = predicate_to_sql(jit, closure, "col")
            return sql, compiled(value)

        plain_sql, plain = observe(NO_OPT)
        opt_sql, optimized = observe(CompileOptions())
        assert plain_sql and opt_sql
        assert optimized == plain, body

    @pytest.mark.skipif(NODE is None, reason="node interpreter not available")
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(js_guest_program(), st.integers(-20, 20), st.integers(-20, 20))
    def test_optimized_equals_unoptimized_js(self, source, a, b):
        from repro.backends.javascript import cross_compile_js

        def observe(options):
            jit = Lancet(options=options)
            jit.load(source)
            js = cross_compile_js(jit, "Main", "f")
            harness = "%s\nconsole.log('RESULT:' + String(f(%d, %d)));\n" \
                % (js, a, b)
            proc = subprocess.run([NODE, "-e", harness],
                                  capture_output=True, text=True, timeout=60)
            assert proc.returncode == 0, (source, proc.stderr)
            return _normalize_js_lines(proc.stdout)

        assert observe(CompileOptions()) == observe(NO_OPT), source

"""Abstract-value lattice properties (hypothesis)."""

from hypothesis import given, strategies as st

from repro.absint.absval import (Const, Static, Unknown, abs_of_value, lub,
                                 merge_type_hints, type_hint_of)


def absvals():
    consts = st.one_of(
        st.integers(-5, 5), st.booleans(),
        st.sampled_from(["a", "b"]), st.none(),
        st.floats(allow_nan=False, allow_infinity=False,
                  min_value=-2.0, max_value=2.0),
    ).map(Const)
    obj_a, obj_b = [1, 2], {"x": 1}
    statics = st.sampled_from([Static(obj_a), Static(obj_b)])
    unknowns = st.sampled_from([
        Unknown(), Unknown(ty="num"), Unknown(ty="str"),
        Unknown(ty="arr", nonnull=True), Unknown(ty="obj:C", nonnull=True),
    ])
    return st.one_of(consts, statics, unknowns)


class TestLub:
    @given(absvals())
    def test_idempotent(self, a):
        assert lub(a, a) == a or isinstance(lub(a, a), Unknown)

    @given(absvals(), absvals())
    def test_commutative(self, a, b):
        assert lub(a, b) == lub(b, a)

    @given(absvals(), absvals(), absvals())
    def test_associative(self, a, b, c):
        assert lub(lub(a, b), c) == lub(a, lub(b, c))

    @given(absvals(), absvals())
    def test_upper_bound_type(self, a, b):
        """The join's type hint generalizes both inputs' hints."""
        j = lub(a, b)
        for x in (a, b):
            hx, hj = x.type_hint(), j.type_hint()
            assert hj is None or hj == hx \
                or (hj == "obj" and hx is not None and hx.startswith("obj"))

    @given(absvals(), absvals())
    def test_nonnull_preserved_conjunctively(self, a, b):
        j = lub(a, b)
        if j.nonnull():
            assert a.nonnull() and b.nonnull()

    def test_equal_consts_join_to_const(self):
        assert lub(Const(3), Const(3)) == Const(3)

    def test_distinct_consts_widen(self):
        j = lub(Const(3), Const(4))
        assert isinstance(j, Unknown)
        assert j.type_hint() == "num"

    def test_same_static_identity(self):
        o = [1]
        assert lub(Static(o), Static(o)) == Static(o)

    def test_bool_vs_int_consts_distinct(self):
        assert Const(True) != Const(1)


class TestLift:
    def test_primitives_become_const(self):
        for v in (1, 1.5, "x", True, None):
            assert isinstance(abs_of_value(v), Const)

    def test_objects_become_static(self):
        assert isinstance(abs_of_value([1, 2]), Static)

    def test_type_hints(self):
        from repro.bytecode.classfile import ClassFile
        from repro.runtime.objects import Obj, RtClass
        assert type_hint_of(True) == "bool"
        assert type_hint_of(3) == "num"
        assert type_hint_of(2.5) == "num"
        assert type_hint_of("s") == "str"
        assert type_hint_of([1]) == "arr"
        obj = Obj(RtClass("C", ClassFile("C"), None), {})
        assert type_hint_of(obj) == "obj:C"

    def test_merge_hints(self):
        assert merge_type_hints("num", "num") == "num"
        assert merge_type_hints("num", "str") is None
        assert merge_type_hints("obj:A", "obj:B") == "obj"
        assert merge_type_hints("obj:A", None) is None

"""Code caching and on-demand compilation (paper 3.1).

The paper's point: instead of relying on VM-internal black-box caches,
programs implement their own policies in a few lines::

    val cache = new WeakHashMap[Int, Int=>Int]
    def calcJIT(x, y) = cache.getOrElseUpdate(x, compile(z => calc(x, z)))(y)

Here we provide the generalized combinators: :func:`make_jit` specializes
a two-argument guest function on its first argument with a
:class:`CodeCache` (pluggable eviction), and :func:`make_hot` adds
profile-driven compilation ("only after a certain value becomes hot").
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.bytecode.builder import MethodBuilder
from repro.bytecode.classfile import ClassFile
from repro.errors import GuestTypeError
from repro.runtime.objects import new_instance


class CodeCache:
    """A thread-safe LRU code cache with a pluggable eviction hook.

    "We could easily extend our cache with a custom eviction policy" — so
    the policy is a constructor argument: ``on_evict(key, compiled)``.

    Background compile workers mutate the cache concurrently with the
    hot path, so every mutation happens under a lock, and two extra
    mechanisms keep asynchronous completion honest:

    * :meth:`get_or_else_update` is *single-flight*: when several threads
      miss the same key at once, one compiles and the rest wait for its
      result instead of compiling duplicates.
    * each key has a *generation*, bumped whenever the key is evicted,
      removed, or flushed. A background compile captures
      ``generation(key)`` when it starts and lands its result with
      :meth:`put_if`; a stale result (the key was evicted or the cache
      flushed mid-compile) is discarded instead of being re-inserted.
    """

    def __init__(self, capacity=None, on_evict=None, telemetry=None,
                 name="cache"):
        self.capacity = capacity
        self.on_evict = on_evict
        self.telemetry = telemetry
        self.name = name
        self._entries = OrderedDict()
        self._lock = threading.RLock()
        self._gen = {}              # key -> generation (only ever-bumped keys)
        self._pending = {}          # key -> (Event, leader thread ident)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_discards = 0

    _EVENT_KIND = {"hits": "cache.hit", "misses": "cache.miss",
                   "evictions": "cache.evict",
                   "stale_discards": "cache.stale_discard"}

    def _count(self, what, **data):
        tel = self.telemetry
        if tel is not None:
            tel.inc("cache.%s" % what)
            tel.inc("cache.%s.%s" % (self.name, what))
            tel.record(self._EVENT_KIND[what], cache=self.name, **data)

    # -- generations -----------------------------------------------------------

    def generation(self, key):
        """The key's current generation; capture before a background
        compile and pass to :meth:`put_if` when landing the result."""
        with self._lock:
            return self._gen.get(key, 0)

    def _bump(self, key):
        self._gen[key] = self._gen.get(key, 0) + 1

    # -- probes ----------------------------------------------------------------

    def peek(self, key):
        """Read without counting a hit/miss or refreshing LRU order."""
        with self._lock:
            return self._entries.get(key)

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hits", key=repr(key), size=len(self._entries))
            else:
                self.misses += 1
                self._count("misses", key=repr(key),
                            size=len(self._entries))
            return entry

    # -- mutation --------------------------------------------------------------

    def _put_locked(self, key, compiled):
        """Insert under the lock; returns evicted (key, value) pairs so
        ``on_evict`` callbacks run outside the lock (they may re-enter)."""
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        evicted = []
        while (self.capacity is not None
               and len(self._entries) > self.capacity):
            old_key, old = self._entries.popitem(last=False)
            self._bump(old_key)
            self.evictions += 1
            self._count("evictions", key=repr(old_key),
                        size=len(self._entries))
            evicted.append((old_key, old))
        return evicted

    def _run_evictions(self, evicted):
        if self.on_evict is not None:
            for old_key, old in evicted:
                self.on_evict(old_key, old)

    def put(self, key, compiled):
        with self._lock:
            evicted = self._put_locked(key, compiled)
        self._run_evictions(evicted)
        return compiled

    def put_if(self, key, compiled, generation):
        """Insert only if the key's generation still matches — the landing
        half of a background compile. Returns the inserted value, or
        ``None`` when the result went stale (key evicted/removed/flushed
        since ``generation`` was captured) and was discarded."""
        with self._lock:
            if self._gen.get(key, 0) != generation:
                self.stale_discards += 1
                self._count("stale_discards", key=repr(key))
                return None
            evicted = self._put_locked(key, compiled)
        self._run_evictions(evicted)
        return compiled

    def get_or_else_update(self, key, compile_fn):
        """Single-flight memoization: concurrent misses for one key run
        ``compile_fn`` exactly once; the other threads block on the
        leader's result. A failing leader propagates its exception and
        releases the waiters to retry."""
        me = threading.get_ident()
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("hits", key=repr(key),
                                size=len(self._entries))
                    return entry
                pending = self._pending.get(key)
                if pending is None:
                    event = threading.Event()
                    self._pending[key] = (event, me)
                    leader = True
                    gen = self._gen.get(key, 0)
                    self.misses += 1
                    self._count("misses", key=repr(key),
                                size=len(self._entries))
                elif pending[1] == me:
                    # Re-entrant compile from the leader thread itself
                    # (e.g. a recompile inside compile_fn): run inline
                    # rather than deadlocking on our own event.
                    leader = True
                    event = None
                    gen = self._gen.get(key, 0)
                else:
                    leader = False
                    event = pending[0]
            if not leader:
                event.wait()
                continue        # leader finished (or failed): re-probe
            try:
                value = compile_fn()
            finally:
                if event is not None:
                    with self._lock:
                        self._pending.pop(key, None)
                    event.set()
            # Land through the generation check: a flush/remove racing
            # this compile means the result must not be cached (it is
            # still returned — correct for this call, wrong to keep).
            self.put_if(key, value, gen)
            return value

    def remove(self, key):
        """Drop one entry without invalidating it (tier transitions
        *replace* a unit's entry rather than accumulating one per tier).
        Always bumps the key's generation — even when the key is absent,
        because that is exactly the background-compile window (the miss
        is why a compile is in flight) and the in-flight result must not
        re-insert what this call is dropping."""
        with self._lock:
            entry = self._entries.pop(key, None)
            self._bump(key)
            return entry

    def invalidate_all(self, reason="cache flush"):
        with self._lock:
            victims = list(self._entries.values())
            n = len(victims)
            # Bump in-flight (pending) keys too: a compile racing the
            # flush must not land a pre-flush result afterwards.
            for key in set(self._entries) | set(self._pending):
                self._bump(key)
            self._entries.clear()
        for compiled in victims:
            compiled.invalidate(reason)
        tel = self.telemetry
        if tel is not None:
            tel.inc("cache.flushes")
            tel.record("cache.flush", cache=self.name, entries=n,
                       reason=reason)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries


_SYNTH_COUNTER = [0]


def _partial_applier_class(jit, class_name, method_name):
    """Synthesize ``class C { val x; def apply(z) { return Cls.m(this.x, z); } }``
    — the guest closure ``z => f(x, z)`` built from the host side."""
    _SYNTH_COUNTER[0] += 1
    name = "JitCache$%s$%s$%d" % (class_name, method_name, _SYNTH_COUNTER[0])
    cf = ClassFile(name, is_closure=True)
    cf.add_field("x", is_val=True)
    b = MethodBuilder("apply", 1, is_static=False)
    b.load(0).getfield("x")
    b.load(1)
    b.invoke_static(class_name, method_name, 2)
    b.ret_val()
    cf.add_method(b.build())
    jit.vm.load_classes([cf])
    return jit.vm.linker.resolve_class(name)


def make_jit(jit, class_name, method_name, cache=None):
    """Specialize the static 2-argument guest method ``class.method`` on
    its first argument, compiling one variant per distinct value.

    Returns ``call(x, y)``; guarantees that execution always runs a code
    path in which ``x`` is a compile-time constant.
    """
    method = jit.vm.linker.resolve_static(class_name, method_name)
    if method.num_params != 2:
        raise GuestTypeError("make_jit needs a 2-argument function")
    closure_cls = _partial_applier_class(jit, class_name, method_name)
    if cache is None:
        cache = CodeCache(telemetry=getattr(jit, "telemetry", None),
                          name="jit_cache")

    def call(x, y):
        def compile_variant():
            closure = new_instance(closure_cls)
            closure.fields["x"] = x
            return jit.compile_closure(closure)
        return cache.get_or_else_update(x, compile_variant)(y)

    call.cache = cache
    return call


def make_hot(jit, class_name, method_name, threshold=2, cache=None,
             background=False, tiered=False, service=None):
    """Like :func:`make_jit`, but only compiles a variant after its first
    argument has been seen ``threshold`` times; colder values run in the
    interpreter (amortizing compilation cost, paper's ``calcHOT``).

    With ``background=True``, compilation is submitted to a worker thread
    ("we could add background compilation by submitting the actual
    compilation as a task to a worker thread"): calls keep interpreting
    until the compiled variant lands in the cache. Compilation kick-off
    is guarded by an in-flight set under a lock, so a variant is compiled
    exactly once even when the threshold crossing races another caller or
    an LRU eviction re-triggers the hot path. Results land through
    :meth:`CodeCache.put_if`, so a compile whose key was evicted or
    flushed mid-flight is discarded instead of re-inserted. Passing a
    :class:`~repro.codecache.CompileService` as ``service`` routes the
    background compiles through its shared priority-queue worker pool
    instead of spawning one ad-hoc thread per variant.

    With ``tiered=True``, hot variants ride the tier ladder instead of
    compiling at full strength immediately: the ``threshold``-th sighting
    gets a quick Tier-1 compile, and once the variant has run compiled
    ``jit.options.tier2_threshold`` times it is *replaced* (same cache
    key) by the Tier-2 optimizing compile.
    """
    import threading

    jitted = make_jit(jit, class_name, method_name, cache=cache)
    profile = {}
    pending = {}
    in_flight = set()
    lock = threading.Lock()
    variant_tier = {}       # x -> tier of the cached variant (tiered mode)
    hot_calls = {}          # x -> calls served by the compiled variant
    closure_cls = _partial_applier_class(jit, class_name, method_name)

    def compile_variant(x, options=None):
        closure = new_instance(closure_cls)
        closure.fields["x"] = x
        return jit.compile_closure(closure, options=options)

    def _compile_tiered(x, tier):
        from repro.pipeline.tiers import tier_options
        compiled = compile_variant(x, options=tier_options(jit.options,
                                                           tier))
        jitted.cache.put(x, compiled)   # same key: replace, never stack
        old = variant_tier.get(x)
        variant_tier[x] = tier
        if old is not None and tier > old:
            tel = jit.telemetry
            tel.inc("tier.promotions")
            tel.record("tier.promote", unit="%s.%s@%r"
                       % (class_name, method_name, x),
                       from_tier=old, to_tier=tier,
                       calls=hot_calls.get(x, 0))
        return compiled

    def _spawn_background(x):
        """Start the one background compile for ``x`` (caller holds
        ``lock``) — the in-flight set is what makes a concurrent
        threshold crossing, or an eviction racing a finished worker,
        unable to start a second task for the same key."""
        if x in in_flight:
            return
        in_flight.add(x)
        gen = jitted.cache.generation(x)

        def _land(compiled):
            # put_if: if the key was evicted/removed/flushed while we
            # compiled, the result is stale — drop it, don't re-insert.
            jitted.cache.put_if(x, compiled, gen)

        def _finish():
            with lock:
                in_flight.discard(x)
                pending.pop(x, None)

        if service is not None:
            from repro.codecache.service import PRIORITY_TIER1
            req = service.submit(
                ("hot", class_name, method_name, x),
                lambda: compile_variant(x),
                priority=PRIORITY_TIER1,
                on_complete=lambda compiled: (_land(compiled), _finish()),
                on_error=lambda exc: _finish())
            if req.rejected:     # saturated/blacklisted: stay interpreted
                _finish()
            else:
                pending[x] = req
            return

        def task():
            try:
                _land(compile_variant(x))
            finally:
                _finish()

        worker = threading.Thread(target=task, daemon=True)
        pending[x] = worker
        worker.start()

    def call(x, y):
        compiled = jitted.cache.peek(x)
        if compiled is not None:
            jitted.cache.get(x)   # count the hit, refresh LRU order
            if tiered:
                n = hot_calls.get(x, 0) + 1
                hot_calls[x] = n
                if (variant_tier.get(x, 2) < 2
                        and n >= jit.options.tier2_threshold):
                    compiled = _compile_tiered(x, 2)
            return compiled(y)
        with lock:
            seen = profile.get(x, 0)
            if seen < threshold:
                profile[x] = seen + 1
                cold = True
            else:
                cold = False
                if background:
                    _spawn_background(x)
        if cold or background:
            return jit.vm.call(class_name, method_name, [x, y])
        if tiered:
            hot_calls[x] = hot_calls.get(x, 0) + 1
            return _compile_tiered(x, 1)(y)
        return jitted(x, y)

    call.cache = jitted.cache
    call.profile = profile
    call.pending = pending
    call.in_flight = in_flight
    call.variant_tier = variant_tier
    return call

"""Counter / timing-summary registry.

Counters and timings are plain dict operations at *rare* pipeline events
(one compile, one deopt, one cache probe) — never inside generated code or
the interpreter's dispatch loop — so the registry can stay always-on
without measurable overhead on hot loops.
"""

from __future__ import annotations

from collections import Counter


class Metrics:
    """Named counters plus summary "histograms" (count/total/min/max) for
    durations, keyed by dotted metric names."""

    def __init__(self):
        self.counters = Counter()
        self._timings = {}          # name -> [count, total, min, max]

    # -- counters -------------------------------------------------------------

    def inc(self, name, n=1):
        self.counters[name] += n

    def get(self, name):
        return self.counters.get(name, 0)

    # -- timings --------------------------------------------------------------

    def observe(self, name, seconds):
        entry = self._timings.get(name)
        if entry is None:
            self._timings[name] = [1, seconds, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds < entry[2]:
                entry[2] = seconds
            if seconds > entry[3]:
                entry[3] = seconds

    def timing(self, name):
        entry = self._timings.get(name)
        if entry is None:
            return None
        count, total, lo, hi = entry
        return {"count": count, "total": total, "min": lo, "max": hi,
                "mean": total / count}

    def timings(self):
        return {name: self.timing(name) for name in self._timings}

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self):
        return {"counters": dict(self.counters), "timings": self.timings()}

    def reset(self):
        self.counters.clear()
        self._timings.clear()

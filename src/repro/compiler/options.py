"""Compilation options.

The paper's stance is "you get what you ask for": these knobs are explicit
program-facing policy, not hidden heuristics. Defaults follow the paper
(inline non-recursive methods always, fold final fields, etc.).
"""

from __future__ import annotations

import dataclasses
import os


def _env_validate():
    """Default for the speculation-soundness checkers: the REPRO_VALIDATE
    environment variable turns them on (tests/CI) or off (benchmarks);
    unset means off."""
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() \
        not in ("", "0", "false", "no", "off")


def _env_parsafe():
    """Default for the Delite parallel-safety gate: the REPRO_PARSAFE
    environment variable selects the mode; unset/unknown means off."""
    mode = os.environ.get("REPRO_PARSAFE", "").strip().lower()
    return mode if mode in ("check", "enforce") else "off"


def _env_baseline():
    """Default for the template baseline tier: on unless REPRO_BASELINE
    disables it (the CI ablation leg and A/B benchmarks set 0)."""
    return os.environ.get("REPRO_BASELINE", "").strip().lower() \
        not in ("0", "false", "no", "off")


@dataclasses.dataclass
class CompileOptions:
    # Inlining policy: 'always' | 'nonrec' | 'never' (paper 3.1). Lancet
    # "will always try to inline non-recursive functions, unless
    # instructed otherwise".
    inline_policy: str = "nonrec"
    max_inline_depth: int = 120

    # Loop handling: natural unrolling happens only under an `unroll`
    # dynamic scope; this caps duplicated loop versions.
    unroll_limit: int = 1024

    # Fixpoint engine limits.
    max_passes: int = 60
    max_blocks: int = 20000
    max_stmts: int = 2_000_000

    # Partial-evaluation aggressiveness.
    fold_val_fields: bool = True       # read final fields of statics
    assume_static_arrays: bool = True  # fold reads of pre-existing arrays
    speculate_stable: bool = True      # fold @stable fields + invalidation

    # Demanded-analysis switches (also reachable via Lancet.checkNoAlloc /
    # Lancet.checkNoTaint dynamic scopes).
    check_noalloc: bool = False
    check_taint: bool = False

    # Self-checking: run the IR well-formedness verifier after staging and
    # again after fusion/DCE; run the bytecode verifier on the unit's entry
    # method(s) before staging.
    verify_ir: bool = False
    verify_bytecode: bool = False

    # Speculation-soundness checkers (repro.analysis.validate /
    # repro.analysis.deoptcheck), interleaved into the PassManager:
    # `validate_passes` runs the Alive-style per-pass translation
    # validator (snapshot before each tier-2/trace pass, check the
    # simulation relation after); `verify_deopt` runs the deopt-state
    # verifier at every checkpoint (every guard/side-exit's DeoptMeta
    # against bytecode-level liveness at the target bci). A failed check
    # rejects the compile — the unit recompiles with the offending pass
    # off and a `validate.reject` telemetry event. Default-on under
    # REPRO_VALIDATE=1 (tests/CI), default-off otherwise (benchmarks).
    validate_passes: bool = dataclasses.field(default_factory=_env_validate)
    verify_deopt: bool = dataclasses.field(default_factory=_env_validate)

    # Delite accelerator-op fusion (paper 3.4); off for ablations.
    delite_fusion: bool = True

    # Delite parallel-safety analysis (repro.analysis.parsafe), gating
    # which ops the smp/gpu backends may run: 'off' trusts every op (the
    # pre-PR-10 behavior); 'enforce' classifies each DeliteOp and demotes
    # anything not ProvenParallel to the seq backend (with a
    # parsafe.fallback event); 'check' additionally arms the dynamic
    # write sanitizer (repro.analysis.raced) on every chunked execution,
    # raising RaceDetected when two chunks' write footprints overlap —
    # the runtime cross-check of the static verdicts. Defaults from
    # REPRO_PARSAFE (the CI sanitizer leg sets 'check').
    parsafe: str = dataclasses.field(default_factory=_env_parsafe)

    # Tier-2 optimization passes powered by the static analyses in
    # repro.analysis (effects/escape/ranges). Each flag gates one pass so
    # ablations and the differential fuzzer can isolate them.
    opt_gvn: bool = True            # dominator-scoped CSE + load/call CSE
    opt_licm: bool = True           # loop-invariant code motion
    opt_scalar_replace: bool = True  # sink non-escaping allocations
    opt_range_guards: bool = True   # interval-proven guard/branch pruning

    # Tiered compilation (paper 3.1: makeJIT/makeHOT as library policy).
    # `tier` names the tier this options object compiles at: 1 = quick
    # staged compile (shallow specialization, minimal guards, no analysis
    # passes), 2 = full optimizing compile. The thresholds drive the
    # per-VM TierPolicy: invocation counts for 0->1 and 1->2 promotion,
    # a loop back-edge count for mid-execution OSR tier-up, and the
    # number of deopts a unit may take before being demoted a tier
    # (and finally blacklisted to the interpreter).
    tier: int = 2
    tier1_threshold: int = 2
    tier2_threshold: int = 8
    osr_threshold: int = 100
    deopt_budget: int = 3

    # Route eligible Tier-1 units (static methods, no receiver
    # specialization) to the template baseline compiler derived from the
    # interpreter's handler table (repro.baseline) instead of the cut-
    # down staged compile. Falls back to the staged path automatically
    # on CPythons the bytecode assembler does not target.
    baseline: bool = dataclasses.field(default_factory=_env_baseline)

    # Tier T, the trace-recording tier (repro.pipeline.tracing): enabled
    # explicitly (or via REPRO_TRACE_TIER=1). A loop back-edge taken
    # `trace_threshold` times flips the interpreter into recording mode;
    # recordings abort past `trace_max_ops` instructions or
    # `trace_max_depth` inlined guest frames. A guard exit taken
    # `bridge_threshold` times gets a bridge trace stitched on; a trace
    # whose exits total `trace_exit_budget` without a bridge absorbing
    # them is blacklisted back to the interpreter/method ladder.
    trace_tier: bool = False
    trace_threshold: int = 30
    trace_max_ops: int = 3000
    trace_max_depth: int = 8
    bridge_threshold: int = 4
    trace_exit_budget: int = 40

    # Memoize compile_function/compile_method per (method, specialization,
    # options) in Lancet.unit_cache; off forces a fresh compilation.
    unit_cache: bool = True

    # Persistent code cache (warm starts): a directory for on-disk
    # entries (None disables persistence), a master switch, and a size
    # budget enforced by LRU eviction. The REPRO_NO_PERSIST environment
    # variable overrides `persist` to False (CI's in-memory-only run).
    cache_dir: str = None
    persist: bool = True
    cache_budget_bytes: int = 64 << 20

    # Asynchronous CompileService: > 0 starts that many background
    # compile workers, and tier promotions / make_hot background
    # compiles enqueue instead of compiling inline (the hot path keeps
    # running at the current tier until the result lands). 0 = compile
    # synchronously (the PR 3 behavior).
    compile_workers: int = 0

    # Treat compilation warnings as errors.
    warnings_as_errors: bool = False

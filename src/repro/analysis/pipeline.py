"""The IR analysis pipeline run between staging and code generation.

Order matters and encodes the semantics this package exists for:

1. **verify (staged)** — catch malformed IR where it was produced;
2. **optimize** — block fusion, effect-aware DCE, redundant-guard
   elimination (moved here from the code generator so later passes see
   the code that will actually be emitted);
3. **verify (optimized)** — the optimizer must preserve well-formedness;
4. **taint** — flow-sensitive leak detection over the optimized CFG;
5. **alloc** — post-DCE ``checkNoAlloc``: dead allocations are gone by
   now, so only allocations surviving into generated code are reported.

In *enforce* mode (normal compilation) violations raise
:class:`IRVerifyError` / :class:`TaintError` / :class:`NoAllocError`; in
*collect* mode (``Lancet.analyze``) they become structured findings on a
:class:`~repro.analysis.diagnostics.Diagnostics` and compilation
continues. Phase wall-times land in ``CompileReport.phases`` under
``analysis.*`` keys, surfacing in ``Lancet.stats()['phase_timings']``;
an ``analysis.report`` event (and ``analysis.verify_fail`` on verifier
errors) goes through the observability event trace.
"""

from __future__ import annotations

import time

from repro.analysis.alloc import check_noalloc
from repro.analysis.dce import eliminate_dead, eliminate_redundant_guards
from repro.analysis.taint import find_leaks
from repro.analysis.verify import verify_ir
from repro.errors import IRVerifyError, NoAllocError, TaintError


class AnalysisPipeline:
    """Runs the verify/optimize/taint/alloc passes over a CompileResult.

    ``diagnostics`` switches the pipeline into collect mode: findings are
    appended there instead of raising.
    """

    def __init__(self, options, telemetry=None, diagnostics=None):
        self.options = options
        self.telemetry = telemetry
        self.diagnostics = diagnostics

    # -- helpers ---------------------------------------------------------------

    def _record_phase(self, report, phase, t0):
        if report is not None:
            report.phases[phase] = report.phases.get(phase, 0.0) \
                + (time.perf_counter() - t0)

    def _tel_record(self, kind, /, **data):
        if self.telemetry is not None:
            self.telemetry.record(kind, **data)

    def _verify(self, result, name, stage, report):
        t0 = time.perf_counter()
        errors = verify_ir(result.blocks, result.entry_bid,
                           params=result.param_names, metas=result.metas,
                           stage=stage, collect=True)
        self._record_phase(report, "analysis.verify", t0)
        if not errors:
            return
        self._tel_record("analysis.verify_fail", unit=name, stage=stage,
                         errors=list(errors))
        if self.diagnostics is not None:
            self.diagnostics.extend("error", "verify",
                                    ["%s IR: %s" % (stage, e)
                                     for e in errors])
            return
        raise IRVerifyError(
            "IR verification failed for %s (%s IR): %s"
            % (name, stage, "; ".join(errors)), errors=errors, stage=stage)

    # -- the pipeline ----------------------------------------------------------

    def run(self, result, name, report=None):
        """Verify, optimize, and analyze ``result`` in place; returns a
        summary dict (also emitted as an ``analysis.report`` event)."""
        from repro.lms.codegen_py import fuse_blocks
        opts = self.options
        diag = self.diagnostics
        verify = opts.verify_ir or diag is not None

        if verify:
            self._verify(result, name, "staged", report)

        t0 = time.perf_counter()
        fuse_blocks(result.blocks, result.entry_bid)
        removed_stmts = eliminate_dead(result.blocks, result.entry_bid)
        removed_guards = eliminate_redundant_guards(result.blocks)
        self._record_phase(report, "analysis.optimize", t0)

        if verify:
            self._verify(result, name, "optimized", report)

        t0 = time.perf_counter()
        leaks = find_leaks(result.blocks, result.entry_bid,
                           result.taint_branch_sinks)
        self._record_phase(report, "analysis.taint", t0)

        t0 = time.perf_counter()
        sites = check_noalloc(result.blocks, result.noalloc_sites)
        self._record_phase(report, "analysis.alloc", t0)

        summary = {
            "removed_stmts": removed_stmts,
            "removed_guards": removed_guards,
            "leaks": len(leaks),
            "noalloc_sites": len(sites),
            "blocks": len(result.blocks),
            "warnings": len(result.warnings),
        }
        self._tel_record("analysis.report", unit=name, **summary)

        if diag is not None:
            diag.extend("error", "taint", leaks)
            diag.extend("error", "noalloc", sites)
            diag.extend("warning", "compile",
                        [str(w) for w in result.warnings])
            diag.add("info", "dce", "%d dead statement(s) removed"
                     % removed_stmts)
            if removed_guards:
                diag.add("info", "guards", "%d redundant guard(s) removed"
                         % removed_guards)
            return summary

        if leaks:
            raise TaintError(
                "taint analysis of %s found %d leak(s): %s"
                % (name, len(leaks), "; ".join(leaks)), leaks=leaks)
        if sites:
            raise NoAllocError(
                "checkNoAlloc failed for %s: %d residual allocation/deopt "
                "site(s): %s" % (name, len(sites), "; ".join(sites)),
                sites=sites)
        return summary

"""Speculative optimization (paper 3.2): likely/speculate/stable,
slowpath/fastpath, @stable fields with invalidation."""

import pytest

from repro import CompileOptions
from tests.conftest import load


class TestSpeculate:
    SRC = '''
        def make() {
          return Lancet.compile(fun(x) {
            if (Lancet.speculate(x < 100)) { return x * 2; }
            else { return 0 - x; }
          });
        }
    '''

    def test_fast_path(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        assert f(5) == 10
        assert f.deopt_count == 0

    def test_else_branch_not_compiled(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        assert "_DeoptEx" in f.source
        # the negation branch is gone from compiled code
        assert "0 - " not in f.source and "_sub(0" not in f.source

    def test_deopt_recovers_semantics(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        assert f(200) == -200
        assert f.deopt_count == 1
        assert f.valid            # speculate keeps the compiled code

    def test_repeated_deopts(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        for v in (150, 300, 50):
            expected = v * 2 if v < 100 else -v
            assert f(v) == expected
        assert f.deopt_count == 2


class TestStable:
    SRC = '''
        class Config { var limit; def init(l) { this.limit = l; } }
        def make(c) {
          return Lancet.compile(fun(x) => x + Lancet.stable(c.limit));
        }
    '''

    def test_folds_snapshot(self):
        j = load(self.SRC)
        c = j.vm.new_object("Config", [7])
        f = j.vm.call("Main", "make", [c])
        assert f(1) == 8
        assert "_add(a1, 7)" in f.source or "a1 + 7" in f.source

    def test_change_triggers_recompile(self):
        j = load(self.SRC)
        c = j.vm.new_object("Config", [7])
        f = j.vm.call("Main", "make", [c])
        f(0)
        c.put("limit", 9)
        assert f(1) == 10          # correct via deopt, then invalidated
        assert not f.valid or f.compile_count > 1
        assert f(1) == 10          # recompiled against the new value
        assert f.valid
        assert f.compile_count == 2
        assert "9" in f.source


class TestStableFields:
    SRC = '''
        class Node {
          var key; var left; var right;
          def init(k) { this.key = k; this.left = null; this.right = null; }
        }
        def lookupGen(root) {
          // unrollTopLevel: clone the traversal per (static) node so the
          // tree structure becomes branching code (paper 3.2).
          return Lancet.compile(fun(k) {
            return Lancet.unrollTopLevel(fun() {
              var n = root;
              while (n != null) {
                if (n.key == k) { return true; }
                if (k < n.key) { n = n.left; } else { n = n.right; }
              }
              return false;
            });
          });
        }
    '''

    def build(self, j, keys):
        nodes = {}
        root = None
        for k in keys:
            n = j.vm.new_object("Node", [k])
            nodes[k] = n
            if root is None:
                root = n
            else:
                cur = root
                while True:
                    if k < cur.get("key"):
                        if cur.get("left") is None:
                            cur.put("left", n)
                            break
                        cur = cur.get("left")
                    else:
                        if cur.get("right") is None:
                            cur.put("right", n)
                            break
                        cur = cur.get("right")
        return root, nodes

    def test_tree_lookup_compiles_to_decision_code(self):
        j = load(self.SRC)
        j.mark_stable("Node", "left")
        j.mark_stable("Node", "right")
        j.mark_stable("Node", "key")
        root, __ = self.build(j, [10, 5, 15, 3, 7])
        f = j.vm.call("Main", "lookupGen", [root])
        for k in (10, 5, 15, 3, 7):
            assert f(k) is True
        for k in (1, 6, 99):
            assert f(k) is False
        # The tree became branching code: keys embedded as constants,
        # no field reads left.
        assert "fields[" not in f.source and "_getf" not in f.source

    def test_structural_update_invalidates_and_recompiles(self):
        j = load(self.SRC)
        j.mark_stable("Node", "left")
        j.mark_stable("Node", "right")
        j.mark_stable("Node", "key")
        root, nodes = self.build(j, [10, 5, 15])
        f = j.vm.call("Main", "lookupGen", [root])
        assert f(7) is False
        # Insert 7 under 5 — writes a @stable field -> invalidation.
        n7 = j.vm.new_object("Node", [7])
        nodes[5].put("right", n7)
        assert not f.valid
        assert f(7) is True          # recompiled against the new structure
        assert f.compile_count == 2


class TestSlowpathFastpath:
    def test_slowpath_drops_to_interpreter(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                if (x > 10) { Lancet.slowpath(); return x * 100; }
                return x + 1;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 4
        assert f(20) == 2000
        assert f.deopt_count == 1
        # The slow branch compiles to a bare deopt, not the multiply.
        assert "100" not in f.source

    def test_fastpath_recompiles_continuation(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                if (x > 10) { Lancet.fastpath(); return x * 100; }
                return x + 1;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 4
        assert f(20) == 2000       # via on-the-fly compilation of the rest
        assert "_osr" in f.source

    def test_safeint_pattern(self):
        """The paper's overflow-safe integers: compiled code handles only
        machine-size ints; overflow deoptimizes."""
        j = load('''
            def safeAdd(a, b) {
              var r = a + b;
              if (r > 2147483647) { Lancet.slowpath(); return r; }
              if (r < -2147483648) { Lancet.slowpath(); return r; }
              return r;
            }
            def make() {
              return Lancet.compile(fun(a, b) => safeAdd(a, b));
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(1, 2) == 3
        assert f.deopt_count == 0
        assert f(2**31 - 1, 5) == 2**31 + 4    # overflow -> interpreter
        assert f.deopt_count == 1


class TestSpeculationTelemetry:
    SRC = TestSpeculate.SRC

    def test_guard_install_counted(self):
        j = load(self.SRC)
        j.vm.call("Main", "make")
        stats = j.stats()
        assert stats["guards_installed"] >= 1
        assert stats["guard_failures"] == 0
        assert stats["deopts"] == 0

    def test_guard_failure_and_deopt_counted(self):
        j = load(self.SRC)
        f = j.vm.call("Main", "make")
        assert f(200) == -200          # guard fails -> deopt
        assert f(300) == -300
        stats = j.stats()
        assert stats["deopts"] == 2
        assert stats["guard_failures"] == 2

    def test_slowpath_deopt_not_a_guard_failure(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                if (x > 10) { Lancet.slowpath(); return x * 100; }
                return x + 1;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(20) == 2000
        stats = j.stats()
        assert stats["deopts"] == 1
        assert stats["guard_failures"] == 0    # explicit slowpath, no guard
        assert stats["deopt_sites"] >= 1

    def test_deopt_events_traced(self):
        j = load(self.SRC)
        j.telemetry.enable_trace()
        f = j.vm.call("Main", "make")
        f(5)
        assert j.telemetry.events("deopt") == []
        f(200)
        events = j.telemetry.events("deopt")
        assert len(events) == 1
        assert events[0].data["reason"] == "guard"
        installs = j.telemetry.events("guard.install")
        assert len(installs) >= 1

    def test_stable_invalidation_counted(self):
        j = load(TestStable.SRC)
        c = j.vm.new_object("Config", [7])
        f = j.vm.call("Main", "make", [c])
        f(0)
        c.put("limit", 9)
        f(1)
        stats = j.stats()
        assert stats["invalidations"] >= 1
        assert stats["deopts"] >= 1

    def test_osr_compile_counted(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                if (x > 10) { Lancet.fastpath(); return x * 100; }
                return x + 1;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(20) == 2000
        assert j.stats()["osr_compiles"] == 1


class TestLikely:
    def test_statically_false_warns(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                if (Lancet.likely(false)) { return 1; }
                return x;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 3
        assert any("likely" in w for w in f.warnings)

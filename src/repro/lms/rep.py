"""Staged values (``Rep[T]`` in the paper).

A ``Rep`` denotes a piece of generated code that computes a value when the
compiled function executes later:

* :class:`Sym` — a named intermediate result (one per IR statement, or a
  block parameter at control-flow joins);
* :class:`ConstRep` — an embedded primitive constant;
* :class:`StaticRep` — a reference to a pre-existing heap object, compiled
  as an index into the function's statics table.
"""

from __future__ import annotations


class Rep:
    __slots__ = ()


class Sym(Rep):
    """A staged intermediate value, identified by its variable name."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Sym) and other.name == self.name

    def __hash__(self):
        return hash(("Sym", self.name))

    def __repr__(self):
        return self.name


class ConstRep(Rep):
    """A compile-time constant embedded in generated code."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return (isinstance(other, ConstRep) and other.value == self.value
                and type(other.value) is type(self.value))

    def __hash__(self):
        return hash(("ConstRep", self.value))

    def __repr__(self):
        return "c(%r)" % (self.value,)


class StaticRep(Rep):
    """A pre-existing object, reachable as ``K[index]`` in generated code."""

    __slots__ = ("index", "obj")

    def __init__(self, index, obj):
        self.index = index
        self.obj = obj

    def __eq__(self, other):
        return isinstance(other, StaticRep) and other.index == self.index

    def __hash__(self):
        return hash(("StaticRep", self.index))

    def __repr__(self):
        return "K[%d]" % self.index

"""Per-element kernels: Lancet-compiled guest closures + numpy vectorizer.

A kernel has a scalar form (the Lancet-compiled closure — already fast
Python) and, when the staged IR is straight-line arithmetic, a vectorized
numpy form built by re-rendering the same IR with array operations. The
vectorized form is this reproduction's analogue of Delite's CUDA kernels.
"""

from __future__ import annotations

import numpy as np

from repro.lms.ir import Return
from repro.lms.rep import ConstRep, Sym

# op -> numpy expression template
_VEC_TEMPLATES = {
    "add": "({0} + {1})",
    "sub": "({0} - {1})",
    "mul": "({0} * {1})",
    "div": "({0} / {1})",           # float semantics (kernels are numeric)
    "neg": "(-{0})",
    "eq": "({0} == {1})",
    "ne": "({0} != {1})",
    "lt": "({0} < {1})",
    "le": "({0} <= {1})",
    "gt": "({0} > {1})",
    "ge": "({0} >= {1})",
    "not": "(~{0})",
    "id": "{0}",
}

_VEC_NATIVES = {
    ("Math", "exp"): "np.exp({0})",
    ("Math", "log"): "np.log({0})",
    ("Math", "sqrt"): "np.sqrt({0})",
    ("Math", "abs"): "np.abs({0})",
    ("Math", "min"): "np.minimum({0}, {1})",
    ("Math", "max"): "np.maximum({0}, {1})",
    ("Math", "pow"): "np.power({0}, {1})",
    ("Math", "floor"): "np.floor({0})",
    ("Math", "toFloat"): "({0}).astype(np.float64)",
}


class Kernel:
    """A per-element function in scalar and (optionally) vector form."""

    def __init__(self, scalar_fn, arity, numpy_fn=None, name="kernel",
                 numpy_source=None):
        self.scalar_fn = scalar_fn
        self.arity = arity
        self.numpy_fn = numpy_fn
        self.name = name
        self.numpy_source = numpy_source

    @property
    def vectorized(self):
        return self.numpy_fn is not None

    @classmethod
    def from_closure(cls, jit, closure, name=None):
        """Compile a guest closure into a kernel via Lancet, then try to
        vectorize its IR."""
        compiled = jit.compile_closure(closure)
        arity = closure.cls.lookup_method("apply").num_params
        numpy_fn, source = try_vectorize(compiled, arity)
        kernel = cls(compiled, arity, numpy_fn=numpy_fn,
                     name=name or closure.cls.name, numpy_source=source)
        kernel.guest_closure = closure
        return kernel

    @classmethod
    def from_host(cls, scalar_fn, arity, numpy_fn=None, name="host-kernel"):
        """A kernel written directly in Python (the standalone-Delite
        path, bypassing Lancet)."""
        return cls(scalar_fn, arity, numpy_fn=numpy_fn, name=name)

    def compose(self, outer):
        """Kernel fusion: ``outer(self(x...))`` (outer must be unary)."""
        if outer.arity != 1:
            raise ValueError("can only fuse into a unary kernel")
        inner_s, outer_s = self.scalar_fn, outer.scalar_fn

        def fused_scalar(*xs):
            return outer_s(inner_s(*xs))

        fused_numpy = None
        if self.numpy_fn is not None and outer.numpy_fn is not None:
            inner_v, outer_v = self.numpy_fn, outer.numpy_fn

            def fused_numpy(*xs):
                return outer_v(inner_v(*xs))

        return Kernel(fused_scalar, self.arity, numpy_fn=fused_numpy,
                      name="%s∘%s" % (outer.name, self.name))

    def __repr__(self):
        return "<Kernel %s/%d%s>" % (self.name, self.arity,
                                     " vec" if self.vectorized else "")


def try_vectorize(compiled, arity):
    """Build a numpy whole-array function from a compiled kernel's IR.

    Succeeds only for straight-line numeric kernels (one block ending in
    Return, ops from the arithmetic whitelist); everything else keeps the
    scalar form. Returns ``(fn or None, source or None)``.
    """
    ir = getattr(compiled, "ir", None)
    if ir is None:
        return None, None
    blocks = [b for b in ir.blocks.values() if b.stmts or
              not _is_trivial_jump(b)]
    if len(blocks) != 1 or not isinstance(blocks[0].terminator, Return):
        return None, None
    block = blocks[0]
    params = ["a%d" % (i + 1) for i in range(arity)]

    def render(rep):
        if isinstance(rep, Sym):
            return rep.name
        if isinstance(rep, ConstRep) and isinstance(rep.value, (int, float)) \
                and not isinstance(rep.value, bool):
            return repr(rep.value)
        raise _NotVectorizable()

    lines = ["def __kernel(%s):" % ", ".join(params)]
    try:
        for stmt in block.stmts:
            if stmt.op in _VEC_TEMPLATES:
                expr = _VEC_TEMPLATES[stmt.op].format(
                    *[render(a) for a in stmt.args])
            elif stmt.op == "native":
                nat = stmt.args[0]
                template = _VEC_NATIVES.get((nat.class_name, nat.name))
                if template is None:
                    return None, None
                expr = template.format(*[render(a) for a in stmt.args[1:]])
            else:
                return None, None
            lines.append("    %s = %s" % (stmt.sym.name, expr))
        lines.append("    return %s" % render(block.terminator.value))
    except _NotVectorizable:
        return None, None

    source = "\n".join(lines) + "\n"
    namespace = {"np": np}
    exec(compile(source, "<delite-kernel>", "exec"), namespace)
    return namespace["__kernel"], source


class _NotVectorizable(Exception):
    pass


def _is_trivial_jump(block):
    from repro.lms.ir import Jump
    return (not block.stmts and isinstance(block.terminator, Jump)
            and not block.terminator.phi_assigns)

"""Hand-optimized numpy baselines ("C++" rows of Table 2) and workload
generators, plus standalone-Delite versions built without Lancet.

The C++ analogues are hand-fused exactly as the paper describes its C++:
operations merged into minimal passes, memory reused.
"""

from __future__ import annotations

import random

import numpy as np


# -- workloads ------------------------------------------------------------------

def kmeans_data(n, k=4, seed=0):
    """2-D points around k well-separated centers; returns (px, py) as
    Python lists (guest arrays) — convert with np.asarray for numpy use."""
    rng = random.Random(seed)
    centers = [(10.0 * c, 5.0 * (c % 2)) for c in range(k)]
    px, py = [], []
    for i in range(n):
        cx, cy = centers[i % k]
        px.append(cx + rng.gauss(0, 1.0))
        py.append(cy + rng.gauss(0, 1.0))
    return px, py


def logreg_data(n, d=4, seed=0):
    """Columns (list of d lists), labels y in {0,1}."""
    rng = random.Random(seed)
    true_w = [((-1) ** j) * (j + 1) / d for j in range(d)]
    cols = [[rng.gauss(0, 1.0) for __ in range(n)] for __ in range(d)]
    y = []
    for i in range(n):
        z = sum(cols[j][i] * true_w[j] for j in range(d))
        y.append(1.0 if z > 0 else 0.0)
    return cols, y


def names_data(n, seed=0):
    rng = random.Random(seed)
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return sorted("".join(rng.choice(letters)
                          for __ in range(rng.randint(3, 10)))
                  for __ in range(n))


# -- hand-fused numpy ("C++") implementations --------------------------------------

def kmeans_cpp(px, py, k, iters):
    px = np.asarray(px, dtype=np.float64)
    py = np.asarray(py, dtype=np.float64)
    cx = px[:k].copy()
    cy = py[:k].copy()
    for __ in range(iters):
        dx = px[:, None] - cx[None, :]
        dy = py[:, None] - cy[None, :]
        assign = np.argmin(dx * dx + dy * dy, axis=1)
        cnt = np.bincount(assign, minlength=k)
        sx = np.bincount(assign, weights=px, minlength=k)
        sy = np.bincount(assign, weights=py, minlength=k)
        nz = cnt > 0
        cx[nz] = sx[nz] / cnt[nz]
        cy[nz] = sy[nz] / cnt[nz]
    return cx, cy


def logreg_cpp(cols, y, iters, alpha):
    # Hand-fused, column-major (SoA) like an optimized C++ version.
    cols_a = [np.asarray(c, dtype=np.float64) for c in cols]
    y = np.asarray(y, dtype=np.float64)
    d = len(cols_a)
    w = np.zeros(d)
    for __ in range(iters):
        z = cols_a[0] * w[0]
        for j in range(1, d):
            z += cols_a[j] * w[j]
        with np.errstate(over="ignore"):
            err = y - 1.0 / (1.0 + np.exp(-z))
        for j in range(d):
            w[j] += alpha * float(cols_a[j] @ err)
    return w


def namescore_python(names):
    """The host-library version: index pairs + intermediate list (what a
    straightforward Python/Scala-collections version does)."""
    pairs = list(zip(names, range(len(names))))
    scores = [i * sum(ord(c) - 64 for c in a) for a, i in pairs]
    return sum(scores)


def namescore_fused(names):
    """Hand-fused: single pass, no intermediates."""
    total = 0
    for i, a in enumerate(names):
        s = 0
        for c in a:
            s += ord(c) - 64
        total += i * s
    return total


# -- standalone Delite (no Lancet): ops constructed directly ------------------------

def kmeans_delite(runtime, px, py, k, iters):
    """The 'Delite (standalone)' row: the same ops the macros emit,
    written against the Delite API directly (a staged DSL program)."""
    from repro.delite.ops import CLUSTER_SUMS_2D, NEAREST_2D
    px_a = runtime.register_data(px)
    py_a = runtime.register_data(py)
    cx = list(px[:k])
    cy = list(py[:k])
    for __ in range(iters):
        assign = runtime.run(NEAREST_2D, px_a, py_a, cx, cy)
        sums = runtime.run(CLUSTER_SUMS_2D, px_a, py_a, assign, k)
        sx, sy, cnt = sums[0], sums[1], sums[2]
        for j in range(k):
            if cnt[j] > 0:
                cx[j] = float(sx[j] / cnt[j])
                cy[j] = float(sy[j] / cnt[j])
    return cx, cy


def logreg_delite(runtime, cols, y, iters, alpha):
    from repro.delite.ops import (SIGMOID, VSUB, mat_vec_cols,
                                  weighted_col_sums)
    d = len(cols)
    col_arrays = [runtime.register_data(c) for c in cols]
    y_a = runtime.register_data(y)
    mv = mat_vec_cols(d)
    wcs = weighted_col_sums(d)
    w = [0.0] * d
    for __ in range(iters):
        z = runtime.run(mv, *(col_arrays + [w]))
        p = runtime.run(SIGMOID, z)
        err = runtime.run(VSUB, y_a, p)
        grad = runtime.run(wcs, *(col_arrays + [err]))
        for j in range(d):
            w[j] = w[j] + alpha * float(grad[j])
    return w

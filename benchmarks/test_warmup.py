"""Warmup benchmark: Tier-1 quick compiles vs Tier-2 optimizing compiles.

Time-to-first-compiled-call is the Tier-1 pitch: shallow specialization,
no inlining, minimal pass list. These tests assert, on the Table 2
kernels (k-means, logreg), that the Tier-1 compile is strictly faster
than the Tier-2 compile, and that steady state pays nothing for having
warmed up through Tier 1 (a promoted unit is bit-identical to a direct
Tier-2 compile).

Compile times are read from the per-tier telemetry timings
(``compile.tier<N>.total``) rather than wall-clocking host glue, and the
comparison is best-of-N on fresh VMs to keep CI noise out.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro import Lancet
from repro.apps import load_app
from repro.optiml import load_optiml
from repro.pipeline import TIER1, TIER2, tier_options

REPEATS = 3


def _fresh_kmeans():
    from repro.optiml.reference import kmeans_data
    n, k, iters = 4000, 4, 2
    px, py = kmeans_data(n, k)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "kmeans", module="Kmeans")
    jit.delite.register_data(px)
    jit.delite.register_data(py)
    return jit, "Kmeans", [px, py, k, iters]


def _fresh_logreg():
    from repro.optiml.reference import logreg_data
    n, d, iters, alpha = 4000, 8, 2, 0.05
    cols, y = logreg_data(n, d)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "logreg", module="Logreg")
    for c in cols:
        jit.delite.register_data(c)
    jit.delite.register_data(y)
    return jit, "Logreg", [cols, y, iters, alpha]


def _compile_seconds(fresh, tier, repeats=REPEATS):
    """Best-of-N compile time (telemetry, compile phases only) of the
    kernel's ``makeCompiled`` at ``tier``; also returns the last compiled
    function and its result for differential checks."""
    best = float("inf")
    cf = None
    for __ in range(repeats):
        jit, module, args = fresh()
        jit.options = tier_options(jit.options, tier)
        cf = jit.vm.call(module, "makeCompiled", args)
        timing = jit.telemetry.metrics.timing("compile.tier%d.total" % tier)
        best = min(best, timing["total"])
    return best, cf


class TestWarmupCompileTime:
    def test_tier1_compiles_kmeans_strictly_faster(self):
        t1, cf1 = _compile_seconds(_fresh_kmeans, TIER1)
        t2, cf2 = _compile_seconds(_fresh_kmeans, TIER2)
        assert t1 < t2, ("Tier-1 kmeans compile (%.4fs) not faster than "
                         "Tier 2 (%.4fs)" % (t1, t2))
        # Both tiers must agree on the kernel's output (approx: Tier 1
        # skips Delite fusion, which reassociates float reductions).
        r1, r2 = cf1(0), cf2(0)
        assert len(r1) == len(r2)
        for row1, row2 in zip(r1, r2):
            assert row1 == pytest.approx(row2)

    def test_tier1_compiles_logreg_strictly_faster(self):
        t1, cf1 = _compile_seconds(_fresh_logreg, TIER1)
        t2, cf2 = _compile_seconds(_fresh_logreg, TIER2)
        assert t1 < t2, ("Tier-1 logreg compile (%.4fs) not faster than "
                         "Tier 2 (%.4fs)" % (t1, t2))
        assert cf1(0) == pytest.approx(cf2(0))


BASELINE_KERNEL = '''
    def kernel(n, seed) {
      var acc = seed;
      var lo = 0;
      var hi = 0;
      var i = 0;
      while (i < n) {
        var t = (acc * 31 + i) % 9973;
        if (t < 4986) { lo = lo + t; } else { hi = hi + (t - 4986); }
        var j = 0;
        while (j < 3) { acc = acc + ((t + j) % 7); j = j + 1; }
        if ((i % 11) == 0) { acc = acc - Math.min(lo, hi); }
        i = i + 1;
      }
      return acc + lo * 2 - hi;
    }
'''


class TestBaselineCompileLatency:
    """The ISSUE 8 headline: template-compiling Tier 1 (no staging, no
    PassManager, straight to a CPython code object) must cut Tier-1
    compile latency by >=10x against the staged Tier-1 pipeline on the
    same unit, while producing byte-identical steady-state results."""

    ARGS = [(0, 1), (50, 7), (200, -3), (500, 12345)]

    def _tier1_seconds(self, baseline, repeats=REPEATS):
        best = float("inf")
        cf = None
        for __ in range(repeats):
            jit = Lancet()
            jit.load(BASELINE_KERNEL)
            opts = dataclasses.replace(
                tier_options(jit.options, TIER1), baseline=baseline)
            cf = jit.compile_function("Main", "kernel", options=opts)
            timing = jit.telemetry.metrics.timing("compile.tier1.total")
            best = min(best, timing["total"])
        return best, cf

    @pytest.mark.skipif(
        "not __import__('repro.baseline', fromlist=['x'])"
        ".baseline_supported()",
        reason="baseline templates target CPython 3.11")
    def test_baseline_tier1_latency_10x_under_staged(self):
        t_base, cf_base = self._tier1_seconds(baseline=True)
        t_staged, cf_staged = self._tier1_seconds(baseline=False)
        assert cf_base.kind == "baseline"
        assert getattr(cf_staged, "kind", None) != "baseline"

        # Byte-identical steady state: integer kernel, exact equality.
        results_base = [cf_base(*a) for a in self.ARGS]
        results_staged = [cf_staged(*a) for a in self.ARGS]
        assert results_base == results_staged

        report = {
            "kernel": "Main.kernel",
            "tier1_baseline_seconds": t_base,
            "tier1_staged_seconds": t_staged,
            "speedup": t_staged / t_base if t_base else float("inf"),
            "results_identical": results_base == results_staged,
        }
        artifact = os.environ.get("REPRO_LATENCY_JSON")
        if artifact:
            with open(artifact, "w") as f:
                json.dump(report, f, indent=2)
        assert t_staged >= 10.0 * t_base, (
            "baseline Tier-1 compile (%.6fs) not >=10x under staged "
            "Tier 1 (%.6fs)" % (t_base, t_staged))


class TestSteadyState:
    SRC = '''
        def kernel(x, y) {
          var acc = 0;
          var i = 0;
          while (i < x) { acc = acc + y * i + (i % 7); i = i + 1; }
          return acc;
        }
    '''

    def _steady_seconds(self, compiled, args, iters=200):
        compiled(*args)   # shake off first-call effects
        t0 = time.perf_counter()
        for __ in range(iters):
            compiled(*args)
        return time.perf_counter() - t0

    def test_promoted_unit_is_identical_to_direct_tier2(self):
        """Structural no-slower-than-single-tier guarantee: warming up
        through Tier 1 converges on byte-identical Tier-2 code."""
        j = Lancet()
        j.load(self.SRC)
        j.options.tier1_threshold = 1
        j.options.tier2_threshold = 2
        tf = j.compile_tiered("Main", "kernel")
        for __ in range(3):
            tf(50, 3)
        assert tf.tier == TIER2

        direct_jit = Lancet()
        direct_jit.load(self.SRC)
        direct = direct_jit.compile_function("Main", "kernel")
        assert tf.compiled.source == direct.source

    def test_steady_state_throughput_not_slower(self):
        """Timed belt-and-braces on top of the source-equality check;
        generous slack (2x) so scheduler noise cannot fail CI."""
        j = Lancet()
        j.load(self.SRC)
        j.options.tier1_threshold = 1
        j.options.tier2_threshold = 2
        tf = j.compile_tiered("Main", "kernel")
        for __ in range(3):
            tf(50, 3)
        assert tf.tier == TIER2

        direct_jit = Lancet()
        direct_jit.load(self.SRC)
        direct = direct_jit.compile_function("Main", "kernel")

        args = (200, 3)
        assert tf.compiled(*args) == direct(*args)
        t_tiered = min(self._steady_seconds(tf.compiled, args)
                       for __ in range(REPEATS))
        t_direct = min(self._steady_seconds(direct, args)
                       for __ in range(REPEATS))
        assert t_tiered <= t_direct * 2.0, (
            "steady state after tiered warmup (%.4fs) slower than "
            "single-tier (%.4fs)" % (t_tiered, t_direct))

"""Post-optimization ``checkNoAlloc`` analysis (paper 3.3).

The demanded property is about the *generated code*: "the code must not
contain any allocations or deoptimization points". Checking at emit time
(as the staged interpreter originally did) is too strict — a dead or sunk
allocation that DCE removes never reaches the generated code. This pass
therefore runs over the optimized CFG, right before rendering, and reports
every surviving statement that violates the demand, with the allocating
op and its bytecode provenance (``flags['src']``).

Slowpath ``Deopt`` terminators are the one exception: they are recorded at
staging time (terminators can never be dead-code eliminated, and the
dynamic-scope information needed to attribute them is gone by now) and
passed in via ``staged_sites``.

Allocations that scalar replacement *sank* (see
:mod:`repro.pipeline.sink`) pass the check — they no longer exist in the
generated code — but are not silently forgotten: ``sunk_sites`` feeds
:func:`sunk_detail` so the diagnostic story stays explainable ("this
allocation was removed, here is where it was").
"""

from __future__ import annotations

from repro.lms.ir import Effect

_ALLOC_OPS = ("new", "new_array", "array_lit")


def check_noalloc(blocks, staged_sites=()):
    """Scan the optimized CFG for ``checkNoAlloc`` violations; returns a
    list of site descriptions (empty when the demand holds)."""
    sites = list(staged_sites)
    for bid in sorted(blocks):
        for stmt in blocks[bid].stmts:
            if not stmt.flags.get("noalloc"):
                continue
            where = _provenance(stmt.flags)
            if stmt.op == "native":
                nat = stmt.args[0]
                if getattr(nat, "allocates", False):
                    sites.append("native %s.%s allocation%s"
                                 % (nat.class_name, nat.name, where))
                elif stmt.effect is Effect.CALL:
                    sites.append("residual call to native %s.%s%s"
                                 % (nat.class_name, nat.name, where))
            elif stmt.effect is Effect.ALLOC or stmt.op in _ALLOC_OPS:
                sites.append("%s allocation%s" % (stmt.op, where))
            elif stmt.effect is Effect.CALL:
                sites.append("residual call (%s)%s" % (stmt.op, where))
            elif stmt.effect is Effect.GUARD:
                sites.append("deoptimization point (guard)%s" % where)
    return sites


def describe_alloc(stmt):
    """Human-readable description of one allocation statement, in the
    same format :func:`check_noalloc` reports residual sites."""
    return "%s allocation%s" % (stmt.op, _provenance(stmt.flags))


def sunk_detail(sunk_sites):
    """Diagnostic lines for allocations removed by scalar replacement —
    the paper's checkNoAlloc story must stay explainable even when the
    check passes *because* an optimization fired."""
    return ["%s sunk by scalar replacement" % site for site in sunk_sites]


def _provenance(flags):
    src = flags.get("src")
    if not src:
        return ""
    return " in %s (bci %d)" % (src[0], src[1])

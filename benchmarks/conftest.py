"""Shared benchmark fixtures (small sizes — the paper-scale tables are
produced by ``python benchmarks/harness.py``)."""

import sys
import os

# Benchmarks measure the optimizer, not the checkers: the speculation-
# soundness validators default OFF here (REPRO_VALIDATE=1 in the
# environment re-enables them, e.g. for the CI smoke artifact).
os.environ.setdefault("REPRO_VALIDATE", "0")

sys.path.insert(0, os.path.dirname(__file__))

import pytest

from repro import Lancet
from repro.apps import load_app
from repro.optiml import load_optiml


@pytest.fixture(scope="module")
def csv_setup():
    from repro.apps.csv_baselines import accessed_keys, generate_csv
    lines = generate_csv(4000)
    keys = accessed_keys()
    jit = Lancet()
    load_app(jit, "csv", module="CsvApp")
    # Warm: compile the specialized runner once. Copy the result — it is
    # the live guest accumulator, which re-running the runner mutates.
    expected = list(jit.vm.call("CsvApp", "flagQuery", [lines, keys]))
    runner = jit.compile_log[-1][1]
    return {"lines": lines, "keys": keys, "jit": jit,
            "expected": expected, "runner": runner}


@pytest.fixture(scope="module")
def kmeans_setup():
    from repro.optiml.reference import kmeans_data
    n, k, iters = 20000, 4, 3
    px, py = kmeans_data(n, k)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "kmeans", module="Kmeans")
    jit.delite.register_data(px)
    jit.delite.register_data(py)
    cf = jit.vm.call("Kmeans", "makeCompiled", [px, py, k, iters])
    cf(0)
    return {"px": px, "py": py, "k": k, "iters": iters, "jit": jit,
            "cf": cf}


@pytest.fixture(scope="module")
def logreg_setup():
    from repro.optiml.reference import logreg_data
    n, d, iters, alpha = 20000, 8, 3, 0.05
    cols, y = logreg_data(n, d)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "logreg", module="Logreg")
    for c in cols:
        jit.delite.register_data(c)
    jit.delite.register_data(y)
    cf = jit.vm.call("Logreg", "makeCompiled", [cols, y, iters, alpha])
    cf(0)
    return {"cols": cols, "y": y, "iters": iters, "alpha": alpha,
            "jit": jit, "cf": cf}


@pytest.fixture(scope="module")
def namescore_setup():
    from repro.optiml.reference import names_data
    names = names_data(5000)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "namescore", module="Namescore")
    cf = jit.vm.call("Namescore", "makeCompiled", [names])
    cf(0)
    return {"names": names, "jit": jit, "cf": cf}

"""Counter / timing-summary registry.

Counters and timings are plain dict operations at *rare* pipeline events
(one compile, one deopt, one cache probe) — never inside generated code or
the interpreter's dispatch loop — so the registry can stay always-on
without measurable overhead on hot loops.
"""

from __future__ import annotations

from collections import Counter


class Metrics:
    """Named counters plus summary "histograms" (count/total/min/max) for
    durations, keyed by dotted metric names."""

    def __init__(self):
        self.counters = Counter()
        self._timings = {}          # name -> [count, total, min, max]
        self._gauges = {}           # name -> [current, high-water mark]

    # -- counters -------------------------------------------------------------

    def inc(self, name, n=1):
        self.counters[name] += n

    def get(self, name):
        return self.counters.get(name, 0)

    # -- gauges ---------------------------------------------------------------

    def set_gauge(self, name, value):
        """Set a point-in-time level (e.g. compile-queue depth), keeping
        its high-water mark."""
        entry = self._gauges.get(name)
        if entry is None:
            self._gauges[name] = [value, value]
        else:
            entry[0] = value
            if value > entry[1]:
                entry[1] = value

    def gauge(self, name):
        entry = self._gauges.get(name)
        if entry is None:
            return None
        return {"value": entry[0], "max": entry[1]}

    def gauges(self):
        return {name: self.gauge(name) for name in self._gauges}

    # -- timings --------------------------------------------------------------

    def observe(self, name, seconds):
        entry = self._timings.get(name)
        if entry is None:
            self._timings[name] = [1, seconds, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds < entry[2]:
                entry[2] = seconds
            if seconds > entry[3]:
                entry[3] = seconds

    def timing(self, name):
        entry = self._timings.get(name)
        if entry is None:
            return None
        count, total, lo, hi = entry
        return {"count": count, "total": total, "min": lo, "max": hi,
                "mean": total / count}

    def timings(self):
        return {name: self.timing(name) for name in self._timings}

    # -- lifecycle ------------------------------------------------------------

    def snapshot(self):
        return {"counters": dict(self.counters), "timings": self.timings(),
                "gauges": self.gauges()}

    def reset(self):
        self.counters.clear()
        self._timings.clear()
        self._gauges.clear()

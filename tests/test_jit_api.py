"""Lancet facade: entry points, error contracts, background compilation,
type feedback."""

import time

import pytest

from repro import Lancet, make_hot
from repro.errors import GuestTypeError
from tests.conftest import load


class TestEntryPoints:
    def test_compile_method_against_receiver(self):
        j = load('''
            class Greeter {
              val prefix;
              def init(p) { this.prefix = p; }
              def greet(name) { return this.prefix + name; }
            }
        ''')
        g = j.vm.new_object("Greeter", ["hi "])
        compiled = j.compile_method("Greeter", "greet", g)
        assert compiled("bob") == "hi bob"
        assert "hi " in compiled.source   # receiver folded in

    def test_compile_non_closure_rejected(self, jit):
        with pytest.raises(GuestTypeError):
            jit.compile_closure(42)

    def test_compile_object_without_apply_rejected(self):
        j = load("class Plain { }")
        obj = j.vm.new_object("Plain")
        with pytest.raises(GuestTypeError, match="apply"):
            j.compile_closure(obj)

    def test_compile_log_records_units(self):
        j = load("def f(x) { return x; }")
        j.compile_function("Main", "f")
        assert any(name == "Main.f" for name, __ in j.compile_log)

    def test_compiled_repr_and_stats(self):
        j = load("def f(x) { return x; }")
        c = j.compile_function("Main", "f")
        assert "Main.f" in repr(c)
        assert c.compile_count == 1
        assert c.deopt_count == 0

    def test_recompile_after_manual_invalidation(self):
        j = load("def f(x) { return x + 1; }")
        c = j.compile_function("Main", "f")
        c.invalidate("test")
        assert not c.valid
        assert c(1) == 2
        assert c.valid
        assert c.compile_count == 2

    def test_independent_lancet_instances(self):
        j1 = load("def f(x) { return 1; }")
        j2 = load("def f(x) { return 2; }")
        assert j1.compile_function("Main", "f")(0) == 1
        assert j2.compile_function("Main", "f")(0) == 2


class TestBackgroundCompilation:
    SRC = '''
        def calc(x, y) {
          var acc = 0;
          var i = 0;
          while (i < x) { acc = acc + y + i; i = i + 1; }
          return acc;
        }
    '''

    def test_interprets_until_compiled(self):
        j = load(self.SRC)
        hot = make_hot(j, "Main", "calc", threshold=1, background=True)
        expected = sum(7 + i for i in range(40))
        # First calls interpret; compilation lands asynchronously.
        for __ in range(3):
            assert hot(40, 7) == expected
        for w in list(hot.pending.values()):
            w.join(timeout=10)
        # One more call adopts the compiled variant.
        assert hot(40, 7) == expected
        assert 40 in hot.cache

    def test_foreground_mode_unchanged(self):
        j = load(self.SRC)
        hot = make_hot(j, "Main", "calc", threshold=1, background=False)
        hot(5, 1)
        hot(5, 1)
        assert 5 in hot.cache


class TestTypeFeedback:
    def test_monomorphic_site_detection(self):
        j = load('''
            class A { def tag() { return 1; } }
            class B extends A { def tag() { return 2; } }
            def mono(o) { return o.tag(); }
            def run() {
              var a = new A();
              var b = new B();
              var i = 0;
              while (i < 5) { mono(a); i = i + 1; }
              mono(b);
              return 0;
            }
        ''')
        j.vm.profile = True
        j.vm.call("Main", "run")
        sites = j.vm.profiler.receiver_types
        # The call inside mono() saw two receiver classes -> polymorphic.
        mono_sites = [s for s in sites if "Main.mono" in s]
        assert mono_sites
        assert mono_sites[0] not in j.vm.profiler.monomorphic_sites()
        counts = sites[mono_sites[0]]
        assert counts["A"] == 5 and counts["B"] == 1

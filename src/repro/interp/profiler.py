"""Invocation profiling.

The paper argues that profile-driven black boxes are unpredictable, but it
still *uses* profiling as an explicit, program-controlled mechanism
(``calcHOT``/``makeHOT``, section 3.1). This module provides the counters:
per-method invocation counts, native-call counts, and per-call-site type
feedback (receiver classes seen), queryable by user code.
"""

from __future__ import annotations

from collections import Counter, defaultdict


class Profiler:
    """Counts events during interpretation (enabled via ``vm.profile``)."""

    def __init__(self):
        self.invocations = Counter()        # qualified method name -> count
        self.native_calls = Counter()       # "Cls.name" -> count
        self.receiver_types = defaultdict(Counter)  # site -> class name -> count
        self.backedges = Counter()          # (qualified name, target bci) -> count
        self.telemetry = None               # mirrored into Metrics when set

    def count_invoke(self, method):
        self.invocations[method.qualified_name] += 1
        if self.telemetry is not None:
            self.telemetry.inc("profile.invocations")

    def count_backedge(self, method, target_bci):
        """A loop back-edge (jump to ``target_bci``) was taken."""
        self.backedges[(method.qualified_name, target_bci)] += 1

    def count_native(self, class_name, name):
        self.native_calls["%s.%s" % (class_name, name)] += 1
        if self.telemetry is not None:
            self.telemetry.inc("profile.native_calls")

    def count_receiver(self, site, class_name):
        self.receiver_types[site][class_name] += 1

    def invocation_count(self, qualified_name):
        return self.invocations[qualified_name]

    def backedge_count(self, qualified_name, target_bci):
        return self.backedges[(qualified_name, target_bci)]

    def hot_methods(self, threshold):
        """Methods invoked at least ``threshold`` times."""
        return [name for name, n in self.invocations.items() if n >= threshold]

    def hot_loops(self, threshold):
        """(qualified name, target bci) loop headers whose back-edge count
        reached ``threshold``."""
        return [site for site, n in self.backedges.items() if n >= threshold]

    def polymorphic_in(self, qualified_name, min_classes=2):
        """Whether any call site inside ``qualified_name`` has seen at
        least ``min_classes`` distinct receiver classes (the trace tier
        targets such methods; the method tier residualizes their calls)."""
        prefix = qualified_name + "@"
        return any(site.startswith(prefix) and len(ctr) >= min_classes
                   for site, ctr in self.receiver_types.items())

    def monomorphic_sites(self):
        """Call sites that only ever saw a single receiver class."""
        return [site for site, ctr in self.receiver_types.items()
                if len(ctr) == 1]

    def reset(self):
        self.invocations.clear()
        self.native_calls.clear()
        self.receiver_types.clear()
        self.backedges.clear()

"""Loop-invariant code motion over the staged CFG.

Natural loops are found from back edges (``u -> h`` where ``h`` dominates
``u``). A statement hoists to the loop's *preheader* — the unique
outside predecessor, required to end in an unconditional ``Jump`` to the
header so hoisted code runs exactly when the loop is entered — when all
of its operands are defined outside the loop and one of:

* it is pure and *total* (:func:`repro.analysis.effects.is_total`): safe
  to execute even if the loop body would have skipped it;
* it is pure but may raise, or it is a heap read no statement in the
  loop can clobber, **and** it sits in the header's leading effect-free
  prefix: the preheader guarantees the header runs, so the statement was
  going to execute (and raise, if it raises) before any other effect
  anyway.

A ``delite`` launch with invariant arguments also hoists when the
parallel-safety summaries (:mod:`repro.analysis.parsafe`) prove its
kernel write-free, its result scalar (no identity to duplicate), and no
statement in the loop can write the heap it reads — the loop-invariant
``vsum(xs)`` case. Before the kernel summaries existed, Delite launches
were unconditionally pinned.

Loops are processed innermost-first and the whole thing iterates to a
fixpoint, so invariants chained through several statements (and through
nested preheaders) all migrate out.
"""

from __future__ import annotations

from repro.analysis.cfg import dominates, dominators, predecessors
from repro.analysis.effects import (COPY_OPS, clobbers, fresh_syms,
                                    is_pure, is_total, load_key)
from repro.analysis.parsafe import (delite_scalar_result, delite_total,
                                    delite_write_free)
from repro.lms.ir import Effect, Jump
from repro.lms.rep import Sym


def _natural_loops(blocks, entry_id):
    """``{header: set(body block ids)}`` merged over all back edges."""
    idom = dominators(blocks, entry_id)
    preds = predecessors(blocks)
    loops = {}
    for bid, block in blocks.items():
        if bid not in idom:
            continue
        for succ in block.terminator.successors():
            if succ in idom and dominates(idom, succ, bid):
                body = loops.setdefault(succ, {succ})
                work = [bid]
                while work:
                    n = work.pop()
                    if n in body:
                        continue
                    body.add(n)
                    work.extend(p for p in preds[n] if p in idom)
                # (workset never crosses the header: it is added first)
    return loops


def _preheader(blocks, preds, header, body):
    """The unique out-of-loop predecessor ending in ``Jump(header)``."""
    outside = [p for p in preds[header] if p not in body]
    if len(outside) != 1:
        return None
    pre = blocks[outside[0]]
    term = pre.terminator
    if not isinstance(term, Jump) or term.target != header:
        return None
    return pre


def hoist_loop_invariants(blocks, entry_id):
    """Run LICM in place; returns the number of statements hoisted."""
    hoisted_total = 0
    for _round in range(10):
        moved = _licm_round(blocks, entry_id)
        hoisted_total += moved
        if not moved:
            break
    return hoisted_total


def _licm_round(blocks, entry_id):
    loops = _natural_loops(blocks, entry_id)
    if not loops:
        return 0
    preds = predecessors(blocks)
    fresh = fresh_syms(blocks)
    moved = 0
    # Innermost loops first: their preheaders sit inside outer loops, so
    # outer iterations (and later rounds) can carry hoisted code further.
    for header in sorted(loops, key=lambda h: len(loops[h])):
        body = loops[header]
        pre = _preheader(blocks, preds, header, body)
        if pre is None:
            continue
        # Reducibility check: the header must be the loop's only entry
        # (an OSR unit can start mid-loop; hoisting would then bypass
        # the preheader).
        if any(p not in body
               for bid in body if bid != header
               for p in preds[bid]):
            continue
        moved += _hoist_from_loop(blocks, header, body, pre, fresh)
    return moved


def _loop_defs(blocks, body):
    defs = set()
    for bid in body:
        defs.update(blocks[bid].params)
        for stmt in blocks[bid].stmts:
            defs.add(stmt.sym.name)
    return defs


def _loop_clobbers(blocks, body, key, fresh):
    for bid in body:
        for stmt in blocks[bid].stmts:
            if clobbers(stmt, key, fresh):
                return True
    return False


def _delite_hoistable(stmt, blocks, body, in_header_prefix):
    """May this Delite launch move to the preheader? Needs a proven
    write-free kernel, a scalar result (array results carry identity,
    like allocations), the usual totality-or-header-prefix rule, and a
    loop body that cannot write the arrays the launch reads — since the
    op reads arbitrary indices of its inputs, any write/call in the loop
    (or another launch with an unproven kernel) pins it."""
    if not delite_scalar_result(stmt) or not delite_write_free(stmt):
        return False
    if not (delite_total(stmt) or in_header_prefix):
        return False
    for bid in body:
        for other in blocks[bid].stmts:
            if other is stmt:
                continue
            if other.op == "delite":
                if not delite_write_free(other):
                    return False
            elif other.effect in (Effect.WRITE, Effect.IO, Effect.CALL):
                return False
    return True


def _hoist_from_loop(blocks, header, body, pre, fresh):
    moved = 0
    changed = True
    while changed:
        changed = False
        defs_in_loop = _loop_defs(blocks, body)
        for bid in sorted(body):
            block = blocks[bid]
            in_header_prefix = bid == header
            kept = []
            for stmt in block.stmts:
                invariant = all(
                    a.name not in defs_in_loop
                    for a in stmt.args if isinstance(a, Sym))
                hoist = False
                if invariant and stmt.op not in COPY_OPS:
                    # Allocations are deliberately not hoisted: each
                    # iteration must observe a fresh object.
                    if is_pure(stmt):
                        # Pure: anywhere if total, else only from the
                        # header's effect-free prefix.
                        hoist = is_total(stmt) or in_header_prefix
                    elif stmt.op == "delite":
                        hoist = _delite_hoistable(stmt, blocks, body,
                                                  in_header_prefix)
                    else:
                        key = load_key(stmt)
                        if key is not None \
                                and (is_total(stmt) or in_header_prefix) \
                                and not _loop_clobbers(blocks, body, key,
                                                       fresh):
                            hoist = True
                if hoist:
                    pre.stmts.append(stmt)
                    defs_in_loop.discard(stmt.sym.name)
                    moved += 1
                    changed = True
                    continue
                kept.append(stmt)
                # Any effect (a write, call, guard — or a may-raise pure
                # op staying put) ends the region where raising code may
                # move ahead of it.
                if in_header_prefix and not (
                        stmt.op in COPY_OPS
                        or (stmt.effect in (Effect.PURE, Effect.ALLOC)
                            and is_total(stmt))):
                    in_header_prefix = False
            block.stmts[:] = kept
    return moved

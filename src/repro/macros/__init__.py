"""JIT macros: compile-time callbacks into the running program (paper 2.3).

A macro intercepts a method call during compilation and decides how to
translate it. Macros receive a :class:`MacroContext` exposing the
compiler's internals (``evalA``, ``evalM``, ``funR``-style inlining,
emission, speculation) and return either a staged value or a directive
telling the staged interpreter what to do next.
"""

from repro.macros.api import (MacroContext, MacroInline, SlowpathDirective,
                              FastpathDirective, ReturnDirective)
from repro.macros.registry import MacroRegistry

__all__ = ["MacroContext", "MacroInline", "SlowpathDirective",
           "FastpathDirective", "ReturnDirective", "MacroRegistry"]

"""Dynamic race sanitizer for chunked Delite execution.

The static analysis in :mod:`repro.analysis.parsafe` *proves* ops
parallel; this module *checks the prover* (the PR 7 stance applied at
runtime): under ``REPRO_PARSAFE=check`` the Delite runtime runs every
chunked execution of a ``ProvenParallel`` op under a
:class:`WriteSanitizer`, which records per-chunk write footprints
(object id + index/field ranges) over every heap object the kernel
could reach — element inputs, uniforms, and state captured by the
kernel closure — and raises :class:`~repro.errors.RaceDetected` when
two chunks' footprints overlap.

Footprints are observed by snapshot/diff: watched arrays are copied
before the launch and compared after each chunk runs. The comparison
attributes each newly-changed location to the chunk that just finished;
a location already attributed to an earlier chunk is an overlap. (Like
any dynamic sanitizer this can miss silent same-value overwrites; it
can never report a false race, because two chunks must both have
changed the same location for one to fire.)

NumPy element-input chunks are *views*, so kernel writes land in the
watched originals; list chunks are copies, so writes to a chunk copy are
private by construction and correctly invisible here. Captured guest
objects (:class:`~repro.runtime.objects.Obj`) are watched field-wise;
captured lists and arrays element-wise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RaceDetected
from repro.runtime.objects import Obj

__all__ = ["RaceDetected", "WriteSanitizer", "watched_roots"]

#: How deep to chase captured state through object fields.
_WALK_DEPTH = 4


def watched_roots(op, elems, uniforms):
    """Every mutable heap object a kernel application could write:
    the element inputs, the uniforms, and the kernel closure's captured
    state (transitively through object fields). Keyed by id; values are
    ``(label, object)``."""
    roots = {}

    def add(label, obj):
        if isinstance(obj, (np.ndarray, list)) or isinstance(obj, Obj):
            roots.setdefault(id(obj), (label, obj))

    for i, e in enumerate(elems):
        add("elem[%d]" % i, e)
    for i, u in enumerate(uniforms):
        add("uniform[%d]" % i, u)
    closure = getattr(getattr(op, "kernel", None), "guest_closure", None)
    if closure is not None:
        _walk_captured("captured", closure, roots, _WALK_DEPTH)
    return roots


def _walk_captured(label, obj, roots, depth):
    if depth <= 0 or id(obj) in roots:
        return
    if isinstance(obj, Obj):
        roots[id(obj)] = (label, obj)
        for fname, val in obj.fields.items():
            _walk_captured("%s.%s" % (label, fname), val, roots, depth - 1)
    elif isinstance(obj, (np.ndarray, list)):
        roots[id(obj)] = (label, obj)


def _snapshot(obj):
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return list(obj)
    return dict(obj.fields)                  # Obj


def _changed_keys(obj, snap):
    """Locations of ``obj`` that differ from its snapshot: flat indices
    for arrays/lists, field names for objects."""
    if isinstance(obj, np.ndarray):
        cur, old = obj.ravel(), snap.ravel()
        if cur.shape != old.shape:
            return list(range(cur.size))     # resized: everything changed
        diff = cur != old
        if cur.dtype.kind == "f":
            diff &= ~(np.isnan(cur) & np.isnan(old))
        return np.flatnonzero(diff).tolist()
    if isinstance(obj, list):
        if len(obj) != len(snap):
            return list(range(max(len(obj), len(snap))))
        return [i for i, (a, b) in enumerate(zip(obj, snap))
                if a is not b and not _eq(a, b)]
    return [f for f in set(obj.fields) | set(snap)
            if obj.fields.get(f) is not snap.get(f)
            and not _eq(obj.fields.get(f), snap.get(f))]


def _eq(a, b):
    try:
        return bool(a == b)
    except Exception:
        return False


def _to_ranges(keys):
    """Compress sorted integer indices to (lo, hi) inclusive ranges;
    non-integer keys (field names) pass through."""
    ints = sorted(k for k in keys if isinstance(k, int))
    fields = [k for k in keys if not isinstance(k, int)]
    ranges = []
    for i in ints:
        if ranges and i == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], i)
        else:
            ranges.append((i, i))
    return ranges + fields


class WriteSanitizer:
    """Records per-chunk write footprints during a chunked Delite launch
    and reports overlaps.

    Usage (see :meth:`DeliteRuntime._run_chunked`)::

        san = WriteSanitizer(op, elems, uniforms)
        for c, (lo, hi) in enumerate(chunks):
            execute(chunk)
            san.after_chunk(c, lo, hi)
        san.finish()        # raises RaceDetected on overlap
    """

    def __init__(self, op, elems, uniforms):
        self.op_name = getattr(op, "name", type(op).__name__)
        self.roots = watched_roots(op, elems, uniforms)
        self.snaps = {oid: _snapshot(obj)
                      for oid, (_, obj) in self.roots.items()}
        # (object id, location key) -> first chunk that wrote it
        self.writers = {}
        self.footprints = {}         # chunk -> {label: [ranges]}
        self.overlaps = []

    def after_chunk(self, chunk, lo, hi):
        """Diff every watched object against its last observation; the
        delta is ``chunk``'s write footprint (the chunk just ran
        ``[lo, hi)``). A location already owned by an earlier chunk is
        an overlap."""
        fp = {}
        for oid, (label, obj) in self.roots.items():
            changed = _changed_keys(obj, self.snaps[oid])
            if not changed:
                continue
            # Re-baseline so the next chunk's diff sees only its own
            # writes, not this chunk's.
            self.snaps[oid] = _snapshot(obj)
            new = []
            for key in changed:
                owner = self.writers.get((oid, key))
                if owner is None:
                    self.writers[(oid, key)] = chunk
                    new.append(key)
                elif owner != chunk:
                    self.overlaps.append(
                        {"object": label, "location": key,
                         "chunks": (owner, chunk)})
            if new:
                fp[label] = _to_ranges(new)
        if fp:
            self.footprints[chunk] = fp
        return fp

    def finish(self, telemetry=None):
        """Raise :class:`RaceDetected` when any overlap was observed;
        returns the per-chunk footprints otherwise."""
        if self.overlaps:
            if telemetry is not None:
                telemetry.inc("parsafe.races")
                telemetry.record("parsafe.race", op=self.op_name,
                                 overlaps=list(self.overlaps),
                                 footprints=dict(self.footprints))
            first = self.overlaps[0]
            raise RaceDetected(
                "race detected in %s: chunks %s and %s both wrote %s[%s]"
                " (%d overlapping location(s) total)"
                % (self.op_name, first["chunks"][0], first["chunks"][1],
                   first["object"], first["location"], len(self.overlaps)),
                op_name=self.op_name, overlaps=self.overlaps)
        return self.footprints

"""Structured "JIT lint" diagnostics.

The analysis passes report findings here instead of (or in addition to)
raising: in *collect* mode (``Lancet.analyze`` / ``repro jit --analyze``)
every verifier error, taint leak, noalloc site, and compiler warning
becomes a :class:`Diagnostic` with severity and provenance, plus
informational findings about what the optimizer did (statements removed,
redundant guards eliminated). The result renders as a compact text report
and serializes to JSON for tooling.
"""

from __future__ import annotations

import dataclasses

SEVERITIES = ("error", "warning", "info")


@dataclasses.dataclass
class Diagnostic:
    severity: str               # 'error' | 'warning' | 'info'
    kind: str                   # 'verify' | 'taint' | 'noalloc' | ...
    message: str
    unit: str = ""
    # Optional structured payload (e.g. a parsafe per-op verdict dict)
    # for tooling that wants more than the rendered message.
    data: dict = None

    def format(self):
        where = " (%s)" % self.unit if self.unit else ""
        return "%-7s %-8s %s%s" % (self.severity, self.kind, self.message,
                                   where)

    def to_dict(self):
        return dataclasses.asdict(self)


class Diagnostics:
    """An ordered collection of findings for one analyzed unit."""

    def __init__(self, unit=""):
        self.unit = unit
        self.findings = []

    def add(self, severity, kind, message, unit=None, data=None):
        if severity not in SEVERITIES:
            raise ValueError("bad severity %r" % (severity,))
        d = Diagnostic(severity, kind, message,
                       unit if unit is not None else self.unit, data=data)
        self.findings.append(d)
        return d

    def extend(self, severity, kind, messages, unit=None):
        for m in messages:
            self.add(severity, kind, m, unit=unit)

    def errors(self):
        return [d for d in self.findings if d.severity == "error"]

    def warnings(self):
        return [d for d in self.findings if d.severity == "warning"]

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)

    def to_dict(self):
        return {"unit": self.unit,
                "findings": [d.to_dict() for d in self.findings]}

    def render(self):
        lines = ["JIT lint report for %s: %d finding(s), %d error(s), "
                 "%d warning(s)" % (self.unit or "<unit>", len(self.findings),
                                    len(self.errors()), len(self.warnings()))]
        for d in self.findings:
            lines.append("  " + d.format())
        return "\n".join(lines)

"""The multi-tenant compile server.

One long-running :class:`CompileServer` serves many Lancet VMs
("tenants") instead of each running a private CompileService. The
economics: PR 4's content fingerprints make compiled units bit-identical
across tenants running the same program, so the fleet should pay each
compile **once** — the first tenant compiles, everyone else rehydrates
from the shared sharded store.

Four mechanisms, layered:

* **shared sharded store** — the server owns a
  :class:`~repro.server.shards.ShardedCodeCache`; attaching a tenant
  points its ``codecache`` at it, so ordinary warm-start lookups become
  fleet-wide.
* **cross-VM dedup**, at two granularities:

  - *synchronous* (:meth:`coordinate`): tenants about to compile a
    fingerprint register it; a second tenant arriving mid-compile
    blocks on the leader's completion event, then re-probes the store —
    a warm hit, one compile total. Worker threads and re-entrant
    compiles never block (deadlock-free by construction).
  - *asynchronous* (:meth:`submit`): a queued request whose key is
    already in flight becomes a *follower* — it is parked on the leader
    and re-enqueued when the leader finishes, by which time the store
    is warm and the follower's compile collapses to a rehydrate. A more
    urgent follower **raises the leader's priority** (priority
    inheritance): an OSR request joining a queued prefetch for the same
    unit drags that compile to the front.

* **admission control** — the queue is bounded globally (shed the
  lowest-priority queued request when a strictly more urgent one
  arrives, reject otherwise) and per tenant (one hot VM exhausting its
  slice is rejected — and falls back to its local service/interpreter —
  instead of starving the fleet).
* **fair batched scheduling** — workers drain priorities in order;
  within a priority, tenants are served round-robin, and a worker grabs
  up to ``batch_max`` consecutive requests from the tenant whose turn
  it is (one scheduling decision, several compiles — the whole batch
  counts against that tenant's turn).

``workers=0`` runs the server in *manual-drain* mode (:meth:`drain`),
used by deterministic tests and one-shot prewarming.

Requests never retry here: transient-failure retry/backoff/blacklist
policy stays in the per-VM CompileService; the server reports failures
to the submitting tenant, whose fallback is its own service or the
interpreter.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque

from repro.codecache.service import (CANCELLED, DONE, FAILED, REJECTED,
                                     RUNNING, CompileRequest,
                                     PRIORITY_TIER1)
from repro.observability import Telemetry
from repro.server.shards import DEFAULT_SHARDS, ShardedCodeCache


class CompileServer:
    """A compile daemon: sharded store + fair bounded queue + dedup."""

    def __init__(self, cache_dir=None, shards=DEFAULT_SHARDS, workers=2,
                 queue_limit=128, per_tenant_limit=32, batch_max=4,
                 budget_bytes=64 << 20, telemetry=None, backend="python",
                 sync_wait_timeout=60.0):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.store = None
        if cache_dir:
            self.store = ShardedCodeCache(cache_dir, shards=shards,
                                          budget_bytes=budget_bytes,
                                          telemetry=self.telemetry,
                                          backend=backend)
        self.workers = max(0, workers)
        self.queue_limit = queue_limit
        self.per_tenant_limit = per_tenant_limit
        self.batch_max = max(1, batch_max)
        self.sync_wait_timeout = sync_wait_timeout
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queues = {}           # priority -> OrderedDict(tenant -> deque)
        self._depth = 0
        self._tenant_depth = {}     # tenant -> queued count
        self._inflight = {}         # key -> leader request (queued|running)
        self._threads = []
        self._worker_idents = set()
        self._closed = False
        self._tenants = []
        self._tenant_seq = 0
        # Synchronous (coordinate) dedup state.
        self._sync_lock = threading.Lock()
        self._sync_inflight = {}    # fingerprint -> (Event, leader ident)
        # Counters (under self._lock unless noted).
        self.submits = 0
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.rejected = 0
        self.dedup_followers = 0
        self.dedup_waits = 0        # under _sync_lock
        self.batches = 0
        self.batched_requests = 0

    # -- telemetry -------------------------------------------------------------

    def _event(self, kind, **data):
        tel = self.telemetry
        tel.inc(kind)
        tel.record(kind, **data)

    def _gauge_depth_locked(self):
        self.telemetry.set_gauge("server.queue_depth", self._depth)

    # -- tenants ---------------------------------------------------------------

    def register_tenant(self, name=None):
        with self._lock:
            self._tenant_seq += 1
            tenant = name or ("vm-%d" % self._tenant_seq)
            self._tenants.append(tenant)
        self._event("server.attach", tenant=tenant)
        return tenant

    # -- asynchronous submission -----------------------------------------------

    def submit(self, key, fn, priority=PRIORITY_TIER1, tenant="anon",
               on_complete=None, on_error=None):
        """Enqueue ``fn`` under ``key`` for ``tenant``. Never raises,
        never blocks; check ``request.rejected`` for admission refusal
        (the tenant's fallback is its local service or the interpreter).
        """
        req = CompileRequest(key, fn, priority, on_complete=on_complete,
                             on_error=on_error)
        req.tenant = tenant
        req.followers = []
        shed = []
        with self._cv:
            if self._closed:
                req._finish(REJECTED, error="server closed")
                return req
            leader = self._inflight.get(key)
            if leader is not None and not leader.finished:
                # Cross-VM dedup: park on the leader; run after it, when
                # the shared store is warm and this compile is a
                # rehydrate. A more urgent follower drags the leader
                # forward (priority inheritance).
                leader.followers.append(req)
                self.dedup_followers += 1
                if priority < leader.priority:
                    self._reprioritize_locked(leader, priority)
                self._event("server.dedup", key=repr(key), tenant=tenant,
                            leader_tenant=leader.tenant)
                return req
            if self._tenant_depth.get(tenant, 0) >= self.per_tenant_limit:
                self.rejected += 1
                req._finish(REJECTED, error="tenant queue full")
                self._event("server.reject", key=repr(key), tenant=tenant,
                            reason="tenant-cap")
                return req
            if self._depth >= self.queue_limit:
                shed = self._shed_for_locked(priority)
                if not shed:
                    self.rejected += 1
                    req._finish(REJECTED, error="queue full")
                    self._event("server.reject", key=repr(key),
                                tenant=tenant, reason="queue-full")
                    return req
            self._enqueue_locked(req)
            self.submits += 1
            self._event("server.submit", key=repr(key), tenant=tenant,
                        priority=priority, depth=self._depth)
            self._ensure_workers()
            self._cv.notify()
        for victim in shed:
            self._notify_error(victim)
        return req

    def _enqueue_locked(self, req):
        by_tenant = self._queues.setdefault(req.priority, OrderedDict())
        by_tenant.setdefault(req.tenant, deque()).append(req)
        self._depth += 1
        self._tenant_depth[req.tenant] = \
            self._tenant_depth.get(req.tenant, 0) + 1
        self._inflight[req.key] = req
        self._gauge_depth_locked()

    def _remove_queued_locked(self, req):
        """Unlink a queued request; returns True when it was found."""
        by_tenant = self._queues.get(req.priority)
        if not by_tenant:
            return False
        dq = by_tenant.get(req.tenant)
        if not dq:
            return False
        try:
            dq.remove(req)
        except ValueError:
            return False
        if not dq:
            del by_tenant[req.tenant]
        self._depth -= 1
        self._tenant_depth[req.tenant] -= 1
        self._gauge_depth_locked()
        return True

    def _reprioritize_locked(self, leader, priority):
        """Priority inheritance: move a still-queued leader to the more
        urgent queue (a running leader is already being served)."""
        if self._remove_queued_locked(leader):
            leader.priority = priority
            self._enqueue_locked(leader)
            self._event("server.inherit", key=repr(leader.key),
                        priority=priority)

    def _shed_for_locked(self, priority):
        """Backpressure: unlink and fail the newest request of the least
        urgent nonempty priority strictly below ``priority``. Followers
        parked on the victim are shed with it — their fingerprint never
        compiles here, so they must fail back to their tenants' local
        fallbacks, not wait forever. Returns the list of failed requests
        (caller fires their on_error outside the lock); [] when nothing
        is less urgent."""
        for prio in sorted(self._queues, reverse=True):
            if prio <= priority:
                break
            by_tenant = self._queues[prio]
            if not by_tenant:
                continue
            # Shed from the tenant hogging the most of this priority.
            tenant = max(by_tenant, key=lambda t: len(by_tenant[t]))
            victim = by_tenant[tenant].pop()
            if not by_tenant[tenant]:
                del by_tenant[tenant]
            self._depth -= 1
            self._tenant_depth[tenant] -= 1
            self._inflight.pop(victim.key, None)
            victim._finish(FAILED, error="shed under backpressure")
            failed = [victim]
            for f in victim.followers:
                if not f.finished:
                    f._finish(FAILED, error="shed under backpressure")
                    failed.append(f)
            victim.followers = []
            self.shed += len(failed)
            self._gauge_depth_locked()
            self._event("server.shed", key=repr(victim.key), tenant=tenant,
                        priority=prio, followers=len(failed) - 1)
            return failed
        return []

    def cancel(self, key, tenant=None):
        """Cancel the in-flight request for ``key`` (optionally only when
        owned by ``tenant``). Followers are promoted, not cancelled."""
        with self._cv:
            req = self._inflight.get(key)
            if req is None or (tenant is not None and req.tenant != tenant):
                return None
            self._inflight.pop(key, None)
            self._remove_queued_locked(req)
            self._adopt_followers_locked(req)
        req.cancel()
        return req

    # -- scheduling ------------------------------------------------------------

    def _pop_batch_locked(self):
        """The next batch: up to ``batch_max`` requests from the tenant
        whose round-robin turn it is, at the most urgent nonempty
        priority. Returns [] when idle."""
        for prio in sorted(self._queues):
            by_tenant = self._queues[prio]
            while by_tenant:
                tenant, dq = next(iter(by_tenant.items()))
                if not dq:
                    del by_tenant[tenant]
                    continue
                batch = []
                while dq and len(batch) < self.batch_max:
                    batch.append(dq.popleft())
                if dq:
                    by_tenant.move_to_end(tenant)
                else:
                    del by_tenant[tenant]
                self._depth -= len(batch)
                self._tenant_depth[tenant] -= len(batch)
                self._gauge_depth_locked()
                self.batches += 1
                self.batched_requests += len(batch)
                if len(batch) > 1:
                    self._event("server.batch", tenant=tenant,
                                size=len(batch), priority=prio)
                return batch
        return []

    def _ensure_workers(self):
        while len(self._threads) < self.workers:
            t = threading.Thread(target=self._worker_loop, daemon=True,
                                 name="lancet-server-%d" % len(self._threads))
            self._threads.append(t)
            t.start()

    def _worker_loop(self):
        self._worker_idents.add(threading.get_ident())
        while True:
            with self._cv:
                batch = self._pop_batch_locked()
                while not batch:
                    if self._closed:
                        return
                    self._cv.wait()
                    batch = self._pop_batch_locked()
            for req in batch:
                self._run_one(req)

    def drain(self, max_batches=None):
        """Manual-drain mode (``workers=0``): run queued batches on the
        calling thread until the queue is empty (or ``max_batches``).
        Returns the number of requests run."""
        ran = 0
        n = 0
        while max_batches is None or n < max_batches:
            with self._cv:
                batch = self._pop_batch_locked()
            if not batch:
                break
            n += 1
            for req in batch:
                self._run_one(req)
                ran += 1
        return ran

    def _run_one(self, req):
        if req.finished:
            # Cancelled while queued (e.g. via the public
            # CompileRequest.cancel() handle, which bypasses
            # CompileServer.cancel): followers must still run.
            with self._cv:
                if self._inflight.get(req.key) is req:
                    self._inflight.pop(req.key, None)
                self._adopt_followers_locked(req)
                if self._depth:
                    self._cv.notify()
            return
        req.state = RUNNING
        req.attempts += 1
        t0 = time.perf_counter()
        try:
            result = req.fn()
        except Exception as exc:
            self._finish(req, FAILED, error=str(exc))
            return
        if req.state == CANCELLED:
            self._finish(req, CANCELLED, discard=True)
            return
        self.telemetry.observe("server.run", time.perf_counter() - t0)
        self._finish(req, DONE, result=result)

    def _adopt_followers_locked(self, req):
        """Re-enqueue a finished leader's followers: the store is warm
        now, so each follower's compile collapses to a rehydrate. The
        first follower becomes the key's new in-flight entry (later
        submits dedup onto it)."""
        followers = req.followers
        req.followers = []
        for f in followers:
            if not f.finished:
                self._enqueue_locked(f)
        return followers

    def _finish(self, req, state, result=None, error=None, discard=False):
        with self._cv:
            if self._inflight.get(req.key) is req:
                self._inflight.pop(req.key, None)
            self._adopt_followers_locked(req)
            if self._depth:
                self._cv.notify()
        if discard:
            self._event("server.discard", key=repr(req.key),
                        tenant=req.tenant)
            return
        if state == DONE:
            req._finish(DONE, result=result)
            self.completed += 1
            self._event("server.done", key=repr(req.key), tenant=req.tenant,
                        attempts=req.attempts)
            if req.on_complete is not None:
                try:
                    req.on_complete(result)
                except Exception as exc:    # callbacks must not kill workers
                    self._event("server.callback_error", key=repr(req.key),
                                error=str(exc))
        else:
            req._finish(FAILED, error=error)
            self.failed += 1
            self._event("server.fail", key=repr(req.key), tenant=req.tenant,
                        error=error)
            self._notify_error(req)

    def _notify_error(self, req):
        if req.on_error is not None:
            try:
                req.on_error(req.error)
            except Exception as exc:
                self._event("server.callback_error", key=repr(req.key),
                            error=str(exc))

    # -- synchronous cross-VM dedup --------------------------------------------

    def coordinate(self, fingerprint, fn, tenant=None):
        """Run ``fn`` (a load-or-compile closure probing the shared
        store first) with fingerprint-level dedup: the first tenant in
        is the leader and compiles; tenants arriving mid-compile wait
        for the leader, then run ``fn`` against the now-warm store — a
        rehydrate, not a second compile.

        Never deadlocks: server worker threads and the leader's own
        thread (re-entrant compiles) run ``fn`` immediately; a waiter
        abandoned past ``sync_wait_timeout`` (leader crashed hard)
        compiles for itself.
        """
        if self._closed:
            return fn()
        me = threading.get_ident()
        if me in self._worker_idents:
            return fn()
        with self._sync_lock:
            entry = self._sync_inflight.get(fingerprint)
            if entry is None:
                event = threading.Event()
                self._sync_inflight[fingerprint] = (event, me)
                leader = True
            elif entry[1] == me:
                return fn()         # re-entrant compile from the leader
            else:
                leader = False
                event = entry[0]
                self.dedup_waits += 1
        if leader:
            try:
                return fn()
            finally:
                with self._sync_lock:
                    self._sync_inflight.pop(fingerprint, None)
                event.set()
        self._event("server.dedup_wait", fingerprint=fingerprint,
                    tenant=tenant)
        event.wait(self.sync_wait_timeout)
        return fn()

    # -- prewarming ------------------------------------------------------------

    def warm(self, manifest, options=None):
        """Replay a manifest (path or dict) into the shared store; see
        :func:`repro.server.manifest.warm_from_manifest`."""
        from repro.server.manifest import warm_from_manifest
        if self.store is None:
            return {"units": 0, "compiled": 0, "warm_hits": 0,
                    "errors": ["server has no store (no cache_dir)"]}
        summary = warm_from_manifest(manifest, self.store, options=options)
        self._event("server.warm", units=summary["units"],
                    compiled=summary["compiled"],
                    errors=len(summary["errors"]))
        return summary

    # -- lifecycle / stats -----------------------------------------------------

    @property
    def closed(self):
        return self._closed

    def close(self, wait=True):
        victims = []
        with self._cv:
            if self._closed:
                return
            self._closed = True
            for by_tenant in self._queues.values():
                for dq in by_tenant.values():
                    victims.extend(dq)
            self._queues.clear()
            self._depth = 0
            self._tenant_depth.clear()
            self._inflight.clear()
            self._gauge_depth_locked()
            self._cv.notify_all()
        for req in victims:
            if not req.finished:
                req._finish(FAILED, error="server closed")
                self._notify_error(req)
            for f in req.followers:
                if not f.finished:
                    f._finish(FAILED, error="server closed")
                    self._notify_error(f)
        if wait:
            for t in self._threads:
                t.join(timeout=2.0)
        self._event("server.close", tenants=len(self._tenants))

    def stats(self):
        with self._lock:
            depth = self._depth
            inflight = len(self._inflight)
            tenants = list(self._tenants)
            per_tenant = dict(self._tenant_depth)
        dedup = self.dedup_followers + self.dedup_waits
        demand = self.submits + self.dedup_waits
        return {
            "workers": self.workers,
            "closed": self._closed,
            "queue_depth": depth,
            "queue_limit": self.queue_limit,
            "per_tenant_limit": self.per_tenant_limit,
            "queued_per_tenant": per_tenant,
            "in_flight": inflight,
            "tenants": tenants,
            "submits": self.submits,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "rejected": self.rejected,
            "dedup_followers": self.dedup_followers,
            "dedup_waits": self.dedup_waits,
            "dedup_ratio": (dedup / demand) if demand else 0.0,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "store": self.store.stats() if self.store is not None else None,
        }


# -- process-global server registry ------------------------------------------
#
# REPRO_COMPILE_SERVER=<cache-dir> auto-attaches every new Lancet in the
# process to one shared CompileServer per cache directory — threads-as-
# tenants with zero wiring. Cross-process fleets share through the
# sharded store on disk; each process runs one server front-end over it.

_SHARED = {}
_SHARED_LOCK = threading.Lock()


def shared_server(cache_dir, **kwargs):
    """The process-wide CompileServer for ``cache_dir`` (created on
    first use; later ``kwargs`` are ignored)."""
    key = os.path.abspath(cache_dir)
    with _SHARED_LOCK:
        server = _SHARED.get(key)
        if server is None or server.closed:
            server = CompileServer(cache_dir=key, **kwargs)
            _SHARED[key] = server
        return server


def close_shared_servers():
    """Close and forget every registry server (tests, interpreter exit)."""
    with _SHARED_LOCK:
        servers = list(_SHARED.values())
        _SHARED.clear()
    for server in servers:
        server.close()

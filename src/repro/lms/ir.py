"""IR statements, effects, blocks, and terminators.

The staged interpreter produces a CFG of :class:`Block` objects. Each block
holds straight-line :class:`Stmt` definitions and ends in exactly one
terminator. Cross-block dataflow uses either the predecessor's own symbols
(single-predecessor "continuation" blocks) or explicit block parameters
assigned by the predecessors (merge blocks) — a block-argument form of SSA.
"""

from __future__ import annotations

import enum


class Effect(enum.Enum):
    PURE = "pure"      # foldable, CSE-able, dead-code removable
    ALLOC = "alloc"    # removable when unused; ordered w.r.t. nothing
    READ = "read"      # heap/array read; may raise; not removable
    WRITE = "write"    # heap/array write
    IO = "io"          # externally visible
    CALL = "call"      # residual call: arbitrary effects
    GUARD = "guard"    # deoptimization check


class Stmt:
    """``sym = op(args)``. ``args`` mixes Reps and immediate operands
    (field names, class refs, native refs). ``flags`` carries dynamically
    scoped attributes active at emission (e.g. ``noalloc``) plus type
    facts the code generator may exploit."""

    __slots__ = ("sym", "op", "args", "effect", "flags")

    def __init__(self, sym, op, args, effect, flags=None):
        self.sym = sym
        self.op = op
        self.args = tuple(args)
        self.effect = effect
        self.flags = flags or {}

    def __repr__(self):
        return "%s = %s(%s)" % (self.sym, self.op,
                                ", ".join(map(repr, self.args)))


# -- terminators -----------------------------------------------------------------

class Jump:
    __slots__ = ("target", "phi_assigns")

    def __init__(self, target, phi_assigns=()):
        self.target = target            # block id
        self.phi_assigns = list(phi_assigns)  # [(param_name, rep)]

    def successors(self):
        return [self.target]

    def __repr__(self):
        return "jump B%d %r" % (self.target, self.phi_assigns)


class Branch:
    __slots__ = ("cond", "true_target", "true_assigns",
                 "false_target", "false_assigns")

    def __init__(self, cond, true_target, true_assigns,
                 false_target, false_assigns):
        self.cond = cond
        self.true_target = true_target
        self.true_assigns = list(true_assigns)
        self.false_target = false_target
        self.false_assigns = list(false_assigns)

    def successors(self):
        return [self.true_target, self.false_target]

    def __repr__(self):
        return "branch %r ? B%d : B%d" % (self.cond, self.true_target,
                                          self.false_target)


class Return:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def successors(self):
        return []

    def __repr__(self):
        return "return %r" % (self.value,)


class Deopt:
    """Unconditional transfer to the interpreter (``slowpath``)."""

    __slots__ = ("meta_id", "lives")

    def __init__(self, meta_id, lives):
        self.meta_id = meta_id
        self.lives = list(lives)

    def successors(self):
        return []

    def __repr__(self):
        return "deopt #%d" % self.meta_id


class OsrCompile:
    """Recompile the continuation with current values as constants and
    invoke it (``fastpath``)."""

    __slots__ = ("meta_id", "lives")

    def __init__(self, meta_id, lives):
        self.meta_id = meta_id
        self.lives = list(lives)

    def successors(self):
        return []

    def __repr__(self):
        return "osr_compile #%d" % self.meta_id


class Block:
    __slots__ = ("block_id", "stmts", "terminator", "params")

    def __init__(self, block_id, params=()):
        self.block_id = block_id
        self.params = list(params)      # param names (merge blocks only)
        self.stmts = []
        self.terminator = None

    def __repr__(self):
        return "Block(%d, %d stmts, %r)" % (self.block_id, len(self.stmts),
                                            self.terminator)

"""Benchmark harness regenerating the paper's evaluation tables.

Run directly for the paper-style tables::

    python benchmarks/harness.py                # all tables
    python benchmarks/harness.py table1 table2k # selected

Row mapping and expected shapes are documented in DESIGN.md §5 and
EXPERIMENTS.md. Simulated-SMP timing: for parallel rows, the reported
time is ``(wall - real_op_time) + simulated_op_time`` — the sequential
guest glue plus the modeled parallel kernel time (Amdahl-correct).
"""

from __future__ import annotations

import time

from repro import Lancet
from repro.apps import load_app
from repro.apps.csv_baselines import (accessed_keys, cpp_baseline,
                                      cpp_hashmap_baseline, generate_csv,
                                      library_baseline, specialized_by_hand)
from repro.delite.runtime import DeliteRuntime
from repro.optiml import load_optiml
from repro.optiml.reference import (kmeans_cpp, kmeans_data, kmeans_delite,
                                    logreg_cpp, logreg_data, logreg_delite,
                                    names_data, namescore_fused,
                                    namescore_python)

CORES = (1, 2, 4, 8)


def best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for __ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _parallel_time(jit, fn):
    """Wall time with Delite op time replaced by the simulated-parallel
    op time."""
    rt = jit.delite
    rt.reset_clock()
    t0 = time.perf_counter()
    fn()
    wall = time.perf_counter() - t0
    return (wall - rt.real_time) + rt.sim_time


# ---------------------------------------------------------------------------
# Table 1: CSV processing
# ---------------------------------------------------------------------------

def table1(row_counts=(5000, 10000, 15000, 20000), repeats=3):
    """Speedups relative to the hand-written "C++" reader, per input size
    (paper Table 1: inputs 23/46/69/92 MB; ours are row-scaled)."""
    keys = accessed_keys()
    table = {"sizes": [], "rows": {
        "C++": [], "C++ (hashmap)": [], "Scala Library": [],
        "Scala Lancet": [], "Lancet (steady state)": [],
        "hand-specialized": [], "MiniJVM interpreter": []}}
    for rows in row_counts:
        lines = generate_csv(rows)
        mb = sum(len(l) + 1 for l in lines) / 1e6
        table["sizes"].append("%.1fMB" % mb)
        t_cpp, expected = best_of(lambda: cpp_baseline(lines, keys), repeats)
        t_cpph, __ = best_of(lambda: cpp_hashmap_baseline(lines, keys), repeats)
        t_lib, r = best_of(lambda: library_baseline(lines, keys), repeats)
        assert r == expected
        t_hand, r = best_of(lambda: specialized_by_hand(lines, keys), repeats)
        assert r == expected

        jit = Lancet()
        load_app(jit, "csv", module="CsvApp")
        t_lancet, r = best_of(
            lambda: jit.vm.call("CsvApp", "flagQuery", [lines, keys]),
            repeats)
        assert r == expected
        runner = jit.compile_log[-1][1]
        t_steady, __ = best_of(lambda: runner(1), repeats)

        # Interpreted guest row (scaled down then extrapolated linearly).
        t_interp = _interp_csv_time(jit, lines, keys, rows)

        for name, t in [("C++", t_cpp), ("C++ (hashmap)", t_cpph),
                        ("Scala Library", t_lib),
                        ("Scala Lancet", t_lancet),
                        ("Lancet (steady state)", t_steady),
                        ("hand-specialized", t_hand),
                        ("MiniJVM interpreter", t_interp)]:
            table["rows"][name].append(t_cpp / t)
    return table


def _interp_csv_time(jit, lines, keys, rows):
    sub_rows = max(50, rows // 100)
    sub = lines[:sub_rows + 1]
    t0 = time.perf_counter()
    jit.vm.call("CsvApp", "flagQueryInterp", [sub, keys])
    t = time.perf_counter() - t0
    return t * (rows / sub_rows)    # linear extrapolation (documented)


# ---------------------------------------------------------------------------
# Table 2: k-means / logistic regression / name score
# ---------------------------------------------------------------------------

def _lib_time_extrapolated(jit, module, fn, args, n, n_lib):
    """Interpreted-library row measured at a reduced size and linearly
    extrapolated (documented in EXPERIMENTS.md)."""
    t0 = time.perf_counter()
    jit.vm.call(module, fn, args)
    t = time.perf_counter() - t0
    return t * (n / n_lib)


def table2_kmeans(n=100000, k=4, iters=5, n_lib=2500, cores=CORES):
    import numpy as np
    px, py = kmeans_data(n, k)
    # The C++ analogue owns its data as native arrays already.
    px_np = np.asarray(px, dtype=np.float64)
    py_np = np.asarray(py, dtype=np.float64)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "kmeans", module="Kmeans")
    jit.delite.register_data(px)
    jit.delite.register_data(py)

    lib_px, lib_py = px[:n_lib], py[:n_lib]
    t_lib = _lib_time_extrapolated(jit, "Kmeans", "run",
                                   [lib_px, lib_py, k, iters], n, n_lib)
    cf = jit.vm.call("Kmeans", "makeCompiled", [px, py, k, iters])
    cf(0)  # warm

    rows = {"Scala library": [], "Lancet-Delite": [], "Delite": [],
            "C++": []}
    for c in cores:
        jit.delite.configure("smp", cores=c)
        t_ld = min(_parallel_time(jit, lambda: cf(0)) for __ in range(3))
        rt = DeliteRuntime(backend="smp", cores=c)
        t_d = min(_parallel_time_standalone(
            rt, lambda: kmeans_delite(rt, px, py, k, iters))
            for __ in range(3))
        t_cpp, __ = best_of(lambda: kmeans_cpp(px_np, py_np, k, iters), 3)
        rows["Scala library"].append(t_lib / t_lib)
        rows["Lancet-Delite"].append(t_lib / t_ld)
        rows["Delite"].append(t_lib / t_d)
        rows["C++"].append(t_lib / t_cpp)
    # GPU column
    jit.delite.configure("gpu")
    t_gpu = min(_parallel_time(jit, lambda: cf(0)) for __ in range(3))
    rt = DeliteRuntime(backend="gpu")
    t_dgpu = min(_parallel_time_standalone(
        rt, lambda: kmeans_delite(rt, px, py, k, iters)) for __ in range(3))
    rows["Lancet-Delite"].append(t_lib / t_gpu)
    rows["Delite"].append(t_lib / t_dgpu)
    rows["Scala library"].append(None)
    rows["C++"].append(None)
    return {"cores": list(cores) + ["GPU"], "rows": rows}


def _parallel_time_standalone(rt, fn):
    rt.reset_clock()
    t0 = time.perf_counter()
    fn()
    wall = time.perf_counter() - t0
    return (wall - rt.real_time) + rt.sim_time


def table2_logreg(n=100000, d=8, iters=5, alpha=0.05, n_lib=1500,
                  cores=CORES):
    import numpy as np
    cols, y = logreg_data(n, d)
    cols_np = [np.asarray(c, dtype=np.float64) for c in cols]
    y_np = np.asarray(y, dtype=np.float64)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "logreg", module="Logreg")
    for c in cols:
        jit.delite.register_data(c)
    jit.delite.register_data(y)

    lib_cols = [c[:n_lib] for c in cols]
    t_lib = _lib_time_extrapolated(jit, "Logreg", "run",
                                   [lib_cols, y[:n_lib], iters, alpha],
                                   n, n_lib)
    cf = jit.vm.call("Logreg", "makeCompiled", [cols, y, iters, alpha])
    cf(0)

    rows = {"Scala library": [], "Lancet-Delite": [], "Delite": [],
            "C++": []}
    for c in cores:
        jit.delite.configure("smp", cores=c)
        t_ld = min(_parallel_time(jit, lambda: cf(0)) for __ in range(3))
        rt = DeliteRuntime(backend="smp", cores=c)
        t_d = min(_parallel_time_standalone(
            rt, lambda: logreg_delite(rt, cols, y, iters, alpha))
            for __ in range(3))
        t_cpp, __ = best_of(lambda: logreg_cpp(cols_np, y_np, iters, alpha), 3)
        rows["Scala library"].append(1.0)
        rows["Lancet-Delite"].append(t_lib / t_ld)
        rows["Delite"].append(t_lib / t_d)
        rows["C++"].append(t_lib / t_cpp)
    jit.delite.configure("gpu")
    t_gpu = min(_parallel_time(jit, lambda: cf(0)) for __ in range(3))
    rt = DeliteRuntime(backend="gpu")
    t_dgpu = min(_parallel_time_standalone(
        rt, lambda: logreg_delite(rt, cols, y, iters, alpha))
        for __ in range(3))
    rows["Lancet-Delite"].append(t_lib / t_gpu)
    rows["Delite"].append(t_lib / t_dgpu)
    rows["Scala library"].append(None)
    rows["C++"].append(None)
    return {"cores": list(cores) + ["GPU"], "rows": rows}


def table2_namescore(n=30000, n_lib=3000, cores=CORES):
    names = names_data(n)
    jit = Lancet()
    load_optiml(jit)
    load_app(jit, "namescore", module="Namescore")

    t_lib = _lib_time_extrapolated(jit, "Namescore", "totalScore",
                                   [names[:n_lib]], n, n_lib)
    t_pylib, __ = best_of(lambda: namescore_python(names), 3)
    t_fused, __ = best_of(lambda: namescore_fused(names), 3)
    cf = jit.vm.call("Namescore", "makeCompiled", [names])
    cf(0)

    rows = {"Scala library": [], "Lancet-Delite": [],
            "host-Python library": [], "host-Python fused": []}
    for c in cores:
        jit.delite.configure("smp", cores=c)
        t_ld = min(_parallel_time(jit, lambda: cf(0)) for __ in range(3))
        rows["Scala library"].append(1.0)
        rows["Lancet-Delite"].append(t_lib / t_ld)
        rows["host-Python library"].append(t_lib / t_pylib)
        rows["host-Python fused"].append(t_lib / t_fused)
    return {"cores": list(cores), "rows": rows}


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

def format_table(title, cols, rows):
    lines = [title, ""]
    header = "%-28s" % "" + "".join("%10s" % c for c in cols)
    lines.append(header)
    for name, values in rows.items():
        cells = "".join("%10s" % ("-" if v is None else "%.2f" % v)
                        for v in values)
        lines.append("%-28s%s" % (name, cells))
    lines.append("")
    return "\n".join(lines)


def main(selected=None):
    out = []
    if not selected or "table1" in selected:
        t = table1()
        out.append(format_table(
            "Table 1 — CSV reading (speedup vs hand-written C++ analogue, "
            "by input size)", t["sizes"], t["rows"]))
    if not selected or "table2k" in selected:
        t = table2_kmeans()
        out.append(format_table(
            "Table 2a — k-means clustering (speedup vs interpreted "
            "library, by cores)", t["cores"], t["rows"]))
    if not selected or "table2l" in selected:
        t = table2_logreg()
        out.append(format_table(
            "Table 2b — logistic regression (speedup vs interpreted "
            "library, by cores)", t["cores"], t["rows"]))
    if not selected or "table2n" in selected:
        t = table2_namescore()
        out.append(format_table(
            "Table 2c — name score (speedup vs interpreted library, "
            "by cores)", t["cores"], t["rows"]))
    text = "\n".join(out)
    print(text)
    return text


if __name__ == "__main__":
    import sys
    main(sys.argv[1:] or None)

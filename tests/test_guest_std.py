"""The guest standard library (collections in MiniJ) and the paper's
guest-side calcJIT code cache built on it."""

import pytest

from repro import Lancet
from repro.apps import load_app
from repro.interp.interpreter import GuestThrow


@pytest.fixture
def jit():
    j = Lancet()
    load_app(j, "std", module="Std")
    return j


class TestArrayList:
    def test_push_get_grow(self, jit):
        jit.load('''
            def run() {
              var xs = new ArrayList();
              var i = 0;
              while (i < 40) { xs.push(i * i); i = i + 1; }
              return [xs.length(), xs.get(0), xs.get(39)];
            }
        ''', module="T1")
        assert jit.vm.call("T1", "run") == [40, 0, 39 * 39]

    def test_pop_and_set(self, jit):
        jit.load('''
            def run() {
              var xs = new ArrayList();
              xs.push(1); xs.push(2); xs.push(3);
              xs.set(0, 99);
              var popped = xs.pop();
              return [popped, xs.length(), xs.get(0)];
            }
        ''', module="T2")
        assert jit.vm.call("T2", "run") == [3, 2, 99]

    def test_bounds_throw(self, jit):
        jit.load('''
            def run() {
              var xs = new ArrayList();
              xs.push(1);
              return xs.get(5);
            }
        ''', module="T3")
        with pytest.raises(GuestThrow):
            jit.vm.call("T3", "run")

    def test_each_and_to_array(self, jit):
        jit.load('''
            def run() {
              var xs = new ArrayList();
              xs.push(1); xs.push(2); xs.push(3);
              var total = [0];
              xs.each(fun(v) { total[0] = total[0] + v; });
              return [total[0], xs.toArray(), xs.indexOfValue(2)];
            }
        ''', module="T4")
        assert jit.vm.call("T4", "run") == [6, [1, 2, 3], 1]


class TestHashMap:
    def test_put_get_rehash(self, jit):
        jit.load('''
            def run() {
              var m = new HashMap();
              var i = 0;
              while (i < 50) { m.put(i, i * 10); i = i + 1; }
              return [m.size(), m.get(7), m.get(49), m.get(99)];
            }
        ''', module="T5")
        assert jit.vm.call("T5", "run") == [50, 70, 490, None]

    def test_string_keys_and_overwrite(self, jit):
        jit.load('''
            def run() {
              var m = new HashMap();
              m.put("a", 1);
              m.put("b", 2);
              m.put("a", 3);
              return [m.size(), m.get("a"), m.containsKey("c")];
            }
        ''', module="T6")
        assert jit.vm.call("T6", "run") == [2, 3, False]

    def test_get_or_else_update(self, jit):
        jit.load('''
            def run() {
              var m = new HashMap();
              var calls = [0];
              var mk = fun(k) { calls[0] = calls[0] + 1; return k * 2; };
              var a = m.getOrElseUpdate(5, mk);
              var b = m.getOrElseUpdate(5, mk);
              return [a, b, calls[0]];
            }
        ''', module="T7")
        assert jit.vm.call("T7", "run") == [10, 10, 1]


class TestStringBuilder:
    def test_build(self, jit):
        jit.load('''
            def run() {
              var sb = new StringBuilder();
              sb.add("a").add("b").add(str(42));
              return sb.build();
            }
        ''', module="T8")
        assert jit.vm.call("T8", "run") == "ab42"


class TestGuestCalcJIT:
    """The paper's section-3.1 code cache, written entirely in guest code:
    the guest allocates the cache, calls Lancet.compile itself, and
    guarantees x is a compile-time constant on every executed path."""

    SRC = '''
        def run(n) {
          var calc = fun(x, z) {
            var acc = 0;
            var i = 0;
            while (i < x) { acc = acc + z + i; i = i + 1; }
            return acc;
          };
          var jitted = new CalcJIT(calc);
          var r1 = jitted.call(5, 10);
          var r2 = jitted.call(5, 20);
          var r3 = jitted.call(3, 10);
          return [r1, r2, r3, jitted.variants()];
        }
    '''

    def expected(self, x, z):
        return sum(z + i for i in range(x))

    def test_guest_side_cache(self, jit):
        jit.load(self.SRC, module="CJ")
        r1, r2, r3, variants = jit.vm.call("CJ", "run", [0])
        assert r1 == self.expected(5, 10)
        assert r2 == self.expected(5, 20)
        assert r3 == self.expected(3, 10)
        assert variants == 2          # one compiled variant per distinct x

    def test_variants_specialized(self, jit):
        jit.load(self.SRC, module="CJ")
        jit.vm.call("CJ", "run", [0])
        # Two compiled units were created by guest code itself.
        closure_units = [c for name, c in jit.compile_log
                         if "apply" in name]
        assert len(closure_units) >= 2
        # Each embeds its x as a constant (the loop bound).
        assert any("5" in c.source for c in closure_units)
        assert any("3" in c.source for c in closure_units)

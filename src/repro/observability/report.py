"""Per-compilation reports.

Every :class:`~repro.compiler.compiled.CompiledFunction` carries a
:class:`CompileReport` describing what the compiler actually did to that
unit: per-phase wall times, fixpoint pass count, CFG size, and the
decision counters accumulated by the staged interpreter (inlines vs
residual calls, guards installed, unroll clones). ``Lancet.stats()``
aggregates these across all units of a VM.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class CompileReport:
    """What one compilation did. Times are wall-clock seconds."""

    name: str = "unit"
    tier: int = 2
    phases: dict = dataclasses.field(default_factory=dict)
    pass_stats: list = dataclasses.field(default_factory=list)
    passes: int = 0
    blocks: int = 0
    stmts: int = 0
    inlines: int = 0
    residual_calls: int = 0
    guards_installed: int = 0
    deopt_sites: int = 0
    unroll_clones: int = 0
    macro_expansions: int = 0
    warnings: int = 0

    @property
    def total_seconds(self):
        return sum(self.phases.values())

    def to_dict(self):
        d = dataclasses.asdict(self)
        d["total_seconds"] = self.total_seconds
        return d

    def __repr__(self):
        return ("<CompileReport %s tier=%d %.3fms passes=%d blocks=%d "
                "inlines=%d guards=%d>"
                % (self.name, self.tier, self.total_seconds * 1e3,
                   self.passes, self.blocks, self.inlines,
                   self.guards_installed))

"""Delite substrate: kernels, vectorizer, ops, runtime backends, fusion."""

import numpy as np
import pytest

from repro import Lancet
from repro.delite.kernels import Kernel, try_vectorize
from repro.delite.ops import (CLUSTER_SUMS_2D, DOT, NEAREST_2D, SIGMOID,
                              VSUB, VSUM, MapOp, MapReduceOp, ReduceOp,
                              ZipMapOp, mat_vec_cols, weighted_col_sums)
from repro.delite.runtime import DeliteRuntime


@pytest.fixture
def jit():
    return Lancet()


_CLOSURE_COUNT = [0]


def guest_closure(jit, body):
    _CLOSURE_COUNT[0] += 1
    module = "KernelSrc%d" % _CLOSURE_COUNT[0]
    jit.load("def mk() { return %s; }" % body, module=module)
    return jit.vm.call(module, "mk")


class TestKernelVectorizer:
    def test_arithmetic_kernel_vectorizes(self, jit):
        closure = guest_closure(jit, "fun(x) => x * x + 1.0")
        kernel = Kernel.from_closure(jit, closure)
        assert kernel.vectorized
        arr = np.array([1.0, 2.0, 3.0])
        assert np.allclose(kernel.numpy_fn(arr), arr * arr + 1.0)
        assert kernel.scalar_fn(3.0) == 10.0

    def test_math_natives_vectorize(self, jit):
        closure = guest_closure(jit, "fun(x) => Math.exp(0.0 - x)")
        kernel = Kernel.from_closure(jit, closure)
        assert kernel.vectorized
        arr = np.array([0.0, 1.0])
        assert np.allclose(kernel.numpy_fn(arr), np.exp(-arr))

    def test_control_flow_kernel_falls_back_to_scalar(self, jit):
        closure = guest_closure(
            jit, "fun(x) { if (x > 0) { return x; } return 0 - x; }")
        kernel = Kernel.from_closure(jit, closure)
        assert not kernel.vectorized
        assert kernel.scalar_fn(-3) == 3

    def test_two_arg_kernel(self, jit):
        closure = guest_closure(jit, "fun(x, y) => x * y - 1.0")
        kernel = Kernel.from_closure(jit, closure)
        assert kernel.vectorized
        a, b = np.array([2.0, 3.0]), np.array([4.0, 5.0])
        assert np.allclose(kernel.numpy_fn(a, b), a * b - 1.0)

    def test_compose(self, jit):
        inner = Kernel.from_closure(jit, guest_closure(jit, "fun(x) => x + 1.0"))
        outer = Kernel.from_closure(jit, guest_closure(jit, "fun(x) => x * 2.0"))
        fused = inner.compose(outer)
        assert fused.scalar_fn(3.0) == 8.0
        assert fused.vectorized
        assert np.allclose(fused.numpy_fn(np.array([3.0])), [8.0])


class TestRuntimeBackends:
    def run_all_backends(self, op, *args, cores=(1, 2, 4)):
        results = []
        for backend, c in [("seq", 1)] + [("smp", c) for c in cores] \
                + [("gpu", 1)]:
            rt = DeliteRuntime(backend=backend, cores=c)
            results.append(rt.run(op, *args))
        return results

    def test_map_consistent_across_backends(self, jit):
        kernel = Kernel.from_closure(
            jit, guest_closure(jit, "fun(x) => x * 3.0"))
        xs = [float(i) for i in range(100)]
        results = self.run_all_backends(MapOp(kernel), xs)
        for r in results:
            assert np.allclose(np.asarray(r), np.asarray(xs) * 3.0)

    def test_reduce_consistent(self, jit):
        xs = [float(i) for i in range(1000)]
        for r in self.run_all_backends(ReduceOp(None), xs):
            assert r == pytest.approx(sum(xs))

    def test_mapreduce(self, jit):
        kernel = Kernel.from_closure(
            jit, guest_closure(jit, "fun(x) => x * x"))
        xs = [float(i) for i in range(200)]
        for r in self.run_all_backends(MapReduceOp(kernel), xs):
            assert r == pytest.approx(sum(x * x for x in xs))

    def test_zipmap(self, jit):
        kernel = Kernel.from_closure(
            jit, guest_closure(jit, "fun(x, y) => x - y"))
        a = [float(i) for i in range(50)]
        b = [float(2 * i) for i in range(50)]
        for r in self.run_all_backends(ZipMapOp(kernel), a, b):
            assert np.allclose(np.asarray(r), np.asarray(a) - np.asarray(b))

    def test_sim_clock_advances(self, jit):
        rt = DeliteRuntime(backend="smp", cores=4)
        xs = list(np.linspace(0, 1, 10000))
        rt.run(VSUM, xs)
        assert rt.sim_time > 0
        assert rt.ops_run == 1

    def test_smp_sim_time_below_seq_for_large_inputs(self):
        xs = np.linspace(0, 1, 2_000_000)
        seq = DeliteRuntime(backend="seq")
        smp = DeliteRuntime(backend="smp", cores=8, sync_overhead_us=5)
        r1 = seq.run(SIGMOID, xs)
        r2 = smp.run(SIGMOID, xs)
        assert np.allclose(r1, np.concatenate([r2]) if isinstance(r2, list)
                           else r2)
        assert smp.sim_time < seq.sim_time

    def test_register_data_caches_conversion(self):
        rt = DeliteRuntime()
        xs = [1.0, 2.0]
        arr = rt.register_data(xs)
        assert rt._as_array(xs) is arr


class TestBuiltins:
    def test_nearest2d(self):
        rt = DeliteRuntime()
        px, py = [0.0, 10.0, 0.1], [0.0, 0.0, 0.0]
        assign = rt.run(NEAREST_2D, px, py, [0.0, 10.0], [0.0, 0.0])
        assert list(assign) == [0, 1, 0]

    def test_cluster_sums(self):
        rt = DeliteRuntime()
        sums = rt.run(CLUSTER_SUMS_2D, [1.0, 2.0, 3.0], [4.0, 5.0, 6.0],
                      [0, 1, 0], 2)
        assert list(sums[0]) == [4.0, 2.0]
        assert list(sums[1]) == [10.0, 5.0]
        assert list(sums[2]) == [2.0, 1.0]

    def test_cluster_sums_chunked_combine(self):
        seq = DeliteRuntime(backend="seq")
        smp = DeliteRuntime(backend="smp", cores=4)
        n = 1000
        px = [float(i) for i in range(n)]
        py = [float(2 * i) for i in range(n)]
        assign = [i % 3 for i in range(n)]
        a = seq.run(CLUSTER_SUMS_2D, px, py, assign, 3)
        b = smp.run(CLUSTER_SUMS_2D, px, py, assign, 3)
        assert np.allclose(a, b)

    def test_matvec_and_gradient(self):
        rt = DeliteRuntime()
        cols = [[1.0, 2.0], [3.0, 4.0]]
        w = [0.5, 0.25]
        z = rt.run(mat_vec_cols(2), cols[0], cols[1], w)
        assert np.allclose(z, [1 * .5 + 3 * .25, 2 * .5 + 4 * .25])
        grad = rt.run(weighted_col_sums(2), cols[0], cols[1], [1.0, -1.0])
        assert np.allclose(grad, [1 - 2, 3 - 4])

    def test_dot_and_vsub_and_sigmoid(self):
        rt = DeliteRuntime()
        assert rt.run(DOT, [1.0, 2.0], [3.0, 4.0]) == pytest.approx(11.0)
        assert np.allclose(rt.run(VSUB, [5.0], [2.0]), [3.0])
        assert np.allclose(rt.run(SIGMOID, [0.0]), [0.5])


class TestFusionInIR:
    def make(self, jit, body, module):
        from repro.optiml import load_optiml
        load_optiml(jit)
        jit.load(body, module=module)
        return jit.vm.call(module, "mk")

    def test_map_map_fuses(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0, 3.0];
              return Lancet.compile(fun(d) {
                var a = Optiml.vmap(xs, fun(x) => x + 1.0);
                var b = Optiml.vmap(a, fun(x) => x * 2.0);
                return b;
              });
            }
        ''', "FuseMM")
        out = cf(0)
        assert np.allclose(np.asarray(out), [(x + 1) * 2 for x in [1, 2, 3]])
        assert cf.source.count("_drun") == 1      # fused to one op

    def test_sum_of_map_becomes_mapreduce(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0, 3.0, 4.0];
              return Lancet.compile(fun(d) {
                var sq = Optiml.vmap(xs, fun(x) => x * x);
                return Optiml.vsum(sq);
              });
            }
        ''', "FuseMR")
        # vsum is a builtin reduce; vmap producer feeds it — the current
        # fusion handles ReduceOp(None) over maps (reduceSum path).
        assert cf(0) == pytest.approx(30.0)

    def test_zipwithindex_map_reduce_fuses_to_soa(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [10.0, 20.0, 30.0];
              return Lancet.compile(fun(d) {
                var pairs = Optiml.zipWithIndex(xs);
                var vals = Optiml.mapArr(pairs, fun(p) => p.snd * p.fst);
                return Optiml.reduceSum(vals);
              });
            }
        ''', "FuseSoA")
        assert cf(0) == pytest.approx(0 * 10 + 1 * 20 + 2 * 30)
        assert cf.source.count("_drun") == 1      # single fused op
        # and no Pair construction remains anywhere in the pipeline
        assert "_newinst" not in cf.source

    def test_fusion_disabled_by_option(self, jit):
        from repro import CompileOptions
        from repro.optiml import load_optiml
        jit = Lancet(options=CompileOptions(delite_fusion=False))
        load_optiml(jit)
        jit.load('''
            def mk() {
              var xs = [1.0, 2.0];
              return Lancet.compile(fun(d) {
                var a = Optiml.vmap(xs, fun(x) => x + 1.0);
                return Optiml.vsum(a);
              });
            }
        ''', "NoFuse")
        cf = jit.vm.call("NoFuse", "mk")
        assert cf(0) == pytest.approx(5.0)
        assert cf.source.count("_drun") == 2      # unfused

    def test_observed_intermediate_not_fused(self, jit):
        cf = self.make(jit, '''
            def mk() {
              var xs = [1.0, 2.0];
              return Lancet.compile(fun(d) {
                var a = Optiml.vmap(xs, fun(x) => x + 1.0);
                var s = Optiml.vsum(a);
                return s + a[0];     // `a` observed: must stay materialized
              });
            }
        ''', "FuseObs")
        assert cf(0) == pytest.approx(5.0 + 2.0)
        assert cf.source.count("_drun") == 2


class TestSumRange:
    """The paper's Fig. 8 operator: sum(start, end)(block) as a
    DeliteOpMapReduce over an index range."""

    def make(self, jit):
        from repro.optiml import load_optiml
        load_optiml(jit)
        jit.load('''
            def mk() {
              return Lancet.compile(fun(d) =>
                Optiml.sumRange(0, 100, fun(i) => i * i));
            }
        ''', module="SumRangeT")
        return jit.vm.call("SumRangeT", "mk")

    def test_matches_interpreted(self, jit):
        cf = self.make(jit)
        expected = sum(i * i for i in range(100))
        assert cf(0) == expected
        assert "_drun" in cf.source      # macro fired

    def test_all_backends_agree(self, jit):
        cf = self.make(jit)
        expected = sum(i * i for i in range(100))
        for backend, cores in [("seq", 1), ("smp", 2), ("smp", 8),
                               ("gpu", 1)]:
            jit.delite.configure(backend, cores=cores)
            assert cf(0) == expected

    def test_kernel_vectorizes(self, jit):
        cf = self.make(jit)
        jit.delite.reset_clock()
        jit.delite.configure("gpu")
        cf(0)
        assert jit.delite.ops_run == 1

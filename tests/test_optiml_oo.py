"""The OO OptiML layer (DenseVector/DenseMatrix, paper Fig. 8) and its
virtual-method accelerator macros."""

import numpy as np
import pytest

from repro import Lancet
from repro.optiml import load_optiml


@pytest.fixture
def jit():
    j = Lancet()
    load_optiml(j)
    return j


def run(jit, body, module):
    jit.load("def mk() { %s }" % body, module=module)
    return jit.vm.call(module, "mk")


class TestDenseVectorLibrary:
    def test_basic_ops_interpreted(self, jit):
        result = run(jit, '''
            var v = new DenseVector([1.0, 2.0, 3.0]);
            var w = new DenseVector([10.0, 20.0, 30.0]);
            var s = v.plus(w);
            return [v.length(), s.get(2), v.minus(w).get(0),
                    v.timesScalar(2.0).get(1), v.sum(), v.dot(w)];
        ''', "DV1")
        assert result == [3, 33.0, -9.0, 4.0, 6.0, 140.0]

    def test_matrix_row_and_get(self, jit):
        result = run(jit, '''
            var m = new DenseMatrix([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
            var r = m.row(1);
            return [m.get(0, 2), r.get(0), r.sum()];
        ''', "DM1")
        assert result == [3.0, 4.0, 15.0]

    def test_sum_rows_interpreted(self, jit):
        result = run(jit, '''
            var m = new DenseMatrix([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
            return m.sumRows().get(0) + m.sumRows().get(2);
        ''', "DM2")
        assert result == (1 + 4) + (3 + 6)


class TestVirtualMacros:
    def test_dv_sum_compiles_to_delite_op(self, jit):
        jit.load('''
            def mk() {
              var v = new DenseVector([1.0, 2.0, 3.0, 4.0]);
              return Lancet.compile(fun(d) => v.sum());
            }
        ''', module="DVC1")
        cf = jit.vm.call("DVC1", "mk")
        assert cf(0) == pytest.approx(10.0)
        assert "_drun" in cf.source       # the virtual macro fired

    def test_dv_dot_virtual_macro(self, jit):
        jit.load('''
            def mk() {
              var v = new DenseVector([1.0, 2.0]);
              var w = new DenseVector([3.0, 4.0]);
              return Lancet.compile(fun(d) => v.dot(w));
            }
        ''', module="DVC2")
        cf = jit.vm.call("DVC2", "mk")
        assert cf(0) == pytest.approx(11.0)
        assert "_drun" in cf.source

    def test_vector_pipeline_compiles(self, jit):
        """Vectors allocated inside compiled code chain Delite ops through
        scalar-replaced DenseVector wrappers."""
        jit.load('''
            def mk() {
              var v = new DenseVector([1.0, 2.0, 3.0]);
              var w = new DenseVector([0.5, 0.5, 0.5]);
              return Lancet.compile(fun(d) {
                var a = v.plus(w);
                var b = a.timesScalar(2.0);
                return b.sum();
              });
            }
        ''', module="DVC3")
        cf = jit.vm.call("DVC3", "mk")
        assert cf(0) == pytest.approx(sum((x + 0.5) * 2 for x in [1, 2, 3]))
        assert "_drun" in cf.source

    def test_sum_rows_compiles_to_rowsums_op(self, jit):
        jit.load('''
            def mk() {
              var m = new DenseMatrix([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
              return Lancet.compile(fun(d) => m.sumRows().sum());
            }
        ''', module="DVC4")
        cf = jit.vm.call("DVC4", "mk")
        assert cf(0) == pytest.approx(21.0)

    def test_backends_agree(self, jit):
        jit.load('''
            def mk() {
              var m = new DenseMatrix([1.0, 2.0, 3.0, 4.0, 5.0, 6.0,
                                       7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
                                      4, 3);
              return Lancet.compile(fun(d) => m.sumRows().dot(
                  new DenseVector([1.0, 0.0, 2.0])));
            }
        ''', module="DVC5")
        cf = jit.vm.call("DVC5", "mk")
        expected = (1 + 4 + 7 + 10) * 1.0 + (3 + 6 + 9 + 12) * 2.0
        for backend, cores in [("seq", 1), ("smp", 4), ("gpu", 1)]:
            jit.delite.configure(backend, cores=cores)
            assert cf(0) == pytest.approx(expected)

    def test_without_macros_library_still_correct(self):
        j = Lancet()
        load_optiml(j, install_macros=False)
        j.load('''
            def mk() {
              var v = new DenseVector([1.0, 2.0]);
              return Lancet.compile(fun(d) => v.sum());
            }
        ''', module="DVC6")
        cf = j.vm.call("DVC6", "mk")
        assert cf(0) == pytest.approx(3.0)
        assert "_drun" not in cf.source   # library loop was inlined instead

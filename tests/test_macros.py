"""JIT macros as user-facing extension points (paper 2.3): registry
semantics, evalA/evalM/funR, custom user macros, macro-defined rewrites."""

import pytest

from repro.absint.absval import Const, Static, Unknown
from repro.errors import MaterializeError
from repro.lms.rep import ConstRep
from repro.macros.registry import MacroRegistry
from tests.conftest import load


class TestRegistry:
    def test_install_lookup_static(self):
        r = MacroRegistry()
        fn = lambda ctx, recv, args: None
        r.install("C", "m", fn)
        assert r.lookup_static("C", "m") is fn
        assert r.lookup_static("C", "other") is None

    def test_virtual_walks_superclasses(self):
        from repro.bytecode.classfile import ClassFile
        from repro.runtime.objects import RtClass
        base = RtClass("Base", ClassFile("Base"), None)
        sub = RtClass("Sub", ClassFile("Sub", super_name="Base"), base)
        r = MacroRegistry()
        fn = lambda ctx, recv, args: None
        r.install("Base", "m", fn)
        assert r.lookup_virtual(sub, "m") is fn

    def test_install_class_object(self):
        class Macros:
            def foo(self, ctx, recv, args):
                return None

            def _private(self):
                return None

        r = MacroRegistry()
        r.install_class("C", Macros())
        assert r.lookup_static("C", "foo") is not None
        assert r.lookup_static("C", "_private") is None

    def test_uninstall(self):
        r = MacroRegistry()
        r.install("C", "m", lambda ctx, recv, args: None)
        r.uninstall("C", "m")
        assert r.lookup_static("C", "m") is None


class TestCustomMacros:
    def test_macro_replaces_method_call(self):
        """A user macro rewrites a guest library call into a constant —
        the 'smart library' mechanism."""
        j = load('''
            class MathLib { def cube(x) { return x * x * x; } }
            def make(lib) {
              return Lancet.compile(fun(x) => lib.cube(x));
            }
        ''')

        seen = {}

        def cube_macro(ctx, recv, args):
            seen["called"] = True
            x = args[0]
            sq = ctx.emit("mul", (x, x), absval=Unknown(ty="num"))
            return ctx.emit("mul", (sq, x), absval=Unknown(ty="num"))

        j.install_macro("MathLib", "cube", cube_macro)
        lib = j.vm.new_object("MathLib")
        f = j.vm.call("Main", "make", [lib])
        assert f(3) == 27
        assert seen["called"]

    def test_macro_none_falls_through(self):
        j = load('''
            class L { def id(x) { return x; } }
            def make(l) { return Lancet.compile(fun(x) => l.id(x)); }
        ''')
        j.install_macro("L", "id", lambda ctx, recv, args: None)
        l = j.vm.new_object("L")
        f = j.vm.call("Main", "make", [l])
        assert f(5) == 5   # normal inlining handled it

    def test_macro_sees_abstract_values(self):
        j = load('''
            class L { def probe(x) { return 0; } }
            def make(l) {
              var k = 10;
              return Lancet.compile(fun(x) => l.probe(k + 5) + x);
            }
        ''')
        observed = {}

        def probe(ctx, recv, args):
            observed["abs"] = ctx.eval_abs(args[0])
            return ctx.lift(0)

        j.install_macro("L", "probe", probe)
        l = j.vm.new_object("L")
        f = j.vm.call("Main", "make", [l])
        assert f(1) == 1
        assert observed["abs"] == Const(15)   # folded before the macro ran

    def test_eval_m_materializes_partial(self):
        """evalM allocates an object from its abstract field map (the
        paper's implementation, section 2.3)."""
        j = load('''
            class Pair { var a; var b; def init(a, b) { this.a = a; this.b = b; } }
            class L { def grab(p) { return 0; } }
            def make(l) {
              return Lancet.compile(fun(x) {
                var p = new Pair(1, [2, 3]);
                return l.grab(p) + x;
              });
            }
        ''')
        got = {}

        def grab(ctx, recv, args):
            obj = ctx.eval_m(args[0])
            got["a"] = obj.fields["a"]
            got["b"] = obj.fields["b"]
            return ctx.lift(0)

        j.install_macro("L", "grab", grab)
        l = j.vm.new_object("L")
        f = j.vm.call("Main", "make", [l])
        assert f(0) == 0
        assert got == {"a": 1, "b": [2, 3]}

    def test_eval_m_fails_on_dynamic(self):
        j = load('''
            class L { def grab(v) { return 0; } }
            def make(l) { return Lancet.compile(fun(x) => l.grab(x)); }
        ''')

        def grab(ctx, recv, args):
            with pytest.raises(MaterializeError):
                ctx.eval_m(args[0])
            return ctx.lift(0)

        j.install_macro("L", "grab", grab)
        l = j.vm.new_object("L")
        assert j.vm.call("Main", "make", [l])(9) == 0

    def test_fun_r_unfolds_closure(self):
        """funR: turn Rep[A=>B] into Rep[A]=>Rep[B] by inlining."""
        j = load('''
            class L { def twice(f, x) { return f(f(x)); } }
            def make(l) {
              return Lancet.compile(fun(x) => l.twice(fun(v) => v + 1, x));
            }
        ''')

        def twice(ctx, recv, args):
            f, x = args

            def after_first(machine, state, r1):
                return ctx.fun_r(f, [r1])

            return ctx.fun_r(f, [x], on_return=after_first)

        j.install_macro("L", "twice", twice)
        l = j.vm.new_object("L")
        f = j.vm.call("Main", "make", [l])
        assert f(10) == 12
        assert "_callm" not in f.source and "_callv" not in f.source

    def test_macro_guard_speculation(self):
        """A macro can emit its own guards (custom speculation policy)."""
        j = load('''
            class L { def positive(x) { if (x > 0) { return true; } return false; } }
            def make(l) {
              return Lancet.compile(fun(x) {
                if (l.positive(x)) { return x; }
                return 0 - x;
              });
            }
        ''')

        def positive(ctx, recv, args):
            x = args[0]
            cond = ctx.emit("gt", (x, ConstRep(0)), absval=Unknown(ty="bool"))
            ctx.guard(cond, result_value=False)
            return ctx.lift(True)

        j.install_macro("L", "positive", positive)
        l = j.vm.new_object("L")
        f = j.vm.call("Main", "make", [l])
        assert f(5) == 5
        assert f(-5) == 5      # deopt path re-runs in the interpreter
        assert f.deopt_count == 1

    def test_macro_on_static_namespace(self):
        j = load('''
            def make() { return Lancet.compile(fun(x) => Magic.add3(x)); }
        ''')

        def add3(ctx, recv, args):
            return ctx.emit("add", (args[0], ConstRep(3)),
                            absval=Unknown(ty="num"))

        j.install_macro("Magic", "add3", add3)
        f = j.vm.call("Main", "make")
        assert f(4) == 7

"""The sharded content-addressed code cache.

One :class:`~repro.codecache.store.PersistentCodeCache` is a single
directory with a single LRU budget — correct for one VM, a serialization
point for a fleet. :class:`ShardedCodeCache` splits the fingerprint
space over N shards (subdirectories ``shard-00`` ... ``shard-NN``, keyed
by the first fingerprint byte), each an ordinary PersistentCodeCache
with its own slice of the byte budget and its own store lock:

* **loads are lock-free** — the underlying store already tolerates
  concurrent readers (atomic writes, checksum-verified reads), so warm
  hits from many tenant threads never contend;
* **stores serialize per shard**, not globally — the store lock only
  exists to keep budget enforcement from stampeding when several
  tenants persist at once, and two stores to different shards proceed
  in parallel;
* the **budget divides evenly** across shards. Content fingerprints are
  sha256 hex, so the first byte is uniform and the per-shard budgets
  see balanced load.

The class mirrors the PersistentCodeCache surface (``fingerprint`` /
``load`` / ``store`` / ``invalidate`` / ``stats``), so a Lancet can use
it directly as its ``codecache`` — that is exactly what
``attach_compile_server`` does: every attached tenant shares the
server's sharded store, and a unit persisted by one tenant is a warm
hit for every other.
"""

from __future__ import annotations

import hashlib
import os
import threading

from repro.codecache.fingerprint import unit_fingerprint
from repro.codecache.store import PersistentCodeCache

#: Default shard count: enough that 8-16 concurrent tenants rarely
#: collide on a store lock, few enough that directory fan-out stays
#: readable.
DEFAULT_SHARDS = 8


class ShardedCodeCache:
    """N persistent-cache shards behind one fingerprint-keyed facade."""

    def __init__(self, root, shards=DEFAULT_SHARDS, budget_bytes=64 << 20,
                 telemetry=None, backend="python"):
        self.root = os.path.abspath(root)
        self.n_shards = max(1, int(shards))
        self.budget_bytes = budget_bytes
        self.telemetry = telemetry
        self.backend = backend
        per_shard = (None if budget_bytes is None
                     else max(1, budget_bytes // self.n_shards))
        self.shards = [
            PersistentCodeCache(
                os.path.join(self.root, "shard-%02d" % i),
                budget_bytes=per_shard, telemetry=telemetry,
                backend=backend)
            for i in range(self.n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]

    @property
    def enabled(self):
        return any(s.enabled for s in self.shards)

    # -- keys ------------------------------------------------------------------

    def fingerprint(self, jit, method, options, kind="unit"):
        return unit_fingerprint(jit, method, options, backend=self.backend,
                                kind=kind)

    def _shard_index(self, fingerprint):
        try:
            return int(fingerprint[:2], 16) % self.n_shards
        except (ValueError, TypeError):
            # Non-hex key (tests, exotic fingerprints): must map to the
            # same shard in every process sharing the store on disk, so
            # no built-in hash() (randomized by PYTHONHASHSEED).
            digest = hashlib.sha256(str(fingerprint).encode("utf-8"))
            return int(digest.hexdigest()[:8], 16) % self.n_shards

    def shard_for(self, fingerprint):
        return self.shards[self._shard_index(fingerprint)]

    # -- the PersistentCodeCache surface ---------------------------------------

    def load(self, fingerprint, jit, recompile=None, kind="unit"):
        """Lock-free warm-start lookup in the owning shard."""
        return self.shard_for(fingerprint).load(fingerprint, jit,
                                                recompile=recompile,
                                                kind=kind)

    def store(self, fingerprint, compiled, options):
        """Persist into the owning shard, under its store lock (budget
        enforcement must not race another store to the same shard)."""
        idx = self._shard_index(fingerprint)
        with self._locks[idx]:
            return self.shards[idx].store(fingerprint, compiled, options)

    def invalidate(self, fingerprint, reason="invalidated"):
        idx = self._shard_index(fingerprint)
        with self._locks[idx]:
            return self.shards[idx].invalidate(fingerprint, reason=reason)

    def contains(self, fingerprint):
        """Existence probe without rehydrating (prewarm skip check)."""
        shard = self.shard_for(fingerprint)
        return os.path.exists(shard._path(fingerprint))

    # -- maintenance -----------------------------------------------------------

    def fingerprints(self):
        """Every stored fingerprint, across all shards (manifest export)."""
        out = []
        for shard in self.shards:
            for _mtime, _size, path in shard._entry_files():
                name = os.path.basename(path)
                out.append(name[:-len(".json")])
        return sorted(out)

    def stats(self):
        """Aggregate of the per-shard stats; counter totals come from the
        shared telemetry (all shards feed the same Metrics registry)."""
        shard_stats = [s.stats() for s in self.shards]
        agg = {
            "enabled": self.enabled,
            "dir": self.root,
            "shards": self.n_shards,
            "entries": sum(s["entries"] for s in shard_stats),
            "size_bytes": sum(s["size_bytes"] for s in shard_stats),
            "budget_bytes": self.budget_bytes,
            "entries_per_shard": [s["entries"] for s in shard_stats],
        }
        # One shard's counter view is the whole store's: every shard
        # shares self.telemetry, so the counts are already aggregated.
        for key, value in shard_stats[0].items():
            if key not in ("enabled", "dir", "entries", "size_bytes",
                           "budget_bytes"):
                agg.setdefault(key, value)
        return agg

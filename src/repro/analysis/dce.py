"""Effect-aware dead-code elimination and redundant-guard elimination.

Both passes are pure IR→IR transformations over the CFG; the code
generator (and the JIT pipeline in :mod:`repro.jit.api`) run them before
rendering. DCE is where scalar-replaced and otherwise unused allocations
finally disappear — which is also why the post-optimization
``checkNoAlloc`` pass (:mod:`repro.analysis.alloc`) must run *after* it.
"""

from __future__ import annotations

from repro.analysis.liveness import (REMOVABLE_EFFECTS, live_sets,
                                     pinned_effectful)
from repro.lms.ir import Effect


def eliminate_dead(blocks, entry_id=None):
    """Delete pure/alloc statements whose results are never used.

    Returns the number of statements removed. ``entry_id`` only seeds the
    traversal order; when omitted, the lowest block id is used (the
    backward solver visits unreachable blocks regardless).
    """
    if not blocks:
        return 0
    if entry_id is None or entry_id not in blocks:
        entry_id = min(blocks)
    live = live_sets(blocks, entry_id)
    removed = 0
    for bid, block in blocks.items():
        needed = set(live[bid][1])          # live-out of this block
        needed.update(_term_use_names(block.terminator))
        kept = []
        for stmt in reversed(block.stmts):
            name = stmt.sym.name
            if stmt.effect not in REMOVABLE_EFFECTS or name in needed \
                    or pinned_effectful(stmt):
                kept.append(stmt)
                needed.discard(name)
                needed.update(a.name for a in stmt.args
                              if hasattr(a, "name"))
            else:
                removed += 1
        kept.reverse()
        block.stmts = kept
    return removed


def _term_use_names(term):
    from repro.analysis.cfg import term_uses
    return term_uses(term)


def eliminate_redundant_guards(blocks):
    """Remove guards dominated by an identical guard in the same block.

    The IR is SSA, so a guard condition's value cannot change between two
    ``guard``/``guard_not`` statements on the same symbol: if the first
    one passed, the second passes too. The guard's own symbol is a dummy
    (``None`` in generated code), so a duplicate is removable whenever
    that symbol is unused. Returns the number of guards removed.
    """
    from repro.analysis.cfg import count_uses
    uses = count_uses(blocks)
    removed = 0
    for block in blocks.values():
        seen = set()
        kept = []
        for stmt in block.stmts:
            if stmt.op in ("guard", "guard_not"):
                key = (stmt.op, stmt.args[0])
                if key in seen and uses.get(stmt.sym.name, 0) == 0:
                    removed += 1
                    continue
                seen.add(key)
            elif stmt.effect is Effect.CALL:
                # A residual call can deopt/recompile on its own; keep
                # guards re-established after it (conservative).
                seen.clear()
            kept.append(stmt)
        block.stmts = kept
    return removed

"""Code caching and on-demand compilation (paper 3.1).

The paper's point: instead of relying on VM-internal black-box caches,
programs implement their own policies in a few lines::

    val cache = new WeakHashMap[Int, Int=>Int]
    def calcJIT(x, y) = cache.getOrElseUpdate(x, compile(z => calc(x, z)))(y)

Here we provide the generalized combinators: :func:`make_jit` specializes
a two-argument guest function on its first argument with a
:class:`CodeCache` (pluggable eviction), and :func:`make_hot` adds
profile-driven compilation ("only after a certain value becomes hot").
"""

from __future__ import annotations

from collections import OrderedDict

from repro.bytecode.builder import MethodBuilder
from repro.bytecode.classfile import ClassFile
from repro.errors import GuestTypeError
from repro.runtime.objects import new_instance


class CodeCache:
    """An LRU code cache with a pluggable eviction hook.

    "We could easily extend our cache with a custom eviction policy" — so
    the policy is a constructor argument: ``on_evict(key, compiled)``.
    """

    def __init__(self, capacity=None, on_evict=None, telemetry=None,
                 name="cache"):
        self.capacity = capacity
        self.on_evict = on_evict
        self.telemetry = telemetry
        self.name = name
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    _EVENT_KIND = {"hits": "cache.hit", "misses": "cache.miss",
                   "evictions": "cache.evict"}

    def _count(self, what, **data):
        tel = self.telemetry
        if tel is not None:
            tel.inc("cache.%s" % what)
            tel.inc("cache.%s.%s" % (self.name, what))
            tel.record(self._EVENT_KIND[what], cache=self.name, **data)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("hits", key=repr(key), size=len(self._entries))
        else:
            self.misses += 1
            self._count("misses", key=repr(key), size=len(self._entries))
        return entry

    def put(self, key, compiled):
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        if self.capacity is not None and len(self._entries) > self.capacity:
            old_key, old = self._entries.popitem(last=False)
            self.evictions += 1
            self._count("evictions", key=repr(old_key),
                        size=len(self._entries))
            if self.on_evict is not None:
                self.on_evict(old_key, old)
        return compiled

    def get_or_else_update(self, key, compile_fn):
        entry = self.get(key)
        if entry is None:
            entry = self.put(key, compile_fn())
        return entry

    def invalidate_all(self, reason="cache flush"):
        n = len(self._entries)
        for compiled in self._entries.values():
            compiled.invalidate(reason)
        self._entries.clear()
        tel = self.telemetry
        if tel is not None:
            tel.inc("cache.flushes")
            tel.record("cache.flush", cache=self.name, entries=n,
                       reason=reason)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries


_SYNTH_COUNTER = [0]


def _partial_applier_class(jit, class_name, method_name):
    """Synthesize ``class C { val x; def apply(z) { return Cls.m(this.x, z); } }``
    — the guest closure ``z => f(x, z)`` built from the host side."""
    _SYNTH_COUNTER[0] += 1
    name = "JitCache$%s$%s$%d" % (class_name, method_name, _SYNTH_COUNTER[0])
    cf = ClassFile(name, is_closure=True)
    cf.add_field("x", is_val=True)
    b = MethodBuilder("apply", 1, is_static=False)
    b.load(0).getfield("x")
    b.load(1)
    b.invoke_static(class_name, method_name, 2)
    b.ret_val()
    cf.add_method(b.build())
    jit.vm.load_classes([cf])
    return jit.vm.linker.resolve_class(name)


def make_jit(jit, class_name, method_name, cache=None):
    """Specialize the static 2-argument guest method ``class.method`` on
    its first argument, compiling one variant per distinct value.

    Returns ``call(x, y)``; guarantees that execution always runs a code
    path in which ``x`` is a compile-time constant.
    """
    method = jit.vm.linker.resolve_static(class_name, method_name)
    if method.num_params != 2:
        raise GuestTypeError("make_jit needs a 2-argument function")
    closure_cls = _partial_applier_class(jit, class_name, method_name)
    if cache is None:
        cache = CodeCache(telemetry=getattr(jit, "telemetry", None),
                          name="jit_cache")

    def call(x, y):
        def compile_variant():
            closure = new_instance(closure_cls)
            closure.fields["x"] = x
            return jit.compile_closure(closure)
        return cache.get_or_else_update(x, compile_variant)(y)

    call.cache = cache
    return call


def make_hot(jit, class_name, method_name, threshold=2, cache=None,
             background=False):
    """Like :func:`make_jit`, but only compiles a variant after its first
    argument has been seen ``threshold`` times; colder values run in the
    interpreter (amortizing compilation cost, paper's ``calcHOT``).

    With ``background=True``, compilation is submitted to a worker thread
    ("we could add background compilation by submitting the actual
    compilation as a task to a worker thread"): calls keep interpreting
    until the compiled variant lands in the cache.
    """
    jitted = make_jit(jit, class_name, method_name, cache=cache)
    profile = {}
    pending = {}
    closure_cls = _partial_applier_class(jit, class_name, method_name)

    def compile_variant(x):
        closure = new_instance(closure_cls)
        closure.fields["x"] = x
        return jit.compile_closure(closure)

    def call(x, y):
        if x in jitted.cache:
            return jitted(x, y)
        seen = profile.get(x, 0)
        if seen < threshold:
            profile[x] = seen + 1
            return jit.vm.call(class_name, method_name, [x, y])
        if not background:
            return jitted(x, y)
        # Hot, background mode: kick off compilation once, keep
        # interpreting until it finishes.
        worker = pending.get(x)
        if worker is None:
            import threading

            def task():
                jitted.cache.put(x, compile_variant(x))

            worker = threading.Thread(target=task, daemon=True)
            pending[x] = worker
            worker.start()
        if not worker.is_alive():
            pending.pop(x, None)
            if x in jitted.cache:
                return jitted(x, y)
        return jit.vm.call(class_name, method_name, [x, y])

    call.cache = jitted.cache
    call.profile = profile
    call.pending = pending
    return call

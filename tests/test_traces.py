"""Tier-T, the trace-recording tier (ISSUE 6 tentpole): recording
start/abort, guard-exit deopt back to the interpreter, bridge stitching
on hot side exits, exit-budget blacklisting, persistence of trace units,
and the recorded-trace IR invariants (verifier + checkNoAlloc).

Every trace-tier jit in this file compiles with ``verify_ir=True``: a
recorded trace that fails IR verification surfaces as a
``trace.abort``/``mode="compile"`` event, which several tests assert
never happens.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st
from tests.test_differential import guest_program

from repro import CompileOptions, Lancet
from repro.errors import GuestError
from repro.pipeline import TIER_T
from repro.pipeline.tracing import ABORT_BUDGET

SUM_SRC = '''
    def f(n) {
      var acc = 0;
      var i = 0;
      while (i < n) {
        acc = acc + i;
        i = i + 1;
      }
      return acc;
    }
'''

# A branch that is stable for the first `k` iterations and then flips:
# the recorded trace speculates on the hot side and must deopt cleanly
# (restoring acc/odd/i exactly) when the cold side runs.
FLIP_SRC = '''
    def f(n, k) {
      var acc = 0;
      var odd = 0;
      var i = 0;
      while (i < n) {
        if (i < k) { acc = acc + i; }
        else { odd = odd + (i * 2); acc = acc + 1; }
        i = i + 1;
      }
      return (acc * 1000) + odd;
    }
'''


def expected_flip(n, k):
    acc = odd = 0
    for i in range(n):
        if i < k:
            acc += i
        else:
            odd += i * 2
            acc += 1
    return acc * 1000 + odd


# Alternates every iteration, so with bridges disabled the trace exits
# on every other back-edge — a worst case the exit budget must catch.
ALTERNATE_SRC = '''
    def f(n) {
      var acc = 0;
      var i = 0;
      while (i < n) {
        if ((i % 2) == 0) { acc = acc + 1; }
        else { acc = acc + 2; }
        i = i + 1;
      }
      return acc;
    }
'''

MEGA_SRC = '''
    class A { def get(x) { return x + 1; } }
    class B { def get(x) { return x * 2; } }
    class C { def get(x) { return x - 3; } }
    def make(k) {
      if (k == 0) { return new A(); }
      if (k == 1) { return new B(); }
      return new C();
    }
    def work(n) {
      var objs = [make(0), make(1), make(2)];
      var acc = 0;
      var i = 0;
      while (i < n) {
        var o = objs[i % 3];
        acc = acc + o.get(i);
        i = i + 1;
      }
      return acc;
    }
'''


def expected_mega(n):
    fns = [lambda x: x + 1, lambda x: x * 2, lambda x: x - 3]
    return sum(fns[i % 3](i) for i in range(n))


# The allocation is loop-carried (live across the back edge), so scalar
# replacement cannot sink it: it must survive into the generated code.
ALLOC_SRC = '''
    def f(n) {
      var keep = [0, 0];
      var i = 0;
      while (i < n) {
        keep = [i, i + 1];
        i = i + 1;
      }
      return keep[0] + keep[1];
    }
'''


def trace_jit(source, **knobs):
    knobs.setdefault("trace_threshold", 8)
    knobs.setdefault("bridge_threshold", 3)
    j = Lancet(options=CompileOptions(trace_tier=True, verify_ir=True,
                                      **knobs))
    j.telemetry.enable_trace()
    j.load(source)
    return j


def traces_stats(j):
    return j.stats()["traces"]


class TestRecording:
    def test_hot_loop_records_compiles_and_enters(self):
        j = trace_jit(SUM_SRC, trace_threshold=5)
        assert j.vm.call("Main", "f", [30]) == sum(range(30))
        s = traces_stats(j)
        assert s["recordings"] == 1
        assert s["compiles"] == 1
        assert s["entries"] >= 1
        (site_stats,) = s["traces"].values()
        assert site_stats["compiled"] is True
        records = [e.data for e in j.telemetry.events("trace.record")]
        assert records and records[0]["mode"] == "loop"
        # The trace unit compiles at Tier T and shows up in the tier
        # breakdown next to the method tiers.
        assert j.stats()["tiers"]["compiles_by_tier"][TIER_T] >= 1

    def test_below_threshold_never_records(self):
        j = trace_jit(SUM_SRC, trace_threshold=1000)
        assert j.vm.call("Main", "f", [30]) == sum(range(30))
        s = traces_stats(j)
        assert s["recordings"] == 0
        assert s["traces"] == {}

    def test_trace_too_long_aborts_then_blacklists(self):
        j = trace_jit(SUM_SRC, trace_threshold=5, trace_max_ops=3)
        assert j.vm.call("Main", "f", [100]) == sum(range(100))
        aborts = [e.data for e in j.telemetry.events("trace.abort")]
        assert aborts and all(a["reason"] == "trace too long"
                              for a in aborts)
        s = traces_stats(j)
        # The site stops being retried once the abort budget is spent...
        assert s["recordings"] == s["aborts"] == ABORT_BUDGET
        assert s["compiles"] == 0
        # ...and stays blacklisted on later runs.
        assert j.vm.call("Main", "f", [100]) == sum(range(100))
        assert traces_stats(j)["recordings"] == ABORT_BUDGET

    def test_loop_exit_during_recording_aborts(self):
        # The threshold equals the total back-edge count, so recording
        # starts on the loop's final back-edge and immediately runs off
        # the end of the loop instead of reaching the header anchor.
        j = trace_jit(SUM_SRC, trace_threshold=12)
        assert j.vm.call("Main", "f", [12]) == sum(range(12))
        aborts = [e.data for e in j.telemetry.events("trace.abort")]
        assert [a["reason"] for a in aborts] == \
            ["loop exited through return"]
        assert traces_stats(j)["compiles"] == 0


class TestGuardExit:
    def test_side_exit_restores_interpreter_state(self):
        j = trace_jit(FLIP_SRC, trace_threshold=5,
                      bridge_threshold=10 ** 9,
                      trace_exit_budget=10 ** 9)
        for _ in range(3):
            assert j.vm.call("Main", "f", [40, 25]) == expected_flip(40, 25)
        s = traces_stats(j)
        assert s["compiles"] >= 1
        assert s["exits"] >= 1
        exits = [e.data for e in j.telemetry.events("trace.exit")]
        assert any(e["reason"] == "branch" for e in exits)
        # The deopts flowed through the ordinary deopt machinery.
        assert any(e.data["kind"] == "interpret"
                   for e in j.telemetry.events("deopt"))

    def test_output_order_preserved_across_exit(self):
        src = '''
            def f(n, k) {
              var i = 0;
              while (i < n) {
                println(i * 2);
                if (i == k) { println(0 - i); }
                i = i + 1;
              }
              return i;
            }
        '''
        oracle = Lancet()
        oracle.load(src)
        assert oracle.vm.call("Main", "f", [30, 20]) == 30
        expected_out = oracle.vm.output()

        j = trace_jit(src, trace_threshold=5, bridge_threshold=10 ** 9,
                      trace_exit_budget=10 ** 9)
        assert j.vm.call("Main", "f", [30, 20]) == 30
        assert j.vm.output() == expected_out
        assert traces_stats(j)["exits"] >= 1


class TestBridges:
    def test_return_bridge_stitches_loop_exit(self):
        j = trace_jit(SUM_SRC, trace_threshold=5, bridge_threshold=3,
                      trace_exit_budget=10 ** 9)
        for _ in range(8):
            assert j.vm.call("Main", "f", [20]) == sum(range(20))
        s = traces_stats(j)
        assert s["stitches"] == 1
        (site_stats,) = s["traces"].values()
        assert site_stats["bridges"] == 1
        stitches = [e.data for e in j.telemetry.events("trace.stitch")]
        assert [e["kind"] for e in stitches] == ["return"]
        # After stitching, the loop exit returns from the trace directly:
        # no further side exits accumulate.
        before = traces_stats(j)["exits"]
        for _ in range(4):
            assert j.vm.call("Main", "f", [20]) == sum(range(20))
        assert traces_stats(j)["exits"] == before
        (site_stats,) = traces_stats(j)["traces"].values()
        assert site_stats["exits"] == 0

    def test_megamorphic_call_site_grows_bridge_chain(self):
        j = trace_jit(MEGA_SRC, trace_threshold=10, bridge_threshold=3,
                      trace_exit_budget=10 ** 9)
        for _ in range(10):
            assert j.vm.call("Main", "work", [120]) == expected_mega(120)
        s = traces_stats(j)
        assert s["aborts"] == 0
        assert s["stitches"] >= 2   # at least two receiver-class bridges
        (site_stats,) = s["traces"].values()
        assert site_stats["bridges"] >= 2
        # Steady state: with every hot receiver class stitched in (and
        # the loop exit bridged), further iterations never leave Tier T.
        before = traces_stats(j)["exits"]
        for _ in range(3):
            assert j.vm.call("Main", "work", [120]) == expected_mega(120)
        assert traces_stats(j)["exits"] == before


class TestBlacklist:
    def test_exit_budget_blacklists_thrashing_trace(self):
        j = trace_jit(ALTERNATE_SRC, trace_threshold=5,
                      bridge_threshold=10 ** 9, trace_exit_budget=5)
        for _ in range(2):
            assert j.vm.call("Main", "f", [60]) == \
                sum(1 if i % 2 == 0 else 2 for i in range(60))
        s = traces_stats(j)
        assert s["blacklists"] == 1
        assert s["traces"] == {}     # the trace unit is gone
        events = [e.data for e in j.telemetry.events("trace.blacklist")]
        assert events and events[0]["exits"] > 5
        # A blacklisted site never re-records.
        recordings = s["recordings"]
        assert j.vm.call("Main", "f", [60]) == \
            sum(1 if i % 2 == 0 else 2 for i in range(60))
        assert traces_stats(j)["recordings"] == recordings


class TestPersistence:
    def test_trace_unit_round_trips_through_code_cache(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.delenv("REPRO_NO_PERSIST", raising=False)
        opts = dict(trace_tier=True, verify_ir=True, trace_threshold=5,
                    bridge_threshold=3, cache_dir=str(tmp_path))

        j1 = Lancet(options=CompileOptions(**opts))
        j1.telemetry.enable_trace()
        j1.load(SUM_SRC)
        for _ in range(6):
            assert j1.vm.call("Main", "f", [30]) == sum(range(30))
        assert traces_stats(j1)["compiles"] >= 1

        # A fresh process image: same program, same options, warm cache.
        j2 = Lancet(options=CompileOptions(**opts))
        j2.telemetry.enable_trace()
        j2.load(SUM_SRC)
        assert j2.vm.call("Main", "f", [30]) == sum(range(30))
        s = traces_stats(j2)
        assert s["cache_loads"] == 1
        assert s["recordings"] == 0
        assert s["entries"] >= 1

    def test_blacklist_invalidates_persisted_trace(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.delenv("REPRO_NO_PERSIST", raising=False)
        opts = dict(trace_tier=True, verify_ir=True, trace_threshold=5,
                    bridge_threshold=10 ** 9, trace_exit_budget=5,
                    cache_dir=str(tmp_path))
        j1 = Lancet(options=CompileOptions(**opts))
        j1.load(ALTERNATE_SRC)
        j1.telemetry.enable_trace()
        for _ in range(2):
            j1.vm.call("Main", "f", [60])
        assert traces_stats(j1)["blacklists"] == 1

        # The blacklisted unit must not come back on a warm start.
        j2 = Lancet(options=CompileOptions(**opts))
        j2.telemetry.enable_trace()
        j2.load(ALTERNATE_SRC)
        j2.vm.call("Main", "f", [60])
        assert traces_stats(j2)["cache_loads"] == 0


class TestTraceIRInvariants:
    """Every recorded trace must pass the IR verifier; checkNoAlloc runs
    over trace IR exactly as it does over method IR."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(guest_program(), st.integers(-15, 15), st.integers(-15, 15))
    def test_recorded_traces_verify_and_agree_with_interpreter(
            self, source, a, b):
        oracle = Lancet()
        oracle.load(source)
        exp_err = exp_res = None
        try:
            exp_res = oracle.vm.call("Main", "f", [a, b])
        except GuestError as exc:
            exp_err = type(exc)
        exp_out = oracle.vm.output()

        j = trace_jit(source, trace_threshold=4, bridge_threshold=3)
        for _ in range(5):
            err = res = None
            try:
                res = j.vm.call("Main", "f", [a, b])
            except GuestError as exc:
                err = type(exc)
            out = j.vm.output()
            j.vm.clear_output()
            assert (err, res, out) == (exp_err, exp_res, exp_out), source
        # verify_ir=True runs the verifier on every trace compile; a
        # verifier (or any other compile-time) failure surfaces here.
        compile_aborts = [e.data for e in j.telemetry.events("trace.abort")
                          if e.data["mode"] == "compile"]
        assert compile_aborts == [], source

    def test_checknoalloc_runs_over_trace_ir(self):
        # Allocation-free loop: the demand holds for every value the
        # loop computes, and the trace still compiles and runs.
        j = trace_jit(SUM_SRC, trace_threshold=5, check_noalloc=True)
        assert j.vm.call("Main", "f", [30]) == sum(range(30))
        assert traces_stats(j)["compiles"] == 1

        # Allocating loop: the surviving array literal is reported by
        # the alloc pass over the trace's post-pipeline IR and the
        # demand rejects the trace (execution stays correct, in the
        # interpreter).
        j2 = trace_jit(ALLOC_SRC, trace_threshold=5, check_noalloc=True)
        assert j2.vm.call("Main", "f", [30]) == 29 + 30
        reports = [e.data for e in j2.telemetry.events("analysis.report")
                   if e.data["unit"].startswith("trace@")]
        assert reports and reports[-1]["noalloc_sites"] >= 1
        aborts = [e.data for e in j2.telemetry.events("trace.abort")]
        assert any(a["mode"] == "compile" and "allocation" in a["reason"]
                   for a in aborts)


class TestPolicy:
    def test_method_owned_monomorphic_loop_defers_to_method_tier(self):
        j = Lancet(options=CompileOptions(
            trace_tier=True, verify_ir=True, trace_threshold=5,
            tier1_threshold=10 ** 6, tier2_threshold=10 ** 6,
            osr_threshold=10 ** 6))
        j.telemetry.enable_trace()
        j.load(SUM_SRC)
        tf = j.compile_tiered("Main", "f")
        for _ in range(6):
            assert tf(30) == sum(range(30))
        # The method ladder owns this unit and the loop is monomorphic:
        # Tier T stays out of the way.
        s = traces_stats(j)
        assert s["recordings"] == 0
        assert s["traces"] == {}

    def test_method_owned_megamorphic_loop_still_traces(self):
        j = Lancet(options=CompileOptions(
            trace_tier=True, verify_ir=True, trace_threshold=10,
            bridge_threshold=3, tier1_threshold=10 ** 6,
            tier2_threshold=10 ** 6, osr_threshold=10 ** 6))
        j.telemetry.enable_trace()
        j.load(MEGA_SRC)
        tf = j.compile_tiered("Main", "work")
        for _ in range(6):
            assert tf(120) == expected_mega(120)
        # Megamorphic call sites are where traces beat whole-method
        # compilation, so the polymorphism override kicks in.
        assert traces_stats(j)["recordings"] >= 1

    def test_stats_block_shape(self):
        j = trace_jit(SUM_SRC, trace_threshold=5)
        j.vm.call("Main", "f", [30])
        s = traces_stats(j)
        for key in ("enabled", "recordings", "aborts", "compiles",
                    "entries", "exits", "stitches", "blacklists",
                    "cache_loads", "traces"):
            assert key in s
        assert s["enabled"] is True
        (site_stats,) = s["traces"].values()
        assert set(site_stats) == {"compiled", "exits", "bridges",
                                   "blacklisted"}

    def test_traces_block_absent_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_TIER", raising=False)
        j = Lancet()
        j.load(SUM_SRC)
        j.vm.call("Main", "f", [30])
        assert j.stats()["traces"] == {"enabled": False}

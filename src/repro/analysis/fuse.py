"""Block fusion: collapse single-predecessor chains in the staged CFG.

Historically this lived in the Python code generator; it is an IR→IR
transformation like DCE, so it now sits in the analysis package and runs
as a :class:`~repro.pipeline.passes.PassManager` pass (every backend —
Python, JS, SQL — consumes already-fused IR instead of re-cleaning the
blocks itself).
"""

from __future__ import annotations

from repro.lms.ir import Effect, Jump, Stmt
from repro.lms.rep import Sym


def fuse_blocks(blocks, entry_id):
    """Merge single-predecessor blocks into their predecessor.

    Chains of continuation blocks (produced by splitting at join points
    that turned out to have one live edge, and by loop unrolling) collapse
    into straight-line code, removing label-dispatch overhead. A single
    pass over the blocks: fusing never changes any surviving block's
    in-degree (the absorbed block's outgoing edges move wholesale), and
    each fusion site keeps absorbing its whole chain before moving on, so
    the work is linear in the total statement count.
    """
    in_edges = {bid: 0 for bid in blocks}
    for block in blocks.values():
        for succ in block.terminator.successors():
            # Tolerate dangling edges: collect-mode analysis keeps going
            # after the verifier has already reported them.
            in_edges[succ] = in_edges.get(succ, 0) + 1
    for bid in list(blocks):
        block = blocks.get(bid)
        if block is None:
            continue            # already absorbed into a predecessor
        while True:
            term = block.terminator
            if not isinstance(term, Jump):
                break
            target = term.target
            if target == entry_id or target == block.block_id \
                    or target not in blocks or in_edges.get(target) != 1:
                break
            tblock = blocks[target]
            for name, rep in term.phi_assigns:
                block.stmts.append(Stmt(Sym(name), "id", (rep,),
                                        Effect.WRITE))
            block.stmts.extend(tblock.stmts)
            block.terminator = tblock.terminator
            del blocks[target]
    return blocks

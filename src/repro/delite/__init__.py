"""A Delite-style heterogeneous parallel execution framework (paper 3.4).

The real Delite stages DSL programs into a parallel-pattern IR (DeliteOp*),
fuses ops, converts arrays-of-structs to structs-of-arrays, and generates
Scala/CUDA. This reproduction keeps the same architecture:

* :mod:`repro.delite.ops` — parallel-pattern descriptors (Map, ZipMap,
  Reduce, MapReduce, elementwise/reduce builtins);
* :mod:`repro.delite.kernels` — per-element kernels compiled from guest
  closures by Lancet, with a numpy *vectorizer* standing in for CUDA
  codegen;
* :mod:`repro.delite.fusion` — producer/consumer fusion over the staged IR
  plus zipWithIndex SoA elimination;
* :mod:`repro.delite.runtime` — execution backends: sequential, simulated
  multi-core SMP (chunked execution; wall-clock modeled as
  max-over-chunks + sync overhead, since the GIL precludes real thread
  scaling), and "GPU" (whole-array numpy + launch overhead).

See DESIGN.md ("Substitutions") for the fidelity argument.
"""

from repro.delite.kernels import Kernel
from repro.delite.ops import (MapOp, ZipMapOp, ReduceOp, MapReduceOp,
                              ZipWithIndexOp, ElementwiseBuiltin,
                              ReduceBuiltin)
from repro.delite.runtime import DeliteRuntime

__all__ = ["Kernel", "MapOp", "ZipMapOp", "ReduceOp", "MapReduceOp",
           "ZipWithIndexOp", "ElementwiseBuiltin", "ReduceBuiltin",
           "DeliteRuntime"]

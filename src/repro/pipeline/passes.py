"""The PassManager: a declarative, per-tier IR pass list.

One pass list per tier, run between staging and code generation:

* **Tier 1** (quick compile): ``fuse`` only — a single linear sweep so
  warmup compiles stay cheap.
* **Tier 2** (optimizing compile): ``verify.staged`` → ``fuse`` →
  ``parsafe`` → ``gvn`` → ``licm`` → ``sink`` → ``range`` → ``dce`` →
  ``guards`` → ``verify.optimized`` → ``taint`` → ``alloc``.

Order encodes the semantics this package exists for: the verifier runs
where IR is produced and again after the optimizer (which must preserve
well-formedness); ``gvn`` runs first so copies collapse and later passes
see canonical names; ``licm`` before ``sink`` so hoisting does not pin
allocations; ``range`` before ``dce`` so neutralized guards and folded
branches leave dead code for DCE to sweep; taint runs over the
*optimized* CFG; ``checkNoAlloc`` runs post-DCE so dead and sunk
allocations are gone and only allocations surviving into generated code
are reported. The analysis-powered optimization passes are individually
gated by ``CompileOptions`` flags (``opt_gvn``/``opt_licm``/
``opt_scalar_replace``/``opt_range_guards``).

Every pass run is timed and counted: wall time lands in the metrics
registry under ``pass.<name>`` and per-unit in
``CompileReport.pass_stats`` together with before/after block and
statement counts; a ``pass.run`` trace event fires per pass. The legacy
``analysis.*`` phase keys in ``CompileReport.phases`` are kept so
``Lancet.stats()['phase_timings']`` stays stable.

With ``CompileOptions.validate_passes``/``verify_deopt`` set, the
speculation-soundness checkers interleave with the pass list: the
translation validator (:mod:`repro.analysis.validate`) snapshots the IR
before each validated pass and checks the simulation relation after it,
and the deopt-state verifier (:mod:`repro.analysis.deoptcheck`) re-checks
every guard/side-exit's state map at each checkpoint. Checkpoint timings
and finding counts land in ``CompileReport.pass_stats`` as
``validate.<pass>`` entries plus ``validate.fail`` trace events.

In *enforce* mode (normal compilation) violations raise
:class:`IRVerifyError` / :class:`TaintError` / :class:`NoAllocError` /
:class:`TranslationValidationError` / :class:`DeoptStateError`; in
*collect* mode (``Lancet.analyze``) they become structured findings on a
:class:`~repro.analysis.diagnostics.Diagnostics` and compilation
continues.
"""

from __future__ import annotations

import time

from repro.analysis.alloc import check_noalloc, sunk_detail
from repro.analysis.dce import eliminate_dead, eliminate_redundant_guards
from repro.analysis.deoptcheck import check_deopt_state
from repro.analysis.fuse import fuse_blocks
from repro.analysis.taint import find_leaks
from repro.analysis.validate import (VALIDATED_PASSES, snapshot_ir,
                                     validate_pass)
from repro.analysis.verify import verify_ir
from repro.errors import (DeoptStateError, IRVerifyError, NoAllocError,
                          TaintError, TranslationValidationError)
from repro.pipeline.gvn import global_value_numbering
from repro.pipeline.licm import hoist_loop_invariants
from repro.pipeline.rangeopt import prune_range_guards
from repro.pipeline.sink import sink_allocations

#: Legacy CompileReport.phases key each pass accumulates into.
_LEGACY_PHASE = {
    "verify.staged": "analysis.verify",
    "verify.optimized": "analysis.verify",
    "fuse": "analysis.optimize",
    "gvn": "analysis.optimize",
    "licm": "analysis.optimize",
    "sink": "analysis.optimize",
    "range": "analysis.optimize",
    "dce": "analysis.optimize",
    "guards": "analysis.optimize",
    "taint": "analysis.taint",
    "alloc": "analysis.alloc",
}

#: Declarative per-tier pass lists (tier 0 never reaches the pipeline).
#: ``parsafe`` (the Delite parallel-safety classifier) runs right after
#: block fusion so it sees the final op descriptors; it only reports
#: (flags + telemetry + diagnostics) and never rewrites, and it is
#: skipped entirely unless the parsafe mode is on or the manager is in
#: collect mode.
TIER_PASSES = {
    1: ("fuse",),
    2: ("verify.staged", "fuse", "parsafe", "gvn", "licm", "sink", "range",
        "dce", "guards", "verify.optimized", "taint", "alloc"),
}

#: CompileOptions attribute gating each optional pass.
_PASS_FLAG = {
    "gvn": "opt_gvn",
    "licm": "opt_licm",
    "sink": "opt_scalar_replace",
    "range": "opt_range_guards",
}


def _cfg_size(result):
    return (len(result.blocks),
            sum(len(b.stmts) for b in result.blocks.values()))


class PassManager:
    """Runs the per-tier pass list over a CompileResult, in place.

    ``diagnostics`` switches the manager into collect mode: findings are
    appended there instead of raising. The tier is taken from
    ``options.tier`` unless overridden per ``run`` call.
    """

    def __init__(self, options, telemetry=None, diagnostics=None):
        self.options = options
        self.telemetry = telemetry
        self.diagnostics = diagnostics

    # -- helpers ---------------------------------------------------------------

    def _tel_record(self, kind, /, **data):
        if self.telemetry is not None:
            self.telemetry.record(kind, **data)

    def _finish_pass(self, name, result, t0, size_before, report, info):
        seconds = time.perf_counter() - t0
        blocks_after, stmts_after = _cfg_size(result)
        if self.telemetry is not None:
            self.telemetry.observe("pass.%s" % name, seconds)
        self._tel_record("pass.run", name=name, seconds=seconds,
                         blocks_before=size_before[0],
                         blocks_after=blocks_after,
                         stmts_before=size_before[1],
                         stmts_after=stmts_after, **(info or {}))
        if report is not None:
            report.pass_stats.append({
                "pass": name, "seconds": seconds,
                "blocks_before": size_before[0],
                "blocks_after": blocks_after,
                "stmts_before": size_before[1],
                "stmts_after": stmts_after,
            })
            legacy = _LEGACY_PHASE.get(name)
            if legacy is not None:
                report.phases[legacy] = report.phases.get(legacy, 0.0) \
                    + seconds

    def _checkpoint(self, pname, snapshot, result, name, report):
        """One interleaved speculation-soundness check point: the
        translation validator against ``snapshot`` (when the pass was
        snapshotted) plus the deopt-state verifier. Raises in enforce
        mode; returns the finding count in collect mode."""
        t0 = time.perf_counter()
        findings = validate_pass(pname, snapshot, result) \
            if snapshot is not None else []
        deopt_findings = check_deopt_state(result, unit=name) \
            if self.options.verify_deopt else []
        seconds = time.perf_counter() - t0
        if self.telemetry is not None:
            self.telemetry.observe("validate.%s" % pname, seconds)
            self.telemetry.inc("validate.checkpoints")
        if report is not None:
            report.pass_stats.append({
                "pass": "validate.%s" % pname, "seconds": seconds,
                "findings": len(findings),
                "deopt_findings": len(deopt_findings),
            })
        if not findings and not deopt_findings:
            return 0
        self._tel_record("validate.fail", unit=name, pass_name=pname,
                         findings=list(findings),
                         deopt_findings=list(deopt_findings))
        if self.diagnostics is not None:
            self.diagnostics.extend("error", "validate", findings)
            self.diagnostics.extend("error", "deoptcheck", deopt_findings)
            return len(findings) + len(deopt_findings)
        if findings:
            raise TranslationValidationError(
                "translation validation failed for %s after pass %s: %s"
                % (name, pname, "; ".join(findings)),
                pass_name=pname, findings=findings)
        raise DeoptStateError(
            "deopt-state verification failed for %s after pass %s: %s"
            % (name, pname, "; ".join(deopt_findings)),
            pass_name=pname, findings=deopt_findings)

    def _verify(self, result, name, stage):
        errors = verify_ir(result.blocks, result.entry_bid,
                           params=result.param_names, metas=result.metas,
                           stage=stage, collect=True)
        if not errors:
            return {}
        self._tel_record("analysis.verify_fail", unit=name, stage=stage,
                         errors=list(errors))
        if self.diagnostics is not None:
            self.diagnostics.extend("error", "verify",
                                    ["%s IR: %s" % (stage, e)
                                     for e in errors])
            return {"errors": len(errors)}
        raise IRVerifyError(
            "IR verification failed for %s (%s IR): %s"
            % (name, stage, "; ".join(errors)), errors=errors, stage=stage)

    # -- the pipeline ----------------------------------------------------------

    def passes_for(self, tier):
        """The effective pass list for ``tier`` under current options:
        verify passes only run with ``verify_ir`` (or in collect mode),
        and demanded analyses (``checkNoAlloc``/``checkNoTaint``) upgrade
        a Tier-1 list to the full one — a demanded check must never be
        silently skipped for warmup speed."""
        verify = self.options.verify_ir or self.diagnostics is not None
        parsafe = self.options.parsafe != "off" \
            or self.diagnostics is not None
        if tier == 1 and (self.options.check_noalloc
                          or self.options.check_taint):
            tier = 2
        names = TIER_PASSES.get(tier, TIER_PASSES[2])
        names = tuple(n for n in names
                      if getattr(self.options, _PASS_FLAG.get(n, ""), True))
        names = tuple(n for n in names if parsafe or n != "parsafe")
        return tuple(n for n in names
                     if verify or not n.startswith("verify."))

    def run(self, result, name, tier=None, report=None):
        """Run the tier's pass list over ``result`` in place; returns a
        summary dict (also emitted as an ``analysis.report`` event)."""
        diag = self.diagnostics
        tier = self.options.tier if tier is None else tier
        summary = {"removed_stmts": 0, "removed_guards": 0, "leaks": 0,
                   "noalloc_sites": 0, "gvn_removed": 0, "licm_hoisted": 0,
                   "sunk_allocs": 0, "range_pruned_guards": 0,
                   "folded_branches": 0, "parsafe_proven": 0,
                   "parsafe_unproven": 0}
        leaks, sites, sunk, range_detail = [], [], [], []
        parsafe_verdicts = []
        ir_bad = False
        validate = self.options.validate_passes
        deoptchk = self.options.verify_deopt
        summary["validate_checkpoints"] = 0
        summary["validate_findings"] = 0
        if deoptchk:
            # Baseline checkpoint: the staged IR's deopt state must be
            # sound before any pass touches it.
            summary["validate_checkpoints"] += 1
            summary["validate_findings"] += self._checkpoint(
                "staged", None, result, name, report)

        for pname in self.passes_for(tier):
            if ir_bad and pname in _PASS_FLAG:
                # Collect mode continues past verify errors, but running
                # optimizations over ill-formed IR would only manufacture
                # bogus findings.
                continue
            checked = pname in VALIDATED_PASSES and not ir_bad \
                and (validate or deoptchk)
            snapshot = snapshot_ir(result) if checked and validate else None
            t0 = time.perf_counter()
            size_before = _cfg_size(result)
            info = None
            if pname == "verify.staged":
                info = self._verify(result, name, "staged")
                ir_bad = bool(info.get("errors"))
            elif pname == "fuse":
                fuse_blocks(result.blocks, result.entry_bid)
            elif pname == "parsafe":
                from repro.analysis.parsafe import classify_blocks
                parsafe_verdicts = classify_blocks(result.blocks)
                proven = sum(1 for _, v in parsafe_verdicts
                             if v.proven_parallel)
                summary["parsafe_proven"] = proven
                summary["parsafe_unproven"] = len(parsafe_verdicts) - proven
                info = {"ops": len(parsafe_verdicts), "proven": proven}
                for vstmt, v in parsafe_verdicts:
                    self._tel_record("parsafe.verdict", unit=name,
                                     sym=vstmt.sym.name, op=v.op_kind,
                                     op_name=v.op_name, verdict=v.status,
                                     checker=v.checker, blame=v.blame,
                                     kernel=v.kernel_name)
            elif pname == "gvn":
                stats = global_value_numbering(result.blocks,
                                               result.entry_bid)
                summary["gvn_removed"] = sum(stats.values())
                info = dict(stats)
            elif pname == "licm":
                summary["licm_hoisted"] = hoist_loop_invariants(
                    result.blocks, result.entry_bid)
                info = {"hoisted": summary["licm_hoisted"]}
            elif pname == "sink":
                sunk = sink_allocations(result.blocks, result.entry_bid)
                summary["sunk_allocs"] = len(sunk)
                info = {"sunk": len(sunk)}
            elif pname == "range":
                pruned, folded, range_detail = prune_range_guards(
                    result.blocks, result.entry_bid, result.param_names)
                summary["range_pruned_guards"] = pruned
                summary["folded_branches"] = folded
                info = {"pruned": pruned, "folded": folded}
            elif pname == "dce":
                summary["removed_stmts"] = eliminate_dead(result.blocks,
                                                          result.entry_bid)
                info = {"removed": summary["removed_stmts"]}
            elif pname == "guards":
                summary["removed_guards"] = \
                    eliminate_redundant_guards(result.blocks)
                info = {"removed": summary["removed_guards"]}
            elif pname == "verify.optimized":
                info = self._verify(result, name, "optimized")
            elif pname == "taint":
                leaks = find_leaks(result.blocks, result.entry_bid,
                                   result.taint_branch_sinks)
                summary["leaks"] = len(leaks)
                info = {"leaks": len(leaks)}
            elif pname == "alloc":
                sites = check_noalloc(result.blocks, result.noalloc_sites)
                summary["noalloc_sites"] = len(sites)
                info = {"sites": len(sites)}
            else:  # pragma: no cover - pass lists are closed above
                raise AssertionError("unknown pass %r" % (pname,))
            self._finish_pass(pname, result, t0, size_before, report, info)
            if checked:
                summary["validate_checkpoints"] += 1
                summary["validate_findings"] += self._checkpoint(
                    pname, snapshot, result, name, report)

        summary["blocks"] = len(result.blocks)
        summary["warnings"] = len(result.warnings)
        summary["tier"] = tier
        self._tel_record("analysis.report", unit=name, **summary)

        if diag is not None:
            diag.extend("error", "taint", leaks)
            diag.extend("error", "noalloc", sites)
            diag.extend("warning", "compile",
                        [str(w) for w in result.warnings])
            diag.add("info", "dce", "%d dead statement(s) removed"
                     % summary["removed_stmts"])
            if summary["removed_guards"]:
                diag.add("info", "guards", "%d redundant guard(s) removed"
                         % summary["removed_guards"])
            if summary["gvn_removed"]:
                diag.add("info", "gvn", "%d redundant value(s) eliminated "
                         "by value numbering" % summary["gvn_removed"])
            if summary["licm_hoisted"]:
                diag.add("info", "licm", "%d loop-invariant statement(s) "
                         "hoisted" % summary["licm_hoisted"])
            diag.extend("info", "sink", sunk_detail(sunk))
            diag.extend("info", "range", range_detail)
            for vstmt, v in parsafe_verdicts:
                sev = "info" if v.proven_parallel else "warning"
                payload = dict(v.to_dict(), sym=vstmt.sym.name)
                diag.add(sev, "parsafe",
                         "%s %s (%s): %s [%s] — %s"
                         % (vstmt.sym.name, v.op_name, v.op_kind,
                            v.status, v.checker, v.blame),
                         data=payload)
            if summary["validate_checkpoints"]:
                diag.add("info", "validate",
                         "%d speculation-soundness checkpoint(s), "
                         "%d finding(s)"
                         % (summary["validate_checkpoints"],
                            summary["validate_findings"]))
            return summary

        if leaks:
            raise TaintError(
                "taint analysis of %s found %d leak(s): %s"
                % (name, len(leaks), "; ".join(leaks)), leaks=leaks)
        if sites:
            suffix = ""
            if sunk:
                suffix = (" (%d other allocation(s) were sunk by scalar "
                          "replacement)" % len(sunk))
            raise NoAllocError(
                "checkNoAlloc failed for %s: %d residual allocation/deopt "
                "site(s): %s%s" % (name, len(sites), "; ".join(sites),
                                   suffix),
                sites=sites)
        return summary

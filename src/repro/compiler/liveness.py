"""Local-variable liveness for bytecode methods.

The staged interpreter nulls out dead local slots at block boundaries and
in deoptimization metadata. This matters twice:

* allocation sinking: a scalar-replaced object whose only reference sits in
  a dead slot can be dropped instead of materialized at a join;
* merge precision: dead slots do not force block parameters.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op

def live_in_sets(method):
    """Return a list of frozensets: the local slots live at each bci."""
    cached = getattr(method, "_live_in_sets", None)
    if cached is not None:
        return cached

    code = method.code
    n = len(code)
    succs = []
    for i, ins in enumerate(code):
        if ins.op is Op.JUMP:
            succs.append((ins.arg,))
        elif ins.op in (Op.JIF_TRUE, Op.JIF_FALSE):
            succs.append((i + 1, ins.arg))
        elif ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
            succs.append(())
        else:
            succs.append((i + 1,))

    live = [frozenset()] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            ins = code[i]
            out = frozenset()
            for s in succs[i]:
                if s < n:
                    out = out | live[s]
            if ins.op is Op.LOAD:
                new = out | {ins.arg}
            elif ins.op is Op.STORE:
                new = out - {ins.arg}
            else:
                new = out
            if new != live[i]:
                live[i] = new
                changed = True

    method._live_in_sets = live
    return live


def live_at(method, bci):
    """Slots live at ``bci`` (conservatively all slots past the end)."""
    sets = live_in_sets(method)
    if bci >= len(sets):
        return frozenset(range(method.num_locals))
    return sets[bci]

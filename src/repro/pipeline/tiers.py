"""Profile-driven tier promotion (paper 3.1: ``makeJIT``/``makeHOT``).

Tier ladder:

* **Tier 0** — the interpreter, with method-call and loop-back-edge
  counters from :mod:`repro.interp.profiler`.
* **Tier 1** — a quick staged compile: shallow specialization (no
  inlining, no stable-field speculation, no Delite fusion) and a minimal
  PassManager list, so time-to-first-compiled-call stays small.
* **Tier 2** — the full optimizing compile: abstract-interpretation
  fixpoint plus the whole analysis pass list (current single-tier
  behavior).

Promotion is explicit library policy, not a VM black box: a
:class:`TieredFunction` promotes 0→1→2 on invocation counts (thresholds
live in :class:`~repro.compiler.options.CompileOptions`), hot loop
back-edges tier up *mid-execution* by compiling the current frame chain
as an OSR continuation (the same snapshot machinery
:mod:`repro.compiler.deopt` uses), and deopt storms demote one tier at a
time — each unit has a failure budget; exhausting it at Tier 1
blacklists the unit back to the interpreter.

Unit-cache discipline: cache keys carry the tier (it is part of the
options tuple), and promotion *replaces* the unit's entry rather than
accumulating one per tier.
"""

from __future__ import annotations

import dataclasses

TIER0, TIER1, TIER2 = 0, 1, 2
TIER_T = 3     # the trace tier (see repro.pipeline.tracing)


#: derived-options memo: (astuple(base), tier) -> CompileOptions. The
#: promotion path calls tier_options on every tier check; rebuilding a
#: dataclass (two dataclasses.replace-sized allocations plus field
#: copies) per call was measurable there. Derived objects are shared —
#: callers must treat them as frozen (use dataclasses.replace to vary).
_TIER_OPTIONS_CACHE = {}


def tier_options(base, tier):
    """Derive the CompileOptions for ``tier`` from ``base``.

    Tier 1 turns off everything that makes compilation slow: inlining
    (the staged IR stays one method deep), final-field/static-array
    folding beyond what specialization gives for free is kept (it is
    cheap and macros rely on static receivers), stable-field speculation
    (fewer guards), Delite fusion, and the self-checking verifiers. The
    PassManager additionally selects its minimal Tier-1 pass list from
    ``options.tier``. (With ``base.baseline`` on, eligible Tier-1 units
    skip the staged pipeline entirely — see :mod:`repro.baseline`.)

    Results are memoized per (base contents, tier) and shared.
    """
    if tier not in (TIER1, TIER2, TIER_T):
        raise ValueError("no compiled tier %r (tier 0 is the interpreter)"
                         % (tier,))
    key = (dataclasses.astuple(base), tier)
    derived = _TIER_OPTIONS_CACHE.get(key)
    if derived is None:
        if tier == TIER2:
            derived = dataclasses.replace(base, tier=TIER2)
        elif tier == TIER_T:
            # Tier T compiles recorded traces: the recorder produces
            # post-staging IR directly, and the PassManager maps unknown
            # tiers to the full Tier-2 pass list, so the trace gets the
            # whole optimizing pipeline (GVN/LICM/range/guards) for free.
            derived = dataclasses.replace(base, tier=TIER_T)
        else:
            derived = dataclasses.replace(
                base, tier=TIER1, inline_policy="never",
                speculate_stable=False, delite_fusion=False,
                verify_ir=False, verify_bytecode=False)
        _TIER_OPTIONS_CACHE[key] = derived
    return derived


class TierPolicy:
    """Per-VM promotion policy: reads thresholds from CompileOptions."""

    def __init__(self, options):
        self.options = options

    @property
    def tier1_threshold(self):
        return self.options.tier1_threshold

    @property
    def tier2_threshold(self):
        return self.options.tier2_threshold

    @property
    def osr_threshold(self):
        return self.options.osr_threshold

    @property
    def deopt_budget(self):
        return self.options.deopt_budget

    def options_for(self, tier, base=None):
        return tier_options(base if base is not None else self.options,
                            tier)

    def next_tier(self, tier, calls):
        """The tier ``calls`` invocations warrant, given current ``tier``
        (never demotes; demotion is deopt-driven)."""
        if tier < TIER2 and calls >= self.tier2_threshold:
            return TIER2
        if tier < TIER1 and calls >= self.tier1_threshold:
            return TIER1
        return tier


class TieredFunction:
    """A static guest method executed through the tier ladder.

    Callable like the method itself. Starts in Tier 0 (interpreted,
    counted); promotes through Tier 1 to Tier 2 as invocation counts
    cross the policy thresholds; demotes one tier per exhausted deopt
    budget, down to a Tier-0 blacklist.
    """

    def __init__(self, jit, class_name, method_name, policy=None):
        self.jit = jit
        self.class_name = class_name
        self.method_name = method_name
        self.policy = policy or TierPolicy(jit.options)
        self.method = jit.vm.linker.resolve_static(class_name, method_name)
        self.qualified_name = self.method.qualified_name
        self.tier = TIER0
        self.compiled = None
        self.calls = 0
        self.failures = 0          # deopts charged against current tier
        self.max_tier = TIER2      # lowered by demotion: no ping-pong
        self.blacklisted = False
        self._cache_key = None     # unit-cache key of the current entry
        # Asynchronous promotion state: the tier a queued background
        # compile targets, and a generation counter that demotion bumps
        # so an in-flight result landing late is ignored, not installed.
        self._pending_tier = None
        self._promotion_gen = 0
        jit.tiers.register(self)

    # -- counters --------------------------------------------------------------

    def _observed_calls(self):
        """Calls seen so far: the wrapper's own count plus interpreter
        profiler invocations (nested guest calls promote too)."""
        return max(self.calls,
                   self.jit.vm.profiler.invocation_count(
                       self.qualified_name))

    # -- tier transitions ------------------------------------------------------

    def _options_for(self, tier):
        """Per-unit tier options. A demoted unit (``max_tier`` capped at
        Tier 1) compiles Tier 1 through the staged pipeline even when the
        baseline is on: baseline code carries no speculation guards, so it
        could never drain the deopt budget again and the demotion ladder
        would stall at Tier 1 instead of reaching the blacklist."""
        opts = self.policy.options_for(tier, base=self.jit.options)
        if tier == TIER1 and self.max_tier == TIER1 and opts.baseline:
            opts = dataclasses.replace(opts, baseline=False)
        return opts

    def _build(self, tier):
        """Compile this unit at ``tier`` without installing it (the
        background half of an asynchronous promotion)."""
        jit = self.jit
        opts = self._options_for(tier)
        compiled = jit.compile_function(self.class_name, self.method_name,
                                        options=opts)
        compiled.tiered_owner = self
        return compiled

    def _adopt(self, tier, compiled):
        """Make ``compiled`` this unit's active code, replacing the old
        tier's unit-cache entry instead of accumulating one per tier."""
        jit = self.jit
        opts = self._options_for(tier)
        old_key = self._cache_key
        new_key = jit._unit_key(self.method, None, opts)
        if old_key is not None and old_key != new_key:
            jit.unit_cache.remove(old_key)
        self._cache_key = new_key
        self.compiled = compiled
        return compiled

    def _compile_at(self, tier):
        return self._adopt(tier, self._build(tier))

    def _promote(self, to_tier):
        from_tier = self.tier
        self._compile_at(to_tier)
        self._install(from_tier, to_tier, background=False)

    def _install(self, from_tier, to_tier, background):
        self.tier = to_tier
        self.failures = 0
        self._pending_tier = None
        tel = self.jit.telemetry
        tel.inc("tier.promotions")
        tel.record("tier.promote", unit=self.qualified_name,
                   from_tier=from_tier, to_tier=to_tier,
                   calls=self._observed_calls(), background=background)

    def _request_promotion(self, to_tier, service, priority=None):
        """Enqueue the promotion compile on the CompileService; execution
        keeps running at the current tier until the result lands. The
        generation check makes a demotion (or blacklist) that happened
        mid-compile win over the stale result. ``priority`` defaults by
        target tier; OSR passes ``PRIORITY_OSR`` (a loop is hot *now*)."""
        if self._pending_tier is not None and self._pending_tier >= to_tier:
            return
        from repro.codecache.service import PRIORITY_TIER1, PRIORITY_TIER2
        if priority is None:
            priority = (PRIORITY_TIER2 if to_tier >= TIER2
                        else PRIORITY_TIER1)
        self._pending_tier = to_tier
        gen = self._promotion_gen
        from_tier = self.tier

        def install(compiled):
            if (self._promotion_gen != gen or self.blacklisted
                    or to_tier > self.max_tier):
                # Demoted/blacklisted while we compiled: the result is
                # stale — drop it (and its unit-cache entry), keep the
                # interpreter/current tier.
                opts = self._options_for(to_tier)
                self.jit.unit_cache.remove(
                    self.jit._unit_key(self.method, None, opts))
                self.jit.telemetry.inc("tier.promotions_discarded")
                self.jit.telemetry.record(
                    "tier.promote_discarded", unit=self.qualified_name,
                    to_tier=to_tier)
                return
            self._adopt(to_tier, compiled)
            self._install(from_tier, to_tier, background=True)

        def clear(error):
            if self._pending_tier == to_tier:
                self._pending_tier = None

        req = service.submit(
            ("promote", self.qualified_name, to_tier),
            lambda: self._build(to_tier),
            priority=priority,
            on_complete=install, on_error=clear)
        if req.rejected:
            # Saturated or blacklisted service: degrade gracefully, stay
            # at the current tier and try again on a later call.
            self._pending_tier = None

    def demote(self, reason="deopt budget exhausted"):
        """Drop one tier; from Tier 1 this blacklists to the interpreter.
        Demotion caps ``max_tier`` so stale invocation counts cannot
        immediately re-promote the unit (no tier ping-pong)."""
        from_tier = self.tier
        tel = self.jit.telemetry
        # Any in-flight background promotion is now stale: ignore its
        # result when it lands (and cancel it if still queued).
        self._promotion_gen += 1
        self._pending_tier = None
        service = self.jit.async_compiler
        if service is not None:
            for target in (TIER1, TIER2):
                service.cancel(("promote", self.qualified_name, target))
        if from_tier >= TIER2:
            self.tier = TIER1
            self.max_tier = TIER1
            self._compile_at(TIER1)
            self.failures = 0
        else:
            self.tier = TIER0
            self.blacklisted = True
            self.compiled = None
            if self._cache_key is not None:
                self.jit.unit_cache.remove(self._cache_key)
                self._cache_key = None
            tel.inc("tier.blacklists")
        tel.inc("tier.demotions")
        tel.record("tier.demote", unit=self.qualified_name,
                   from_tier=from_tier, to_tier=self.tier,
                   blacklisted=self.blacklisted, reason=reason)

    def on_deopt(self, compiled):
        """A runtime guard failed in this unit's compiled code."""
        self.failures += 1
        if self.tier > TIER0 and self.failures > self.policy.deopt_budget:
            self.demote()

    # -- execution -------------------------------------------------------------

    def __call__(self, *args):
        self.calls += 1
        if not self.blacklisted:
            target = min(self.policy.next_tier(self.tier,
                                               self._observed_calls()),
                         self.max_tier)
            if target > self.tier:
                service = self.jit.async_compiler
                if service is not None:
                    # Asynchronous promotion: enqueue and keep executing
                    # at the current tier; the compile never blocks the
                    # hot path.
                    self._request_promotion(target, service)
                else:
                    self._promote(target)
        compiled = self.compiled
        if compiled is not None:
            return compiled(*args)
        return self.jit.vm.call(self.class_name, self.method_name,
                                list(args))

    def __repr__(self):
        state = "blacklisted" if self.blacklisted else "tier %d" % self.tier
        return "<TieredFunction %s (%s, %d calls)>" % (
            self.qualified_name, state, self.calls)


class TierController:
    """Per-Lancet tier machinery: the unit registry, deopt routing, and
    mid-execution OSR tier-up off interpreter loop back-edges."""

    def __init__(self, jit):
        self.jit = jit
        self.policy = TierPolicy(jit.options)
        self._units = {}           # qualified name -> TieredFunction
        self._osr_blacklist = set()  # (qualified name, bci)
        self._in_osr = False
        self.traces = None         # TraceManager once Tier T is enabled

    # -- registry --------------------------------------------------------------

    def register(self, tiered):
        self._units[tiered.qualified_name] = tiered
        # Tier 0 is "interpreter with counters": arm the profiler so
        # invocation and back-edge counts accumulate.
        self.jit.vm.profile = True

    def tiered_function(self, class_name, method_name, policy=None):
        return TieredFunction(self.jit, class_name, method_name,
                              policy=policy)

    def unit(self, qualified_name):
        return self._units.get(qualified_name)

    @property
    def armed(self):
        return bool(self._units) or self.traces is not None

    # -- deopt routing ---------------------------------------------------------

    def on_deopt(self, compiled):
        owner = getattr(compiled, "tiered_owner", None)
        if owner is not None:
            owner.on_deopt(compiled)

    # -- OSR tier-up -----------------------------------------------------------

    def on_backedge(self, vm, frame):
        """Called by the interpreter on a counted loop back-edge. Returns
        a zero-argument callable to finish the current ``run_frames``
        execution in compiled code, or ``None`` to keep interpreting."""
        traces = self.traces
        if traces is not None:
            cont = traces.on_backedge(self, vm, frame)
            if cont is not None:
                return cont
            if traces.recording is not None:
                # Method OSR mid-recording would swap the frames the
                # recorder is shadowing out from under it: hold off.
                return None
        owner = self._units.get(frame.method.qualified_name)
        if (owner is None or owner.blacklisted
                or owner.max_tier < TIER2 or self._in_osr):
            return None
        site = (frame.method.qualified_name, frame.bci)
        if site in self._osr_blacklist:
            return None
        count = vm.profiler.backedge_count(*site)
        if count < self.policy.osr_threshold:
            return None

        service = self.jit.async_compiler
        if service is not None:
            # Asynchronous mode: never stall the loop for a compile.
            # Enqueue a top-priority promotion of the owning unit; this
            # iteration keeps interpreting and the *next call* (or a
            # later back-edge, once the compile lands) runs compiled.
            if owner.tier < TIER2:
                from repro.codecache.service import PRIORITY_OSR
                owner._request_promotion(TIER2, service,
                                         priority=PRIORITY_OSR)
            return None

        from repro.errors import CompilationError

        frames = []
        f = frame
        while f is not None:
            frames.append(f)
            f = f.parent
        frames.reverse()
        self._in_osr = True
        try:
            try:
                compiled = self.jit._compile_unit(
                    frame.method, receiver=None,
                    options=self.policy.options_for(TIER2,
                                                    base=self.jit.options),
                    name="osr-tier@%s:%d" % site, entry_frames=frames)
            except CompilationError:
                self._osr_blacklist.add(site)
                return None
            tel = self.jit.telemetry
            tel.inc("tier.osr_up")
            tel.record("osr.tier_up", unit=owner.qualified_name,
                       method=site[0], bci=site[1], backedges=count)
            # Future calls should enter compiled code directly: promote
            # the owning unit to the top tier (the continuation finishes
            # the in-flight execution either way).
            if owner.tier < TIER2:
                owner._promote(TIER2)
        finally:
            self._in_osr = False
        return compiled

    # -- OSR from baseline code ------------------------------------------------

    def on_baseline_backedge(self, vm, method, target):
        """The ``_be`` profiling hook compiled into baseline loop
        back-edges (the counterpart of :meth:`on_backedge` for code that
        is no longer interpreting). Returns True when the caller should
        take its OSR exit — i.e. a synchronous tier-2 compile is both
        warranted and possible right now."""
        qualified = method.qualified_name
        owner = self._units.get(qualified)
        if (owner is None or owner.blacklisted
                or owner.max_tier < TIER2 or self._in_osr):
            return False
        site = (qualified, target)
        if site in self._osr_blacklist:
            return False
        if vm.profiler.backedge_count(*site) < self.policy.osr_threshold:
            return False
        service = self.jit.async_compiler
        if service is not None:
            # Asynchronous mode: never stall the loop for a compile —
            # enqueue a top-priority promotion and keep running baseline.
            if owner.tier < TIER2:
                from repro.codecache.service import PRIORITY_OSR
                owner._request_promotion(TIER2, service,
                                         priority=PRIORITY_OSR)
            return False
        return True

    def osr_from_baseline(self, vm, method, target, local_values):
        """Tier up out of *running* baseline code: rebuild the
        interpreter frame the baseline's locals correspond to (guest
        locals map 1:1 onto host fast locals; the hook only fires at
        stack depth 0), compile it as an OSR continuation, and finish
        the execution there."""
        from repro.errors import CompilationError
        from repro.interp.frame import InterpreterFrame

        frame = InterpreterFrame(method)
        frame.bci = target
        for i, value in enumerate(local_values):
            frame.set_local(i, value)
        site = (method.qualified_name, target)
        owner = self._units.get(site[0])
        self._in_osr = True
        try:
            try:
                compiled = self.jit._compile_unit(
                    method, receiver=None,
                    options=self.policy.options_for(TIER2,
                                                    base=self.jit.options),
                    name="osr-tier@%s:%d" % site, entry_frames=[frame])
            except CompilationError:
                # Uncompilable site: blacklist it and finish this
                # execution in the interpreter (correct either way).
                self._osr_blacklist.add(site)
                return vm.run_frames(frame)
            tel = self.jit.telemetry
            tel.inc("tier.osr_up")
            tel.record("osr.tier_up", unit=site[0], method=site[0],
                       bci=target,
                       backedges=vm.profiler.backedge_count(*site),
                       from_baseline=True)
            if owner is not None and owner.tier < TIER2:
                owner._promote(TIER2)
        finally:
            self._in_osr = False
        return compiled()

    # -- stats -----------------------------------------------------------------

    def snapshot(self):
        """Tier state of every registered unit (for ``Lancet.stats()``)."""
        return {
            name: {"tier": u.tier, "calls": u.calls,
                   "failures": u.failures, "blacklisted": u.blacklisted,
                   "pending_tier": u._pending_tier}
            for name, u in self._units.items()
        }

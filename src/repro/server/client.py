"""The per-VM compile-server client.

A :class:`ServerClient` is the thin seam between one Lancet tenant and
the shared :class:`~repro.server.daemon.CompileServer`. It speaks the
same ``submit(key, fn, priority, on_complete, on_error)`` / ``cancel``
surface as the local CompileService, so the tier and trace pipelines
route through whichever is live without knowing the difference
(``jit.async_compiler`` resolves to the client while the server is
alive, the local service after it dies).

Failure policy: the server dying mid-flight must never cost a tenant
more than one compile's latency. Every call degrades — ``submit`` falls
back to the tenant's local CompileService (or rejects, leaving the
interpreter), ``coordinate`` runs the closure locally — and each
degradation bumps ``fallbacks`` so ``stats()["server"]`` shows the
seam fraying.
"""

from __future__ import annotations


class ServerClient:
    """One tenant's handle on a shared CompileServer."""

    def __init__(self, jit, server, tenant=None):
        self.jit = jit
        self.server = server
        self.tenant = server.register_tenant(tenant)
        self.submitted = 0
        self.fallbacks = 0

    @property
    def alive(self):
        return not self.server.closed

    def _local(self):
        return getattr(self.jit, "compile_service", None)

    # -- the CompileService surface --------------------------------------------

    def submit(self, key, fn, priority=None, on_complete=None,
               on_error=None, **kwargs):
        """Route an async compile to the server; on a dead (or crashing)
        server, fall back to the tenant's local CompileService. Never
        raises; a rejected request leaves the caller on the interpreter,
        same as the local service's contract."""
        from repro.codecache.service import PRIORITY_TIER1
        if priority is None:
            priority = PRIORITY_TIER1
        kwargs.pop("tenant", None)      # the client IS the tenant
        if self.alive:
            try:
                req = self.server.submit(key, fn, priority=priority,
                                         tenant=self.tenant,
                                         on_complete=on_complete,
                                         on_error=on_error)
                self.submitted += 1
                return req
            except Exception:
                pass        # fall through to the local service
        self.fallbacks += 1
        local = self._local()
        if local is not None:
            return local.submit(key, fn, priority=priority,
                                on_complete=on_complete, on_error=on_error,
                                **kwargs)
        from repro.codecache.service import REJECTED, CompileRequest
        req = CompileRequest(key, fn, priority)
        req._finish(REJECTED, error="server dead, no local service")
        return req

    def cancel(self, key):
        if self.alive:
            try:
                return self.server.cancel(key, tenant=self.tenant)
            except Exception:
                pass
        local = self._local()
        return local.cancel(key) if local is not None else None

    # -- synchronous dedup ------------------------------------------------------

    def coordinate(self, fingerprint, fn):
        """Cross-VM single-flight for a synchronous load-or-compile; a
        dead server just runs the closure locally."""
        if self.alive:
            try:
                return self.server.coordinate(fingerprint, fn,
                                              tenant=self.tenant)
            except Exception:
                self.fallbacks += 1
        return fn()

    # -- stats ------------------------------------------------------------------

    def stats(self):
        return {
            "tenant": self.tenant,
            "alive": self.alive,
            "submitted": self.submitted,
            "fallbacks": self.fallbacks,
            "server": self.server.stats(),
        }

"""Interval (value-range) analysis over the staged CFG.

A forward dataflow problem on environments ``{name: (lo, hi)}`` mapping a
sym to a closed interval over the reals (``None`` bound = unbounded).
Intervals attach only to values produced by numeric sources — constants,
``num``-flagged arithmetic, comparisons/booleans (as ``[0, 1]``),
``alen`` (``[0, +inf)``) — so holding an interval implies the runtime
value is a number/bool and the bounds are sound for it.

Design notes (see DESIGN.md):

* **Closed bounds only.** The IR does not separate ints from floats, so a
  strict comparison refines to a *closed* bound (``x < c`` gives
  ``x <= c``, never ``x <= c - 1``); strictness is recovered when
  *proving* a comparison by requiring a strict bound inequality.
* **Float-sound arithmetic.** Bounds whose magnitude exceeds ``2**52``
  are widened to infinity: below that every integer bound is exactly
  representable as a float, and round-to-nearest monotonicity keeps
  computed float bounds sound.
* **Landmark widening.** Joins snap bounds outward to the nearest
  *landmark* — a constant appearing in the unit (plus -1/0/1) — making
  the lattice finite so loops terminate in a few sweeps while keeping
  full precision exactly where guards compare against program constants.

Branch edges and ``guard`` statements refine the interval of the
condition's operands (sound here because the verifier enforces
availability == dominance for the block-argument SSA form, so a
condition sym can never be stale with respect to its operands).
"""

from __future__ import annotations

from repro.analysis.cfg import def_counts, phi_assigns_for_edge
from repro.analysis.dataflow import ForwardAnalysis, solve
from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import ConstRep, Sym

_MAX_EXACT = 2 ** 52

#: Comparison op -> (mirror op swapping the operands).
_MIRROR = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
           "eq": "eq", "ne": "ne"}
_NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
           "eq": "ne", "ne": "eq"}


def _num(v):
    return isinstance(v, (int, float)) and not isinstance(v, complex) \
        and v == v                     # excludes NaN; bool is fine


def _cap(bound, sign):
    """Widen a bound to unbounded once it leaves the float-exact integer
    range; ``sign`` is -1 for lows, +1 for highs."""
    if bound is None:
        return None
    if bound != bound or bound in (float("inf"), float("-inf")):
        return None
    if abs(bound) > _MAX_EXACT:
        return None
    return bound


def interval(lo, hi):
    return (_cap(lo, -1), _cap(hi, 1))

TOP = (None, None)


class RangeAnalysis(ForwardAnalysis):
    """Environments are dicts (absent name = unknown); ``None`` is the
    unreachable bottom."""

    def __init__(self, blocks, entry_id, params=()):
        self.blocks = blocks
        self.entry_id = entry_id
        self.params = tuple(params)
        self.landmarks = self._collect_landmarks(blocks)
        counts = def_counts(blocks)
        # Refinement through a condition's defining statement is only
        # sound for single-definition names (always true for staged SSA;
        # checked, not assumed).
        self.defs = {}
        for block in blocks.values():
            for stmt in block.stmts:
                if counts.get(stmt.sym.name) == 1:
                    self.defs[stmt.sym.name] = stmt

    @staticmethod
    def _collect_landmarks(blocks):
        marks = {-1, 0, 1}

        def note(rep):
            if isinstance(rep, ConstRep) and _num(rep.value):
                v = rep.value
                if abs(v) <= _MAX_EXACT:
                    marks.update((v - 1, v, v + 1))

        for block in blocks.values():
            for stmt in block.stmts:
                for a in stmt.args:
                    note(a)
            term = block.terminator
            if isinstance(term, Branch):
                note(term.cond)
                for __, rep in term.true_assigns + term.false_assigns:
                    note(rep)
            elif isinstance(term, Jump):
                for __, rep in term.phi_assigns:
                    note(rep)
            elif isinstance(term, Return):
                note(term.value)
            elif isinstance(term, (Deopt, OsrCompile)):
                for rep in term.lives:
                    note(rep)
        return sorted(marks)

    # -- lattice ---------------------------------------------------------------

    def bottom(self):
        return None

    def boundary(self, blocks, entry_id):
        return {}

    def _snap_lo(self, lo):
        if lo is None:
            return None
        best = None
        for m in self.landmarks:
            if m <= lo:
                best = m
            else:
                break
        return best

    def _snap_hi(self, hi):
        if hi is None:
            return None
        for m in self.landmarks:
            if m >= hi:
                return m
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        out = {}
        for name, (alo, ahi) in a.items():
            other = b.get(name)
            if other is None:
                continue
            blo, bhi = other
            lo = None if alo is None or blo is None else min(alo, blo)
            hi = None if ahi is None or bhi is None else max(ahi, bhi)
            if lo != alo or lo != blo:
                lo = self._snap_lo(lo)
            if hi != ahi or hi != bhi:
                hi = self._snap_hi(hi)
            if lo is not None or hi is not None:
                out[name] = (lo, hi)
        return out

    # -- transfer --------------------------------------------------------------

    def value_of(self, rep, env):
        if isinstance(rep, ConstRep):
            if _num(rep.value):
                v = int(rep.value) if isinstance(rep.value, bool) \
                    else rep.value
                return interval(v, v)
            return TOP
        if isinstance(rep, Sym):
            return env.get(rep.name, TOP)
        return TOP

    def stmt_interval(self, stmt, env):
        """The interval of ``stmt``'s result under ``env`` (TOP when the
        op produces nothing interval-trackable)."""
        op = stmt.op
        args = stmt.args
        val = lambda i: self.value_of(args[i], env)     # noqa: E731
        if op in ("id", "taint", "untaint"):
            return val(0)
        if op in ("add", "sub", "mul", "neg") and stmt.flags.get("num"):
            a = val(0)
            if op == "neg":
                lo, hi = a
                return interval(None if hi is None else -hi,
                                None if lo is None else -lo)
            b = val(1)
            return self._arith(op, a, b)
        if op == "mod":
            return self._mod(val(0), val(1))
        if op in ("lt", "le", "gt", "ge", "eq", "ne"):
            proven = self.prove_compare(op, val(0), val(1))
            if proven is True:
                return (1, 1)
            if proven is False:
                return (0, 0)
            return (0, 1)
        if op == "not":
            lo, hi = val(0)
            if lo is not None and lo >= 1:
                return (0, 0)            # operand truthy
            if (lo, hi) == (0, 0):
                return (1, 1)            # operand falsy
            return (0, 1)
        if op in ("truthy", "instanceof"):
            return (0, 1)
        if op == "alen":
            return (0, None)
        if op == "new_array":
            return TOP
        return TOP

    @staticmethod
    def _arith(op, a, b):
        alo, ahi = a
        blo, bhi = b
        if op == "add":
            lo = None if alo is None or blo is None else alo + blo
            hi = None if ahi is None or bhi is None else ahi + bhi
            return interval(lo, hi)
        if op == "sub":
            lo = None if alo is None or bhi is None else alo - bhi
            hi = None if ahi is None or blo is None else ahi - blo
            return interval(lo, hi)
        # mul: need all four finite corner products.
        if None in (alo, ahi, blo, bhi):
            return TOP
        corners = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
        return interval(min(corners), max(corners))

    @staticmethod
    def _mod(a, b):
        blo, bhi = b
        if blo is None or bhi is None:
            return TOP
        bound = max(abs(blo), abs(bhi))
        alo = a[0]
        lo = 0 if (alo is not None and alo >= 0) else -bound
        return interval(lo, bound)

    @staticmethod
    def prove_compare(op, a, b):
        """True/False when the comparison is decided by the intervals,
        else None. Strict comparisons are proven only via strict bound
        inequalities (sound for floats under closed bounds)."""
        alo, ahi = a
        blo, bhi = b
        if op == "lt":
            if ahi is not None and blo is not None and ahi < blo:
                return True
            if alo is not None and bhi is not None and alo >= bhi:
                return False
        elif op == "le":
            if ahi is not None and blo is not None and ahi <= blo:
                return True
            if alo is not None and bhi is not None and alo > bhi:
                return False
        elif op == "gt":
            return RangeAnalysis.prove_compare("lt", b, a)
        elif op == "ge":
            return RangeAnalysis.prove_compare("le", b, a)
        elif op == "eq":
            if None not in (alo, ahi, blo, bhi) and alo == ahi == blo == bhi:
                return True
            if RangeAnalysis._disjoint(a, b):
                return False
        elif op == "ne":
            proven = RangeAnalysis.prove_compare("eq", a, b)
            return None if proven is None else not proven
        return None

    @staticmethod
    def _disjoint(a, b):
        alo, ahi = a
        blo, bhi = b
        if ahi is not None and blo is not None and ahi < blo:
            return True
        return bhi is not None and alo is not None and bhi < alo

    def transfer(self, block, env):
        if env is None:
            return None
        env = dict(env)
        for stmt in block.stmts:
            iv = self.stmt_interval(stmt, env)
            if iv != TOP:
                env[stmt.sym.name] = iv
            else:
                env.pop(stmt.sym.name, None)
            if stmt.op == "guard":
                env = self.assume(stmt.args[0], True, env)
            elif stmt.op == "guard_not":
                env = self.assume(stmt.args[0], False, env)
        return env

    # -- condition refinement ---------------------------------------------------

    def assume(self, cond, outcome, env):
        """Refine ``env`` under "``cond`` is truthy == ``outcome``";
        returns a new env (never mutates)."""
        env = dict(env)
        self._assume_into(cond, outcome, env, depth=0)
        return env

    def _assume_into(self, cond, outcome, env, depth):
        if depth > 8 or not isinstance(cond, Sym):
            return
        name = cond.name
        # The condition itself is now a known boolean.
        env[name] = (1, 1) if outcome else (0, 0)
        stmt = self.defs.get(name)
        if stmt is None:
            return
        op = stmt.op
        if op in ("id", "taint", "untaint"):
            self._assume_into(stmt.args[0], outcome, env, depth + 1)
            return
        if op == "not":
            self._assume_into(stmt.args[0], not outcome, env, depth + 1)
            return
        if op not in _MIRROR:
            return
        if not outcome:
            op = _NEGATE[op]
        lhs, rhs = stmt.args[0], stmt.args[1]
        self._refine(lhs, op, rhs, env)
        self._refine(rhs, _MIRROR[op], lhs, env)

    def _refine(self, target, op, other, env):
        """Narrow ``target``'s interval under ``target <op> other``.

        When ``target`` has no interval yet one is *created*, provided the
        other side is known numeric: an ordered comparison against a
        number raises on every non-numeric operand, and a true ``eq``
        against a number pins the value — either way, reaching this
        program point proves ``target`` numeric."""
        if not isinstance(target, Sym):
            return
        olo, ohi = self.value_of(other, env)
        if target.name in env:
            lo, hi = env[target.name]
        elif olo is not None or ohi is not None:
            lo, hi = TOP
        else:
            return
        if op in ("lt", "le") and ohi is not None:
            hi = ohi if hi is None else min(hi, ohi)
        elif op in ("gt", "ge") and olo is not None:
            lo = olo if lo is None else max(lo, olo)
        elif op == "eq":
            if olo is not None:
                lo = olo if lo is None else max(lo, olo)
            if ohi is not None:
                hi = ohi if hi is None else min(hi, ohi)
        if lo is not None and hi is not None and lo > hi:
            # Contradiction: path is dynamically dead; keep a thin
            # interval rather than inventing an unreachable lattice value.
            hi = lo
        env[target.name] = (lo, hi)

    # -- phi flow ---------------------------------------------------------------

    def edge_value(self, block, succ_id, out):
        if out is None:
            return None
        env = out
        term = block.terminator
        if isinstance(term, Branch) and term.true_target != term.false_target:
            if succ_id == term.true_target:
                env = self.assume(term.cond, True, env)
            elif succ_id == term.false_target:
                env = self.assume(term.cond, False, env)
        assigns = phi_assigns_for_edge(term, succ_id)
        if assigns:
            env = dict(env)
            for param, rep in assigns:
                iv = self.value_of(rep, env)
                if iv != TOP:
                    env[param] = iv
                else:
                    env.pop(param, None)
        return env


def range_facts(blocks, entry_id, params=()):
    """Solve the analysis; returns ``(analysis, {bid: (env_in, env_out)})``.
    ``env_in`` of an unreachable block is ``None``."""
    analysis = RangeAnalysis(blocks, entry_id, params)
    return analysis, solve(blocks, entry_id, analysis)

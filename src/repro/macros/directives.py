"""Dynamically-scoped compilation directives (paper 3.1 and 3.3).

``inlineAlways { ... }`` etc. attach policy to a *dynamic scope*: the
directive applies to everything compiled inside the thunk, including
transitively inlined callees, until superseded by a closer directive.
``atScope``/``inScope`` trigger a directive only once a method matching a
pattern is entered — "decisions can be controlled in a non-local and
compositional way".
"""

from __future__ import annotations

from repro.absint.absval import Const
from repro.errors import MacroError
from repro.lms.ir import Effect

_SCOPED = {
    "inlineAlways": {"inline": "always"},
    "inlineNever": {"inline": "never"},
    "inlineNonRec": {"inline": "nonrec"},
    "unrollTopLevel": {"unroll": True},
    "checkNoAlloc": {"noalloc": True},
    "checkNoTaint": {"checktaint": True},
    # Tier pinning: nested `Lancet.compile` calls inside the thunk compile
    # at the given tier (quick Tier-1 vs full Tier-2) regardless of the
    # VM-wide default.
    "tier1": {"tier": 1},
    "tier2": {"tier": 2},
}


def scoped_directive(name):
    updates = _SCOPED[name]

    def macro(ctx, recv, args):
        return ctx.fun_r(args[0], [], scope_updates=dict(updates))

    macro.__name__ = name
    return macro


def _const_str(ctx, rep, what):
    av = ctx.eval_abs(rep)
    if not isinstance(av, Const) or not isinstance(av.value, str):
        raise MacroError("%s must be a constant string" % what)
    return av.value


def _with_trigger(ctx, args, mode):
    pattern = _const_str(ctx, args[0], "scope pattern")
    directive = _const_str(ctx, args[1], "directive name")
    if directive not in _SCOPED:
        raise MacroError("unknown directive %r (one of %s)"
                         % (directive, ", ".join(sorted(_SCOPED))))
    triggers = tuple(ctx.scope_get("triggers", ())) \
        + ((pattern, directive, mode),)
    return ctx.fun_r(args[2], [], scope_updates={"triggers": triggers})


def at_scope(ctx, recv, args):
    """Apply the directive *at* (and inside) any method matching the
    pattern entered within the thunk's dynamic scope."""
    return _with_trigger(ctx, args, "at")


def in_scope(ctx, recv, args):
    """Apply the directive one level down: *inside* matching methods, but
    not to the matching call itself."""
    return _with_trigger(ctx, args, "in")


# -- taint tracking (paper 3.3: JIT taint analysis) ---------------------------

def taint(ctx, recv, args):
    """Mark a staged value as tainted user input.

    Emits a first-class ``taint`` op (identity in codegen) so the
    flow-sensitive IR taint pass can see sources after optimization.
    """
    sym = ctx.emit("taint", (args[0],), absval=ctx.eval_abs(args[0]))
    ctx.ctx.set_taint(sym, True)
    return sym


def untaint(ctx, recv, args):
    """Declassify a staged value (identity ``untaint`` op in the IR)."""
    sym = ctx.emit("untaint", (args[0],), absval=ctx.eval_abs(args[0]))
    ctx.ctx.set_taint(sym, False)
    return sym

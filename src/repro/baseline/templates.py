"""Per-opcode CPython bytecode templates, driven by the handler table.

Each MiniJVM opcode lowers to a short host-instruction sequence. Value
opcodes are not re-implemented here: the template for every opcode in
:data:`repro.interp.handlers.OPSPECS` is *generated from the spec* — a
call to the same :mod:`repro.runtime.ops` helper the interpreter handler
invokes, operands passed bottom-to-top, immediate last. The baseline
therefore cannot drift from the interpreter on arithmetic, comparison,
array, field, or throw semantics: both executions share one definition
(the Druid derivation; see DESIGN.md).

Calling convention: CPython 3.11 wants ``NULL, callable, args...`` on
the stack, but guest operands are *under* where the callable must go.
Each helper call spills its operands to scratch locals, pushes the
callable, and reloads them — three scratch slots cover the deepest
fixed-arity opcode (ASTORE).

Guest locals map 1:1 onto host fast locals (parameters first, exactly
the interpreter frame layout), so the OSR exit can reconstruct an
:class:`~repro.interp.frame.InterpreterFrame` from ``locals()`` order.
Non-parameter locals are None-initialized in the prologue because the
interpreter reads uninitialized slots as null, while CPython raises on
unbound fast locals.

Profiling stays live inside baseline code — the ``_enter`` prologue
call counts invocations, and every counted loop back-edge (a backward
``JUMP`` at static stack depth 0, the same condition the interpreter's
OSR hook uses) calls ``_be``; a truthy answer takes the adjacent OSR
exit, shipping the loop-header bci and a snapshot of the guest locals
to the tier controller. Backward jumps at non-zero depth (short-
circuit operators) jump plainly: the interpreter does not count or
OSR those either.
"""

from __future__ import annotations

from repro.bytecode.opcodes import STACK_EFFECT, Op
from repro.interp.handlers import OPSPECS
from repro.baseline.pyasm import PyAssembler

#: scratch fast-locals appended after the guest slots (CPython never
#: sees these names; the dot prefix mirrors its own synthetic locals).
SCRATCH = (".s0", ".s1", ".s2")

#: every helper name a baseline unit may reference as a global; the
#: binder (compiler.baseline_namespace) and the persistent-cache
#: rehydrate path both build namespaces from this contract.
RUNTIME_NAMES = ("_enter", "_be", "_osr", "_new", "_callv", "_calls")


def _effect(ins):
    """(pops, pushes) including the variable-arity opcodes."""
    op = ins.op
    if op is Op.INVOKE:
        return ins.arg[1] + 1, 1
    if op is Op.INVOKE_STATIC:
        return ins.arg[2], 1
    if op is Op.ARRAY_LIT:
        return ins.arg, 1
    return STACK_EFFECT[op]


def stack_depths(code):
    """Static operand-stack depth at each instruction (forward scan;
    ``None`` marks unreachable instructions). The verifier guarantees
    depths merge consistently, so first-reach wins."""
    n = len(code)
    depths = [None] * n
    effect = STACK_EFFECT
    op_jump, op_jt, op_jf = Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE
    op_ret, op_rv, op_throw = Op.RET, Op.RET_VAL, Op.THROW
    op_inv, op_invs, op_al = Op.INVOKE, Op.INVOKE_STATIC, Op.ARRAY_LIT
    work = [(0, 0)]
    pop = work.pop
    push = work.append
    while work:
        i, depth = pop()
        if i >= n or depths[i] is not None:
            continue
        depths[i] = depth
        ins = code[i]
        op = ins.op
        if op is op_inv:
            after = depth - ins.arg[1]        # -(argc + recv) + result
        elif op is op_invs:
            after = depth - ins.arg[2] + 1
        elif op is op_al:
            after = depth - ins.arg + 1
        else:
            pops, pushes = effect[op]
            after = depth - pops + pushes
        if op is op_jump:
            push((ins.arg, after))
        elif op is op_jt or op is op_jf:
            push((ins.arg, after))
            push((i + 1, after))
        elif op is not op_ret and op is not op_rv and op is not op_throw:
            push((i + 1, after))
    return depths


def _call_helper(asm, helper_name, pops, imm=None, keep_result=True):
    """Spill ``pops`` operands, call ``helper_name(*operands, imm?)``."""
    for k in range(pops - 1, -1, -1):      # stack top -> highest scratch
        asm.emit("STORE_FAST", asm._scratch + k)
    asm.emit_global(helper_name)
    for k in range(pops):
        asm.emit("LOAD_FAST", asm._scratch + k)
    argc = pops
    if imm is not None:
        asm.emit_const(imm[0])
        argc += 1
    asm.emit("PRECALL", argc)
    asm.emit("CALL", argc)
    if not keep_result:
        asm.emit("POP_TOP")


def translate_method(method):
    """Lower one static guest method to an unassembled host program.

    Returns ``(assembler, varnames, stacksize)`` ready for
    :meth:`~repro.baseline.pyasm.PyAssembler.assemble`.
    """
    code = method.code
    num_locals = method.num_locals
    varnames = ["l%d" % i for i in range(num_locals)]
    scratch_base = len(varnames)
    varnames.extend(SCRATCH)
    depths = stack_depths(code)

    asm = PyAssembler()
    asm._scratch = scratch_base

    # -- prologue: resume, count the invocation, null the non-params --------
    asm.emit("RESUME", 0)
    asm.emit_global("_enter")
    asm.emit("PRECALL", 0)
    asm.emit("CALL", 0)
    asm.emit("POP_TOP")
    for slot in range(method.num_params, num_locals):
        asm.emit_const(None)
        asm.emit("STORE_FAST", slot)

    # Hot-loop plumbing: spec-op sequences contain no jumps and no
    # emission-order-dependent state beyond pool interning, so each
    # (opcode, immediate) pair renders once and replays by list-extend.
    instrs = asm.instrs
    extend = instrs.extend
    mark = asm.mark
    emit = asm.emit
    emit_const = asm.emit_const
    specs = OPSPECS
    seq_cache = {}

    for i, ins in enumerate(code):
        mark(i)
        op = ins.op
        spec = specs.get(op)
        if spec is not None:
            key = (op, ins.arg) if spec.imm else op
            seq = seq_cache.get(key)
            if seq is None:
                start = len(instrs)
                _call_helper(asm, spec.helper.__name__, spec.pops,
                             imm=(ins.arg,) if spec.imm else None,
                             keep_result=spec.pushes > 0)
                seq_cache[key] = tuple(instrs[start:])
            else:
                extend(seq)
        elif op is Op.CONST:
            emit_const(ins.arg)
        elif op is Op.LOAD:
            emit("LOAD_FAST", ins.arg)
        elif op is Op.STORE:
            emit("STORE_FAST", ins.arg)
        elif op is Op.POP:
            emit("POP_TOP")
        elif op is Op.DUP:
            emit("COPY", 1)
        elif op is Op.SWAP:
            emit("SWAP", 2)
        elif op is Op.ARRAY_LIT:
            emit("BUILD_LIST", ins.arg)
        elif op is Op.JUMP:
            backward = ins.arg <= i
            if backward and depths[i] == 0:
                # Counted loop back-edge: profile it, and offer the
                # tier controller an on-stack replacement exit.
                asm.emit_global("_be")
                emit_const(ins.arg)
                emit("PRECALL", 1)
                emit("CALL", 1)
                asm.jump(("cont", i), cond=False)
                asm.emit_global("_osr")
                emit_const(ins.arg)
                for slot in range(num_locals):
                    emit("LOAD_FAST", slot)
                emit("BUILD_LIST", num_locals)
                emit("PRECALL", 2)
                emit("CALL", 2)
                emit("RETURN_VALUE")
                mark(("cont", i))
            asm.jump(ins.arg, backward=backward)
        elif op is Op.JIF_TRUE:
            asm.jump(ins.arg, cond=True, backward=ins.arg <= i)
        elif op is Op.JIF_FALSE:
            asm.jump(ins.arg, cond=False, backward=ins.arg <= i)
        elif op is Op.RET:
            emit_const(None)
            emit("RETURN_VALUE")
        elif op is Op.RET_VAL:
            emit("RETURN_VALUE")
        elif op is Op.NEW:
            asm.emit_global("_new")
            emit_const(ins.arg)
            emit("PRECALL", 1)
            emit("CALL", 1)
        elif op is Op.INVOKE:
            name, argc = ins.arg
            emit("BUILD_LIST", argc)           # recv args -> recv [args]
            emit("STORE_FAST", scratch_base + 1)
            emit("STORE_FAST", scratch_base)
            asm.emit_global("_callv")
            emit("LOAD_FAST", scratch_base)
            emit_const(name)
            emit("LOAD_FAST", scratch_base + 1)
            emit("PRECALL", 3)
            emit("CALL", 3)
        elif op is Op.INVOKE_STATIC:
            cls_name, name, argc = ins.arg
            emit("BUILD_LIST", argc)
            emit("STORE_FAST", scratch_base)
            asm.emit_global("_calls")
            emit_const(cls_name)
            emit_const(name)
            emit("LOAD_FAST", scratch_base)
            emit("PRECALL", 3)
            emit("CALL", 3)
        else:  # pragma: no cover - the Op enum is fully covered above
            raise AssertionError("no baseline template for %r" % (op,))

    # Fall-through epilogue (also the target of jumps to len(code)).
    asm.mark(len(code))
    asm.emit_const(None)
    asm.emit("RETURN_VALUE")

    max_depth = max((d for d in depths if d is not None), default=0)
    # Slack: NULL + callable + reloaded operands + immediate on top of
    # the deepest guest stack, or the OSR exit's locals list.
    stacksize = max_depth + max(6, num_locals + 4)
    return asm, varnames, stacksize

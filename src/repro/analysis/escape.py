"""Intraprocedural escape analysis over the staged CFG.

An allocation *escapes* when the object can outlive, or be observed
outside, the pure dataflow of the compiled unit: stored into the heap,
passed to a residual call / native / delite kernel, returned, thrown, or
captured in deoptimization state (guard live sets, ``Deopt``/
``OsrCompile`` lives, ``make_cont``). Uses that only *decompose* the
object — field/element loads and stores **into** it, ``alen``,
``instanceof`` — do not escape it.

Escape facts propagate backwards through copies: if a name escapes and it
is defined by an ``id``/``taint``/``untaint`` of another value, or it is a
block parameter assigned from a value along an incoming edge, the source
escapes too. The result is the set of escaping *names*; scalar replacement
(:mod:`repro.pipeline.sink`) sinks allocations whose names stay out of it.
"""

from __future__ import annotations

from repro.analysis.cfg import phi_assigns_for_edge
from repro.lms.ir import Branch, Deopt, OsrCompile, Return
from repro.lms.rep import Sym

from repro.analysis.effects import COPY_OPS

#: Statement args that never escape their value: (op, arg position).
#: args[0] of a load/store is the base being decomposed; immediate
#: operands (field names, class names) are not Reps at all.
_NONESCAPE_POSITIONS = {
    ("getfield", 0), ("putfield", 0), ("putfield_stablecheck", 0),
    ("aload", 0), ("aload", 1), ("astore", 0), ("astore", 1),
    ("alen", 0), ("instanceof", 0),
}


def escape_roots(blocks):
    """Names used in a directly-escaping position, plus the copy edges
    ``dst -> srcs`` needed to close over aliases."""
    roots = set()
    copies = {}                  # dst name -> [src names]

    def root(rep):
        if isinstance(rep, Sym):
            roots.add(rep.name)

    for block in blocks.values():
        for stmt in block.stmts:
            op = stmt.op
            if op in COPY_OPS:
                if isinstance(stmt.args[0], Sym):
                    copies.setdefault(stmt.sym.name, []).append(
                        stmt.args[0].name)
                continue
            if op in ("guard", "guard_not"):
                # The condition (args[0]) is consumed; captured live
                # state (args[2:]) escapes into the deopt frame.
                for rep in stmt.args[2:]:
                    root(rep)
                continue
            if op == "make_cont":
                for rep in stmt.args[1:]:
                    root(rep)
                continue
            for i, rep in enumerate(stmt.args):
                if (op, i) not in _NONESCAPE_POSITIONS:
                    root(rep)
        term = block.terminator
        if isinstance(term, Return):
            root(term.value)
        elif isinstance(term, Branch):
            root(term.cond)
        elif isinstance(term, (Deopt, OsrCompile)):
            for rep in term.lives:
                root(rep)
        for succ in set(term.successors()):
            for param, rep in phi_assigns_for_edge(term, succ):
                copies.setdefault(param, []).append(
                    rep.name if isinstance(rep, Sym) else None)
    return roots, copies


def escaping_names(blocks):
    """The set of names whose value may escape the unit (fixpoint over
    the copy graph). A block parameter counts as escaping when *it*
    escapes — then every value assigned to it does too."""
    roots, copies = escape_roots(blocks)
    escaping = set(roots)
    changed = True
    while changed:
        changed = False
        for dst, srcs in copies.items():
            if dst in escaping:
                for src in srcs:
                    if src is not None and src not in escaping:
                        escaping.add(src)
                        changed = True
    return escaping

"""Guest operator semantics, shared by the interpreter and compiled code.

The staged compiler emits calls to these helpers for operations whose
operand types are not statically known, which guarantees that compiled code
computes exactly what the interpreter computes (a correctness property the
deoptimization machinery depends on: OSR between the two must be
observationally invisible).

Semantics notes:

* ``+`` concatenates when either operand is a string (Scala/Java style),
  otherwise adds numbers.
* int/int division and modulo truncate toward zero (Java style), unlike
  Python's floor semantics.
* ``==`` compares ``Obj`` instances by reference and primitives/strings by
  value; arrays compare by reference (Java style).
"""

from __future__ import annotations

import numpy as _np

from repro.errors import (GuestArithmeticError, GuestIndexError,
                          GuestNullError, GuestThrow, GuestTypeError)
from repro.runtime.objects import Obj

# Guest arrays are Python lists; Delite ops hand numpy arrays back to guest
# code, so the array helpers accept both.
ARRAY_TYPES = (list, _np.ndarray)


def guest_add(a, b):
    if isinstance(a, str) or isinstance(b, str):
        from repro.runtime.natives import to_guest_string
        return to_guest_string(a) + to_guest_string(b)
    try:
        return a + b
    except TypeError:
        raise GuestTypeError("cannot add %r and %r" % (a, b))


def guest_sub(a, b):
    try:
        return a - b
    except TypeError:
        raise GuestTypeError("cannot subtract %r and %r" % (a, b))


def guest_mul(a, b):
    if isinstance(a, str) or isinstance(b, str):
        raise GuestTypeError("cannot multiply strings")
    try:
        return a * b
    except TypeError:
        raise GuestTypeError("cannot multiply %r and %r" % (a, b))


def guest_div(a, b):
    if b == 0:
        raise GuestArithmeticError("division by zero")
    if isinstance(a, int) and isinstance(b, int) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    try:
        return a / b
    except TypeError:
        raise GuestTypeError("cannot divide %r and %r" % (a, b))


def guest_mod(a, b):
    if b == 0:
        raise GuestArithmeticError("modulo by zero")
    if isinstance(a, int) and isinstance(b, int) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        return a - guest_div(a, b) * b
    try:
        return a % b
    except TypeError:
        raise GuestTypeError("cannot take %r mod %r" % (a, b))


def guest_neg(a):
    try:
        return -a
    except TypeError:
        raise GuestTypeError("cannot negate %r" % (a,))


def guest_eq(a, b):
    if isinstance(a, Obj) or isinstance(b, Obj):
        return a is b
    if isinstance(a, list) or isinstance(b, list):
        return a is b
    return a == b


def guest_ne(a, b):
    return not guest_eq(a, b)


def _cmp_guard(a, b):
    if a is None or b is None:
        raise GuestNullError("comparison with null")
    if isinstance(a, str) != isinstance(b, str):
        raise GuestTypeError("cannot order %r and %r" % (a, b))


def guest_lt(a, b):
    _cmp_guard(a, b)
    return a < b


def guest_le(a, b):
    _cmp_guard(a, b)
    return a <= b


def guest_gt(a, b):
    _cmp_guard(a, b)
    return a > b


def guest_ge(a, b):
    _cmp_guard(a, b)
    return a >= b


def guest_not(a):
    return not a


def guest_truthy(v):
    return bool(v)


def guest_instanceof(v, cls_name):
    return isinstance(v, Obj) and v.cls.is_subclass_of(cls_name)


def guest_newarray(n):
    if not isinstance(n, int) or n < 0:
        raise GuestTypeError("bad array length %r" % (n,))
    return [None] * n


def guest_throw(v):
    raise GuestThrow(v)


def guest_aload(arr, i):
    if arr is None:
        raise GuestNullError("array load on null")
    if not isinstance(arr, ARRAY_TYPES):
        raise GuestTypeError("array load on %r" % type(arr).__name__)
    if not isinstance(i, int) or isinstance(i, bool) or not 0 <= i < len(arr):
        raise GuestIndexError("index %r out of bounds (len %d)" % (i, len(arr)))
    v = arr[i]
    if isinstance(v, _np.generic):
        return v.item()    # numpy scalar -> guest primitive
    return v


def guest_astore(arr, i, v):
    if arr is None:
        raise GuestNullError("array store on null")
    if not isinstance(arr, ARRAY_TYPES):
        raise GuestTypeError("array store on %r" % type(arr).__name__)
    if not isinstance(i, int) or isinstance(i, bool) or not 0 <= i < len(arr):
        raise GuestIndexError("index %r out of bounds (len %d)" % (i, len(arr)))
    arr[i] = v


def guest_alen(arr):
    if arr is None:
        raise GuestNullError("length of null")
    if not isinstance(arr, (str,) + ARRAY_TYPES):
        raise GuestTypeError("length of %r" % type(arr).__name__)
    return len(arr)


def guest_getfield(obj, name):
    if obj is None:
        raise GuestNullError("field %r read on null" % name)
    if not isinstance(obj, Obj):
        raise GuestTypeError("field %r read on %r" % (name, type(obj).__name__))
    return obj.get(name)


def guest_putfield(obj, name, value):
    if obj is None:
        raise GuestNullError("field %r write on null" % name)
    if not isinstance(obj, Obj):
        raise GuestTypeError("field %r write on %r" % (name, type(obj).__name__))
    obj.put(name, value)


def guest_setfield(obj, value, name):
    """PUTFIELD in operand-stack order (``obj value --`` plus the field
    name immediate), so the handler table and the baseline templates can
    pass operands bottom-to-top uniformly."""
    guest_putfield(obj, name, value)


BINOPS = {
    "ADD": guest_add, "SUB": guest_sub, "MUL": guest_mul, "DIV": guest_div,
    "MOD": guest_mod, "EQ": guest_eq, "NE": guest_ne, "LT": guest_lt,
    "LE": guest_le, "GT": guest_gt, "GE": guest_ge,
}

"""The MiniJVM bytecode interpreter (paper Fig. 6).

Structure follows the Graal-derived interpreter the paper starts from: a
CESK-style machine whose control/environment/continuation live in a chain
of :class:`InterpreterFrame` objects (``globalFrame``), with the store
modeled by the host heap. ``exec`` switches the current frame; ``loop``
executes instructions until the root frame returns.

The interpreter doubles as the VM facade: it owns the linker, the output
sink, the optional JIT (installed by :class:`repro.jit.api.Lancet`), and it
is resumable at an arbitrary (frame chain, bci) — the capability
deoptimization relies on.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.errors import (GuestError, GuestThrow,  # noqa: F401 (re-export)
                          GuestTypeError, LinkError, ReproError)
from repro.interp.frame import InterpreterFrame
from repro.interp.handlers import DISPATCH, _Return
from repro.interp.profiler import Profiler
from repro.runtime.linker import Linker
from repro.runtime.natives import lookup_native
from repro.runtime.objects import Obj, new_instance


class BudgetExceeded(ReproError):
    """The optional instruction budget ran out (used to catch runaway
    guest loops in tests)."""


class Interpreter:
    """A MiniJVM virtual machine."""

    def __init__(self, linker=None, output="capture", max_steps=None):
        self.linker = linker if linker is not None else Linker()
        self.jit = None                  # set by repro.jit.api.Lancet
        self.telemetry = None            # set by repro.jit.api.Lancet
        self.profiler = Profiler()
        self.profile = False
        self.trace_recorder = None       # set by the TraceManager (Tier T)
        self.max_steps = max_steps
        self.steps = 0
        self._output_mode = output
        self._out = []

    # -- output sink -----------------------------------------------------------

    def write(self, text):
        if self._output_mode == "capture":
            self._out.append(text)
        elif self._output_mode == "stdout":
            import sys
            sys.stdout.write(text)
        # "discard": drop it

    def output(self):
        return "".join(self._out)

    def clear_output(self):
        self._out = []

    # -- loading ------------------------------------------------------------------

    def load_classes(self, classfiles):
        return self.linker.load_classes(classfiles)

    def load_source(self, source, filename="<minij>"):
        """Compile and load MiniJ source."""
        from repro.frontend.compiler import compile_source
        return self.load_classes(compile_source(source, filename=filename))

    # -- entry points ----------------------------------------------------------------

    def call(self, class_name, method_name, args=()):
        """Call a static guest method from the host."""
        method = self.linker.resolve_static(class_name, method_name)
        return self.invoke_method(method, None, list(args))

    def call_closure(self, closure, args=()):
        """Invoke ``closure.apply(args)``; accepts host callables too."""
        if callable(closure) and not isinstance(closure, Obj):
            return closure(*args)
        if not isinstance(closure, Obj):
            raise GuestTypeError("not callable: %r" % (closure,))
        method = self.linker.resolve_virtual(closure.cls, "apply")
        return self.invoke_method(method, closure, list(args))

    def new_object(self, class_name, init_args=()):
        """Allocate a guest object and run its ``init`` method."""
        cls = self.linker.resolve_class(class_name)
        obj = new_instance(cls)
        init = cls.lookup_method("init")
        if init is not None:
            self.invoke_method(init, obj, list(init_args))
        return obj

    def invoke_method(self, method, receiver, args):
        """Build a root frame for ``method`` and run it to completion."""
        if method.num_params != len(args):
            raise GuestTypeError("%s expects %d args, got %d" % (
                method.qualified_name, method.num_params, len(args)))
        if self.telemetry is not None:
            self.telemetry.inc("interp.invocations")
        frame = InterpreterFrame(method)
        base = 0
        if not method.is_static:
            frame.set_local(0, receiver)
            base = 1
        for i, a in enumerate(args):
            frame.set_local(base + i, a)
        return self.run_frames(frame)

    # -- the main loop (paper: ``def loop() = while (globalFrame != null) ...``)

    def run_frames(self, global_frame):
        """Run until the root of ``global_frame``'s chain returns.

        Used both for fresh calls and to resume a reconstructed frame chain
        after deoptimization (the frames carry their own ``bci``/stack).
        """
        frame = global_frame
        max_steps = self.max_steps
        profile = self.profile
        # Tier controller, when armed: hot back-edges may tier up
        # mid-execution (OSR) and finish this run in compiled code.
        tiers = None
        if profile and self.jit is not None:
            controller = getattr(self.jit, "tiers", None)
            if controller is not None and controller.armed:
                tiers = controller
        dispatch = DISPATCH
        jump_op = Op.JUMP

        while frame is not None:
            method = frame.method
            code = method.code
            bci = frame.bci
            if bci >= len(code):
                raise GuestError("pc out of range in %s" % method.qualified_name)
            ins = code[bci]
            frame.bci = bci + 1
            op = ins.op
            self.steps += 1
            if max_steps is not None and self.steps > max_steps:
                raise BudgetExceeded("exceeded %d interpreter steps" % max_steps)

            if profile:
                # Tier-T recording hook (``jit_merge_point``): re-read
                # each iteration — a back-edge below can flip it on
                # mid-loop. Runs *before* the dispatch so the recorder
                # can peek concrete operands still on the stack.
                rec = self.trace_recorder
                if rec is not None:
                    rec.record(self, frame, ins, bci)

            handler = dispatch[op]
            if handler is None:  # pragma: no cover - verifier precludes this
                raise GuestError("bad opcode %r" % (op,))
            result = handler(self, frame, ins.arg)
            if result is not None:
                if result.__class__ is _Return:
                    return result.value
                frame = result
            elif profile and op is jump_op:
                target = frame.bci
                if target <= bci:
                    # Loop back-edge: count it, and let a hot loop tier
                    # up on the stack (the continuation finishes this
                    # whole run_frames execution in compiled code).
                    self.profiler.count_backedge(method, target)
                    if tiers is not None:
                        cont = tiers.on_backedge(self, frame)
                        if cont is not None:
                            return cont()

        return None

    # -- call helpers -------------------------------------------------------------

    def _push_call(self, frame, method, receiver, args):
        if method.num_params != len(args):
            raise GuestTypeError("%s expects %d args, got %d" % (
                method.qualified_name, method.num_params, len(args)))
        if self.profile:
            self.profiler.count_invoke(method)
        callee = InterpreterFrame(method, parent=frame)
        base = 0
        if not method.is_static:
            callee.set_local(0, receiver)
            base = 1
        for i, a in enumerate(args):
            callee.set_local(base + i, a)
        return callee

    def call_virtual(self, receiver, name, args):
        """Host-side virtual dispatch: call ``receiver.name(args)`` to
        completion (used by residual calls in compiled code)."""
        if isinstance(receiver, Obj):
            method = receiver.cls.lookup_method(name)
            if method is None:
                raise LinkError("no method %s on %s" % (name, receiver.cls.name))
            return self.invoke_method(method, receiver, list(args))
        if callable(receiver) and name == "apply":
            return receiver(*args)
        if receiver is None:
            raise GuestError("method %r called on null" % name)
        raise GuestTypeError("method %r called on %r" % (name, receiver))

    def _invoke_virtual(self, frame, receiver, name, args):
        """Virtual dispatch; returns the frame to continue with."""
        if isinstance(receiver, Obj):
            if self.profile:
                site = "%s@%d" % (frame.method.qualified_name, frame.bci - 1)
                self.profiler.count_receiver(site, receiver.cls.name)
            method = receiver.cls.lookup_method(name)
            if method is None:
                if name == "init" and not args:
                    # Classes without a constructor accept zero-arg `new`.
                    frame.push(None)
                    return frame
                raise LinkError("no method %s on %s" % (name, receiver.cls.name))
            if method.is_static:
                raise GuestTypeError("%s is static" % method.qualified_name)
            return self._push_call(frame, method, receiver, args)
        if callable(receiver) and name == "apply":
            # Host callables (e.g. JIT-compiled closures) masquerade as
            # guest closures: calling them crosses back into compiled code.
            frame.push(receiver(*args))
            return frame
        if receiver is None:
            raise GuestError("method %r called on null" % name)
        raise GuestTypeError("method %r called on %r" % (name, receiver))

    def _invoke_static(self, frame, cls_name, name, args):
        nat = lookup_native(cls_name, name)
        if nat is not None:
            if nat.argc != len(args):
                raise GuestTypeError("%s.%s expects %d args, got %d"
                                     % (cls_name, name, nat.argc, len(args)))
            if self.profile:
                self.profiler.count_native(cls_name, name)
            frame.push(nat.fn(self, *args))
            return frame
        method = self.linker.resolve_static(cls_name, name)
        return self._push_call(frame, method, None, args)

"""Bytecode layer: instructions, builder, assembler, disassembler, verifier."""

import pytest

from repro.bytecode import (ClassFile, Instr, MethodBuilder, Op, assemble,
                            disassemble_class, disassemble_method,
                            verify_class, verify_method)
from repro.bytecode.classfile import MethodInfo, max_stack
from repro.errors import AssemblerError, VerifyError


def simple_method(code, num_params=0, is_static=True, name="m"):
    return MethodInfo(name, num_params, code, is_static=is_static)


class TestInstr:
    def test_stack_effect_const(self):
        assert Instr(Op.CONST, 1).stack_effect() == (0, 1)

    def test_stack_effect_invoke(self):
        assert Instr(Op.INVOKE, ("foo", 2)).stack_effect() == (3, 1)

    def test_stack_effect_invoke_static(self):
        assert Instr(Op.INVOKE_STATIC, ("C", "foo", 3)).stack_effect() == (3, 1)

    def test_stack_effect_array_lit(self):
        assert Instr(Op.ARRAY_LIT, 4).stack_effect() == (4, 1)

    def test_equality(self):
        assert Instr(Op.CONST, 1) == Instr(Op.CONST, 1)
        assert Instr(Op.CONST, 1) != Instr(Op.CONST, 2)
        assert Instr(Op.POP) != Instr(Op.DUP)

    def test_is_branch(self):
        assert Instr(Op.JUMP, 0).is_branch()
        assert not Instr(Op.RET).is_branch()

    def test_repr(self):
        assert "CONST" in repr(Instr(Op.CONST, 5))


class TestMethodBuilder:
    def test_builds_and_appends_ret(self):
        b = MethodBuilder("f", 0, is_static=True)
        b.const(1).emit(Op.POP)
        m = b.build()
        assert m.code[-1].op is Op.RET

    def test_label_resolution(self):
        b = MethodBuilder("f", 1, is_static=True)
        end = b.new_label()
        b.load(0).jif_false(end)
        b.const(1).ret_val()
        b.label(end)
        b.const(0).ret_val()
        m = b.build()
        jif = m.code[1]
        assert jif.op is Op.JIF_FALSE
        assert m.code[jif.arg].op is Op.CONST
        assert m.code[jif.arg].arg == 0

    def test_unbound_label_fails(self):
        b = MethodBuilder("f", 0, is_static=True)
        lbl = b.new_label()
        b.jump(lbl)
        with pytest.raises(AssemblerError):
            b.build()

    def test_double_bound_label_fails(self):
        b = MethodBuilder("f", 0, is_static=True)
        lbl = b.new_label()
        b.label(lbl)
        with pytest.raises(AssemblerError):
            b.label(lbl)

    def test_alloc_slot_counts_locals(self):
        b = MethodBuilder("f", 2, is_static=True)
        s = b.alloc_slot()
        assert s == 2
        b.const(0).store(s)
        m = b.build()
        assert m.num_locals == 3

    def test_instance_method_reserves_this_slot(self):
        b = MethodBuilder("f", 1, is_static=False)
        assert b.alloc_slot() == 2   # this + 1 param


class TestMaxStack:
    def test_straight_line(self):
        m = simple_method([Instr(Op.CONST, 1), Instr(Op.CONST, 2),
                           Instr(Op.ADD), Instr(Op.RET_VAL)])
        assert max_stack(m.code) == 2

    def test_branches(self):
        # if (p0) push 3 deep else push 1 deep
        code = [
            Instr(Op.LOAD, 0),
            Instr(Op.JIF_FALSE, 6),
            Instr(Op.CONST, 1), Instr(Op.CONST, 2), Instr(Op.CONST, 3),
            Instr(Op.POP),
            Instr(Op.RET),
        ]
        m = simple_method(code, num_params=1)
        assert max_stack(m.code) >= 3


class TestVerifier:
    def test_ok(self):
        m = simple_method([Instr(Op.CONST, 1), Instr(Op.RET_VAL)])
        assert verify_method(m)

    def test_underflow(self):
        m = simple_method([Instr(Op.POP), Instr(Op.RET)])
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(m)

    def test_values_left_at_return(self):
        m = simple_method([Instr(Op.CONST, 1), Instr(Op.RET)])
        with pytest.raises(VerifyError, match="left on stack"):
            verify_method(m)

    def test_fall_off_end(self):
        m = simple_method([Instr(Op.CONST, 1), Instr(Op.POP)])
        with pytest.raises(VerifyError, match="fall off"):
            verify_method(m)

    def test_bad_jump_target(self):
        m = simple_method([Instr(Op.JUMP, 99)])
        with pytest.raises(VerifyError, match="out of range"):
            verify_method(m)

    def test_bad_local_slot(self):
        # Explicit num_locals (inference would widen it to fit the LOAD).
        m = MethodInfo("m", 1, [Instr(Op.LOAD, 5), Instr(Op.RET_VAL)],
                       is_static=True, num_locals=1)
        with pytest.raises(VerifyError, match="local slot"):
            verify_method(m)

    def test_inconsistent_stack_depth(self):
        # One path pushes 1 value before the join, the other pushes 2.
        code = [
            Instr(Op.LOAD, 0),
            Instr(Op.JIF_FALSE, 4),
            Instr(Op.CONST, 1),
            Instr(Op.JUMP, 6),
            Instr(Op.CONST, 1),
            Instr(Op.CONST, 2),
            Instr(Op.RET_VAL),       # join at 6 with depth 1 vs 2
        ]
        m = simple_method(code, num_params=1)
        with pytest.raises(VerifyError):
            verify_method(m)

    def test_empty_method(self):
        m = MethodInfo("f", 0, [], is_static=True)
        with pytest.raises(VerifyError, match="empty"):
            verify_method(m)

    def test_throw_terminated_method_ok(self):
        # THROW is a valid last instruction: execution cannot fall through.
        m = simple_method([Instr(Op.CONST, "boom"), Instr(Op.THROW)])
        assert verify_method(m)

    def test_throw_with_values_left_on_stack(self):
        m = simple_method([Instr(Op.CONST, 1), Instr(Op.CONST, "boom"),
                           Instr(Op.THROW)])
        with pytest.raises(VerifyError, match="left on stack"):
            verify_method(m)

    def test_throw_then_unreachable_tail_ok(self):
        # A RET after an always-throwing prefix is unreachable but legal.
        m = simple_method([Instr(Op.CONST, "boom"), Instr(Op.THROW),
                           Instr(Op.RET)])
        assert verify_method(m)

    def test_unreachable_code_not_traced(self):
        # The POP at index 1 would underflow, but nothing jumps to it:
        # the verifier only checks reachable instructions (like the JVM).
        m = simple_method([Instr(Op.JUMP, 2), Instr(Op.POP), Instr(Op.RET)])
        assert verify_method(m)

    def test_unreachable_after_conditional_still_traced(self):
        # Both arms of a conditional are reachable; the bad one is caught.
        m = simple_method([
            Instr(Op.LOAD, 0),
            Instr(Op.JIF_FALSE, 3),
            Instr(Op.RET),
            Instr(Op.POP),           # reachable via the branch: underflow
            Instr(Op.RET),
        ], num_params=1)
        with pytest.raises(VerifyError, match="underflow"):
            verify_method(m)


class TestVerifyBytecodeOption:
    """CompileOptions.verify_bytecode runs the verifier before staging."""

    def _jit(self, source, **opts):
        from repro import CompileOptions
        from tests.conftest import load
        return load(source, options=CompileOptions(**opts))

    def test_clean_method_compiles(self):
        j = self._jit("def f(x) { return x + 1; }", verify_bytecode=True)
        assert j.compile_function("Main", "f")(2) == 3

    def test_corrupted_method_rejected_before_staging(self):
        j = self._jit("def f(x) { return x + 1; }", verify_bytecode=True)
        method = j.vm.linker.resolve_static("Main", "f")
        method.code.append(Instr(Op.CONST, 0))   # now falls off the end
        with pytest.raises(VerifyError, match="fall off"):
            j.compile_function("Main", "f")

    def test_off_by_default(self):
        from repro import CompileOptions
        assert CompileOptions().verify_bytecode is False


class TestAssembler:
    SOURCE = '''
    class Point extends Base
      field x
      val field y
      static method make/2
        new Point
        dup
        load 0
        putfield x
        dup
        load 1
        putfield y
        ret_val
      end
      method getX/0
        load 0
        getfield x
        ret_val
      end
    end
    '''

    def test_assemble_basic(self):
        classes = assemble(self.SOURCE)
        assert len(classes) == 1
        cls = classes[0]
        assert cls.name == "Point"
        assert cls.super_name == "Base"
        assert cls.fields["x"].is_val is False
        assert cls.fields["y"].is_val is True
        assert cls.methods["make"].is_static
        assert not cls.methods["getX"].is_static

    def test_labels_and_literals(self):
        src = '''
        class M
          static method f/1
            load 0
          loop:
            const 1
            sub
            dup
            const 0
            gt
            jif_true loop
            ret_val
          end
        end
        '''
        cls = assemble(src)[0]
        m = cls.methods["f"]
        verify_method(m)
        jif = [i for i in m.code if i.op is Op.JIF_TRUE][0]
        assert m.code[jif.arg].op is Op.CONST

    def test_string_literal(self):
        src = 'class M\n static method f/0\n const "he\\"y"\n ret_val\n end\nend'
        m = assemble(src)[0].methods["f"]
        assert m.code[0].arg == 'he"y'

    def test_bool_null_literals(self):
        src = ('class M\n static method f/0\n const true\n pop\n'
               ' const false\n pop\n const null\n ret_val\n end\nend')
        m = assemble(src)[0].methods["f"]
        assert m.code[0].arg is True
        assert m.code[2].arg is False
        assert m.code[4].arg is None

    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError, match="unknown opcode"):
            assemble("class M\n static method f/0\n frobnicate\n end\nend")

    def test_unknown_label(self):
        with pytest.raises(AssemblerError, match="unknown label"):
            assemble("class M\n static method f/0\n jump nowhere\n end\nend")

    def test_missing_end(self):
        with pytest.raises(AssemblerError, match="missing 'end'"):
            assemble("class M\n static method f/0\n ret")

    def test_roundtrip(self):
        classes = assemble(self.SOURCE)
        text = disassemble_class(classes[0])
        classes2 = assemble(text)
        cls2 = classes2[0]
        assert verify_class(cls2)
        assert [i for i in cls2.methods["make"].code] == \
            [i for i in classes[0].methods["make"].code]

    def test_disassemble_method_mentions_labels(self):
        src = '''
        class M
          static method f/1
            load 0
            jif_true t
            const 0
            ret_val
          t:
            const 1
            ret_val
          end
        end
        '''
        m = assemble(src)[0].methods["f"]
        text = disassemble_method(m)
        assert "jif_true L" in text

#!/usr/bin/env python
"""Quickstart: load a guest (MiniJ) program, run it interpreted, compile it
explicitly, inspect the generated code, and watch specialization work.

Run:  python examples/quickstart.py
"""

from repro import Lancet

SOURCE = """
class Greeter {
  val prefix;
  def init(prefix) { this.prefix = prefix; }
  def greet(name) { return this.prefix + ", " + name + "!"; }
}

def poly(x) { return 3 * x * x + 2 * x + 1; }

def makeGreeter(prefix) {
  var g = new Greeter(prefix);
  // Explicit JIT compilation (paper Fig. 2): the returned function is
  // specialized against the live Greeter object.
  return Lancet.compile(fun(name) => g.greet(name));
}
"""


def main():
    jit = Lancet()
    jit.load(SOURCE)

    # 1. Plain interpretation.
    print("interpreted poly(10) =", jit.vm.call("Main", "poly", [10]))

    # 2. Explicit compilation of a static function.
    poly = jit.compile_function("Main", "poly")
    print("compiled    poly(10) =", poly(10))
    print("\n--- generated code for poly ---")
    print(poly.source)

    # 3. Specialization against live heap objects: the Greeter's prefix is
    #    a final field, so it folds into the compiled code as a constant.
    greet = jit.vm.call("Main", "makeGreeter", ["Hello"])
    print("specialized greeter:", greet("world"))
    print("\n--- generated code for the specialized greeter ---")
    print(greet.source)
    assert "'Hello, '" in greet.source or '"Hello, "' in greet.source \
        or "Hello" in greet.source

    # 4. Compiled functions report what happened.
    print("deopt count:", greet.deopt_count,
          "| compile count:", greet.compile_count,
          "| warnings:", greet.warnings)


if __name__ == "__main__":
    main()

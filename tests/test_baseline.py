"""The template-compiled baseline tier (ISSUE 8 tentpole).

Tier-1 compiles of plain static methods route through
``repro.baseline``: per-opcode templates assembled straight into a
CPython code object — no staging, no PassManager, no source text. These
tests pin down (a) observational equivalence with the interpreter
across the guest feature surface, (b) the routing rules (who gets the
baseline, who falls back to the staged pipeline), and (c) that the
tiering machinery — invocation profiling, 1→2 promotion, OSR out of a
*running* baseline loop, invalidation/recompile — still works when
Tier 1 is baseline code.

Everything here is gated on :func:`baseline_supported`; on a CPython
the assembler does not target, Tier 1 silently falls back to the
staged pipeline and these tests skip.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import CompileOptions, Lancet
from repro.baseline import BaselineFunction, baseline_supported
from repro.errors import (GuestArithmeticError, GuestError, GuestNullError,
                          GuestThrow)
from repro.pipeline import TIER1, TIER2, tier_options
from tests.conftest import load

pytestmark = pytest.mark.skipif(
    not baseline_supported(),
    reason="baseline templates target CPython 3.11")


def compile_t1(jit, cls="Main", fn="f"):
    return jit.compile_function(cls, fn, options=tier_options(jit.options,
                                                              TIER1))


class TestBaselineCorrectness:
    """Interpreter vs baseline, feature by feature: same results, same
    printed output, same guest errors."""

    CASES = [
        ("""def f(a, b) {
              var acc = 0; var i = 0;
              while (i < a) { acc = acc + b * i + (i % 7); i = i + 1; }
              return acc;
            }""", [(0, 0), (1, 5), (10, 3), (50, -2)]),
        ("""def f(a, b) {
              if (a < b) { return a * b; }
              else { if (a == b) { return 0 - a; } else { return a / (b + 1); } }
            }""", [(1, 2), (3, 3), (9, 2), (-4, -9)]),
        ("""def f(a, b) {
              var xs = [a, b, a + b];
              xs[1] = xs[0] * 2;
              var s = 0; var i = 0;
              while (i < len(xs)) { s = s + xs[i]; i = i + 1; }
              return s;
            }""", [(1, 2), (5, -3)]),
        ("""def f(a, b) {
              println("a=" + a);
              println(a < b);
              return "r:" + (a + b);
            }""", [(1, 2), (7, -7)]),
        ("""def f(a, b) { return Math.max(a, Math.min(b, 10)) + Math.abs(0 - a); }""",
         [(3, 20), (-4, 2)]),
    ]

    @pytest.mark.parametrize("source,args_list", CASES)
    def test_matches_interpreter(self, source, args_list):
        oracle = load(source)
        quick = compile_t1(load(source))
        assert isinstance(quick, BaselineFunction)
        for args in args_list:
            expected = oracle.vm.call("Main", "f", list(args))
            expected_out = oracle.vm.output()
            oracle.vm.clear_output()
            assert quick(*args) == expected, source
            assert quick.jit.vm.output() == expected_out, source
            quick.jit.vm.clear_output()

    def test_objects_and_virtual_calls(self):
        src = '''
            class Point {
              var x; var y;
              def init(x, y) { this.x = x; this.y = y; }
              def norm1() { return Math.abs(this.x) + Math.abs(this.y); }
            }
            def f(a, b) {
              var p = new Point(a, b);
              p.x = p.x + 1;
              if (p is Point) { return p.norm1(); }
              return 0 - 1;
            }
        '''
        oracle = load(src)
        quick = compile_t1(load(src))
        for args in [(2, 3), (-5, 4), (0, 0)]:
            assert quick(*args) == oracle.vm.call("Main", "f", list(args))

    @pytest.mark.parametrize("source,args,err", [
        ("def f(a, b) { return a / b; }", (1, 0), GuestArithmeticError),
        ("""class C { var v; }
            def f(a, b) { var c = null; return c.v; }""",
         (0, 0), GuestNullError),
        ("def f(a, b) { throw a + b; }", (1, 2), GuestThrow),
    ])
    def test_guest_errors_agree(self, source, args, err):
        oracle = load(source)
        with pytest.raises(err):
            oracle.vm.call("Main", "f", list(args))
        quick = compile_t1(load(source))
        with pytest.raises(err):
            quick(*args)

    def test_recursion_through_baseline(self):
        src = '''
            def fib(n) {
              if (n < 2) { return n; }
              return Main.fib(n - 1) + Main.fib(n - 2);
            }
        '''
        quick = compile_t1(load(src), fn="fib")
        assert quick(12) == 144


class TestBaselineRouting:
    SRC = "def f(a, b) { return a * b + 1; }"

    def test_tier1_static_takes_baseline(self):
        quick = compile_t1(load(self.SRC))
        assert quick.kind == "baseline"
        assert quick.tier == TIER1
        assert quick.report.tier == TIER1
        for phase in ("baseline.translate", "baseline.assemble",
                      "baseline.bind"):
            assert phase in quick.report.phases

    def test_tier2_stays_staged(self):
        full = load(self.SRC).compile_function("Main", "f")
        assert getattr(full, "kind", None) != "baseline"
        assert "def " in full.source

    def test_opt_out_compiles_staged_tier1(self):
        j = load(self.SRC)
        opts = dataclasses.replace(tier_options(j.options, TIER1),
                                   baseline=False)
        quick = j.compile_function("Main", "f", options=opts)
        assert getattr(quick, "kind", None) != "baseline"
        assert quick.tier == TIER1
        assert quick(6, 7) == 43

    def test_env_var_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE", "0")
        assert CompileOptions().baseline is False

    def test_instance_methods_fall_back(self):
        src = '''
            class Box {
              var v;
              def init(v) { this.v = v; }
              def get() { return this.v; }
            }
            def f(a, b) { return new Box(a + b).get(); }
        '''
        j = load(src)
        quick = compile_t1(j)           # static wrapper: baseline
        assert quick.kind == "baseline"
        box = j.vm.call("Main", "f", [0, 0])  # warm the class
        del box
        rt = j.vm.linker.classes["Box"]
        method = rt.lookup_method("get")
        from repro.baseline import BaselineUnsupported, compile_baseline
        with pytest.raises(BaselineUnsupported):
            compile_baseline(j, method)

    def test_source_renders_disassembly(self):
        quick = compile_t1(load(self.SRC))
        assert quick.source.startswith("# baseline CPython bytecode")
        assert "BINARY" in quick.source or "CALL" in quick.source

    def test_telemetry_counts_baseline_compiles(self):
        j = load(self.SRC)
        compile_t1(j)
        stats = j.stats()
        assert stats["tiers"]["compiles_by_tier"].get(1) == 1
        latency = stats["tiers"]["latency"]
        assert latency["baseline"]["count"] == 1
        assert latency["tier1"]["count"] == 1


HOT_SRC = '''
    def hot(n) {
      var acc = 0;
      var i = 0;
      while (i < n) { acc = acc + i; i = i + 1; }
      return acc;
    }
'''


def tiered_jit(src=HOT_SRC, **thresholds):
    j = load(src)
    j.telemetry.enable_trace()
    for name, value in thresholds.items():
        setattr(j.options, name, value)
    return j


class TestBaselineTiering:
    def test_promotion_1_to_2_from_baseline(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=3,
                       osr_threshold=10**9)
        tf = j.compile_tiered("Main", "hot")
        results = [tf(10) for __ in range(4)]
        assert results == [45] * 4
        assert tf.tier == TIER2
        # The tier-1 leg really was baseline code.
        starts = [e.data for e in j.telemetry.events("compile.start")]
        assert any(e.get("baseline") and e["tier"] == TIER1 for e in starts)
        promotes = [e.data for e in j.telemetry.events("tier.promote")]
        assert [(e["from_tier"], e["to_tier"]) for e in promotes] == \
            [(0, 1), (1, 2)]

    def test_osr_exits_running_baseline_loop(self):
        """A loop hot *inside one baseline call* tiers up mid-execution:
        the ``_be`` poll fires, locals transfer into an interpreter
        frame, and the tier-2 OSR continuation finishes the call."""
        j = tiered_jit(tier1_threshold=1, tier2_threshold=10**9,
                       osr_threshold=50)
        tf = j.compile_tiered("Main", "hot")
        n = 500
        assert tf(n) == sum(range(n))   # OSR fires inside this call
        assert tf.tier == TIER2
        events = [e.data for e in j.telemetry.events("osr.tier_up")]
        assert len(events) == 1
        assert events[0]["from_baseline"] is True
        assert events[0]["unit"] == "Main.hot"

    def test_cold_baseline_loop_never_osrs(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=10**9,
                       osr_threshold=10**9)
        tf = j.compile_tiered("Main", "hot")
        assert tf(200) == sum(range(200))
        assert tf.tier == TIER1
        assert not j.telemetry.events("osr.tier_up")

    def test_invalidation_recompiles_baseline(self):
        j = load(HOT_SRC)
        quick = compile_t1(j, fn="hot")
        assert quick(10) == 45
        assert quick.compile_count == 1
        j.unit_cache.invalidate_all("test")
        assert not quick.valid
        assert quick(10) == 45          # recompile-on-call
        assert quick.valid
        assert quick.compile_count == 2
        assert quick.kind == "baseline"

#!/usr/bin/env python
"""Code caching and on-demand compilation (paper 3.1): calcJIT / calcHOT.

Run:  python examples/code_cache.py
"""

from repro import CodeCache, Lancet, make_hot, make_jit

SOURCE = """
def calc(x, y) {
  var acc = 0;
  var i = 0;
  while (i < x) { acc = acc + (y * i) % 7; i = i + 1; }
  return acc;
}
"""


def main():
    jit = Lancet()
    jit.load(SOURCE)

    # calcJIT: one specialized variant per distinct x, cached.
    calc_jit = make_jit(jit, "Main", "calc")
    for x, y in [(100, 3), (100, 4), (200, 3), (100, 5)]:
        print("calcJIT(%d, %d) = %d" % (x, y, calc_jit(x, y)))
    print("cache: %d variants, %d hits, %d misses"
          % (len(calc_jit.cache), calc_jit.cache.hits,
             calc_jit.cache.misses))

    # Each variant embeds x as a compile-time constant:
    variant = calc_jit.cache.get(100)
    assert "100" in variant.source
    print("variant for x=100 embeds the constant: yes")

    # calcHOT: compile only after a value gets hot.
    calc_hot = make_hot(jit, "Main", "calc", threshold=2)
    for __ in range(4):
        calc_hot(50, 7)
    print("hot cache size after 4 calls at threshold 2:",
          len(calc_hot.cache))

    # Custom eviction policy, as the paper suggests.
    evicted = []
    cache = CodeCache(capacity=2, on_evict=lambda k, v: evicted.append(k))
    calc_lru = make_jit(jit, "Main", "calc", cache=cache)
    for x in (1, 2, 3):
        calc_lru(x, 1)
    print("with capacity-2 LRU, evicted:", evicted)


if __name__ == "__main__":
    main()

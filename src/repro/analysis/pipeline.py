"""Back-compat shim: the analysis pipeline is now the PassManager.

The ad-hoc verify/optimize/taint/alloc sequencing that used to live here
became the declarative per-tier pass list in
:mod:`repro.pipeline.passes`. ``AnalysisPipeline`` remains importable
(same constructor, same ``run(result, name, report=...)`` contract,
always the full Tier-2 list) for existing callers and tests.
"""

from __future__ import annotations

from repro.pipeline.passes import PassManager


class AnalysisPipeline(PassManager):
    """The full (Tier-2) pass list, regardless of ``options.tier``."""

    def run(self, result, name, tier=None, report=None):
        return super().run(result, name, tier=2, report=report)

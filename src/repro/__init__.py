"""repro: a full reproduction of "Surgical Precision JIT Compilers"
(Rompf et al., PLDI 2014) — the Lancet JIT compiler framework — built in
Python on a from-scratch MiniJVM substrate.

Quick tour::

    from repro import Lancet

    jit = Lancet()
    jit.load('''
        def square(x) { return x * x; }
    ''')
    fast = jit.compile_function("Main", "square")
    assert fast(7) == 49
    print(fast.source)          # the generated code

See DESIGN.md for the system map and EXPERIMENTS.md for the paper's
tables reproduced on this substrate.
"""

from repro.compiler.compiled import CompiledFunction
from repro.compiler.options import CompileOptions
from repro.errors import (CompilationError, FreezeError, GuestError,
                          MaterializeError, NoAllocError, ReproError,
                          TaintError, UnrollError)
from repro.codecache import CompileService, PersistentCodeCache
from repro.interp.interpreter import Interpreter
from repro.jit.api import Lancet
from repro.jit.cache import CodeCache, make_hot, make_jit
from repro.observability import CompileReport, Telemetry
from repro.pipeline import (PassManager, TieredFunction, TierPolicy,
                            tier_options)

__version__ = "0.1.0"

__all__ = [
    "Lancet", "Interpreter", "CompileOptions", "CompiledFunction",
    "CodeCache", "make_jit", "make_hot",
    "PersistentCodeCache", "CompileService",
    "PassManager", "TieredFunction", "TierPolicy", "tier_options",
    "Telemetry", "CompileReport",
    "ReproError", "GuestError", "CompilationError", "FreezeError",
    "MaterializeError", "UnrollError", "NoAllocError", "TaintError",
    "__version__",
]

"""Delimited control (paper 3.2): shift/reset, reified continuations,
OSR plumbing."""

import pytest

from tests.conftest import load


class TestShift:
    def test_abort_continuation(self):
        """f ignores k: the rest of the compiled unit is discarded."""
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                var y = Lancet.shift(fun(k) => 42);
                return y * 1000;       // never runs
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(1) == 42

    def test_invoke_continuation_once(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                var y = Lancet.shift(fun(k) => k(x + 1) * 10);
                return y * 2;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        # k(x+1) resumes: y = x+1, returns (x+1)*2; f's result = that * 10
        assert f(5) == (5 + 1) * 2 * 10

    def test_invoke_continuation_twice(self):
        """Continuations rebuild fresh frames per call: replayable."""
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                var y = Lancet.shift(fun(k) => k(1) + k(2));
                return y * 10;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(0) == 10 + 20

    def test_reset_is_transparent(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.reset(fun() => x + 1) * 2;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 8

    def test_generator_style(self):
        """The paper: 'delimited continuations can be used to implement
        coroutines, generators or asynchronous callbacks'."""
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                var k = Lancet.shift(fun(k) => k);   // expose continuation
                return x + k;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        k = f(100)          # first call returns the continuation itself
        assert callable(k)
        assert k(7) == 107  # resuming computes x + 7
        assert k(8) == 108  # replayable

    def test_shift_in_interpreter_rejected(self):
        from repro.errors import GuestError
        j = load('def f(x) { return Lancet.shift(fun(k) => k(x)); }')
        with pytest.raises(GuestError):
            j.vm.call("Main", "f", [1])


class TestOsrChains:
    def test_deopt_through_inlined_frames(self):
        """Deopt metadata reconstructs the whole inline chain, and the
        interpreter finishes the outer computation correctly."""
        j = load('''
            def inner(x) {
              if (Lancet.speculate(x < 10)) { return x; }
              return x * 1000;
            }
            def middle(x) { return inner(x) + 1; }
            def make() {
              return Lancet.compile(fun(x) => middle(x) * 2);
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == (3 + 1) * 2
        assert f(50) == (50 * 1000 + 1) * 2    # resumes 3 frames deep
        assert f.deopt_count == 1

    def test_deopt_restores_scalar_replaced_objects(self):
        """Virtual objects in deopt metadata rematerialize on the slow
        path (Graal-style scalar replacement in frame state)."""
        j = load('''
            class Box { var v; def init(v) { this.v = v; } }
            def make() {
              return Lancet.compile(fun(x) {
                var b = new Box(x * 2);
                if (Lancet.speculate(x < 100)) { return b.v; }
                return b.v + 1;
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 6
        assert "_newinst" not in f.source      # Box scalar-replaced
        assert f(200) == 401                   # rebuilt for the interpreter

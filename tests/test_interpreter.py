"""Interpreter: control flow, frames, dispatch, natives, resumability."""

import pytest

from repro.bytecode import ClassFile, MethodBuilder, Op
from repro.errors import GuestError, GuestTypeError, LinkError
from repro.interp import Interpreter
from repro.interp.frame import InterpreterFrame
from repro.interp.interpreter import BudgetExceeded, GuestThrow


def vm_with(builders, class_name="Main"):
    cf = ClassFile(class_name)
    for b in builders:
        cf.add_method(b.build())
    vm = Interpreter()
    vm.load_classes([cf])
    return vm


def fact_builder():
    b = MethodBuilder("fact", 1, is_static=True)
    acc = b.alloc_slot()
    loop, done = b.new_label(), b.new_label()
    b.const(1).store(acc)
    b.label(loop)
    b.load(0).const(1).emit(Op.GT).jif_false(done)
    b.load(acc).load(0).emit(Op.MUL).store(acc)
    b.load(0).const(1).emit(Op.SUB).store(0)
    b.jump(loop)
    b.label(done)
    b.load(acc).ret_val()
    return b


class TestBasics:
    def test_factorial(self):
        vm = vm_with([fact_builder()])
        assert vm.call("Main", "fact", [10]) == 3628800

    def test_implicit_null_return(self):
        b = MethodBuilder("f", 0, is_static=True)
        b.const(1).emit(Op.POP)
        vm = vm_with([b])
        assert vm.call("Main", "f") is None

    def test_swap_dup(self):
        b = MethodBuilder("f", 0, is_static=True)
        b.const(1).const(2).emit(Op.SWAP).emit(Op.SUB).ret_val()
        vm = vm_with([b])
        assert vm.call("Main", "f") == 1   # 2 - 1

    def test_wrong_arity(self):
        vm = vm_with([fact_builder()])
        with pytest.raises(GuestTypeError, match="expects 1"):
            vm.call("Main", "fact", [1, 2])

    def test_unknown_method(self):
        vm = vm_with([fact_builder()])
        with pytest.raises(LinkError):
            vm.call("Main", "nope")

    def test_step_budget(self):
        b = MethodBuilder("spin", 0, is_static=True)
        loop = b.new_label()
        b.label(loop)
        b.jump(loop)
        vm = vm_with([b])
        vm.max_steps = 1000
        with pytest.raises(BudgetExceeded):
            vm.call("Main", "spin")


class TestSourcePrograms:
    def test_recursion(self, vm):
        vm.load_source('''
            def fib(n) {
              if (n < 2) { return n; }
              return fib(n - 1) + fib(n - 2);
            }
        ''')
        assert vm.call("Main", "fib", [15]) == 610

    def test_mutual_recursion(self, vm):
        vm.load_source('''
            def isEven(n) { if (n == 0) { return true; } return isOdd(n - 1); }
            def isOdd(n) { if (n == 0) { return false; } return isEven(n - 1); }
        ''')
        assert vm.call("Main", "isEven", [10]) is True
        assert vm.call("Main", "isEven", [7]) is False

    def test_virtual_dispatch(self, vm):
        vm.load_source('''
            class Animal { def speak() { return "..."; } }
            class Dog extends Animal { def speak() { return "woof"; } }
            class Cat extends Animal { def speak() { return "meow"; } }
            def speakAll(animals) {
              var out = "";
              for (a in animals) { out = out + a.speak(); }
              return out;
            }
            def run() {
              return speakAll([new Dog(), new Cat(), new Animal()]);
            }
        ''')
        assert vm.call("Main", "run") == "woofmeow..."

    def test_inherited_method_and_fields(self, vm):
        vm.load_source('''
            class Base { var x; def init() { this.x = 1; } def get() { return this.x; } }
            class Derived extends Base { def bump() { this.x = this.x + 10; } }
            def run() {
              var d = new Derived();
              d.init();
              d.bump();
              return d.get();
            }
        ''')
        assert vm.call("Main", "run") == 11

    def test_instanceof(self, vm):
        vm.load_source('''
            class A { }
            class B extends A { }
            def run() {
              var b = new B();
              return [b is A, b is B, 3 is A];
            }
        ''')
        assert vm.call("Main", "run") == [True, True, False]

    def test_throw_propagates(self, vm):
        vm.load_source('def boom() { throw "bad"; }')
        with pytest.raises(GuestThrow) as exc:
            vm.call("Main", "boom")
        assert exc.value.value == "bad"

    def test_output_capture(self, vm):
        vm.load_source('def hello() { println("hi"); print(42); }')
        vm.call("Main", "hello")
        assert vm.output() == "hi\n42"
        vm.clear_output()
        assert vm.output() == ""

    def test_null_field_access_raises(self, vm):
        vm.load_source('def f() { var x = null; return x.foo; }')
        with pytest.raises(GuestError):
            vm.call("Main", "f")

    def test_natives_math(self, vm):
        vm.load_source('def f() { return Math.max(Math.abs(0 - 5), 3); }')
        assert vm.call("Main", "f") == 5

    def test_string_builtins(self, vm):
        vm.load_source('''
            def f() {
              var parts = split("a,b,c", ",");
              return [len(parts), parts[1], charCode("A", 0),
                      substring("hello", 1, 3), parseInt("42")];
            }
        ''')
        assert vm.call("Main", "f") == [3, "b", 65, "el", 42]


class TestResumability:
    """The interpreter must be resumable at an arbitrary bci with a
    prepared frame chain — the deoptimization contract."""

    def test_resume_mid_method(self):
        vm = vm_with([fact_builder()])
        method = vm.linker.resolve_static("Main", "fact")
        # Resume at the loop header with n=3, acc=100 already set.
        frame = InterpreterFrame(method)
        frame.set_local(0, 3)
        frame.set_local(1, 100)
        frame.bci = 2   # loop header (after const/store prologue)
        assert vm.run_frames(frame) == 100 * 3 * 2

    def test_resume_with_parent_chain(self, vm):
        vm.load_source('''
            def inner(x) { return x * 10; }
            def outer(x) { return inner(x) + 1; }
        ''')
        inner = vm.linker.resolve_static("Main", "inner")
        outer = vm.linker.resolve_static("Main", "outer")
        parent = InterpreterFrame(outer)
        # outer's code: LOAD 0, INVOKE_STATIC inner, CONST 1, ADD, RET_VAL
        parent.bci = 2          # resume after the call returns
        child = InterpreterFrame(inner, parent=parent)
        child.set_local(0, 7)
        assert vm.run_frames(child) == 71


class TestProfiler:
    def test_counts_invocations(self, vm):
        vm.load_source('''
            def leaf() { return 1; }
            def run() { var i = 0; while (i < 5) { leaf(); i = i + 1; } }
        ''')
        vm.profile = True
        vm.call("Main", "run")
        assert vm.profiler.invocation_count("Main.leaf") == 5
        assert "Main.leaf" in vm.profiler.hot_methods(5)
        assert "Main.leaf" not in vm.profiler.hot_methods(6)

    def test_native_counts(self, vm):
        vm.load_source('def run() { println(1); println(2); }')
        vm.profile = True
        vm.call("Main", "run")
        assert vm.profiler.native_calls["Builtins.println"] == 2

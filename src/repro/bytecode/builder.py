"""Fluent programmatic bytecode builder with symbolic labels.

The MiniJ frontend and the tests use this to construct method bodies without
tracking instruction indices by hand::

    b = MethodBuilder("fact", num_params=1, is_static=True)
    loop, done = b.new_label(), b.new_label()
    ...
    b.label(loop)
    b.load(0).const(0).op(Op.GT).jif_false(done)
    ...
    method = b.build()
"""

from __future__ import annotations

from repro.bytecode.instr import Instr
from repro.bytecode.opcodes import Op
from repro.bytecode.classfile import MethodInfo
from repro.errors import AssemblerError


class Label:
    """A symbolic jump target, resolved to an instruction index at build()."""

    __slots__ = ("name", "index")

    def __init__(self, name):
        self.name = name
        self.index = None

    def __repr__(self):
        return "Label(%s->%s)" % (self.name, self.index)


class MethodBuilder:
    """Accumulates instructions and resolves labels into a MethodInfo."""

    def __init__(self, name, num_params, is_static=False):
        self.name = name
        self.num_params = num_params
        self.is_static = is_static
        self.code = []
        self._labels = []
        self._next_label = 0
        self._next_slot = num_params + (0 if is_static else 1)
        self.cur_line = None

    # -- labels ---------------------------------------------------------------

    def new_label(self, name=None):
        if name is None:
            name = "L%d" % self._next_label
            self._next_label += 1
        lbl = Label(name)
        self._labels.append(lbl)
        return lbl

    def label(self, lbl):
        """Bind ``lbl`` to the current position."""
        if lbl.index is not None:
            raise AssemblerError("label %s bound twice" % lbl.name)
        lbl.index = len(self.code)
        return self

    # -- slots -----------------------------------------------------------------

    def alloc_slot(self):
        """Allocate a fresh local slot (for temporaries)."""
        slot = self._next_slot
        self._next_slot += 1
        return slot

    # -- emission ----------------------------------------------------------------

    def emit(self, op, arg=None):
        self.code.append(Instr(op, arg, line=self.cur_line))
        return self

    def op(self, opcode):
        return self.emit(opcode)

    def const(self, value):
        return self.emit(Op.CONST, value)

    def load(self, slot):
        return self.emit(Op.LOAD, slot)

    def store(self, slot):
        return self.emit(Op.STORE, slot)

    def jump(self, lbl):
        return self.emit(Op.JUMP, lbl)

    def jif_true(self, lbl):
        return self.emit(Op.JIF_TRUE, lbl)

    def jif_false(self, lbl):
        return self.emit(Op.JIF_FALSE, lbl)

    def new(self, class_name):
        return self.emit(Op.NEW, class_name)

    def getfield(self, name):
        return self.emit(Op.GETFIELD, name)

    def putfield(self, name):
        return self.emit(Op.PUTFIELD, name)

    def invoke(self, name, argc):
        return self.emit(Op.INVOKE, (name, argc))

    def invoke_static(self, class_name, name, argc):
        return self.emit(Op.INVOKE_STATIC, (class_name, name, argc))

    def ret(self):
        return self.emit(Op.RET)

    def ret_val(self):
        return self.emit(Op.RET_VAL)

    # -- finalization -----------------------------------------------------------

    def build(self):
        """Resolve labels and return the finished MethodInfo."""
        for lbl in self._labels:
            if lbl.index is None:
                raise AssemblerError("label %s never bound" % lbl.name)
        code = []
        for ins in self.code:
            if isinstance(ins.arg, Label):
                ins = Instr(ins.op, ins.arg.index, line=ins.line)
            code.append(ins)
        # A method must not fall off the end; also give labels bound at the
        # very end (e.g. a while-loop exit after a trailing back-jump) an
        # instruction to land on.
        label_at_end = any(lbl.index == len(code) for lbl in self._labels)
        if (not code or label_at_end
                or code[-1].op not in (Op.RET, Op.RET_VAL, Op.JUMP, Op.THROW)):
            code.append(Instr(Op.RET))
        return MethodInfo(self.name, self.num_params, code,
                          is_static=self.is_static,
                          num_locals=self._next_slot)

"""Flow-sensitive taint propagation (paper 3.3, as a dataflow pass).

Taint *sources* are first-class IR ops: ``Lancet.taint(x)`` stages a
``taint`` statement (identity in generated code) and ``Lancet.untaint``
a ``untaint`` statement that declassifies. Taint then propagates through
statement dataflow and — unlike the old per-symbol side table — through
block parameters: the solver's ``edge_value`` hook marks a parameter
tainted on an edge exactly when the rep the predecessor passes is tainted
in that predecessor, and joins at merge points take the union (may-taint),
iterating loops to fixpoint.

*Sinks* are statements carrying the ``checktaint`` scope flag whose
operation lets data escape the compiled unit: IO/call natives, residual
``invoke``/``invoke_method`` calls, and dynamic branches recorded by the
staged interpreter (control dependence leaks one bit). Each leak message
includes the full source→sink IR path reconstructed from the fixpoint.
"""

from __future__ import annotations

from repro.analysis.cfg import phi_assigns_for_edge
from repro.analysis.dataflow import ForwardAnalysis, solve
from repro.lms.ir import Branch, Effect
from repro.lms.rep import Sym


class TaintAnalysis(ForwardAnalysis):
    """May-taint: the set of tainted symbol names at each block boundary."""

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, in_value):
        tainted = set(in_value)
        for stmt in block.stmts:
            _step(stmt, tainted)
        return frozenset(tainted)

    def edge_value(self, block, succ_id, out_value):
        extra = None
        for param, rep in phi_assigns_for_edge(block.terminator, succ_id):
            if isinstance(rep, Sym) and rep.name in out_value:
                if extra is None:
                    extra = set()
                extra.add(param)
        if extra is None:
            return out_value
        return out_value | frozenset(extra)


def _step(stmt, tainted):
    """Apply one statement to a mutable tainted-name set; returns the Sym
    arg the taint came through (None if the result is untainted)."""
    name = stmt.sym.name
    if stmt.op == "taint":
        tainted.add(name)
        return None
    if stmt.op == "untaint":
        tainted.discard(name)
        return None
    for a in stmt.args:
        if isinstance(a, Sym) and a.name in tainted:
            tainted.add(name)
            return a
    return None


def find_leaks(blocks, entry_id, branch_sinks=()):
    """Run the taint fixpoint and report every tainted-data leak.

    ``branch_sinks`` is the staged interpreter's list of ``(Branch,
    description)`` pairs for dynamic branches emitted under a
    ``checktaint`` scope (matched by terminator identity, so they survive
    block fusion). Returns a list of human-readable leak strings.
    """
    if not any(s.op == "taint"
               for b in blocks.values() for s in b.stmts):
        return []
    solution = solve(blocks, entry_id, TaintAnalysis())
    origin = _build_origins(blocks, solution)
    branch_map = {id(term): desc for term, desc in branch_sinks}

    leaks = []
    for bid in sorted(blocks):
        block = blocks[bid]
        tainted = set(solution[bid][0])
        for stmt in block.stmts:
            if stmt.flags.get("checktaint"):
                sink = _sink_of(stmt)
                if sink is not None:
                    desc, value_args = sink
                    for a in value_args:
                        if isinstance(a, Sym) and a.name in tainted:
                            leaks.append(
                                "tainted value %s flows into %s%s [IR path:"
                                " %s]" % (a.name, desc,
                                          _provenance(stmt.flags),
                                          taint_path(origin, a.name)))
            _step(stmt, tainted)
        term = block.terminator
        desc = branch_map.get(id(term))
        if desc is not None and isinstance(term, Branch) \
                and isinstance(term.cond, Sym) and term.cond.name in tainted:
            leaks.append("%s [IR path: %s]"
                         % (desc, taint_path(origin, term.cond.name)))
    return leaks


def _sink_of(stmt):
    """``(description, value args)`` if the statement is a taint sink."""
    if stmt.op == "native" and stmt.effect in (Effect.IO, Effect.CALL):
        nat = stmt.args[0]
        return ("native %s.%s" % (nat.class_name, nat.name), stmt.args[1:])
    if stmt.op == "invoke":
        return ("call %s" % stmt.args[0], stmt.args[1:])
    if stmt.op == "invoke_method":
        method = getattr(stmt.args[0], "obj", None)
        qname = getattr(method, "qualified_name", "?")
        return ("call %s" % qname, stmt.args[2:])
    return None


def _provenance(flags):
    src = flags.get("src")
    return " in %s" % src[0] if src else ""


def _build_origins(blocks, solution):
    """``{tainted name: ('source',) | ('via', arg) | ('phi', rep)}`` —
    one step back along the taint flow, for path reconstruction."""
    origin = {}
    for bid, block in blocks.items():
        out = solution[bid][1]
        for succ in set(block.terminator.successors()):
            if succ not in blocks:
                continue
            for param, rep in phi_assigns_for_edge(block.terminator, succ):
                if isinstance(rep, Sym) and rep.name in out:
                    origin.setdefault(param, ("phi", rep.name))
    for bid, block in blocks.items():
        tainted = set(solution[bid][0])
        for stmt in block.stmts:
            via = _step(stmt, tainted)
            if stmt.op == "taint":
                origin.setdefault(stmt.sym.name, ("source",))
            elif via is not None:
                origin.setdefault(stmt.sym.name, ("via", via.name))
    return origin


def taint_path(origin, name):
    """Render the taint flow that reaches ``name``, source first."""
    chain = [name]
    seen = {name}
    reached_source = False
    cur = name
    while True:
        info = origin.get(cur)
        if info is None:
            break
        if info[0] == "source":
            reached_source = True
            break
        cur = info[1]
        if cur in seen:
            break               # taint cycle through a loop header
        seen.add(cur)
        chain.append(cur)
    chain.reverse()
    prefix = "taint source " if reached_source else ""
    return prefix + " -> ".join(chain)

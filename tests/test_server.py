"""The multi-tenant compile server (ISSUE 9 tentpole): sharded store,
cross-VM dedup, admission control / fairness / batching, manifest
prewarming, and the client shim with local fallback."""

from __future__ import annotations

import threading
import time

from repro import Lancet
from repro.codecache.service import (PRIORITY_OSR, PRIORITY_PREFETCH,
                                     PRIORITY_TIER1)
from repro.compiler.options import CompileOptions
from repro.observability import Telemetry
from repro.server import (CompileServer, ShardedCodeCache, build_manifest,
                          close_shared_servers, shared_server,
                          warm_from_manifest, write_manifest)

SRC = '''
    def work(n) {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + i * i; i = i + 1; }
      return s;
    }
    def other(n) { return n * 3 + 1; }
'''

EXPECTED_WORK_10 = sum(i * i for i in range(10))


def make_jit(server=None, **opts):
    j = Lancet(options=CompileOptions(**opts))
    j.load(SRC)
    if server is not None:
        j.attach_compile_server(server)
    return j


# -- the sharded store --------------------------------------------------------


class TestShardedCodeCache:
    def test_shard_layout_and_index(self, tmp_path):
        store = ShardedCodeCache(tmp_path / "cc", shards=4)
        assert store.enabled
        assert len(store.shards) == 4
        # Hex prefixes spread deterministically over the shards.
        assert store._shard_index("00" + "a" * 62) == 0
        assert store._shard_index("01" + "a" * 62) == 1
        assert store._shard_index("05" + "a" * 62) == 1
        for fp in ("%02x%s" % (b, "0" * 62) for b in range(32)):
            assert store.shard_for(fp) is store.shard_for(fp)

    def test_non_hex_keys_map_stably_across_processes(self, tmp_path):
        """The non-hex fallback must not depend on built-in hash()
        (randomized per process by PYTHONHASHSEED): cross-process fleets
        share the store on disk, so every process must agree on the
        owning shard."""
        import hashlib
        store = ShardedCodeCache(tmp_path / "cc", shards=4)
        for key in ("not-hex-key", "zz123", "Main.work/unit"):
            expected = int(hashlib.sha256(key.encode("utf-8"))
                           .hexdigest()[:8], 16) % 4
            assert store._shard_index(key) == expected

    def test_budget_splits_across_shards(self, tmp_path):
        store = ShardedCodeCache(tmp_path / "cc", shards=8,
                                 budget_bytes=8 << 20)
        assert all(s.budget_bytes == 1 << 20 for s in store.shards)

    def test_miss_and_stats_shape(self, tmp_path):
        store = ShardedCodeCache(tmp_path / "cc", shards=2,
                                 telemetry=Telemetry())
        assert store.load("ab" + "0" * 62, jit=None) is None
        assert not store.contains("ab" + "0" * 62)
        s = store.stats()
        assert s["shards"] == 2
        assert s["entries"] == 0
        assert len(s["entries_per_shard"]) == 2
        assert s["misses"] == 1

    def test_units_persist_and_share_across_vms(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        try:
            j1 = make_jit(server)
            f1 = j1.compile_function("Main", "work")
            assert f1(10) == EXPECTED_WORK_10
            assert server.store.stats()["entries"] == 1
            fps = server.store.fingerprints()
            assert len(fps) == 1
            assert server.store.contains(fps[0])
            j1.close()
            # A brand-new VM warm-starts from the tenant's store entry.
            j2 = make_jit(server)
            f2 = j2.compile_function("Main", "work")
            assert f2(10) == EXPECTED_WORK_10
            assert server.store.stats()["entries"] == 1
            assert j2.telemetry.metrics.get("compiles") == 0
            j2.close()
        finally:
            server.close()

    def test_invalidate_targets_owning_shard(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        try:
            j = make_jit(server)
            j.compile_function("Main", "work")(10)
            fp = server.store.fingerprints()[0]
            assert server.store.invalidate(fp)
            assert not server.store.contains(fp)
            assert server.store.stats()["entries"] == 0
            j.close()
        finally:
            server.close()


# -- the queue: admission, fairness, batching, priorities ---------------------


class TestServerQueue:
    def drain_server(self, **kw):
        kw.setdefault("workers", 0)
        return CompileServer(**kw)

    def test_fifo_round_robin_between_tenants(self):
        server = self.drain_server(batch_max=2)
        try:
            order = []
            for key, tenant in (("a1", "A"), ("a2", "A"), ("a3", "A"),
                                ("b1", "B")):
                server.submit(key, lambda k=key: order.append(k) or k,
                              tenant=tenant)
            server.drain()
            # A's first batch (batch_max=2), then B's turn, then A again.
            assert order == ["a1", "a2", "b1", "a3"]
            assert server.stats()["batches"] == 3
        finally:
            server.close()

    def test_priority_beats_round_robin(self):
        server = self.drain_server()
        try:
            order = []
            server.submit("pf", lambda: order.append("pf"), tenant="A",
                          priority=PRIORITY_PREFETCH)
            server.submit("osr", lambda: order.append("osr"), tenant="B",
                          priority=PRIORITY_OSR)
            server.drain()
            assert order == ["osr", "pf"]
        finally:
            server.close()

    def test_per_tenant_cap_rejects_the_hog_only(self):
        server = self.drain_server(per_tenant_limit=2)
        try:
            a1 = server.submit("a1", lambda: 1, tenant="A")
            a2 = server.submit("a2", lambda: 2, tenant="A")
            a3 = server.submit("a3", lambda: 3, tenant="A")
            b1 = server.submit("b1", lambda: 4, tenant="B")
            assert not a1.rejected and not a2.rejected
            assert a3.rejected and a3.error == "tenant queue full"
            assert not b1.rejected      # the cap is per tenant
            assert server.stats()["rejected"] == 1
        finally:
            server.close()

    def test_backpressure_sheds_lowest_and_notifies(self):
        server = self.drain_server(queue_limit=2)
        try:
            errors = []
            server.submit("pf", lambda: "pf", tenant="A",
                          priority=PRIORITY_PREFETCH,
                          on_error=errors.append)
            server.submit("t1", lambda: "t1", tenant="B",
                          priority=PRIORITY_TIER1)
            osr = server.submit("osr", lambda: "osr", tenant="C",
                                priority=PRIORITY_OSR)
            assert not osr.rejected
            assert errors == ["shed under backpressure"]
            # Nothing strictly less urgent left for another prefetch.
            pf2 = server.submit("pf2", lambda: "x", tenant="D",
                                priority=PRIORITY_PREFETCH)
            assert pf2.rejected
            s = server.stats()
            assert s["shed"] == 1 and s["rejected"] == 1
        finally:
            server.close()

    def test_shed_leader_fails_followers_too(self):
        """A shed queued leader takes its dedup followers with it: each
        is failed (never orphaned waiting on a compile that will not
        happen) and its on_error fires, so the tenants fall back."""
        server = self.drain_server(queue_limit=2)
        try:
            errors = []
            lead = server.submit("pf", lambda: "pf", tenant="A",
                                 priority=PRIORITY_PREFETCH,
                                 on_error=lambda e: errors.append(("A", e)))
            follow = server.submit("pf", lambda: "pf2", tenant="B",
                                   priority=PRIORITY_PREFETCH,
                                   on_error=lambda e: errors.append(("B", e)))
            server.submit("t1", lambda: "t1", tenant="C",
                          priority=PRIORITY_TIER1)
            osr = server.submit("osr", lambda: "osr", tenant="D",
                                priority=PRIORITY_OSR)
            assert not osr.rejected
            assert lead.finished and follow.finished
            assert follow.state == "failed"
            assert follow.wait(0.1) is None     # returns, never hangs
            assert sorted(errors) == [("A", "shed under backpressure"),
                                      ("B", "shed under backpressure")]
            assert server.stats()["shed"] == 2  # leader + follower
        finally:
            server.close()

    def test_handle_cancel_of_queued_leader_adopts_followers(self):
        """Cancelling a queued leader via its public CompileRequest
        handle (bypassing CompileServer.cancel) must not orphan its
        followers: the worker's early return re-enqueues them."""
        server = self.drain_server()
        try:
            ran = []
            lead = server.submit("k", lambda: ran.append("lead"),
                                 tenant="A")
            follow = server.submit("k", lambda: ran.append("follow") or "F",
                                   tenant="B")
            lead.cancel()               # the handle, not server.cancel()
            server.drain()
            assert ran == ["follow"]
            assert follow.wait(1.0) == "F"
        finally:
            server.close()

    def test_submit_after_close_rejected(self):
        server = self.drain_server()
        server.close()
        req = server.submit("k", lambda: 1, tenant="A")
        assert req.rejected
        assert req.error == "server closed"

    def test_close_fails_queued_requests(self):
        server = self.drain_server()
        errors = []
        req = server.submit("k", lambda: 1, tenant="A",
                            on_error=errors.append)
        server.close()
        assert req.state == "failed"
        assert errors == ["server closed"]

    def test_cancel_removes_queued_request(self):
        server = self.drain_server()
        try:
            ran = []
            server.submit("k", lambda: ran.append(1), tenant="A")
            assert server.cancel("k", tenant="A") is not None
            server.drain()
            assert ran == []
        finally:
            server.close()


# -- cross-VM dedup -----------------------------------------------------------


class TestCrossVMDedup:
    def test_async_follower_runs_after_leader(self):
        server = CompileServer(workers=0)
        try:
            calls = []
            lead = server.submit("k", lambda: calls.append("lead") or "L",
                                 tenant="A")
            follow = server.submit("k", lambda: calls.append("follow") or "F",
                                   tenant="B")
            assert follow is not lead       # own handle, own result
            server.drain()
            # The leader compiled; the follower ran afterwards (against
            # a then-warm store in real use) and got its own result.
            assert calls == ["lead", "follow"]
            assert lead.wait(1.0) == "L"
            assert follow.wait(1.0) == "F"
            assert server.stats()["dedup_followers"] == 1
        finally:
            server.close()

    def test_urgent_follower_inherits_priority(self):
        server = CompileServer(workers=0)
        try:
            order = []
            server.submit("k", lambda: order.append("k"), tenant="A",
                          priority=PRIORITY_PREFETCH)
            server.submit("x", lambda: order.append("x"), tenant="B",
                          priority=PRIORITY_TIER1)
            # B joins A's prefetch with OSR urgency: the shared compile
            # must now beat B's own tier-1 request.
            server.submit("k", lambda: order.append("k2"), tenant="B",
                          priority=PRIORITY_OSR)
            server.drain()
            assert order[0] == "k"
        finally:
            server.close()

    def test_coordinate_single_flight_across_threads(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        try:
            expensive = []
            warm = threading.Event()

            def load_or_build(tag):
                if warm.is_set():
                    return "rehydrate-%s" % tag
                expensive.append(tag)
                time.sleep(0.05)        # the "compile"
                warm.set()
                return "compile-%s" % tag

            results = {}

            def tenant(tag):
                results[tag] = server.coordinate(
                    "f" * 64, lambda: load_or_build(tag), tenant=tag)

            threads = [threading.Thread(target=tenant, args=("t%d" % i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # One compile; everyone else waited and rehydrated.
            assert len(expensive) == 1
            assert len(results) == 4
            assert server.stats()["dedup_waits"] == 3
        finally:
            server.close()

    def test_whole_fleet_compiles_once(self, tmp_path):
        """The headline property: N tenants compiling the same unit cost
        the fleet ONE compile; the rest are warm loads."""
        server = CompileServer(cache_dir=tmp_path / "cc", workers=2)
        try:
            compiles = []

            def tenant(idx):
                j = make_jit(server)
                f = j.compile_function("Main", "work")
                assert f(10) == EXPECTED_WORK_10
                compiles.append(j.telemetry.metrics.get("compiles"))
                j.close()

            threads = [threading.Thread(target=tenant, args=(i,))
                       for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert server.store.stats()["entries"] == 1
            assert sum(compiles) <= 2   # ~1; tolerate one race straggler
        finally:
            server.close()


# -- the client shim ----------------------------------------------------------


class TestServerClient:
    def test_stats_expose_server_section(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        try:
            j = make_jit(server)
            st = j.stats()["server"]
            assert st["alive"]
            assert st["tenant"] in server.stats()["tenants"]
            assert st["server"]["store"]["shards"] == 8
            j.close()
        finally:
            server.close()

    def test_async_compiler_prefers_live_server(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        j = Lancet(options=CompileOptions(compile_workers=1))
        try:
            local = j.compile_service
            assert j.async_compiler is local
            client = j.attach_compile_server(server)
            assert j.async_compiler is client
            server.close()
            # Server died: transparent fallback to the local service.
            assert j.async_compiler is local
        finally:
            server.close()
            j.close()

    def test_submit_falls_back_to_local_service_when_dead(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        j = Lancet(options=CompileOptions(compile_workers=1))
        try:
            client = j.attach_compile_server(server)
            server.close()
            req = client.submit("k", lambda: "local", tenant="x")
            assert req.wait(5.0) == "local"
            assert client.fallbacks == 1
            assert client.stats()["fallbacks"] == 1
        finally:
            server.close()
            j.close()

    def test_submit_rejects_when_dead_and_no_local(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        j = make_jit(server)
        server.close()
        req = j.compile_server.submit("k", lambda: 1)
        assert req.rejected
        j.close()

    def test_coordinate_runs_locally_when_dead(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        j = make_jit(server)
        server.close()
        assert j.compile_server.coordinate("a" * 64, lambda: "inline") \
            == "inline"
        j.close()

    def test_env_auto_attach(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_SERVER", str(tmp_path / "cc"))
        try:
            j = Lancet()
            assert j.compile_server is not None
            assert isinstance(j.codecache, ShardedCodeCache)
            j2 = Lancet()
            # Same directory -> same process-wide server, new tenant.
            assert j2.compile_server.server is j.compile_server.server
            j.close()
            j2.close()
        finally:
            close_shared_servers()

    def test_tier_promotion_routes_through_server(self, tmp_path):
        server = CompileServer(cache_dir=tmp_path / "cc", workers=2)
        try:
            j = make_jit(server, tier1_threshold=2, tier2_threshold=4)
            tf = j.compile_tiered("Main", "work")
            for _ in range(8):
                assert tf(10) == EXPECTED_WORK_10
            deadline = time.monotonic() + 5.0
            while tf.tier < 2 and time.monotonic() < deadline:
                tf(10)
                time.sleep(0.01)
            assert tf.tier == 2
            assert server.stats()["completed"] >= 1
            j.close()
        finally:
            server.close()


# -- prefetch fallback (satellite) --------------------------------------------


class TestPrefetchFallback:
    def test_prefetch_without_service_probes_cache(self, tmp_path):
        cache = str(tmp_path / "cc")
        j1 = make_jit(None, cache_dir=cache)
        f = j1.compile_function("Main", "work")
        assert f(10) == EXPECTED_WORK_10
        j1.close()
        # No CompileService, no server: prefetch degrades to a warm-start
        # probe and installs the cached unit synchronously.
        j2 = make_jit(None, cache_dir=cache)
        assert j2.compile_service is None and j2.compile_server is None
        hit = j2.prefetch("Main", "work")
        assert hit is not None
        assert hit(10) == EXPECTED_WORK_10
        assert j2.telemetry.metrics.get("compiles") == 0
        # The unit cache now holds it: compile_function is a pure hit.
        assert j2.compile_function("Main", "work")(10) == EXPECTED_WORK_10
        assert j2.telemetry.metrics.get("compiles") == 0
        j2.close()

    def test_prefetch_cold_miss_never_compiles(self, tmp_path):
        j = make_jit(None, cache_dir=str(tmp_path / "cc"))
        assert j.prefetch("Main", "other") is None
        assert j.telemetry.metrics.get("compiles") == 0
        j.close()

    def test_prefetch_without_any_cache_is_none(self):
        j = make_jit(None)
        assert j.codecache is None
        assert j.prefetch("Main", "work") is None
        j.close()


# -- per-kind hit/miss breakdown (satellite) ----------------------------------


class TestByKindStats:
    def test_unit_and_baseline_kinds_attributed(self, tmp_path):
        cache = str(tmp_path / "cc")
        j1 = make_jit(None, cache_dir=cache)
        j1.compile_function("Main", "work")(10)
        j1.close()
        j2 = make_jit(None, cache_dir=cache)
        j2.compile_function("Main", "work")(10)
        by_kind = j2.stats()["codecache"]["by_kind"]
        assert by_kind["unit"]["hits"] >= 1
        j2.close()
        # A cold dir shows the misses side.
        j3 = make_jit(None, cache_dir=str(tmp_path / "cold"))
        j3.compile_function("Main", "work")(10)
        by_kind = j3.stats()["codecache"]["by_kind"]
        assert by_kind["unit"]["misses"] >= 1
        j3.close()


# -- manifest prewarming ------------------------------------------------------


class TestManifest:
    def test_build_and_warm_roundtrip(self, tmp_path):
        j = make_jit(None)
        j.compile_function("Main", "work")(10)
        j.compile_function("Main", "other")(3)
        manifest = build_manifest(j)
        assert manifest["version"] == 1
        assert {(u["cls"], u["method"]) for u in manifest["units"]} == \
            {("Main", "work"), ("Main", "other")}
        assert manifest["sources"]
        j.close()

        store = ShardedCodeCache(tmp_path / "cc", telemetry=Telemetry())
        summary = warm_from_manifest(manifest, store)
        assert summary["errors"] == []
        assert summary["units"] == 2
        assert store.stats()["entries"] == 2
        # Idempotent: a second warm rehydrates, compiles nothing.
        summary2 = warm_from_manifest(manifest, store)
        assert summary2["compiled"] == 0
        assert summary2["warm_hits"] >= 2

    def test_write_manifest_and_server_warm(self, tmp_path):
        j = make_jit(None)
        j.compile_function("Main", "work")(10)
        path = tmp_path / "manifest.json"
        write_manifest(j, str(path))
        j.close()
        server = CompileServer(cache_dir=tmp_path / "cc", workers=0)
        try:
            summary = server.warm(str(path))
            assert summary["errors"] == []
            assert server.store.stats()["entries"] == 1
            # A tenant of the warmed server never compiles.
            t = make_jit(server)
            assert t.compile_function("Main", "work")(10) \
                == EXPECTED_WORK_10
            assert t.telemetry.metrics.get("compiles") == 0
            t.close()
        finally:
            server.close()

    def test_warm_collects_errors_instead_of_raising(self, tmp_path):
        bad = {"version": 1, "sources": [], "units":
               [{"cls": "Main", "method": "missing", "tier": 2}],
               "fingerprints": []}
        store = ShardedCodeCache(tmp_path / "cc")
        summary = warm_from_manifest(bad, store)
        assert summary["units"] == 0
        assert len(summary["errors"]) == 1

    def test_version_mismatch_is_an_error(self, tmp_path):
        store = ShardedCodeCache(tmp_path / "cc")
        summary = warm_from_manifest({"version": 99}, store)
        assert summary["errors"]


# -- the shared-server registry -----------------------------------------------


class TestSharedRegistry:
    def test_same_dir_same_server(self, tmp_path):
        try:
            a = shared_server(str(tmp_path / "cc"))
            b = shared_server(str(tmp_path / "cc"))
            c = shared_server(str(tmp_path / "other"))
            assert a is b
            assert a is not c
        finally:
            close_shared_servers()

    def test_closed_server_is_replaced(self, tmp_path):
        try:
            a = shared_server(str(tmp_path / "cc"))
            a.close()
            b = shared_server(str(tmp_path / "cc"))
            assert b is not a
            assert not b.closed
        finally:
            close_shared_servers()

"""Bytecode verifier.

Checks, per method:

* jump targets are in range,
* local slot indices are in range,
* the operand stack depth is consistent at every join point (a classfile
  invariant the staged interpreter relies on — it allocates one variable per
  stack slot at block entry),
* the stack never underflows and is empty-compatible at returns,
* execution cannot fall off the end of the code.

This mirrors the role of the JVM's bytecode verifier, scaled to MiniJVM.
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.errors import VerifyError


def verify_method(method):
    """Verify one method; raises :class:`VerifyError` on violations."""
    code = method.code
    if not code:
        raise VerifyError("%s: empty code" % method.qualified_name)
    last = code[-1]
    if last.op not in (Op.RET, Op.RET_VAL, Op.JUMP, Op.THROW):
        raise VerifyError("%s: execution can fall off the end"
                          % method.qualified_name)

    depth_at = {0: 0}
    worklist = [0]
    seen = set()
    while worklist:
        start = worklist.pop()
        if (start, depth_at[start]) in seen:
            continue
        seen.add((start, depth_at[start]))
        depth = depth_at[start]
        i = start
        while True:
            if i >= len(code):
                raise VerifyError("%s: fell off the end at %d"
                                  % (method.qualified_name, i))
            ins = code[i]
            _check_operand(method, i, ins)
            pops, pushes = ins.stack_effect()
            if depth < pops:
                raise VerifyError("%s: stack underflow at %d (%s)"
                                  % (method.qualified_name, i, ins))
            depth = depth - pops + pushes
            if ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
                if depth != 0:
                    raise VerifyError(
                        "%s: %d values left on stack at return (index %d)"
                        % (method.qualified_name, depth, i))
                break
            if ins.op in (Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE):
                _merge_depth(method, depth_at, ins.arg, depth, worklist)
                if ins.op is Op.JUMP:
                    break
            i += 1
            _merge_depth(method, depth_at, i, depth, worklist, enqueue=False)
    return True


def _merge_depth(method, depth_at, target, depth, worklist, enqueue=True):
    if target >= len(method.code) or target < 0:
        raise VerifyError("%s: jump target %d out of range"
                          % (method.qualified_name, target))
    if target in depth_at:
        if depth_at[target] != depth:
            raise VerifyError(
                "%s: inconsistent stack depth at %d (%d vs %d)"
                % (method.qualified_name, target, depth_at[target], depth))
    else:
        depth_at[target] = depth
        if enqueue:
            worklist.append(target)


def _check_operand(method, i, ins):
    if ins.op in (Op.LOAD, Op.STORE):
        if not isinstance(ins.arg, int) or not 0 <= ins.arg < method.num_locals:
            raise VerifyError("%s: bad local slot %r at %d"
                              % (method.qualified_name, ins.arg, i))
    elif ins.op in (Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE):
        if not isinstance(ins.arg, int):
            raise VerifyError("%s: unresolved label at %d"
                              % (method.qualified_name, i))
    elif ins.op is Op.INVOKE:
        if (not isinstance(ins.arg, tuple) or len(ins.arg) != 2
                or not isinstance(ins.arg[1], int) or ins.arg[1] < 0):
            raise VerifyError("%s: bad INVOKE operand at %d"
                              % (method.qualified_name, i))
    elif ins.op is Op.INVOKE_STATIC:
        if (not isinstance(ins.arg, tuple) or len(ins.arg) != 3
                or not isinstance(ins.arg[2], int) or ins.arg[2] < 0):
            raise VerifyError("%s: bad INVOKE_STATIC operand at %d"
                              % (method.qualified_name, i))
    elif ins.op is Op.ARRAY_LIT:
        if not isinstance(ins.arg, int) or ins.arg < 0:
            raise VerifyError("%s: bad ARRAY_LIT count at %d"
                              % (method.qualified_name, i))


def verify_class(cls):
    """Verify every method of ``cls``."""
    for m in cls.methods.values():
        verify_method(m)
    return True

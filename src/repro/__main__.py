"""Command-line interface: run, disassemble, and inspect MiniJ programs.

    python -m repro run program.mj [fn [args...]]     # interpret
    python -m repro jit program.mj fn [args...]       # compile + run
    python -m repro dis program.mj                    # show bytecode
    python -m repro dump program.mj fn                # show generated code
    python -m repro analyze program.mj [fn ...]       # JIT lint report
    python -m repro validate program.mj [fn ...]      # soundness report
    python -m repro serve --cache-dir DIR             # compile-server ops

``analyze`` runs the collect-mode IR analysis pipeline (verifier, taint,
checkNoAlloc, plus informational findings from the optimization passes)
over the named functions — every top-level function when none are named —
and exits nonzero when any error-severity finding is reported.
``analyze --delite`` narrows the report to the parallel-safety verdicts
(:mod:`repro.analysis.parsafe`) and renders them as a per-op table —
verdict, deciding checker, and blame provenance for every Delite launch
— so ``--strict`` then gates exactly on "every op proven parallel".

``validate`` runs the same pipeline but reports only the speculation-
soundness checkers (IR verifier, per-pass translation validator,
deopt-state verifier): each tier-2 pass is validated against a
simulation relation and every guard/side-exit's deopt state is checked
against bytecode-level liveness. Both subcommands accept ``--strict``
(exit nonzero on *any* non-info finding, for CI gating) and ``--json``.

``run`` and ``jit`` accept ``--jit-stats`` (print a JSON stats summary to
stderr after execution) and ``--trace-jit out.jsonl`` (record JIT telemetry
events and export them as JSONL). ``jit`` also accepts ``--analyze``
(print the JIT lint report — collect-mode IR analysis — to stderr),
``--tier`` (fixed Tier 1/2 compile, or ``--tier 0`` to enter through the
tier ladder), ``--hot-threshold`` and ``--repeat`` (drive promotions);
the ``--jit-stats`` summary includes the per-tier breakdown (with
per-tier compile-latency aggregates under ``tiers.latency``). Tier-1
compiles take the template baseline derived from the interpreter's
handler table; ``--no-baseline`` (or ``REPRO_BASELINE=0``) forces the
staged Tier-1 pipeline instead, for A/B comparisons. The
persistent code cache and async compile service are reachable via
``--cache-dir DIR``, ``--no-persist``, and ``--compile-workers N``.
``jit`` can also join a compile-server fleet: ``--compile-server DIR``
attaches the VM as a tenant of the process-wide server over DIR's
sharded store (same as ``REPRO_COMPILE_SERVER=DIR``), and
``--export-manifest PATH`` writes the run's warm-start manifest for
``repro serve --warm``. ``serve`` manages the server-side store:
``repro serve --cache-dir DIR --warm manifest.json`` replays a recorded
manifest so a fresh fleet starts warm, and ``repro serve --cache-dir
DIR --stats`` prints the sharded store's stats as JSON.
Both ``run`` and ``jit`` accept ``--trace-tier`` to enable Tier T (hot
loop back-edges record linear traces; the ``--jit-stats`` summary then
includes a ``traces`` breakdown: recordings, aborts, side exits,
stitched bridges, blacklists).

Arguments are parsed as Python literals (42, 3.5, "text", True).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro import Lancet
from repro.bytecode.disassembler import disassemble_class
from repro.frontend.compiler import compile_source


def _parse_arg(text):
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _options_from(args):
    """Build CompileOptions from the cache/worker flags, when present."""
    from repro.compiler.options import CompileOptions
    options = CompileOptions()
    if getattr(args, "cache_dir", None):
        options.cache_dir = args.cache_dir
    if getattr(args, "no_persist", False):
        options.persist = False
    if getattr(args, "compile_workers", None):
        options.compile_workers = args.compile_workers
    if getattr(args, "trace_tier", False):
        options.trace_tier = True
    if getattr(args, "no_baseline", False):
        options.baseline = False
    return options


def _load(path, module, options=None):
    with open(path) as f:
        source = f.read()
    jit = Lancet(options=options)
    jit.load(source, module=module)
    return jit


def _telemetry_begin(jit, args):
    if getattr(args, "trace_jit", None):
        jit.telemetry.enable_trace()


def _telemetry_end(jit, args):
    status = 0
    trace_path = getattr(args, "trace_jit", None)
    if trace_path:
        try:
            n = jit.telemetry.export_jsonl(trace_path)
        except OSError as e:
            print("error: cannot write trace to %s: %s" % (trace_path, e),
                  file=sys.stderr)
            status = 1
        else:
            print("wrote %d events to %s" % (n, trace_path), file=sys.stderr)
    if getattr(args, "jit_stats", False):
        print(json.dumps(jit.stats(), indent=2, sort_keys=True,
                         default=str), file=sys.stderr)
    return status


def cmd_run(args):
    jit = _load(args.program, args.module, options=_options_from(args))
    jit.vm._output_mode = "stdout"
    _telemetry_begin(jit, args)
    result = jit.vm.call(args.module, args.fn,
                         [_parse_arg(a) for a in args.args])
    if result is not None:
        print(result)
    return _telemetry_end(jit, args)


def cmd_jit(args):
    jit = _load(args.program, args.module, options=_options_from(args))
    if getattr(args, "compile_server", None):
        from repro.server import shared_server
        jit.attach_compile_server(shared_server(args.compile_server))
    jit.vm._output_mode = "stdout"
    if args.hot_threshold is not None:
        # In-place so the per-VM TierPolicy (which reads jit.options)
        # sees the new thresholds too.
        jit.options.tier1_threshold = args.hot_threshold
        jit.options.tier2_threshold = max(args.hot_threshold + 1,
                                          args.hot_threshold * 4)
    _telemetry_begin(jit, args)
    if args.analyze:
        print(jit.analyze(args.module, args.fn).render(), file=sys.stderr)
    if args.tier == 0:
        # Tier 0 entry: start interpreted with counters and let the tier
        # ladder promote (use --repeat to cross the thresholds).
        compiled = jit.compile_tiered(args.module, args.fn)
    elif args.tier in (1, 2):
        from repro.pipeline import tier_options
        compiled = jit.compile_function(
            args.module, args.fn,
            options=tier_options(jit.options, args.tier))
    else:
        compiled = jit.compile_function(args.module, args.fn)
    call_args = [_parse_arg(a) for a in args.args]
    result = None
    for _ in range(max(1, args.repeat)):
        result = compiled(*call_args)
    if result is not None:
        print(result)
    if args.show_code:
        source = getattr(compiled, "source", None)
        if source is None:   # a TieredFunction still in Tier 0
            source = getattr(getattr(compiled, "compiled", None),
                             "source", "# still interpreted (tier 0)")
        print("\n--- generated code ---", file=sys.stderr)
        print(source, file=sys.stderr)
    if getattr(args, "export_manifest", None):
        jit.export_manifest(args.export_manifest)
        print("wrote manifest to %s" % args.export_manifest,
              file=sys.stderr)
    status = _telemetry_end(jit, args)
    # Drain the compile-worker pool and flush pending persistent stores.
    jit.close()
    return status


def cmd_serve(args):
    """Server-side store operations: create/warm/inspect the sharded
    cache a fleet shares. (Tenants in this process attach with
    ``--compile-server DIR`` / ``REPRO_COMPILE_SERVER=DIR``; across
    processes, fleets share through the store on disk.)"""
    from repro.server import CompileServer
    from repro.server.shards import DEFAULT_SHARDS
    server = CompileServer(cache_dir=args.cache_dir,
                           shards=args.shards or DEFAULT_SHARDS,
                           workers=args.workers)
    status = 0
    try:
        if args.warm:
            summary = server.warm(args.warm)
            print(json.dumps(summary, indent=2, sort_keys=True),
                  file=sys.stderr)
            if summary["errors"]:
                status = 1
        if args.stats or not args.warm:
            print(json.dumps(server.stats(), indent=2, sort_keys=True,
                             default=str))
    finally:
        server.close()
    return status


def _analysis_names(args):
    """The functions to analyze: those named, else all top-level ones."""
    if args.fns:
        return args.fns
    with open(args.program) as f:
        classes = compile_source(f.read(), module=args.module)
    by_name = {c.name: c for c in classes}
    module_cls = by_name.get(args.module)
    if module_cls is None:
        return None
    return sorted(module_cls.methods)


# Diagnostic kinds reported by the speculation-soundness checkers; the
# `validate` subcommand filters its report to these.
_SOUNDNESS_KINDS = ("verify", "validate", "deoptcheck", "compile")


def _render_delite_table(unit, findings):
    """Per-op parallel-safety verdict table for one analyzed unit."""
    rows = [d.data for d in findings if d.data]
    proven = sum(1 for r in rows if r.get("status") == "ProvenParallel")
    lines = ["Delite parallel-safety for %s: %d op(s), %d proven parallel"
             % (unit or "<unit>", len(rows), proven)]
    if not rows:
        return lines[0]
    cols = ("sym", "op_name", "op_kind", "status", "checker")
    heads = ("sym", "op", "kind", "verdict", "checker")
    widths = [max(len(h), max(len(str(r.get(c, ""))) for r in rows))
              for c, h in zip(cols, heads)]
    fmt = "  " + "  ".join("%%-%ds" % w for w in widths) + "  %s"
    lines.append(fmt % (heads + ("blame",)))
    for r in rows:
        lines.append(fmt % tuple([str(r.get(c, "")) for c in cols]
                                 + [r.get("blame", "")]))
    return "\n".join(lines)


def _run_analysis(args, kinds=None):
    jit = _load(args.program, args.module)
    delite = getattr(args, "delite", False)
    if delite:
        # Delite ops come from the OptiML accelerator macros; load the
        # library and install them so the bundled apps analyze as they
        # compile.
        from repro.optiml import load_optiml
        load_optiml(jit)
    names = _analysis_names(args)
    if names is None:
        print("error: no class %s in %s" % (args.module, args.program),
              file=sys.stderr)
        return 2
    strict = getattr(args, "strict", False)
    status = 0
    for fn in names:
        diag = jit.analyze(args.module, fn)
        if kinds is not None:
            diag.findings = [d for d in diag.findings if d.kind in kinds]
        if args.json:
            print(json.dumps(diag.to_dict(), indent=2, sort_keys=True))
        elif delite:
            print(_render_delite_table(diag.unit or fn, diag.findings))
        else:
            print(diag.render())
        if diag.errors():
            status = 1
        elif strict and any(d.severity != "info" for d in diag.findings):
            status = 1
    return status


def cmd_analyze(args):
    if getattr(args, "delite", False):
        # Narrow to the parsafe verdicts: --strict then means "exit
        # nonzero unless every Delite op is ProvenParallel".
        return _run_analysis(args, kinds=("parsafe",))
    return _run_analysis(args)


def cmd_validate(args):
    return _run_analysis(args, kinds=_SOUNDNESS_KINDS)


def cmd_dis(args):
    with open(args.program) as f:
        source = f.read()
    for cls in compile_source(source, module=args.module):
        print(disassemble_class(cls))
        print()
    return 0


def cmd_dump(args):
    jit = _load(args.program, args.module)
    compiled = jit.compile_function(args.module, args.fn)
    print(compiled.source)
    if compiled.warnings:
        print("\n# warnings:", file=sys.stderr)
        for w in compiled.warnings:
            print("#   %s" % w, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Lancet-on-MiniJVM toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="interpret a guest program")
    p.add_argument("program")
    p.add_argument("fn", nargs="?", default="main")
    p.add_argument("args", nargs="*")
    p.add_argument("--module", default="Main")
    p.add_argument("--jit-stats", action="store_true",
                   help="print a JSON stats summary to stderr")
    p.add_argument("--trace-jit", metavar="PATH",
                   help="record JIT events; export as JSONL to PATH")
    p.add_argument("--trace-tier", action="store_true",
                   help="enable Tier T: hot loop back-edges record "
                        "linear traces that compile through the full "
                        "pass pipeline (stats land in --jit-stats)")
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("jit", help="compile a function, then run it")
    p.add_argument("program")
    p.add_argument("fn")
    p.add_argument("args", nargs="*")
    p.add_argument("--module", default="Main")
    p.add_argument("--tier", type=int, choices=(0, 1, 2), default=None,
                   help="compile at a fixed tier (1 = quick, 2 = full), "
                        "or 0 to start interpreted and promote through "
                        "the tier ladder")
    p.add_argument("--hot-threshold", type=int, default=None,
                   metavar="N",
                   help="invocations before Tier-1 promotion (Tier-2 "
                        "threshold scales to 4x)")
    p.add_argument("--repeat", type=int, default=1, metavar="K",
                   help="call the function K times (lets tiered runs "
                        "cross promotion thresholds)")
    p.add_argument("--show-code", action="store_true")
    p.add_argument("--analyze", action="store_true",
                   help="print the JIT lint report (collect-mode IR "
                        "analysis) to stderr before running")
    p.add_argument("--jit-stats", action="store_true",
                   help="print a JSON stats summary to stderr")
    p.add_argument("--trace-jit", metavar="PATH",
                   help="record JIT events; export as JSONL to PATH")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="persistent code cache directory: generated code "
                        "is stored on exit and reloaded on warm starts")
    p.add_argument("--no-persist", action="store_true",
                   help="disable the persistent code cache even when "
                        "--cache-dir is given")
    p.add_argument("--compile-workers", type=int, default=0, metavar="N",
                   help="background compile workers (0 = compile "
                        "synchronously); tier promotions become async")
    p.add_argument("--trace-tier", action="store_true",
                   help="enable Tier T: hot loop back-edges record "
                        "linear traces that compile through the full "
                        "pass pipeline (stats land in --jit-stats)")
    p.add_argument("--no-baseline", action="store_true",
                   help="route Tier-1 compiles through the staged "
                        "pipeline instead of the template baseline "
                        "(A/B comparisons; also REPRO_BASELINE=0)")
    p.add_argument("--compile-server", metavar="DIR", default=None,
                   help="attach to the process-wide compile server over "
                        "DIR's sharded store (also REPRO_COMPILE_SERVER)")
    p.add_argument("--export-manifest", metavar="PATH", default=None,
                   help="after the run, write the warm-start manifest "
                        "(loaded sources + compiled units) for "
                        "'repro serve --warm'")
    p.set_defaults(handler=cmd_jit)

    p = sub.add_parser("serve",
                       help="compile-server store ops: create, prewarm "
                            "from a manifest, inspect")
    p.add_argument("--cache-dir", metavar="DIR", required=True,
                   help="the server's sharded store directory")
    p.add_argument("--warm", metavar="MANIFEST", default=None,
                   help="replay a recorded manifest into the store so a "
                        "fresh fleet starts warm")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="shard count (default 8)")
    p.add_argument("--workers", type=int, default=0, metavar="N",
                   help="background compile workers for the server")
    p.add_argument("--stats", action="store_true",
                   help="print the server/store stats as JSON")
    p.set_defaults(handler=cmd_serve)

    p = sub.add_parser("analyze",
                       help="JIT lint: collect-mode IR analysis report")
    p.add_argument("program")
    p.add_argument("fns", nargs="*", metavar="fn",
                   help="functions to analyze (default: all top-level)")
    p.add_argument("--module", default="Main")
    p.add_argument("--json", action="store_true",
                   help="emit each report as JSON instead of text")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on any non-info finding")
    p.add_argument("--delite", action="store_true",
                   help="report only the Delite parallel-safety verdicts, "
                        "as a per-op table with checker/blame provenance")
    p.set_defaults(handler=cmd_analyze)

    p = sub.add_parser("validate",
                       help="speculation-soundness report: per-pass "
                            "translation validation + deopt-state checks")
    p.add_argument("program")
    p.add_argument("fns", nargs="*", metavar="fn",
                   help="functions to validate (default: all top-level)")
    p.add_argument("--module", default="Main")
    p.add_argument("--json", action="store_true",
                   help="emit each report as JSON instead of text")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on any non-info finding")
    p.set_defaults(handler=cmd_validate)

    p = sub.add_parser("dis", help="disassemble compiled bytecode")
    p.add_argument("program")
    p.add_argument("--module", default="Main")
    p.set_defaults(handler=cmd_dis)

    p = sub.add_parser("dump", help="print the JIT's generated code")
    p.add_argument("program")
    p.add_argument("fn")
    p.add_argument("--module", default="Main")
    p.set_defaults(handler=cmd_dump)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

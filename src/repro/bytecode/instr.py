"""Instruction representation."""

from __future__ import annotations

from repro.bytecode.opcodes import Op, BRANCH_OPS, STACK_EFFECT


class Instr:
    """One MiniJVM instruction: an opcode and an optional operand.

    Operands by opcode:

    * ``CONST``: the literal value
    * ``LOAD``/``STORE``: local slot index
    * ``JUMP``/``JIF_*``: target instruction index
    * ``NEW``/``INSTANCEOF``: class name
    * ``GETFIELD``/``PUTFIELD``: field name
    * ``INVOKE``: ``(method_name, argc)``
    * ``INVOKE_STATIC``: ``(class_name, method_name, argc)``
    * ``ARRAY_LIT``: element count
    """

    __slots__ = ("op", "arg", "line")

    def __init__(self, op, arg=None, line=None):
        self.op = op
        self.arg = arg
        self.line = line  # MiniJ source line, for diagnostics

    def is_branch(self):
        return self.op in BRANCH_OPS

    def stack_effect(self):
        """Return ``(pops, pushes)`` for this instruction."""
        if self.op is Op.INVOKE:
            __, argc = self.arg
            return (argc + 1, 1)
        if self.op is Op.INVOKE_STATIC:
            __, __, argc = self.arg
            return (argc, 1)
        if self.op is Op.ARRAY_LIT:
            return (self.arg, 1)
        return STACK_EFFECT[self.op]

    def __repr__(self):
        if self.arg is None:
            return "Instr(%s)" % self.op.name
        return "Instr(%s, %r)" % (self.op.name, self.arg)

    def __eq__(self, other):
        return (isinstance(other, Instr) and self.op == other.op
                and self.arg == other.arg)

    def __hash__(self):
        arg = self.arg
        if isinstance(arg, list):
            arg = tuple(arg)
        return hash((self.op, arg))

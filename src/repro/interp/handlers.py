"""Per-opcode handlers: the single source of truth for guest semantics.

Each MiniJVM opcode is implemented by one small function over the shared
frame protocol (``push``/``pop``/``locals``/``bci``). The interpreter's
dispatch loop indexes :data:`DISPATCH` by opcode; the Druid-style
baseline compiler (:mod:`repro.baseline.templates`) walks the *same*
:data:`OPSPECS` table to template-compile each opcode to CPython
bytecode that calls the *same* :mod:`repro.runtime.ops` helpers. One
definition of the semantics, two executions of it — the property the
paper's tier ladder (and our OSR/deopt machinery) relies on.

Handler contract::

    handler(vm, frame, arg) -> None | InterpreterFrame | _Return

* ``None`` — stay on the current frame (``frame.bci`` already advanced
  by the loop, branch handlers overwrite it);
* an ``InterpreterFrame`` — switch to it (a callee frame on INVOKE, the
  parent frame on RET);
* ``_Return(value)`` — the root frame returned: the loop is done.

Loop-owned concerns stay out of the handlers: the instruction budget,
the Tier-T recording hook, and loop back-edge profiling/OSR (the loop
inspects ``Op.JUMP`` results itself so the hot non-profiling path pays
nothing for them).
"""

from __future__ import annotations

from repro.bytecode.opcodes import Op
from repro.runtime import ops
from repro.runtime.objects import new_instance


class _Return:
    """Signal: the root frame returned ``value``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


# -- the declarative value-op table -------------------------------------------


class OpSpec:
    """Declarative semantics of one value opcode: the shared runtime
    helper implementing it, its stack arity, and whether the
    instruction's immediate argument is appended to the helper call
    (operands are passed bottom-to-top, immediate last). Both the
    interpreter handlers and the baseline bytecode templates are
    generated from this table."""

    __slots__ = ("op", "helper", "pops", "pushes", "imm")

    def __init__(self, op, helper, pops, pushes, imm=False):
        self.op = op
        self.helper = helper
        self.pops = pops
        self.pushes = pushes
        self.imm = imm


OPSPECS = {
    spec.op: spec for spec in [
        OpSpec(Op.ADD, ops.guest_add, 2, 1),
        OpSpec(Op.SUB, ops.guest_sub, 2, 1),
        OpSpec(Op.MUL, ops.guest_mul, 2, 1),
        OpSpec(Op.DIV, ops.guest_div, 2, 1),
        OpSpec(Op.MOD, ops.guest_mod, 2, 1),
        OpSpec(Op.EQ, ops.guest_eq, 2, 1),
        OpSpec(Op.NE, ops.guest_ne, 2, 1),
        OpSpec(Op.LT, ops.guest_lt, 2, 1),
        OpSpec(Op.LE, ops.guest_le, 2, 1),
        OpSpec(Op.GT, ops.guest_gt, 2, 1),
        OpSpec(Op.GE, ops.guest_ge, 2, 1),
        OpSpec(Op.NEG, ops.guest_neg, 1, 1),
        OpSpec(Op.NOT, ops.guest_not, 1, 1),
        OpSpec(Op.ALOAD, ops.guest_aload, 2, 1),
        OpSpec(Op.ASTORE, ops.guest_astore, 3, 0),
        OpSpec(Op.ALEN, ops.guest_alen, 1, 1),
        OpSpec(Op.NEW_ARRAY, ops.guest_newarray, 1, 1),
        OpSpec(Op.GETFIELD, ops.guest_getfield, 1, 1, imm=True),
        OpSpec(Op.PUTFIELD, ops.guest_setfield, 2, 0, imm=True),
        OpSpec(Op.INSTANCEOF, ops.guest_instanceof, 1, 1, imm=True),
        OpSpec(Op.THROW, ops.guest_throw, 1, 0),
    ]
}


def _handler_2_1(helper):
    def handler(vm, frame, arg):
        b = frame.pop()
        a = frame.pop()
        frame.push(helper(a, b))
    return handler


def _handler_1_1(helper):
    def handler(vm, frame, arg):
        frame.push(helper(frame.pop()))
    return handler


def _handler_1_0(helper):
    def handler(vm, frame, arg):
        helper(frame.pop())
    return handler


def _handler_3_0(helper):
    def handler(vm, frame, arg):
        v = frame.pop()
        i = frame.pop()
        a = frame.pop()
        helper(a, i, v)
    return handler


def _handler_1_1_imm(helper):
    def handler(vm, frame, arg):
        frame.push(helper(frame.pop(), arg))
    return handler


def _handler_2_0_imm(helper):
    def handler(vm, frame, arg):
        v = frame.pop()
        a = frame.pop()
        helper(a, v, arg)
    return handler


_HANDLER_FACTORIES = {
    (2, 1, False): _handler_2_1,
    (1, 1, False): _handler_1_1,
    (1, 0, False): _handler_1_0,
    (3, 0, False): _handler_3_0,
    (1, 1, True): _handler_1_1_imm,
    (2, 0, True): _handler_2_0_imm,
}


def spec_handler(spec):
    """Build the interpreter handler for one :class:`OpSpec`."""
    return _HANDLER_FACTORIES[(spec.pops, spec.pushes, spec.imm)](spec.helper)


# -- constants, locals, stack shuffling ---------------------------------------


def _op_const(vm, frame, arg):
    frame.push(arg)


def _op_load(vm, frame, arg):
    frame.push(frame.locals[arg])


def _op_store(vm, frame, arg):
    frame.locals[arg] = frame.pop()


def _op_pop(vm, frame, arg):
    frame.pop()


def _op_dup(vm, frame, arg):
    frame.push(frame.peek())


def _op_swap(vm, frame, arg):
    a = frame.pop()
    b = frame.pop()
    frame.push(a)
    frame.push(b)


def _op_array_lit(vm, frame, arg):
    vals = [frame.pop() for __ in range(arg)]
    vals.reverse()
    frame.push(vals)


# -- control flow -------------------------------------------------------------


def _op_jump(vm, frame, arg):
    frame.bci = arg


def _op_jif_true(vm, frame, arg):
    if frame.pop():
        frame.bci = arg


def _op_jif_false(vm, frame, arg):
    if not frame.pop():
        frame.bci = arg


def _return_to_parent(frame, value):
    parent = frame.parent
    if parent is None:
        return _Return(value)
    parent.push(value)
    return parent


def _op_ret(vm, frame, arg):
    return _return_to_parent(frame, None)


def _op_ret_val(vm, frame, arg):
    return _return_to_parent(frame, frame.pop())


# -- objects and calls --------------------------------------------------------


def _op_new(vm, frame, arg):
    frame.push(new_instance(vm.linker.resolve_class(arg)))


def _op_invoke(vm, frame, arg):
    name, argc = arg
    args = [frame.pop() for __ in range(argc)]
    args.reverse()
    receiver = frame.pop()
    return vm._invoke_virtual(frame, receiver, name, args)


def _op_invoke_static(vm, frame, arg):
    cls_name, name, argc = arg
    args = [frame.pop() for __ in range(argc)]
    args.reverse()
    return vm._invoke_static(frame, cls_name, name, args)


# -- the dispatch table -------------------------------------------------------


def _build_dispatch():
    table = [None] * (max(Op) + 1)
    for spec in OPSPECS.values():
        table[spec.op] = spec_handler(spec)
    table[Op.CONST] = _op_const
    table[Op.LOAD] = _op_load
    table[Op.STORE] = _op_store
    table[Op.POP] = _op_pop
    table[Op.DUP] = _op_dup
    table[Op.SWAP] = _op_swap
    table[Op.ARRAY_LIT] = _op_array_lit
    table[Op.JUMP] = _op_jump
    table[Op.JIF_TRUE] = _op_jif_true
    table[Op.JIF_FALSE] = _op_jif_false
    table[Op.RET] = _op_ret
    table[Op.RET_VAL] = _op_ret_val
    table[Op.NEW] = _op_new
    table[Op.INVOKE] = _op_invoke
    table[Op.INVOKE_STATIC] = _op_invoke_static
    return table


#: handler per opcode, indexed by ``int(op)``; ``None`` = bad opcode.
DISPATCH = _build_dispatch()

"""The asynchronous CompileService: a bounded background compiler.

Compilation must never block the hot path, and a broken compiler must
never take execution down with it — the interpreter is always a correct
fallback. The service enforces both:

* **priority queue** — OSR requests (a loop is burning *now*) beat
  tier-2 promotions beat tier-1 quick compiles beat speculative
  prefetch;
* **in-flight dedup** — a second submission for a queued or running key
  returns the existing request (the general form of the ``make_hot``
  in-flight set from PR 3);
* **backpressure** — the queue is bounded; when full, the lowest-
  priority queued request is shed to admit higher-priority work, and
  work at or below the floor is rejected outright. ``submit`` never
  raises and never blocks;
* **per-request timeout** — a request not *finished* by its deadline
  fails for its waiters, and a worker result landing after the deadline
  is discarded (the completion callback is not run);
* **retry with backoff** — transient (non-compiler) errors requeue with
  exponential delay; :class:`~repro.errors.CompilationError` is
  permanent and fails immediately;
* **failure blacklisting** — a key that keeps failing is refused at
  submit time, so a poisoned unit cannot monopolize the workers.

The queue depth is exported as the ``compileq.depth`` gauge; each state
transition emits a ``compileq.*`` event.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.errors import CompilationError

#: Priorities, best first. Lower value = more urgent.
PRIORITY_OSR = 0        # a hot loop is waiting mid-execution
PRIORITY_TIER2 = 1      # tier-2 optimizing promotion
PRIORITY_TIER1 = 2      # tier-1 quick compile
PRIORITY_PREFETCH = 3   # speculative warm-up

_PRIORITY_NAMES = {PRIORITY_OSR: "osr", PRIORITY_TIER2: "tier2",
                   PRIORITY_TIER1: "tier1", PRIORITY_PREFETCH: "prefetch"}

QUEUED, RUNNING, DONE, FAILED, CANCELLED, REJECTED = (
    "queued", "running", "done", "failed", "cancelled", "rejected")


class CompileRequest:
    """A handle on one submitted compilation. ``wait()`` for the result,
    ``cancel()`` to drop interest; terminal states: done | failed |
    cancelled | rejected."""

    def __init__(self, key, fn, priority, on_complete=None, on_error=None,
                 timeout=None, max_retries=2):
        self.key = key
        self.fn = fn
        self.priority = priority
        self.on_complete = on_complete
        self.on_error = on_error
        self.max_retries = max_retries
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        self.state = QUEUED
        self.result = None
        self.error = None
        self.attempts = 0
        self.not_before = 0.0       # retry backoff gate
        self._event = threading.Event()

    # -- caller API ------------------------------------------------------------

    @property
    def rejected(self):
        return self.state == REJECTED

    @property
    def finished(self):
        return self._event.is_set()

    def cancel(self):
        """Drop interest: a queued request never runs; a running one has
        its result discarded. Completion callbacks are not invoked."""
        if not self._event.is_set() or self.state == RUNNING:
            self.state = CANCELLED
            self._event.set()

    def wait(self, timeout=None):
        """Block until the request reaches a terminal state (or
        ``timeout`` elapses); returns the compiled result or ``None``."""
        self._event.wait(timeout)
        return self.result if self.state == DONE else None

    # -- service internals -----------------------------------------------------

    def _finish(self, state, result=None, error=None):
        self.state = state
        self.result = result
        self.error = error
        self._event.set()

    def __repr__(self):
        return "<CompileRequest %r %s prio=%s>" % (
            self.key, self.state, _PRIORITY_NAMES.get(self.priority,
                                                      self.priority))


class CompileService:
    """A bounded worker pool draining a priority queue of compiles."""

    def __init__(self, workers=1, queue_limit=64, telemetry=None,
                 max_retries=2, retry_backoff=0.02, blacklist_after=3,
                 default_timeout=None):
        self.workers = max(1, workers)
        self.queue_limit = queue_limit
        self.telemetry = telemetry
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.blacklist_after = blacklist_after
        self.default_timeout = default_timeout
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._heap = []             # (priority, seq, request)
        self._seq = itertools.count()
        self._inflight = {}         # key -> CompileRequest (queued|running)
        self._failures = {}         # key -> permanent-failure count
        self._threads = []
        self._closed = False
        self.completed = 0
        self.failed = 0
        self.shed = 0
        self.rejected = 0
        self.retries = 0
        self.timeouts = 0

    # -- telemetry -------------------------------------------------------------

    def _event(self, kind, **data):
        tel = self.telemetry
        if tel is not None:
            tel.inc(kind)
            tel.record(kind, **data)

    def _gauge_depth_locked(self):
        tel = self.telemetry
        if tel is not None:
            tel.set_gauge("compileq.depth", len(self._heap))

    # -- submission ------------------------------------------------------------

    def submit(self, key, fn, priority=PRIORITY_TIER1, on_complete=None,
               on_error=None, timeout=None, max_retries=None):
        """Enqueue ``fn`` (a zero-argument compile callable) under
        ``key``. Returns a :class:`CompileRequest`; **never raises and
        never blocks**. Check ``request.rejected`` for backpressure or
        blacklist refusal — the caller's fallback is the interpreter.
        """
        if timeout is None:
            timeout = self.default_timeout
        if max_retries is None:
            max_retries = self.max_retries
        req = CompileRequest(key, fn, priority, on_complete=on_complete,
                             on_error=on_error, timeout=timeout,
                             max_retries=max_retries)
        with self._cv:
            if self._closed:
                req._finish(REJECTED, error="service closed")
                return req
            existing = self._inflight.get(key)
            if existing is not None:
                # In-flight dedup: one compile per key, everyone shares it.
                self._event("compileq.dedup", key=repr(key))
                return existing
            if self._failures.get(key, 0) >= self.blacklist_after:
                self.rejected += 1
                req._finish(REJECTED, error="blacklisted")
                self._event("compileq.blacklist", key=repr(key),
                            failures=self._failures[key])
                return req
            victim = None
            if (self.queue_limit is not None
                    and len(self._heap) >= self.queue_limit):
                victim = self._shed_for(priority)
                if victim is None:
                    self.rejected += 1
                    req._finish(REJECTED, error="queue full")
                    self._event("compileq.reject", key=repr(key),
                                priority=_PRIORITY_NAMES.get(priority,
                                                             priority))
                    return req
            self._inflight[key] = req
            heapq.heappush(self._heap, (priority, next(self._seq), req))
            self._gauge_depth_locked()
            self._event("compileq.submit", key=repr(key),
                        priority=_PRIORITY_NAMES.get(priority, priority),
                        depth=len(self._heap))
            self._ensure_workers()
            self._cv.notify()
        if victim is not None:
            # Outside the lock: the victim's owner must hear about the
            # shed (a tier promotion that is never notified stays
            # "pending" forever and the function can't re-request it).
            self._notify_error(victim)
        return req

    def _shed_for(self, priority):
        """Backpressure (caller holds the lock): drop the single lowest-
        priority queued request iff it is strictly less urgent than the
        incoming one. Returns the victim (whose ``on_error`` the caller
        must fire once outside the lock) when space was made."""
        victim_idx = None
        worst = priority
        for idx, (prio, _seq, req) in enumerate(self._heap):
            if req.finished:
                continue
            if prio > worst:
                worst = prio
                victim_idx = idx
        if victim_idx is None:
            return None
        _prio, _seq, victim = self._heap.pop(victim_idx)
        heapq.heapify(self._heap)
        self._inflight.pop(victim.key, None)
        victim._finish(FAILED, error="shed under backpressure")
        self.shed += 1
        self._gauge_depth_locked()
        self._event("compileq.shed", key=repr(victim.key),
                    priority=_PRIORITY_NAMES.get(_prio, _prio))
        return victim

    def cancel(self, key):
        """Cancel the in-flight request for ``key``, if any."""
        with self._cv:
            req = self._inflight.pop(key, None)
        if req is not None:
            req.cancel()
        return req

    # -- workers ---------------------------------------------------------------

    def _ensure_workers(self):
        while len(self._threads) < self.workers:
            t = threading.Thread(target=self._worker_loop, daemon=True,
                                 name="lancet-compile-%d"
                                 % len(self._threads))
            self._threads.append(t)
            t.start()

    def _pop_ready_locked(self):
        """Next runnable request, or (None, wait_seconds)."""
        now = time.monotonic()
        delayed = None
        while self._heap:
            prio, seq, req = self._heap[0]
            if req.finished:            # cancelled/shed while queued
                heapq.heappop(self._heap)
                self._inflight.pop(req.key, None)
                continue
            if req.not_before > now:
                # Head is backing off; look if anything else is ready.
                ready = [(p, s, r) for (p, s, r) in self._heap
                         if r.not_before <= now and not r.finished]
                if ready:
                    best = min(ready)
                    self._heap.remove(best)
                    heapq.heapify(self._heap)
                    self._gauge_depth_locked()
                    return best[2], None
                delayed = min(r.not_before for (_p, _s, r) in self._heap
                              if not r.finished) - now
                return None, max(delayed, 0.001)
            heapq.heappop(self._heap)
            self._gauge_depth_locked()
            return req, None
        return None, None

    def _worker_loop(self):
        while True:
            with self._cv:
                req, delay = None, None
                while req is None:
                    if self._closed:
                        return
                    req, delay = self._pop_ready_locked()
                    if req is None:
                        self._cv.wait(delay)
            self._run_one(req)

    def _run_one(self, req):
        now = time.monotonic()
        if req.deadline is not None and now > req.deadline:
            # Expired before a worker could start it.
            self._finish_failed(req, "timed out in queue", timeout=True)
            return
        if req.finished:                # cancelled after pop
            with self._cv:
                self._inflight.pop(req.key, None)
            return
        req.state = RUNNING
        req.attempts += 1
        t0 = time.perf_counter()
        try:
            result = req.fn()
        except CompilationError as exc:
            self._retry_or_fail(req, exc, permanent=True)
            return
        except Exception as exc:
            self._retry_or_fail(req, exc, permanent=False)
            return
        elapsed = time.perf_counter() - t0
        tel = self.telemetry
        if tel is not None:
            tel.observe("compileq.run", elapsed)
        with self._cv:
            self._inflight.pop(req.key, None)
        if req.state == CANCELLED:
            self._event("compileq.discard", key=repr(req.key),
                        reason="cancelled")
            return
        if req.deadline is not None and time.monotonic() > req.deadline:
            # Finished, but the caller's deadline passed: the result is
            # discarded, not installed behind the caller's back.
            self._finish_failed(req, "deadline exceeded", timeout=True,
                                already_unlinked=True)
            return
        req._finish(DONE, result=result)
        self.completed += 1
        self._event("compileq.done", key=repr(req.key), seconds=elapsed,
                    attempts=req.attempts)
        if req.on_complete is not None:
            try:
                req.on_complete(result)
            except Exception as exc:         # callbacks must not kill workers
                self._event("compileq.callback_error", key=repr(req.key),
                            error=str(exc))

    def _retry_or_fail(self, req, exc, permanent):
        if not permanent and req.attempts <= req.max_retries:
            self.retries += 1
            req.state = QUEUED
            req.not_before = (time.monotonic()
                              + self.retry_backoff * (2 ** (req.attempts - 1)))
            self._event("compileq.retry", key=repr(req.key),
                        attempt=req.attempts, error=str(exc))
            with self._cv:
                heapq.heappush(self._heap,
                               (req.priority, next(self._seq), req))
                self._gauge_depth_locked()
                self._cv.notify()
            return
        self._finish_failed(req, str(exc), permanent=permanent)

    def _finish_failed(self, req, error, permanent=True, timeout=False,
                       already_unlinked=False):
        if not already_unlinked:
            with self._cv:
                self._inflight.pop(req.key, None)
        if permanent or timeout:
            with self._cv:
                n = self._failures.get(req.key, 0) + 1
                self._failures[req.key] = n
        self.failed += 1
        if timeout:
            self.timeouts += 1
            self._event("compileq.timeout", key=repr(req.key))
        else:
            self._event("compileq.fail", key=repr(req.key), error=error,
                        attempts=req.attempts)
        req._finish(FAILED, error=error)
        self._notify_error(req)

    def _notify_error(self, req):
        """Fire a failed request's ``on_error`` exactly once, swallowing
        callback bugs. Must be called without the service lock held."""
        if req.on_error is None:
            return
        if getattr(req, "_error_notified", False):
            return
        req._error_notified = True
        try:
            req.on_error(req.error)
        except Exception as exc:
            self._event("compileq.callback_error", key=repr(req.key),
                        error=str(exc))

    # -- lifecycle / stats -----------------------------------------------------

    def forgive(self, key):
        """Clear a key's failure history (e.g. after the program state
        that poisoned it changed)."""
        with self._cv:
            self._failures.pop(key, None)

    def close(self, wait=True):
        with self._cv:
            self._closed = True
            for _prio, _seq, req in self._heap:
                self._inflight.pop(req.key, None)
                if not req.finished:
                    req._finish(REJECTED, error="service closed")
            self._heap.clear()
            self._gauge_depth_locked()
            self._cv.notify_all()
        if wait:
            for t in self._threads:
                t.join(timeout=2.0)

    def stats(self):
        with self._cv:
            depth = len(self._heap)
            inflight = len(self._inflight)
            blacklisted = sorted(
                repr(k) for k, n in self._failures.items()
                if n >= self.blacklist_after)
        return {
            "workers": self.workers,
            "queue_depth": depth,
            "queue_limit": self.queue_limit,
            "in_flight": inflight,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "shed": self.shed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "blacklisted": blacklisted,
        }

"""Ablations for the design choices DESIGN.md calls out:

* specialization on/off (Table 1's mechanism),
* Delite op fusion on/off,
* inlining policy,
* CSE / dead-store elimination effect (measured via source size),
* natural unrolling on/off.
"""

import pytest

from repro import CompileOptions, Lancet
from repro.apps import load_app
from repro.optiml import load_optiml


@pytest.fixture(scope="module")
def csv_data():
    from repro.apps.csv_baselines import accessed_keys, generate_csv
    return generate_csv(4000), accessed_keys()


def _fresh_csv_jit(options=None):
    jit = Lancet(options=options)
    load_app(jit, "csv", module="CsvApp")
    return jit


def test_specialization_on(benchmark, csv_data):
    lines, keys = csv_data
    jit = _fresh_csv_jit()
    jit.vm.call("CsvApp", "flagQuery", [lines, keys])   # compile
    runner = jit.compile_log[-1][1]
    benchmark(runner, 1)


def test_specialization_off_interpreted(benchmark, csv_data):
    lines, keys = csv_data
    jit = _fresh_csv_jit()
    sub = lines[:401]
    benchmark.pedantic(
        lambda: jit.vm.call("CsvApp", "flagQueryInterp", [sub, keys]),
        rounds=1, iterations=1)


def test_fold_disabled_keeps_name_lookup(csv_data):
    """With static-array folding off, freeze still demands evaluation —
    so compilation *fails loudly* rather than silently degrading."""
    from repro.errors import FreezeError
    lines, keys = csv_data
    jit = _fresh_csv_jit(options=CompileOptions(assume_static_arrays=False))
    with pytest.raises(FreezeError):
        jit.vm.call("CsvApp", "flagQuery", [lines[:50], keys])


@pytest.fixture(scope="module")
def namescore_pair():
    from repro.optiml.reference import names_data
    names = names_data(4000)

    def build(fusion):
        jit = Lancet(options=CompileOptions(delite_fusion=fusion))
        load_optiml(jit)
        load_app(jit, "namescore", module="Namescore")
        cf = jit.vm.call("Namescore", "makeCompiled", [names])
        cf(0)
        return jit, cf

    return names, build


def test_fusion_on(benchmark, namescore_pair):
    __, build = namescore_pair
    __, cf = build(True)
    benchmark(cf, 0)


def test_fusion_off(benchmark, namescore_pair):
    __, build = namescore_pair
    __, cf = build(False)
    benchmark(cf, 0)


def test_fusion_reduces_op_count(namescore_pair):
    __, build = namescore_pair
    jit_on, cf_on = build(True)
    jit_off, cf_off = build(False)
    jit_on.delite.reset_clock()
    cf_on(0)
    jit_off.delite.reset_clock()
    cf_off(0)
    assert jit_on.delite.ops_run < jit_off.delite.ops_run


ARITH_SRC = '''
    def helper(x) { return x * 3 + 1; }
    def work(n) {
      var s = 0;
      var i = 0;
      while (i < n) { s = s + helper(i) + helper(i); i = i + 1; }
      return s;
    }
'''


def test_inlining_on(benchmark):
    jit = Lancet()
    jit.load(ARITH_SRC)
    cf = jit.compile_function("Main", "work")
    cf(10)
    benchmark(cf, 20000)


def test_inlining_off(benchmark):
    jit = Lancet(options=CompileOptions(inline_policy="never"))
    jit.load(ARITH_SRC)
    cf = jit.compile_function("Main", "work")
    cf(10)
    benchmark(cf, 20000)


def test_cse_collapses_duplicate_work():
    jit = Lancet()
    jit.load(ARITH_SRC)
    cf = jit.compile_function("Main", "work")
    # helper(i) + helper(i): after inlining + CSE, the multiply happens once
    assert cf.source.count("* 3") == 1


UNROLL_SRC = '''
    def make(n) {
      return Lancet.compile(fun(x) {
        return Lancet.unrollTopLevel(fun() {
          var acc = [x];
          var i = 0;
          while (i < Lancet.freeze(n)) { acc[0] = acc[0] + i * x; i = i + 1; }
          return acc[0];
        });
      });
    }
    def makePlain(n) {
      return Lancet.compile(fun(x) {
        var acc = x;
        var i = 0;
        while (i < n) { acc = acc + i * x; i = i + 1; }
        return acc;
      });
    }
'''


def test_unrolled_loop(benchmark):
    jit = Lancet()
    jit.load(UNROLL_SRC)
    cf = jit.vm.call("Main", "make", [32])
    assert cf(1) == 1 + sum(range(32))
    benchmark(cf, 7)


def test_rolled_loop(benchmark):
    jit = Lancet()
    jit.load(UNROLL_SRC)
    cf = jit.vm.call("Main", "makePlain", [32])
    assert cf(1) == 1 + sum(range(32))
    benchmark(cf, 7)

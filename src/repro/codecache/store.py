"""The on-disk persistent code cache.

Layout: one JSON file per entry under the cache root, named by the
unit's content fingerprint::

    <cache_dir>/
      <fingerprint>.json            # {"format", "sha256", "payload"}
      <fingerprint>.json.quarantine # a corrupt entry, kept for autopsy

Robustness contract (a cache must never make things worse):

* every read verifies the format version and a sha256 over the
  canonical payload encoding; any parse failure, checksum mismatch, or
  truncation **quarantines** the file (rename, ``codecache.quarantine``
  event) and reports a clean miss;
* a format-version mismatch is a clean miss (no quarantine — the file
  may belong to a newer build sharing the directory);
* writes are atomic (temp file + ``os.replace``), so a crashed or
  concurrent writer can't leave a torn entry under the real name;
* any OSError anywhere degrades to miss/no-op with a telemetry event.

Recency for the size-budget LRU is file mtime: hits ``touch`` their
entry, eviction removes oldest-first until the budget holds.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time

from repro.codecache.fingerprint import unit_fingerprint
from repro.codecache.serialize import (Unpersistable, build_payload,
                                       rehydrate)

FORMAT_VERSION = 1

_SUFFIX = ".json"
_QUARANTINE_SUFFIX = ".quarantine"


def _canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload):
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


class PersistentCodeCache:
    """Warm-start store of generated backend source + metadata, keyed by
    content fingerprint. All operations are miss/no-op on failure."""

    def __init__(self, root, budget_bytes=64 << 20, telemetry=None,
                 backend="python"):
        self.root = os.path.abspath(root)
        self.budget_bytes = budget_bytes
        self.telemetry = telemetry
        self.backend = backend
        self.enabled = True
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError as exc:
            self.enabled = False
            self._event("codecache.disabled", error=str(exc))

    # -- telemetry -------------------------------------------------------------

    _COUNTER = {
        "codecache.hit": "codecache.hits",
        "codecache.miss": "codecache.misses",
        "codecache.store": "codecache.stores",
        "codecache.skip": "codecache.skips",
        "codecache.evict": "codecache.evicts",
        "codecache.quarantine": "codecache.quarantines",
        "codecache.invalidate": "codecache.invalidates",
        "codecache.version_miss": "codecache.version_misses",
        "codecache.link_miss": "codecache.link_misses",
        "codecache.error": "codecache.errors",
        "codecache.disabled": "codecache.disabled",
    }

    def _event(self, kind, **data):
        tel = self.telemetry
        if tel is not None:
            tel.inc(self._COUNTER.get(kind, kind))
            tel.record(kind, **data)

    # -- keys ------------------------------------------------------------------

    def fingerprint(self, jit, method, options, kind="unit"):
        return unit_fingerprint(jit, method, options, backend=self.backend,
                                kind=kind)

    def _path(self, fingerprint):
        return os.path.join(self.root, fingerprint + _SUFFIX)

    # -- load ------------------------------------------------------------------

    def _kind_count(self, what, kind):
        """Per-kind hit/miss attribution (method unit vs trace vs
        baseline), so fleet warm-start wins are chargeable per tier."""
        tel = self.telemetry
        if tel is not None and kind:
            tel.inc("codecache.%s.%s" % (what, kind))

    def load(self, fingerprint, jit, recompile=None, kind="unit"):
        """Warm-start lookup: returns a rehydrated CompiledFunction, or
        ``None`` (a cold miss) — never raises. ``kind`` is the caller's
        expectation (``unit`` | ``baseline`` | ``trace``) and only feeds
        the per-kind hit/miss counters; the payload's own kind decides
        how the entry rehydrates."""
        if not self.enabled:
            return None
        path = self._path(fingerprint)
        t0 = time.perf_counter()
        try:
            with open(path, encoding="utf-8") as f:
                wrapper = json.load(f)
        except FileNotFoundError:
            self._event("codecache.miss", fingerprint=fingerprint)
            self._kind_count("misses", kind)
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, "unreadable entry: %s" % exc)
            self._kind_count("misses", kind)
            return None
        try:
            if wrapper.get("format") != FORMAT_VERSION:
                # Not corruption — likely another build's entry.
                self._event("codecache.version_miss",
                            fingerprint=fingerprint,
                            found=wrapper.get("format"),
                            expected=FORMAT_VERSION)
                self._event("codecache.miss", fingerprint=fingerprint)
                self._kind_count("misses", kind)
                return None
            payload = wrapper["payload"]
            if wrapper.get("sha256") != _checksum(payload):
                self._quarantine(path, "sha256 mismatch")
                self._kind_count("misses", kind)
                return None
            compiled = rehydrate(payload, jit, recompile=recompile)
        except Exception as exc:
            # A checksummed entry that still fails to rehydrate is
            # corrupt-by-construction for this process: sideline it.
            self._quarantine(path, "rehydrate failed: %s" % exc)
            self._kind_count("misses", kind)
            return None
        if compiled is None:
            # Links against methods/natives this VM doesn't have.
            self._event("codecache.link_miss", fingerprint=fingerprint)
            self._event("codecache.miss", fingerprint=fingerprint)
            self._kind_count("misses", kind)
            return None
        compiled.persist_key = fingerprint
        compiled.report.phases["codecache_load"] = time.perf_counter() - t0
        self._touch(path)
        tel = self.telemetry
        if tel is not None:
            tel.observe("codecache.load", time.perf_counter() - t0)
        self._event("codecache.hit", fingerprint=fingerprint,
                    unit=payload["unit"], tier=payload["tier"])
        self._kind_count("hits", payload.get("kind") or kind)
        return compiled

    # -- store -----------------------------------------------------------------

    def store(self, fingerprint, compiled, options):
        """Persist one freshly compiled unit; returns True on success.
        Unpersistable units and I/O failures degrade to a ``skip``/
        ``error`` event."""
        if not self.enabled:
            return False
        try:
            payload = build_payload(compiled, fingerprint, options,
                                    backend=self.backend)
        except Unpersistable as exc:
            self._event("codecache.skip", unit=compiled.name,
                        reason=str(exc))
            return False
        wrapper = {"format": FORMAT_VERSION, "sha256": _checksum(payload),
                   "payload": payload}
        path = self._path(fingerprint)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(wrapper, f)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._event("codecache.error", unit=compiled.name,
                        error=str(exc))
            return False
        compiled.persist_key = fingerprint
        self._event("codecache.store", fingerprint=fingerprint,
                    unit=compiled.name, tier=payload["tier"],
                    bytes=len(payload.get("source")
                              or payload.get("code", "")))
        self._enforce_budget()
        return True

    # -- invalidation ----------------------------------------------------------

    def invalidate(self, fingerprint, reason="invalidated"):
        """Drop one persistent entry (e.g. its stable-value speculation
        failed at runtime: the snapshot baked into the source is dead)."""
        if not self.enabled:
            return False
        path = self._path(fingerprint)
        try:
            os.unlink(path)
        except OSError:
            return False
        self._event("codecache.invalidate", fingerprint=fingerprint,
                    reason=reason)
        return True

    # -- maintenance -----------------------------------------------------------

    def _entry_files(self):
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        out = []
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def _enforce_budget(self):
        if self.budget_bytes is None:
            return
        entries = sorted(self._entry_files())
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.budget_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self._event("codecache.evict", path=os.path.basename(path),
                        bytes=size)

    def _touch(self, path):
        try:
            os.utime(path, None)
        except OSError:
            pass

    def _quarantine(self, path, reason):
        """Sideline a corrupt entry: rename it out of the entry namespace
        so it reads as a clean miss forever after, and keep the bytes for
        debugging. Never raises."""
        try:
            os.replace(path, path + _QUARANTINE_SUFFIX)
        except OSError:
            try:                  # rename failed (permissions?): best-effort
                os.unlink(path)   # removal so we don't re-quarantine forever
            except OSError:
                pass
        self._event("codecache.quarantine", path=os.path.basename(path),
                    reason=reason)
        self._event("codecache.miss", path=os.path.basename(path))

    # -- stats -----------------------------------------------------------------

    def stats(self):
        entries = self._entry_files()
        m = self.telemetry.metrics if self.telemetry is not None else None
        counters = {}
        if m is not None:
            for what in ("hits", "misses", "stores", "skips", "evicts",
                         "quarantines", "invalidates", "version_misses",
                         "link_misses", "errors"):
                counters[what] = m.get("codecache.%s" % what)
            # Per-kind warm-start attribution (method units vs trace vs
            # baseline), populated by the kind-aware load() counters.
            by_kind = {}
            for k in ("unit", "baseline", "trace"):
                hits = m.get("codecache.hits.%s" % k)
                misses = m.get("codecache.misses.%s" % k)
                if hits or misses:
                    by_kind[k] = {"hits": hits, "misses": misses}
            counters["by_kind"] = by_kind
        return {
            "enabled": self.enabled,
            "dir": self.root,
            "entries": len(entries),
            "size_bytes": sum(size for _, size, _ in entries),
            "budget_bytes": self.budget_bytes,
            **counters,
        }

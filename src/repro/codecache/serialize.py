"""Entry (de)serialization: CompiledFunction <-> JSON payload.

Only *self-contained* units persist. Generated source may reference
process-private state through three channels, each checked at store
time; a unit using any of them is reported unpersistable (a
``codecache.skip`` event, never an error):

* the **statics table** (``K[i]``) — identity-bound live heap objects;
* **deopt metadata** slots that capture heap state (``static`` /
  ``virtual`` slot templates, non-primitive constants) — ``live`` slots
  and primitive constants serialize fine, so guard-carrying units
  usually persist;
* **native/kernel bindings** that cannot be re-resolved by name
  (Delite kernel descriptors are bound by ``id()``).

``stable``-field dependencies (``@stable`` folding) also block
persistence: the folded value is a snapshot of heap state with no
runtime guard. ``stable(...)`` *macro* guards are different — they
re-check at runtime, so they persist, and a failing guard invalidates
the dependent persistent entry (see ``CompiledFunction.invalidate``).
"""

from __future__ import annotations

from repro.compiler.deopt import DeoptMeta, FrameTemplate

_PRIMITIVES = (bool, int, float, str)


class Unpersistable(Exception):
    """This unit's generated code depends on process-private state."""


# -- metas -> JSON -----------------------------------------------------------


def _template_to_json(t):
    kind = t[0]
    if kind == "live":
        return ["live", t[1]]
    if kind == "const":
        v = t[1]
        if v is None or type(v) in _PRIMITIVES:
            return ["const", v]
        raise Unpersistable("deopt const of type %s" % type(v).__name__)
    # "static" and "virtual" slots capture heap objects.
    raise Unpersistable("deopt slot kind %r" % kind)


def _meta_to_json(meta):
    frames = []
    for f in meta.frames:
        if f.method.class_name is None:
            raise Unpersistable("deopt frame method has no class")
        frames.append({
            "cls": f.method.class_name,
            "method": f.method.name,
            "bci": f.bci,
            "locals": [_template_to_json(t) for t in f.locals_t],
            "stack": [_template_to_json(t) for t in f.stack_t],
        })
    return {"frames": frames, "reason": meta.reason, "kind": meta.kind}


def _meta_from_json(d, linker):
    frames = []
    for fd in d["frames"]:
        rt = linker.classes.get(fd["cls"])
        method = rt.lookup_method(fd["method"]) if rt is not None else None
        if method is None:
            return None
        frames.append(FrameTemplate(
            method, fd["bci"],
            [tuple(t) for t in fd["locals"]],
            [tuple(t) for t in fd["stack"]]))
    return DeoptMeta(frames, reason=d["reason"], kind=d["kind"])


# -- entry building ----------------------------------------------------------


def _baseline_payload(compiled, fingerprint, options, backend):
    """Baseline units persist their marshaled CPython code object — no
    source, no metas, no statics by construction (the runtime-helper
    namespace is rebuilt by name at load). The host bytecode magic is
    stored so a different CPython reads a clean miss."""
    import base64
    import importlib.util
    import marshal
    if compiled.method.class_name is None:
        raise Unpersistable("baseline unit's method has no class")
    return {
        "unit": compiled.name,
        "fingerprint": fingerprint,
        "tier": getattr(compiled, "tier", options.tier),
        "backend": backend,
        "kind": "baseline",
        "cls": compiled.method.class_name,
        "method": compiled.method.name,
        "magic": importlib.util.MAGIC_NUMBER.hex(),
        "code": base64.b64encode(
            marshal.dumps(compiled.code_object)).decode("ascii"),
        "warnings": [str(w) for w in compiled.warnings],
    }


def _baseline_rehydrate(payload, jit, recompile):
    """Rebuild a BaselineFunction from its marshaled code object.
    Returns ``None`` on a link/version miss; corrupt marshal bytes
    raise, which the store quarantines."""
    import base64
    import importlib.util
    import marshal
    import types

    from repro.baseline import (BaselineFunction, baseline_namespace,
                                baseline_supported)
    from repro.observability import CompileReport

    if (not baseline_supported()
            or payload.get("magic") != importlib.util.MAGIC_NUMBER.hex()):
        return None
    rt = jit.vm.linker.classes.get(payload["cls"])
    method = rt.lookup_method(payload["method"]) if rt is not None else None
    if method is None:
        return None
    code = marshal.loads(base64.b64decode(payload["code"]))
    if not isinstance(code, types.CodeType):
        raise Unpersistable("baseline payload decoded to %s"
                            % type(code).__name__)
    fn = types.FunctionType(code, baseline_namespace(jit, method),
                            payload["unit"])
    compiled = BaselineFunction(jit, fn, method, code,
                                recompile=recompile, name=payload["unit"],
                                warnings=payload["warnings"])
    compiled.tier = payload["tier"]
    report = CompileReport(name=payload["unit"], tier=payload["tier"])
    report.phases["codecache_load"] = 0.0   # filled by the store
    report.warnings = len(payload["warnings"])
    compiled.report = report
    return compiled


def build_payload(compiled, fingerprint, options, backend="python"):
    """Serialize one CompiledFunction to a JSON-safe payload dict.

    Raises :class:`Unpersistable` when the unit depends on
    process-private state.
    """
    if getattr(compiled, "kind", None) == "baseline":
        return _baseline_payload(compiled, fingerprint, options, backend)
    result = getattr(compiled, "ir", None)
    if result is None:
        raise Unpersistable("no post-pipeline IR attached")
    if len(result.statics):
        raise Unpersistable("%d statics-table entries" % len(result.statics))
    if result.stable_deps:
        raise Unpersistable("@stable field dependencies")
    blockers = getattr(compiled, "persist_blockers", None) or []
    if blockers:
        raise Unpersistable(", ".join(blockers))
    natives = sorted(
        [binding, cls, name]
        for binding, (cls, name) in
        getattr(compiled, "native_refs", {}).items())
    return {
        "unit": compiled.name,
        "fingerprint": fingerprint,
        "tier": getattr(compiled, "tier", options.tier),
        "backend": backend,
        "source": compiled.source,
        "param_names": list(result.param_names),
        "warnings": [str(w) for w in compiled.warnings],
        "metas": [_meta_to_json(m) for m in compiled.metas],
        "natives": natives,
        "stable_guards": sum(1 for m in compiled.metas
                             if m.kind == "recompile"),
    }


def rehydrate(payload, jit, recompile=None):
    """Rebuild a callable CompiledFunction from a cached payload, with
    zero staging/optimization work. Returns ``None`` when the payload no
    longer links against this VM (a method or native referenced by the
    deopt metadata is gone) — the caller treats that as a miss.
    """
    if payload.get("kind") == "baseline":
        return _baseline_rehydrate(payload, jit, recompile)
    from repro.compiler.compiled import CompiledFunction
    from repro.lms.codegen_py import PyCodegen
    from repro.lms.staging import _Statics
    from repro.observability import CompileReport
    from repro.pipeline.backend import python_runtime_hooks

    metas = []
    for md in payload["metas"]:
        meta = _meta_from_json(md, jit.vm.linker)
        if meta is None:
            return None
        metas.append(meta)
    codegen = PyCodegen(jit.vm, _Statics(), metas)
    for binding, cls, name in payload["natives"]:
        if not codegen.bind_native_by_name(binding, cls, name):
            return None
    callv, callm, mkcont, osr = python_runtime_hooks(jit, metas)
    fn = codegen.exec_source(payload["source"], callv, callm, mkcont, osr,
                             filename="<lancet-cached>")
    compiled = CompiledFunction(jit, fn, payload["source"], metas,
                                recompile=recompile, name=payload["unit"],
                                warnings=payload["warnings"])
    compiled.tier = payload["tier"]
    report = CompileReport(name=payload["unit"], tier=payload["tier"])
    report.phases["codecache_load"] = 0.0   # filled by the store
    report.warnings = len(payload["warnings"])
    compiled.report = report
    return compiled

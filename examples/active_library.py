#!/usr/bin/env python
"""Active libraries and the Delite accelerator (paper 3.4): k-means as a
plain guest library program, transparently accelerated by OptiML macros.

Run:  python examples/active_library.py
"""

import time

from repro import Lancet
from repro.apps import load_app
from repro.optiml import load_optiml
from repro.optiml.reference import kmeans_cpp, kmeans_data


def main():
    n, k, iters = 30000, 4, 5
    px, py = kmeans_data(n, k)

    jit = Lancet()
    load_optiml(jit)                      # library + accelerator macros
    load_app(jit, "kmeans", module="Kmeans")
    jit.delite.register_data(px)
    jit.delite.register_data(py)

    # 1. The pure library, interpreted (scaled down — it's the slow path).
    t0 = time.perf_counter()
    small = jit.vm.call("Kmeans", "run", [px[:1500], py[:1500], k, 2])
    t_lib = (time.perf_counter() - t0) * (n / 1500) * (iters / 2)
    print("library (interpreted, extrapolated): ~%.2fs" % t_lib)

    # 2. The same program, Lancet-compiled: the OptiML calls became Delite
    #    parallel ops.
    cf = jit.vm.call("Kmeans", "makeCompiled", [px, py, k, iters])
    t0 = time.perf_counter()
    cx, cy = cf(0)
    t_ld = time.perf_counter() - t0
    print("Lancet-Delite: %.4fs  (%.0fx)" % (t_ld, t_lib / t_ld))
    print("centroids x:", [round(v, 2) for v in cx])

    # 3. Same results as hand-fused numpy ("C++").
    ccx, ccy = kmeans_cpp(px, py, k, iters)
    assert all(abs(a - b) < 1e-9 for a, b in zip(cx, ccx))

    # 4. Backends: simulated multicore and modeled GPU.
    for cores in (1, 2, 4, 8):
        jit.delite.configure("smp", cores=cores)
        jit.delite.reset_clock()
        cf(0)
        print("  smp x%d: simulated kernel time %.2fms"
              % (cores, jit.delite.sim_time * 1e3))
    jit.delite.configure("gpu")
    jit.delite.reset_clock()
    cf(0)
    print("  gpu  : simulated kernel time %.2fms"
          % (jit.delite.sim_time * 1e3))

    print("\nthe compiled program is just Delite op launches:")
    print(cf.source)


if __name__ == "__main__":
    main()

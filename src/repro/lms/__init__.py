"""LMS-style staging: Rep values, an IR of staged definitions, and code
generation (paper section 2.1).

Where the paper's LMS generates JVM-level code through Graal, this package
generates Python source and compiles it with ``exec`` — Python source is
this reproduction's "native code" (see DESIGN.md, substitutions).
"""

from repro.lms.rep import Rep, Sym, ConstRep, StaticRep
from repro.lms.ir import Stmt, Effect, Block, Jump, Branch, Return, Deopt, OsrCompile
from repro.lms.staging import StagingContext

__all__ = ["Rep", "Sym", "ConstRep", "StaticRep", "Stmt", "Effect", "Block",
           "Jump", "Branch", "Return", "Deopt", "OsrCompile", "StagingContext"]

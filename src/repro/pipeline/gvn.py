"""Global value numbering / CSE over the staged CFG.

Staging already CSEs pure ops *within* a block as it emits
(:data:`repro.lms.staging._CSE_OPS`); this pass extends redundancy
elimination across blocks and to heap reads:

* **dominator-scoped CSE** of pure statements: a pure computation is
  replaced by an equivalent one in a dominating position (dominance ==
  availability for the block-argument SSA form, so the replacement is
  always defined). Commutative ops are canonicalized first.
* **copy propagation** of ``id`` moves (mostly materialized phi assigns
  left by block fusion), so chains of renames collapse and downstream
  keys match.
* **redundant-phi elimination**: a block parameter whose every incoming
  edge passes the same value (or the parameter itself, on a back edge)
  collapses to that value. Staging threads *all* live variables through
  block params at joins, so loop-invariant values arrive disguised as
  loop-defined — without this, LICM and cross-loop CSE see nothing to do.
* **block-local load CSE**: repeated ``getfield``/``aload``/``alen`` of
  the same base and key reuse the first value until a statement that may
  clobber it (an aliasing store, or any residual call) intervenes —
  aliasing per :mod:`repro.analysis.effects`.
* **interprocedural call CSE**: a residual ``invoke_method`` whose callee
  summary proves it pure joins the dominator-scoped table; a read-only
  callee joins the block-local table like a load.
* **Delite launch CSE**: a ``delite`` statement whose kernel the
  parallel-safety summaries prove write-free, and whose result is a
  scalar (no identity to duplicate), behaves like a read-only call:
  block-local reuse keyed on the op descriptor and argument reps,
  invalidated by any intervening write. Before the kernel summaries
  existed these launches were unconditionally opaque.

Everything is rewritten through one substitution map, applied while
walking the dominator tree in DFS order (definitions are always visited
before uses).
"""

from __future__ import annotations

from repro.analysis.cfg import def_counts, dominators, predecessors
from repro.analysis.effects import (COPY_OPS, clobbers, fresh_syms,
                                    invoke_summary, is_pure, load_key)
from repro.analysis.parsafe import delite_cse_key, delite_write_free
from repro.lms.ir import Branch, Deopt, Effect, Jump, OsrCompile, Return
from repro.lms.rep import ConstRep, Rep, StaticRep, Sym

_COMMUTATIVE_NUM = ("add", "mul")
_COMMUTATIVE_ALWAYS = ("eq", "ne")


def _rank(rep):
    if isinstance(rep, Sym):
        return (0, rep.name)
    if isinstance(rep, ConstRep):
        return (1, type(rep.value).__name__, repr(rep.value))
    if isinstance(rep, StaticRep):
        return (2, rep.index)
    return (3, repr(rep))


def _value_key(stmt):
    op = stmt.op
    args = stmt.args
    if (op in _COMMUTATIVE_ALWAYS
            or (op in _COMMUTATIVE_NUM and stmt.flags.get("num"))) \
            and len(args) == 2:
        args = tuple(sorted(args, key=_rank))
    return (op,) + args


def _assign_lists(term, target):
    """Every phi-assign list ``term`` passes along an edge to ``target``
    (two for a Branch with both arms there)."""
    lists = []
    if isinstance(term, Jump) and term.target == target:
        lists.append(term.phi_assigns)
    elif isinstance(term, Branch):
        if term.true_target == target:
            lists.append(term.true_assigns)
        if term.false_target == target:
            lists.append(term.false_assigns)
    return lists


def _simplify_phis(blocks, entry_id, subst):
    """Remove block params whose incoming edges all pass one same value
    (or the param itself); record the replacement in ``subst``. Sound
    because the value's definition dominates every predecessor, hence the
    merge. Returns the number of params removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        preds = predecessors(blocks)
        for bid, block in blocks.items():
            if bid == entry_id or not block.params or not preds[bid]:
                continue
            incoming = [assigns
                        for pid in preds[bid]
                        for assigns in _assign_lists(
                            blocks[pid].terminator, bid)]
            for param in list(block.params):
                reps = [dict(assigns).get(param) for assigns in incoming]
                if any(r is None for r in reps):
                    continue        # malformed edge; the verifier reports it
                cands = [r for r in reps
                         if not (isinstance(r, Sym) and r.name == param)]
                if not cands:
                    continue
                first = cands[0]
                if any(r != first for r in cands[1:]):
                    continue
                block.params.remove(param)
                for assigns in incoming:
                    assigns[:] = [(n, r) for n, r in assigns if n != param]
                subst[param] = first
                removed += 1
                changed = True
    return removed


def global_value_numbering(blocks, entry_id):
    """Run GVN in place; returns a stats dict
    (``phis``/``cse``/``copies``/``loads``/``calls`` statements
    removed)."""
    idom = dominators(blocks, entry_id)
    children = {}
    for bid, parent in idom.items():
        if bid != entry_id:
            children.setdefault(parent, []).append(bid)
    fresh = fresh_syms(blocks)
    subst = {}                  # name -> replacement Rep
    pure_table = {}             # value key -> Rep (dominator-scoped)
    stats = {"phis": 0, "cse": 0, "copies": 0, "loads": 0, "calls": 0,
             "delite": 0}
    stats["phis"] = _simplify_phis(blocks, entry_id, subst)
    counts = def_counts(blocks)

    def resolve(rep):
        while isinstance(rep, Sym) and rep.name in subst:
            rep = subst[rep.name]
        return rep

    def remap(values):
        return tuple(resolve(v) if isinstance(v, Rep) else v for v in values)

    def remap_assigns(assigns):
        assigns[:] = [(name, resolve(rep) if isinstance(rep, Rep) else rep)
                      for name, rep in assigns]

    def visit_block(block):
        """Process one block's stmts + terminator; returns the keys this
        block added to the dominator-scoped table (for scope exit)."""
        added = []
        load_table = {}          # block-local: load/ro-call key -> Rep
        kept = []
        for stmt in block.stmts:
            stmt.args = remap(stmt.args)
            single = counts.get(stmt.sym.name, 0) == 1
            if stmt.op == "id" and single:
                subst[stmt.sym.name] = stmt.args[0]
                stats["copies"] += 1
                continue
            if single and is_pure(stmt) and stmt.op not in COPY_OPS:
                key = _value_key(stmt)
                hit = pure_table.get(key)
                if hit is not None:
                    subst[stmt.sym.name] = hit
                    stats["cse"] += 1
                    continue
                pure_table[key] = Sym(stmt.sym.name)
                added.append(key)
                kept.append(stmt)
                continue
            lkey = load_key(stmt) if single else None
            if lkey is not None:
                hit = load_table.get(lkey)
                if hit is not None:
                    subst[stmt.sym.name] = hit
                    stats["loads"] += 1
                    continue
                load_table[lkey] = Sym(stmt.sym.name)
                kept.append(stmt)
                continue
            summary = invoke_summary(stmt) if single else None
            if summary is not None and summary.is_pure:
                key = ("call",) + stmt.args
                hit = pure_table.get(key)
                if hit is not None:
                    subst[stmt.sym.name] = hit
                    stats["calls"] += 1
                    continue
                pure_table[key] = Sym(stmt.sym.name)
                added.append(key)
                kept.append(stmt)
                continue
            if summary is not None and summary.is_read_only:
                # A read-only call invalidates nothing itself, but its
                # result depends on the heap: block-local reuse only.
                key = ("ro_call",) + stmt.args
                hit = load_table.get(key)
                if hit is not None:
                    subst[stmt.sym.name] = hit
                    stats["calls"] += 1
                    continue
                load_table[key] = Sym(stmt.sym.name)
                kept.append(stmt)
                continue
            dkey = delite_cse_key(stmt) if single else None
            if dkey is not None:
                # A proven write-free, scalar-result Delite launch is a
                # read-only call over its input arrays.
                hit = load_table.get(dkey)
                if hit is not None:
                    subst[stmt.sym.name] = hit
                    stats["delite"] += 1
                    continue
                load_table[dkey] = Sym(stmt.sym.name)
                kept.append(stmt)
                continue
            # Effectful statement: drop every cached read it may clobber.
            writes = stmt.op not in COPY_OPS and (
                stmt.effect in (Effect.WRITE, Effect.IO, Effect.CALL)
                or (stmt.op == "delite" and not delite_write_free(stmt)))
            for key in list(load_table):
                if key[0] in ("ro_call", "delite"):
                    if writes:
                        del load_table[key]
                elif clobbers(stmt, key, fresh):
                    del load_table[key]
            kept.append(stmt)
        block.stmts[:] = kept

        term = block.terminator
        if isinstance(term, Jump):
            remap_assigns(term.phi_assigns)
        elif isinstance(term, Branch):
            term.cond = resolve(term.cond)
            remap_assigns(term.true_assigns)
            remap_assigns(term.false_assigns)
        elif isinstance(term, Return):
            term.value = resolve(term.value)
        elif isinstance(term, (Deopt, OsrCompile)):
            term.lives = [resolve(r) for r in term.lives]
        return added

    # Iterative DFS over the dominator tree with explicit scope undo.
    stack = [("enter", entry_id)]
    while stack:
        action, bid = stack.pop()
        if action == "exit":
            for key in bid:          # bid is the undo list here
                pure_table.pop(key, None)
            continue
        added = visit_block(blocks[bid])
        stack.append(("exit", added))
        for child in sorted(children.get(bid, ()), reverse=True):
            stack.append(("enter", child))
    return stats

"""Compile-server scale-out: one compile, every tenant benefits.

The paper's surgical-precision JITs pay their compile cost once per
program *shape*; a fleet of Lancet VMs running the same program should
pay it once per **fleet**. This package is that economics, built on
PR 4's content-addressed fingerprints (bit-identical units across
tenants hash to the same key):

* :mod:`repro.server.shards` — :class:`ShardedCodeCache`, N persistent
  code-cache shards keyed by fingerprint prefix so concurrent tenants
  don't serialize on one store;
* :mod:`repro.server.daemon` — :class:`CompileServer`, the multi-tenant
  daemon: cross-VM in-flight dedup (sync + async), bounded fair queue
  with priority inheritance and shed-lowest-first backpressure, batched
  scheduling, manifest prewarming;
* :mod:`repro.server.client` — :class:`ServerClient`, the per-VM shim
  that speaks the CompileService surface and falls back to the local
  service when the server dies;
* :mod:`repro.server.manifest` — record a fleet's compiled shape,
  replay it into a fresh store (``repro serve --warm``).

Attach with ``jit.attach_compile_server(server)`` or process-wide via
``REPRO_COMPILE_SERVER=<cache-dir>``.
"""

from repro.server.client import ServerClient
from repro.server.daemon import (CompileServer, close_shared_servers,
                                 shared_server)
from repro.server.manifest import (build_manifest, load_manifest,
                                   warm_from_manifest, write_manifest)
from repro.server.shards import ShardedCodeCache

__all__ = [
    "CompileServer",
    "ServerClient",
    "ShardedCodeCache",
    "build_manifest",
    "close_shared_servers",
    "load_manifest",
    "shared_server",
    "warm_from_manifest",
    "write_manifest",
]

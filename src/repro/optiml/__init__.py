"""OptiML: the machine-learning DSL/library of paper section 3.4.

``lib.mj`` is the pure guest library ("Scala library" baseline);
:mod:`repro.optiml.macros` supplies the accelerator macros that retarget
the library's bulk operators to Delite under Lancet compilation;
:mod:`repro.optiml.reference` holds the hand-fused numpy baselines
("C++" rows) and workload generators.
"""

from __future__ import annotations

import os

_HERE = os.path.dirname(__file__)

OPTIML_MODULE = "Optiml"


def optiml_source():
    with open(os.path.join(_HERE, "lib.mj")) as f:
        return f.read()


def load_optiml(jit, install_macros=True):
    """Load the OptiML guest library; optionally install the Delite
    accelerator macros (paper Fig. 8)."""
    jit.load(optiml_source(), module=OPTIML_MODULE)
    if install_macros:
        from repro.optiml.macros import install_optiml_macros
        install_optiml_macros(jit)
    return jit

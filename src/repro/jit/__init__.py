"""The user-facing JIT API (paper Fig. 2 and section 3.1)."""

from repro.jit.api import Lancet
from repro.jit.cache import CodeCache, make_jit, make_hot

__all__ = ["Lancet", "CodeCache", "make_jit", "make_hot"]

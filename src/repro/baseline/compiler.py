"""The baseline compile: translate → assemble → bind.

``compile_baseline`` turns a static guest method into a callable
:class:`BaselineFunction` in three cheap phases (each timed under a
``baseline.*`` key in the unit's CompileReport):

* **translate** — walk the guest bytecode once, emitting host
  instructions from the per-opcode templates;
* **assemble** — resolve labels/EXTENDED_ARGs and build the
  :class:`types.CodeType`;
* **bind** — close the code object over the runtime-helper namespace.

There is no staging, no PassManager, and no source text: the unit *is*
the code object, which is why baseline units marshal into the
persistent code cache and why compile latency sits orders of magnitude
under the staged tier-1 path (benchmarks/test_warmup.py holds the
ROADMAP's ≥10× line).
"""

from __future__ import annotations

import time
import types

from repro.compiler.compiled import CompiledFunction
from repro.errors import GuestTypeError, LinkError, ReproError
from repro.interp.handlers import OPSPECS
from repro.observability import CompileReport
from repro.runtime.natives import lookup_native
from repro.runtime.objects import Obj, new_instance
from repro.baseline.pyasm import SUPPORTED
from repro.baseline.templates import translate_method


def baseline_supported():
    """Whether this CPython can host template-compiled baseline code."""
    return SUPPORTED


class BaselineUnsupported(ReproError):
    """This unit (or this CPython) cannot take the baseline path; the
    caller falls back to the staged tier-1 compile."""


def baseline_namespace(jit, method):
    """The globals dict a baseline unit runs against: the shared
    :mod:`repro.runtime.ops` helpers (by their own names, so the code
    object's name table reads like the handler table) plus the six
    VM-bridge helpers the templates emit."""
    vm = jit.vm
    ns = {"__builtins__": {}}
    for spec in OPSPECS.values():
        ns[spec.helper.__name__] = spec.helper

    def _new(cls_name):
        return new_instance(vm.linker.resolve_class(cls_name))

    def _callv(receiver, name, args):
        # Mirrors Interpreter._invoke_virtual, run to completion.
        if isinstance(receiver, Obj):
            m = receiver.cls.lookup_method(name)
            if m is None:
                if name == "init" and not args:
                    return None     # ctor-less `new`
                raise LinkError("no method %s on %s"
                                % (name, receiver.cls.name))
            if m.is_static:
                raise GuestTypeError("%s is static" % m.qualified_name)
            if vm.profile:
                vm.profiler.count_invoke(m)
            return vm.invoke_method(m, receiver, list(args))
        return vm.call_virtual(receiver, name, args)

    def _calls(cls_name, name, args):
        # Mirrors Interpreter._invoke_static, run to completion.
        nat = lookup_native(cls_name, name)
        if nat is not None:
            if nat.argc != len(args):
                raise GuestTypeError("%s.%s expects %d args, got %d"
                                     % (cls_name, name, nat.argc, len(args)))
            if vm.profile:
                vm.profiler.count_native(cls_name, name)
            return nat.fn(vm, *args)
        m = vm.linker.resolve_static(cls_name, name)
        if vm.profile:
            vm.profiler.count_invoke(m)
        return vm.invoke_method(m, None, list(args))

    def _enter():
        # Invocation profiling: the interpreter counts callees in
        # _push_call; baseline units count themselves on entry so
        # 1->2 promotion still sees their heat.
        if vm.profile:
            vm.profiler.count_invoke(method)

    def _be(target):
        # Back-edge profiling + OSR polling; True takes the OSR exit.
        if not vm.profile:
            return False
        vm.profiler.count_backedge(method, target)
        controller = getattr(jit, "tiers", None)
        if controller is None or not controller.armed:
            return False
        return controller.on_baseline_backedge(vm, method, target)

    def _osr(target, local_values):
        return jit.tiers.osr_from_baseline(vm, method, target, local_values)

    ns.update(_new=_new, _callv=_callv, _calls=_calls,
              _enter=_enter, _be=_be, _osr=_osr)
    return ns


class BaselineFunction(CompiledFunction):
    """A template-compiled tier-1 unit.

    Quacks like every other CompiledFunction (callable, invalidation,
    recompile, reports) but owns a raw code object instead of generated
    source; ``source`` renders a disassembly on demand so ``--show-code``
    and the reflective API keep working.
    """

    kind = "baseline"

    def __init__(self, jit, fn, method, code_object, recompile=None,
                 name="unit", warnings=()):
        super().__init__(jit, fn, None, [], recompile=recompile,
                         name=name, warnings=warnings)
        self.method = method
        self.code_object = code_object

    @property
    def source(self):
        if self._source is None and self.code_object is not None:
            import dis
            import io
            buf = io.StringIO()
            dis.dis(self.code_object, file=buf)
            self._source = ("# baseline CPython bytecode for %s\n%s"
                            % (self.name, buf.getvalue()))
        return self._source

    @source.setter
    def source(self, value):
        self._source = value

    def recompile(self):
        if self._recompile is None:
            raise RuntimeError("%s cannot be recompiled" % self.name)
        fresh = self._recompile()
        self.fn = fresh.fn
        self.metas = fresh.metas
        self.warnings = fresh.warnings
        # The rebuild may legitimately come back staged (e.g. options
        # changed under us); keep whichever representation it has.
        self.code_object = getattr(fresh, "code_object", None)
        self._source = None if self.code_object is not None \
            else fresh.source
        self.valid = True
        self.invalidated_reason = None
        self.compile_count += 1
        return self

    def __repr__(self):
        state = "valid" if self.valid else "invalidated"
        return "<BaselineFunction %s (%s)>" % (self.name, state)


def compile_baseline(jit, method, options=None, recompile=None, name=None):
    """Template-compile one static guest method at Tier 1.

    Raises :class:`BaselineUnsupported` when the unit cannot take this
    path (instance method, or a CPython whose bytecode the assembler
    does not target); the caller falls back to the staged compile.
    """
    if not SUPPORTED:
        raise BaselineUnsupported("baseline templates target CPython 3.11")
    if not method.is_static:
        raise BaselineUnsupported("baseline compiles static methods only")
    options = options if options is not None else jit.options
    name = name or method.qualified_name
    tel = jit.telemetry
    tel.record("compile.start", unit=name, tier=options.tier, baseline=True)
    t_start = time.perf_counter()
    report = CompileReport(name=name, tier=options.tier)

    t0 = time.perf_counter()
    asm, varnames, stacksize = translate_method(method)
    report.phases["baseline.translate"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    code = asm.assemble(method.num_params, varnames, stacksize,
                        name=name)
    report.phases["baseline.assemble"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    fn = types.FunctionType(code, baseline_namespace(jit, method), name)
    report.phases["baseline.bind"] = time.perf_counter() - t0

    compiled = BaselineFunction(jit, fn, method, code,
                                recompile=recompile, name=name)
    compiled.report = report
    compiled.tier = options.tier
    jit.compile_log.append((name, compiled))

    total = time.perf_counter() - t_start
    tel.inc("compiles")
    tel.inc("compiles.tier%d" % options.tier)
    tel.observe("compile.tier%d.total" % options.tier, total)
    tel.observe("compile.baseline.total", total)
    tel.observe("compile.total", total)
    for phase, seconds in report.phases.items():
        tel.observe("compile.phase.%s" % phase, seconds)
    tel.record("compile.end", unit=name, tier=options.tier, seconds=total,
               baseline=True, host_bytes=len(code.co_code))
    return compiled

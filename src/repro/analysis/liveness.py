"""Backward liveness over staged-IR symbol names.

A symbol is live at a point if some path from that point reads it — in a
statement argument, a terminator (branch condition, phi-assign value,
return value, deopt live set), before being redefined. Since the IR is in
block-argument SSA form (every name has exactly one definition), liveness
here mainly answers "is this definition ever needed?", which is what the
effect-aware DCE in :mod:`repro.analysis.dce` consumes.
"""

from __future__ import annotations

from repro.analysis.cfg import stmt_uses, term_uses
from repro.analysis.dataflow import BackwardAnalysis, solve
from repro.lms.ir import Effect

#: Effects whose statements may be deleted when their result is unused.
REMOVABLE_EFFECTS = (Effect.PURE, Effect.ALLOC)


class LivenessAnalysis(BackwardAnalysis):
    """Live symbol names at each block boundary (may-analysis, union join).

    The transfer function is effect-aware: a statement's arguments only
    become live if the statement itself is live — it has a non-removable
    effect, or its result is live below. This makes the fixpoint directly
    usable for dead-code elimination (chains of dead pure statements never
    mark each other live).
    """

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, out_value):
        live = set(out_value)
        live.update(term_uses(block.terminator))
        for stmt in reversed(block.stmts):
            name = stmt.sym.name
            if stmt.effect not in REMOVABLE_EFFECTS or name in live:
                live.discard(name)
                live.update(stmt_uses(stmt))
            else:
                live.discard(name)
        for param in block.params:
            live.discard(param)
        return frozenset(live)


def live_sets(blocks, entry_id):
    """``{block_id: (live_in, live_out)}`` of symbol names."""
    return solve(blocks, entry_id, LivenessAnalysis())

"""SQL / LINQ cross-compilation (paper 3.5).

Language-embedded queries where predicates are *guest closures lifted from
bytecode* rather than expression trees. The paper's pitch: systems like
LINQ fail when the predicate calls an externally defined function, because
only the closure's expression tree is lifted —

    val res = data.filter(x => x.price > 0 && p(x))   // p defined elsewhere

— whereas "if we were using Lancet and lifting bytecode instead of static
trees this would not be a problem because bytecode is available for all
functions." Here, ``Table.filter`` compiles the guest closure with Lancet
(inlining any guest functions it calls) and translates the resulting IR to
a SQL WHERE expression.

Also reproduced: *scalar reuse* (``res.count`` then ``res.sum`` runs one
query, not two) and *query avalanche avoidance* (a per-iteration nested
filter becomes a single GROUP BY + index lookup).
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.lms.ir import Branch, Jump, Return
from repro.lms.rep import ConstRep, StaticRep, Sym
from repro.pipeline.backend import Backend, CompilationUnit, register_backend

_SQL_OPS = {"add": "+", "sub": "-", "mul": "*", "div": "/",
            "eq": "=", "ne": "<>", "lt": "<", "le": "<=", "gt": ">",
            "ge": ">="}


@register_backend
class SQLBackend(Backend):
    """Backend-protocol face of the SQL renderer: turns the canonical
    post-PassManager IR of a one-argument predicate into a WHERE
    expression over ``column``."""

    name = "sql"

    def emit(self, unit, *, column, **kwargs):
        return _render_expr(unit.result, {("a1",): None}, column)


def predicate_to_sql(jit, closure, column):
    """Compile a one-argument guest closure and render it as a SQL
    expression over ``column``. Returns ``(sql_text, host_callable)``."""
    compiled = jit.compile_closure(closure)
    unit = CompilationUnit(result=compiled.ir, name=compiled.name, jit=jit)
    sql = SQLBackend().emit(unit, column=column)
    return sql, compiled


def _render_expr(result, __, column):
    blocks = result.blocks
    if len(result.param_names) != 1:
        raise CompilationError("SQL predicates take one column value")
    param = result.param_names[0]

    def rep(r, env):
        if isinstance(r, Sym):
            if r.name == param:
                return column
            if r.name in env:
                return env[r.name]
            raise CompilationError("SQL backend: unbound %s" % r.name)
        if isinstance(r, ConstRep):
            v = r.value
            if v is None:
                return "NULL"
            if v is True:
                return "TRUE"
            if v is False:
                return "FALSE"
            if isinstance(v, str):
                return "'%s'" % v.replace("'", "''")
            return repr(v)
        if isinstance(r, StaticRep):
            raise CompilationError("SQL backend: heap object in predicate")
        raise AssertionError(r)

    def block_expr(bid, env):
        block = blocks[bid]
        env = dict(env)
        for stmt in block.stmts:
            env[stmt.sym.name] = stmt_expr(stmt, env)
        term = block.terminator
        if isinstance(term, Return):
            return rep(term.value, env)
        if isinstance(term, Jump):
            for name, r in term.phi_assigns:
                env[name] = rep(r, env)
            return block_expr(term.target, env)
        if isinstance(term, Branch):
            cond = rep(term.cond, env)
            env_t = dict(env)
            for name, r in term.true_assigns:
                env_t[name] = rep(r, env)
            env_f = dict(env)
            for name, r in term.false_assigns:
                env_f[name] = rep(r, env)
            t_expr = block_expr(term.true_target, env_t)
            f_expr = block_expr(term.false_target, env_f)
            # Recover boolean structure where possible. MiniJ's
            # short-circuit operators evaluate to the operand value, so
            # `a || b` arrives as CASE WHEN a THEN a ELSE b — fold it back.
            if t_expr == "TRUE" and f_expr == "FALSE":
                return "(%s)" % cond
            if f_expr == "FALSE" or f_expr == cond:
                return "(%s AND %s)" % (cond, t_expr)
            if t_expr == "TRUE" or t_expr == cond:
                return "(%s OR %s)" % (cond, f_expr)
            return ("(CASE WHEN %s THEN %s ELSE %s END)"
                    % (cond, t_expr, f_expr))
        raise CompilationError("SQL backend: cannot translate %r" % (term,))

    def stmt_expr(stmt, env):
        op = stmt.op
        if op in _SQL_OPS:
            return "(%s %s %s)" % (rep(stmt.args[0], env), _SQL_OPS[op],
                                   rep(stmt.args[1], env))
        if op == "mod":
            return "MOD(%s, %s)" % (rep(stmt.args[0], env),
                                    rep(stmt.args[1], env))
        if op == "neg":
            return "(-%s)" % rep(stmt.args[0], env)
        if op == "not":
            return "(NOT %s)" % rep(stmt.args[0], env)
        if op == "concat":
            return "(%s || %s)" % (rep(stmt.args[0], env),
                                   rep(stmt.args[1], env))
        if op == "id":
            return rep(stmt.args[0], env)
        if op == "alen":
            return "LENGTH(%s)" % rep(stmt.args[0], env)
        raise CompilationError("SQL backend: cannot translate op %r "
                               "(is the predicate pure arithmetic?)" % op)

    # Entry block is the prologue jump.
    return block_expr(result.entry_bid, {})


class Table:
    """A LINQ-style table handle: ``table[Item]("t_item")``."""

    def __init__(self, db, name, jit):
        self.db = db
        self.name = name
        self.jit = jit

    def filter(self, column, guest_predicate):
        """``data.filter(x => ...)`` over one column; the predicate is a
        guest closure, lifted from bytecode."""
        sql_expr, compiled = predicate_to_sql(self.jit, guest_predicate,
                                              column)
        return Query(self, [(column, sql_expr, compiled)])

    def scan(self):
        return Query(self, [])

    def group_by(self, key_col):
        """One GROUP BY round-trip building an index — the avalanche-safe
        plan for nested lookups."""
        sql = "SELECT %s, * FROM %s GROUP BY %s" % (key_col, self.name,
                                                    key_col)
        return self.db.execute_group_by(sql, self.name, key_col)


class Query:
    """A composable query; scans are cached so scalar follow-ups
    (``count`` then ``sum``) reuse one round-trip instead of re-executing
    (the paper's duplicate-execution problem)."""

    def __init__(self, table, wheres, reuse=True):
        self.table = table
        self.wheres = wheres
        self.reuse = reuse
        self._cached_rows = None

    def filter(self, column, guest_predicate):
        sql_expr, compiled = predicate_to_sql(self.table.jit,
                                              guest_predicate, column)
        return Query(self.table, self.wheres + [(column, sql_expr,
                                                 compiled)],
                     reuse=self.reuse)

    def where_sql(self):
        if not self.wheres:
            return ""
        return " WHERE " + " AND ".join(expr for __, expr, __unused
                                        in self.wheres)

    def to_sql(self, select="*"):
        return "SELECT %s FROM %s%s" % (select, self.table.name,
                                        self.where_sql())

    def _predicate(self):
        if not self.wheres:
            return None

        def pred(row):
            return all(bool(compiled(row[col]))
                       for col, __, compiled in self.wheres)

        return pred

    def rows(self):
        if self.reuse and self._cached_rows is not None:
            return self._cached_rows
        rows = self.table.db.execute_scan(self.to_sql(), self.table.name,
                                          self._predicate())
        if self.reuse:
            self._cached_rows = rows
        return rows

    def count(self):
        if self.reuse:
            return len(self.rows())
        return self.table.db.execute_scalar(
            self.to_sql("COUNT(*)"), lambda: len(self._scan_fresh()))

    def sum(self, column):
        if self.reuse:
            return sum(r[column] for r in self.rows())
        return self.table.db.execute_scalar(
            self.to_sql("SUM(%s)" % column),
            lambda: sum(r[column] for r in self._scan_fresh()))

    def _scan_fresh(self):
        return [r for r in self.table.db.tables[self.table.name]
                if self._predicate() is None or self._predicate()(r)]


def nested_lookup_naive(outer_keys, inner_table, key_col):
    """The query avalanche: one filter round-trip per outer element."""
    results = {}
    for key in outer_keys:
        sql = ("SELECT * FROM %s WHERE %s = %r"
               % (inner_table.name, key_col, key))
        results[key] = inner_table.db.execute_scan(
            sql, inner_table.name, lambda r, k=key: r[key_col] == k)
    return results

def nested_lookup_grouped(outer_keys, inner_table, key_col):
    """Avalanche-avoiding plan: one GROUP BY, then in-memory lookups
    (paper: "replace the nested filter call by an index lookup")."""
    index = inner_table.group_by(key_col)
    return {key: index.get(key, []) for key in outer_keys}

"""Table 2c — name score (paper: Lancet-Delite ~1.9-2.2× the library at
each core count, from fusion + AoS-to-SoA)."""

from repro.optiml.reference import namescore_fused, namescore_python


def test_library_row(benchmark, namescore_setup):
    s = namescore_setup
    benchmark.pedantic(
        lambda: s["jit"].vm.call("Namescore", "totalScore",
                                 [s["names"][:500]]),
        rounds=1, iterations=1)


def test_lancet_delite_row(benchmark, namescore_setup):
    s = namescore_setup
    s["jit"].delite.configure("seq")
    benchmark(s["cf"], 0)


def test_lancet_delite_smp4(benchmark, namescore_setup):
    s = namescore_setup
    s["jit"].delite.configure("smp", cores=4)
    benchmark(s["cf"], 0)
    s["jit"].delite.configure("seq")


def test_host_python_library_row(benchmark, namescore_setup):
    benchmark(namescore_python, namescore_setup["names"])


def test_host_python_fused_row(benchmark, namescore_setup):
    benchmark(namescore_fused, namescore_setup["names"])


def test_shape_fusion_wins(namescore_setup):
    """Fused single-pass beats the pair-allocating two-pass library."""
    import time
    s = namescore_setup

    def best(fn, *a):
        b = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            fn(*a)
            b = min(b, time.perf_counter() - t0)
        return b

    t0 = time.perf_counter()
    s["jit"].vm.call("Namescore", "totalScore", [s["names"][:500]])
    t_lib = (time.perf_counter() - t0) * (len(s["names"]) / 500)
    t_ld = best(s["cf"], 0)
    assert t_ld < t_lib / 2

"""Content fingerprints for persistent cache keys.

A persisted unit may be reused only when *everything* that shaped its
generated code is unchanged. The fingerprint therefore covers:

* the **guest program** — every loaded class's fields, @stable marks,
  and method bytecode. The staged compiler inlines and specializes
  across method boundaries, so the hash is over the whole loaded class
  set, not just the entry method: sound (any program edit invalidates)
  at the cost of some precision.
* the **unit identity** — qualified name, arity, staticness.
* the **CompileOptions** — every codegen-relevant knob (tier included).
  Service/cache plumbing fields (``cache_dir``, ``compile_workers``,
  ``persist``, ``unit_cache``) are excluded: they select machinery, not
  code shape.
* the **macro-registry version** — macros rewrite call sites at staging
  time, changing generated code without changing guest bytecode (see
  DESIGN.md), so registry churn must miss.
* the **backend** name.
"""

from __future__ import annotations

import dataclasses
import hashlib

#: CompileOptions fields that do not influence generated code. The
#: trace-tier policy counters only decide *when* recording/stitching
#: happens, not what a recorded trace compiles to; the recording shape
#: limits (trace_max_ops/trace_max_depth) stay in the signature.
_NON_CODEGEN_FIELDS = frozenset({
    "unit_cache", "cache_dir", "persist", "compile_workers",
    "cache_budget_bytes", "trace_tier", "trace_threshold",
    "bridge_threshold", "trace_exit_budget",
})


def _h(parts):
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8", "backslashreplace"))
        digest.update(b"\x00")
    return digest.hexdigest()


def program_fingerprint(linker):
    """Hash the whole loaded class set (sorted, canonical rendering)."""
    parts = []
    for name in sorted(linker.classes):
        rt = linker.classes[name]
        cf = rt.classfile
        parts.append("class %s super=%s" % (name, cf.super_name))
        parts.append("stable=%s" % ",".join(sorted(rt.stable_fields)))
        for fname in sorted(cf.fields):
            f = cf.fields[fname]
            parts.append("field %s val=%r" % (fname, f.is_val))
        for mname in sorted(cf.methods):
            m = cf.methods[mname]
            parts.append("method %s/%d static=%r locals=%d"
                         % (mname, m.num_params, m.is_static, m.num_locals))
            for ins in m.code:
                parts.append("%s %r" % (ins.op.name, ins.arg))
    return _h(parts)


def options_signature(options):
    """Canonical string of the codegen-relevant CompileOptions fields."""
    parts = []
    for field in dataclasses.fields(options):
        if field.name in _NON_CODEGEN_FIELDS:
            continue
        parts.append("%s=%r" % (field.name, getattr(options, field.name)))
    return ";".join(parts)


def macro_fingerprint(registry):
    return registry.version


def unit_fingerprint(jit, method, options, backend="python", kind="unit"):
    """The persistent-cache key for one static compilation unit.

    ``kind`` separates representations that share every other input:
    a ``baseline`` unit persists a marshaled CPython code object, so its
    key additionally covers the host bytecode magic — a cached entry
    from another CPython must read as a miss, not a corrupt entry.
    """
    parts = [
        "%s %s/%d static=%r" % (kind, method.qualified_name,
                                method.num_params, method.is_static),
        "program %s" % program_fingerprint(jit.vm.linker),
        "options %s" % options_signature(options),
        "macros %s" % macro_fingerprint(jit.macros),
        "backend %s" % backend,
    ]
    if kind == "baseline":
        import importlib.util
        parts.append("magic %s" % importlib.util.MAGIC_NUMBER.hex())
    return _h(parts)


def trace_fingerprint(jit, method, header_bci, options, backend="python"):
    """The persistent-cache key for a loop-trace unit: a method unit key
    plus the loop-header bci (one method can anchor several traces)."""
    return _h([
        "trace %s/%d@%d static=%r" % (method.qualified_name,
                                      method.num_params, header_bci,
                                      method.is_static),
        "program %s" % program_fingerprint(jit.vm.linker),
        "options %s" % options_signature(options),
        "macros %s" % macro_fingerprint(jit.macros),
        "backend %s" % backend,
    ])

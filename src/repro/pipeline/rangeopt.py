"""Range-based guard pruning and branch folding.

Runs the interval analysis (:mod:`repro.analysis.ranges`) over the staged
CFG and removes checks it proves:

* a ``guard`` whose condition is provably truthy (or ``guard_not``
  provably falsy) can never deoptimize — the deoptimization point
  disappears, which both shrinks the emitted code and lets more units
  satisfy ``checkNoAlloc``'s "no deoptimization points" demand;
* a ``Branch`` whose condition is decided folds to a ``Jump``, and blocks
  made unreachable by the folding are deleted (the verifier requires full
  reachability, so this is mandatory, not cosmetic).

Every removal records a provenance string — which check, defined where,
and the interval that proved it — surfaced through ``Lancet.analyze`` so
the "surgical precision" story stays inspectable.
"""

from __future__ import annotations

from repro.analysis.cfg import reachable_from
from repro.analysis.fuse import fuse_blocks
from repro.analysis.ranges import range_facts
from repro.lms.ir import Branch, Effect, Jump, Stmt
from repro.lms.rep import ConstRep


def _fmt_interval(iv):
    lo, hi = iv
    return "[%s, %s]" % ("-inf" if lo is None else lo,
                         "+inf" if hi is None else hi)


def _provenance(stmt):
    src = stmt.flags.get("src")
    if not src:
        return ""
    return " in %s (bci %d)" % (src[0], src[1])


def _proven_truthy(iv):
    """True/False when the interval decides truthiness, else None. An
    interval's presence already implies the value is a number (or bool),
    so nonzero == truthy."""
    if iv is None:
        return None
    lo, hi = iv
    if (lo is not None and lo > 0) or (hi is not None and hi < 0):
        return True
    if lo == 0 and hi == 0:
        return False
    return None


def prune_range_guards(blocks, entry_id, params=()):
    """Run guard pruning + branch folding in place; returns
    ``(guards_removed, branches_folded, provenance)``."""
    analysis, facts = range_facts(blocks, entry_id, params)
    guards_removed = 0
    branches_folded = 0
    provenance = []

    for bid in sorted(blocks):
        env = facts[bid][0] if bid in facts else None
        if env is None:
            continue                     # unreachable (verifier reports it)
        env = dict(env)
        for i, stmt in enumerate(list(blocks[bid].stmts)):
            if stmt.op in ("guard", "guard_not"):
                cond = stmt.args[0]
                want = stmt.op == "guard"
                iv = analysis.value_of(cond, env)
                proven = _proven_truthy(iv)
                if proven is not None and proven == want:
                    blocks[bid].stmts[i] = Stmt(
                        stmt.sym, "id", (ConstRep(None),), Effect.PURE,
                        stmt.flags)
                    guards_removed += 1
                    provenance.append(
                        "%s%s proven redundant by range analysis: "
                        "condition in %s"
                        % (stmt.op, _provenance(stmt), _fmt_interval(iv)))
                # Pruned or not, the condition holds past this point.
                env = analysis.assume(cond, want, env)
                continue
            iv = analysis.stmt_interval(stmt, env)
            if iv != (None, None):
                env[stmt.sym.name] = iv
            else:
                env.pop(stmt.sym.name, None)

        term = blocks[bid].terminator
        if isinstance(term, Branch):
            iv = analysis.value_of(term.cond, env)
            proven = _proven_truthy(iv)
            if proven is True:
                blocks[bid].terminator = Jump(term.true_target,
                                              term.true_assigns)
            elif proven is False:
                blocks[bid].terminator = Jump(term.false_target,
                                              term.false_assigns)
            if proven is not None:
                branches_folded += 1
                provenance.append(
                    "branch in block %s folded to %s arm by range "
                    "analysis: condition in %s"
                    % (bid, "true" if proven else "false",
                       _fmt_interval(iv)))

    if branches_folded:
        live = reachable_from(blocks, entry_id)
        for bid in [b for b in blocks if b not in live]:
            del blocks[bid]
        fuse_blocks(blocks, entry_id)
    return guards_removed, branches_folded, provenance

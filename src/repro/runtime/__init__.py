"""MiniJVM runtime: object model, class linking, native methods."""

from repro.runtime.objects import Obj, RtClass, new_instance
from repro.runtime.linker import Linker
from repro.runtime.natives import NativeMethod, NATIVES

__all__ = ["Obj", "RtClass", "new_instance", "Linker", "NativeMethod", "NATIVES"]

"""The Lancet facade: explicit JIT compilation for MiniJVM programs.

Typical host-side use::

    from repro import Lancet

    jit = Lancet()
    jit.load(minij_source)
    result = jit.vm.call("Main", "main")           # interpreted
    fast = jit.compile_function("Main", "work")     # explicit compilation
    fast(42)                                        # compiled execution

Guest code can equally invoke the JIT itself via ``Lancet.compile(f)``
(the paper's primary mode), plus the whole surgical toolbox: ``freeze``,
``unroll``, ``ntimes``, inlining directives, ``speculate``/``stable``,
``slowpath``/``fastpath``, ``checkNoAlloc``, taint tracking, and the
Delite accelerator macros.
"""

from __future__ import annotations

from repro.compiler.compiled import CompiledFunction, ContinuationClosure
from repro.compiler.deopt import reconstruct_frames
from repro.compiler.options import CompileOptions
from repro.compiler.stagedinterp import (AbstractFrame, MachineState,
                                         StagedInterpreter)
from repro.errors import (CompilationError, CompilationWarningList,
                          GuestTypeError, NoAllocError, TaintError)
from repro.interp.interpreter import Interpreter
from repro.lms.codegen_py import PyCodegen
from repro.lms.rep import Sym
from repro.macros.registry import MacroRegistry
from repro.runtime.objects import Obj


class Lancet:
    """A VM plus an explicitly-invokable JIT compiler."""

    def __init__(self, vm=None, options=None):
        self.vm = vm if vm is not None else Interpreter()
        self.vm.jit = self
        self.options = options if options is not None else CompileOptions()
        self.macros = MacroRegistry()
        from repro.macros.core import install_core_macros
        install_core_macros(self.macros)
        self.compile_log = []     # (unit name, CompiledFunction)
        from repro.delite.runtime import DeliteRuntime
        self.delite = DeliteRuntime()
        self.vm.delite = self.delite

    # -- loading -----------------------------------------------------------------

    def load(self, source, module="Main"):
        from repro.frontend.compiler import compile_source
        return self.vm.load_classes(compile_source(source, module=module))

    def install_macro(self, class_name, method_name, fn):
        self.macros.install(class_name, method_name, fn)

    def install_macros(self, class_name, macros_obj):
        self.macros.install_class(class_name, macros_obj)

    def mark_stable(self, class_name, field_name):
        """Declare ``class.field`` @stable (paper 3.2)."""
        self.vm.linker.mark_stable_field(class_name, field_name)

    # -- explicit compilation (paper Fig. 2: compile[T,U]) --------------------------

    def compile_closure(self, closure, options=None):
        """JIT-compile a guest closure; returns a callable
        :class:`CompiledFunction` specialized to the closure's captured
        state (partial evaluation against live heap objects)."""
        if not isinstance(closure, Obj):
            raise GuestTypeError("compile() needs a guest closure, got %r"
                                 % (closure,))
        method = closure.cls.lookup_method("apply")
        if method is None:
            raise GuestTypeError("compile(): %s has no apply method"
                                 % closure.cls.name)

        def rebuild():
            return self._compile_unit(
                method, receiver=closure, options=options,
                name="%s.apply" % closure.cls.name, recompile=rebuild)

        return rebuild()

    def compile_function(self, class_name, method_name, options=None):
        """JIT-compile a static guest method for dynamic arguments."""
        method = self.vm.linker.resolve_static(class_name, method_name)

        def rebuild():
            return self._compile_unit(
                method, receiver=None, options=options,
                name=method.qualified_name, recompile=rebuild)

        return rebuild()

    def compile_method(self, class_name, method_name, receiver,
                       options=None):
        """JIT-compile an instance method against a specific receiver."""
        cls = self.vm.linker.resolve_class(class_name)
        method = self.vm.linker.resolve_virtual(cls, method_name)

        def rebuild():
            return self._compile_unit(
                method, receiver=receiver, options=options,
                name=method.qualified_name, recompile=rebuild)

        return rebuild()

    # -- internals -------------------------------------------------------------------

    def _initial_scope(self, options):
        scope = {"inline": options.inline_policy}
        if options.check_noalloc:
            scope["noalloc"] = True
        if options.check_taint:
            scope["checktaint"] = True
        return scope

    def _compile_unit(self, method, receiver, options=None, name="unit",
                      recompile=None, entry_frames=None):
        options = options or self.options
        machine = StagedInterpreter(self.vm, self.macros, options)
        scope = self._initial_scope(options)

        if entry_frames is None:
            nparams = method.num_params
            param_names = ["a%d" % (i + 1) for i in range(nparams)]

            def build_entry():
                frame = AbstractFrame(method, scope=dict(scope))
                base = 0
                if not method.is_static:
                    frame.locals[0] = machine.ctx.lift(receiver)
                    base = 1
                for i in range(nparams):
                    frame.locals[base + i] = Sym(param_names[i])
                return MachineState(frame)
        else:
            param_names = []

            def build_entry():
                parent = None
                for cf in entry_frames:
                    af = AbstractFrame(cf.method, parent=parent,
                                       scope=dict(scope))
                    af.bci = cf.bci
                    for i in range(cf.method.num_locals):
                        af.locals[i] = machine.ctx.lift(cf.get_local(i))
                    for v in cf.stack_values():
                        af.push(machine.ctx.lift(v))
                    parent = af
                return MachineState(parent)

        result = machine.compile_unit(build_entry, param_names)
        self._enforce_demands(result, options, name)
        compiled = self._emit(result, param_names, name, recompile,
                              fuse=options.delite_fusion)
        for obj, field in result.stable_deps:
            obj.add_stable_dep(field, compiled)
        self.compile_log.append((name, compiled))
        return compiled

    def _enforce_demands(self, result, options, name):
        if result.leaks:
            raise TaintError(
                "taint analysis of %s found %d leak(s)" % (
                    name, len(result.leaks)), leaks=result.leaks)
        if result.noalloc_sites:
            raise NoAllocError(
                "checkNoAlloc failed for %s: %d residual allocation/deopt "
                "site(s)" % (name, len(result.noalloc_sites)),
                sites=result.noalloc_sites)
        if options.warnings_as_errors and result.warnings:
            raise CompilationWarningList(result.warnings)

    def _emit(self, result, param_names, name, recompile, fuse=True):
        metas = result.metas
        vm = self.vm
        codegen = PyCodegen(vm, result.statics, metas)

        def callv(recv, mname, args):
            return vm.call_virtual(recv, mname, args)

        def callm(method, recv, args):
            return vm.invoke_method(method, recv, args)

        def mkcont(meta_id, lives):
            return ContinuationClosure(vm, metas[meta_id], list(lives))

        def osr(meta_id, lives):
            return self._osr_execute(metas[meta_id], lives)

        if fuse:
            from repro.delite.fusion import fuse_delite
            fuse_delite(result.blocks, jit=self)
        fn, source = codegen.generate(result.blocks, result.entry_bid,
                                      param_names, callv, callm, mkcont, osr)
        compiled = CompiledFunction(self, fn, source, metas,
                                    recompile=recompile, name=name,
                                    warnings=result.warnings)
        compiled.ir = result   # post-optimization IR, for introspection
        return compiled

    def _osr_execute(self, meta, lives):
        """``fastpath``: compile the captured continuation with the current
        values as compile-time constants, then run it (paper 3.2)."""
        leaf = reconstruct_frames(meta, lives)
        frames = []
        f = leaf
        while f is not None:
            frames.append(f)
            f = f.parent
        frames.reverse()
        try:
            compiled = self._compile_unit(
                leaf.method, receiver=None, name="osr@%s:%d"
                % (leaf.method.qualified_name, leaf.bci),
                entry_frames=frames)
        except CompilationError:
            # Recompilation failed; fall back to interpreting.
            leaf = reconstruct_frames(meta, lives)
            return self.vm.run_frames(leaf)
        return compiled()

"""The IR analysis framework: dataflow solver, verifier, DCE/guard
elimination, post-optimization checkNoAlloc, flow-sensitive taint, and the
JIT lint layer (``Lancet.analyze`` / ``repro jit --analyze``)."""

import time

import pytest

from repro import CompileOptions
from repro.analysis import (Diagnostics, TaintAnalysis, check_noalloc,
                            eliminate_dead, eliminate_redundant_guards,
                            live_sets, solve, verify_ir)
from repro.errors import IRVerifyError, NoAllocError, TaintError
from repro.lms.codegen_py import fuse_blocks
from repro.lms.ir import Block, Branch, Effect, Jump, Return, Stmt
from repro.lms.rep import ConstRep, Sym
from tests.conftest import load


def _block(bid, stmts=(), term=None, params=()):
    b = Block(bid, params)
    b.stmts = list(stmts)
    b.terminator = term
    return b


def _stmt(name, op, args, effect=Effect.PURE, flags=None):
    return Stmt(Sym(name), op, args, effect, flags)


def _diamond_with_taint():
    """B0 branches to B1 (taints) / B2 (doesn't); both join at B3(p3_0)."""
    return {
        0: _block(0, [_stmt("x", "id", (ConstRep(1),))],
                  Branch(Sym("x"), 1, [], 2, [])),
        1: _block(1, [_stmt("t", "taint", (Sym("x"),))],
                  Jump(3, [("p3_0", Sym("t"))])),
        2: _block(2, [_stmt("u", "id", (Sym("x"),))],
                  Jump(3, [("p3_0", Sym("u"))])),
        3: _block(3, [], Return(Sym("p3_0")), params=["p3_0"]),
    }


class TestSolver:
    def test_forward_taint_joins_at_phi(self):
        solution = solve(_diamond_with_taint(), 0, TaintAnalysis())
        # The tainted arm marks the block param on its edge; the join is
        # a union (may-taint), so B3 sees p3_0 as tainted.
        assert "t" in solution[1][1]
        assert "p3_0" in solution[3][0]
        # Flow-sensitivity: nothing is tainted before the source runs.
        assert solution[0][0] == frozenset()

    def test_forward_loop_reaches_fixpoint(self):
        # B0 -> B1(p) -> B1 (backedge taints on second trip) | B2.
        blocks = {
            0: _block(0, [_stmt("s", "taint", (ConstRep(0),))],
                      Jump(1, [("p1_0", Sym("s"))])),
            1: _block(1, [_stmt("y", "add", (Sym("p1_0"), ConstRep(1)))],
                      Branch(Sym("y"), 1, [("p1_0", Sym("y"))], 2, []),
                      params=["p1_0"]),
            2: _block(2, [], Return(Sym("y"))),
        }
        solution = solve(blocks, 0, TaintAnalysis())
        assert "p1_0" in solution[1][0]
        assert "y" in solution[2][0]

    def test_backward_liveness(self):
        blocks = {
            0: _block(0, [_stmt("a", "id", (ConstRep(1),)),
                          _stmt("b", "id", (ConstRep(2),))],
                      Jump(1, [])),
            1: _block(1, [], Return(Sym("a"))),
        }
        live = live_sets(blocks, 0)
        assert "a" in live[0][1]        # live-out of B0
        assert "b" not in live[0][1]


class TestVerifier:
    def test_clean_cfg_passes(self):
        assert verify_ir(_diamond_with_taint(), 0, collect=True) == []

    def test_missing_successor_block(self):
        blocks = {0: _block(0, [], Jump(99))}
        with pytest.raises(IRVerifyError, match="missing block"):
            verify_ir(blocks, 0)

    def test_unreachable_block(self):
        blocks = {
            0: _block(0, [], Return(ConstRep(0))),
            1: _block(1, [], Return(ConstRep(1))),
        }
        errors = verify_ir(blocks, 0, collect=True)
        assert any("unreachable" in e for e in errors)

    def test_phi_mismatch(self):
        blocks = {
            0: _block(0, [], Jump(1, [("wrong", ConstRep(1))])),
            1: _block(1, [], Return(ConstRep(0)), params=["p1_0"]),
        }
        with pytest.raises(IRVerifyError, match="phi mismatch"):
            verify_ir(blocks, 0)

    def test_use_before_definition(self):
        blocks = {
            0: _block(0, [_stmt("a", "add", (Sym("ghost"), ConstRep(1)))],
                      Return(Sym("a"))),
        }
        with pytest.raises(IRVerifyError, match="before definition"):
            verify_ir(blocks, 0)

    def test_one_branch_definition_not_available_at_join(self):
        # "a" is defined on the true arm only; the join must not see it.
        blocks = {
            0: _block(0, [_stmt("c", "id", (ConstRep(1),))],
                      Branch(Sym("c"), 1, [], 2, [])),
            1: _block(1, [_stmt("a", "id", (ConstRep(7),))], Jump(3, [])),
            2: _block(2, [], Jump(3, [])),
            3: _block(3, [], Return(Sym("a"))),
        }
        errors = verify_ir(blocks, 0, collect=True)
        assert any("uses a before definition" in e for e in errors)

    def test_bad_deopt_metadata(self):
        blocks = {
            0: _block(0, [_stmt("g", "guard", (Sym("c"), 5), Effect.GUARD)],
                      Return(ConstRep(0))),
        }
        errors = verify_ir(blocks, 0, params=("c",), metas=[], collect=True)
        assert any("deopt meta" in e for e in errors)

    def test_corrupting_real_compiled_ir_is_caught(self):
        j = load("def f(x) { if (x > 0) { return x; } return 0 - x; }")
        c = j.compile_function("Main", "f")
        result = c.ir
        assert verify_ir(result.blocks, result.entry_bid,
                         params=result.param_names, metas=result.metas,
                         collect=True) == []
        some_block = result.blocks[max(result.blocks)]
        some_block.terminator = Jump(424242)
        errors = verify_ir(result.blocks, result.entry_bid,
                           params=result.param_names, collect=True)
        assert any("missing block" in e for e in errors)

    def test_verify_ir_option_on_real_compile(self):
        j = load('''
            def f(x) {
              var s = 0; var i = 0;
              while (i < x) { s = s + i; i = i + 1; }
              return s;
            }
        ''', options=CompileOptions(verify_ir=True))
        assert j.compile_function("Main", "f")(5) == 10


class TestDeadCodeElimination:
    def test_dead_pure_removed_effectful_kept(self):
        blocks = {
            0: _block(0, [_stmt("dead", "mul", (ConstRep(2), ConstRep(3))),
                          _stmt("io", "print", (ConstRep(1),), Effect.IO),
                          _stmt("live", "add", (ConstRep(1), ConstRep(1)))],
                      Return(Sym("live"))),
        }
        assert eliminate_dead(blocks, 0) == 1
        ops = [s.op for s in blocks[0].stmts]
        assert ops == ["print", "add"]

    def test_dead_alloc_removed(self):
        blocks = {
            0: _block(0, [_stmt("arr", "new_array", (ConstRep(4),),
                               Effect.ALLOC)],
                      Return(ConstRep(0))),
        }
        assert eliminate_dead(blocks, 0) == 1
        assert blocks[0].stmts == []

    def test_transitively_dead_chain_removed(self):
        blocks = {
            0: _block(0, [_stmt("a", "id", (ConstRep(1),)),
                          _stmt("b", "add", (Sym("a"), ConstRep(1)))],
                      Return(ConstRep(0))),
        }
        assert eliminate_dead(blocks, 0) == 2

    def test_liveness_crosses_blocks(self):
        blocks = {
            0: _block(0, [_stmt("a", "id", (ConstRep(1),))], Jump(1, [])),
            1: _block(1, [], Return(Sym("a"))),
        }
        assert eliminate_dead(blocks, 0) == 0

    def test_redundant_guard_removed(self):
        blocks = {
            0: _block(0, [_stmt("c", "id", (ConstRep(1),)),
                          _stmt("g1", "guard", (Sym("c"), 0), Effect.GUARD),
                          _stmt("g2", "guard", (Sym("c"), 0), Effect.GUARD)],
                      Return(ConstRep(0))),
        }
        assert eliminate_redundant_guards(blocks) == 1
        guards = [s for s in blocks[0].stmts if s.op == "guard"]
        assert len(guards) == 1

    def test_guard_kept_across_residual_call(self):
        blocks = {
            0: _block(0, [_stmt("c", "id", (ConstRep(1),)),
                          _stmt("g1", "guard", (Sym("c"), 0), Effect.GUARD),
                          _stmt("r", "invoke", ("m", Sym("c")), Effect.CALL),
                          _stmt("g2", "guard", (Sym("c"), 0), Effect.GUARD)],
                      Return(ConstRep(0))),
        }
        assert eliminate_redundant_guards(blocks) == 0


class TestFuseBlocks:
    def _chain(self, n):
        blocks = {}
        for i in range(n):
            term = Jump(i + 1) if i < n - 1 else Return(ConstRep(0))
            blocks[i] = _block(i, [_stmt("s%d" % i, "id", (ConstRep(i),))],
                               term)
        return blocks

    def test_chain_collapses_to_entry(self):
        blocks = self._chain(6)
        fuse_blocks(blocks, 0)
        assert list(blocks) == [0]
        assert len(blocks[0].stmts) == 6
        assert isinstance(blocks[0].terminator, Return)

    def test_phi_assigns_become_id_stmts(self):
        blocks = {
            0: _block(0, [_stmt("v", "id", (ConstRep(7),))],
                      Jump(1, [("p1_0", Sym("v"))])),
            1: _block(1, [], Return(Sym("p1_0")), params=["p1_0"]),
        }
        fuse_blocks(blocks, 0)
        assert list(blocks) == [0]
        assert blocks[0].stmts[-1].sym.name == "p1_0"
        assert verify_ir(blocks, 0, collect=True) == []

    def test_merge_block_with_two_preds_not_fused(self):
        blocks = {
            0: _block(0, [_stmt("c", "id", (ConstRep(1),))],
                      Branch(Sym("c"), 1, [], 2, [])),
            1: _block(1, [], Jump(3, [])),
            2: _block(2, [], Jump(3, [])),
            3: _block(3, [], Return(ConstRep(0))),
        }
        fuse_blocks(blocks, 0)
        assert 3 in blocks          # two predecessors: must survive

    def test_self_loop_not_fused(self):
        blocks = {
            0: _block(0, [], Jump(1)),
            1: _block(1, [], Jump(1)),
        }
        fuse_blocks(blocks, 0)
        assert 1 in blocks

    def test_long_chain_fuses_in_linear_time(self):
        """Regression: fusing used to restart its scan after every merge
        (O(n^2) over long unrolled chains). A 20k-block chain must fuse
        in well under the quadratic regime's runtime."""
        blocks = self._chain(20000)
        t0 = time.perf_counter()
        fuse_blocks(blocks, 0)
        elapsed = time.perf_counter() - t0
        assert list(blocks) == [0]
        assert len(blocks[0].stmts) == 20000
        assert elapsed < 5.0        # quadratic restart took minutes


class TestCheckNoAllocPostDCE:
    def test_dead_allocation_passes(self):
        """An allocation DCE removes never reaches the generated code, so
        checkNoAlloc (now post-optimization) accepts it."""
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoAlloc(fun() {
                  var a = newArray(x, 0);
                  return x + 1;
                });
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(4) == 5
        assert "newArray" not in f.source

    def test_escaping_allocation_reports_op_and_provenance(self):
        j = load("def f(x) { return newArray(x, 0); }",
                 options=CompileOptions(check_noalloc=True))
        with pytest.raises(NoAllocError) as exc:
            j.compile_function("Main", "f")
        msg = str(exc.value)
        assert "allocation" in msg
        assert "Main.f" in msg
        assert "bci" in msg
        assert exc.value.sites

    def test_unit_level_pass_on_hand_ir(self):
        noalloc = {"noalloc": True, "src": ("M.f", 3)}
        blocks = {
            0: _block(0, [_stmt("a", "new_array", (ConstRep(4),),
                               Effect.ALLOC, dict(noalloc))],
                      Return(Sym("a"))),
        }
        sites = check_noalloc(blocks)
        assert sites == ["new_array allocation in M.f (bci 3)"]

    def test_guard_reported_as_deopt_point(self):
        flags = {"noalloc": True, "src": ("M.g", 9)}
        blocks = {
            0: _block(0, [_stmt("c", "id", (ConstRep(1),)),
                          _stmt("g", "guard", (Sym("c"), 0), Effect.GUARD,
                                dict(flags))],
                      Return(ConstRep(0))),
        }
        sites = check_noalloc(blocks)
        assert sites == ["deoptimization point (guard) in M.g (bci 9)"]

    def test_staged_slowpath_sites_prepended(self):
        sites = check_noalloc({}, staged_sites=["deopt site X"])
        assert sites == ["deopt site X"]


class TestFlowSensitiveTaint:
    def test_taint_through_loop_header_params(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var s = Lancet.taint(x);
                  var i = 0;
                  while (i < x) { s = s + 1; i = i + 1; }
                  println(s);
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        leak = [m for m in exc.value.leaks if "println" in m]
        assert leak, exc.value.leaks
        assert "IR path:" in leak[0]

    def test_taint_on_one_branch_only_reaches_join(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var s = 0;
                  if (x > 0) { s = Lancet.taint(x); }
                  println(s);
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        assert any("println" in m for m in exc.value.leaks)

    def test_merge_of_untainted_values_stays_clean(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  var t = 0;
                  if (x > 0) { t = 1; } else { t = 2; }
                  println(t);
                  return secret - secret;
                });
              });
            }
        ''')
        f = j.vm.call("Main", "make")
        assert f(3) == 0

    def test_leak_message_includes_source_to_sink_path(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  var derived = secret * 2 + 1;
                  println(derived);
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        leak = exc.value.leaks[0]
        assert "taint source" in leak
        assert " -> " in leak

    def test_branch_leak_survives_block_fusion(self):
        j = load('''
            def make() {
              return Lancet.compile(fun(x) {
                return Lancet.checkNoTaint(fun() {
                  var secret = Lancet.taint(x);
                  var y = secret + 1;
                  if (y > 10) { return 1; }
                  return 0;
                });
              });
            }
        ''')
        with pytest.raises(TaintError) as exc:
            j.vm.call("Main", "make")
        leak = [m for m in exc.value.leaks if "branch" in m]
        assert leak, exc.value.leaks
        assert "IR path:" in leak[0]


class TestAnalyzeApi:
    def test_collects_taint_findings_instead_of_raising(self):
        j = load("def f(x) { var s = Lancet.taint(x); println(s); "
                 "return 0; }",
                 options=CompileOptions(check_taint=True))
        diag = j.analyze("Main", "f")
        assert any(d.kind == "taint" for d in diag.errors())
        assert "JIT lint report" in diag.render()

    def test_collects_noalloc_findings(self):
        j = load("def g(x) { return newArray(x, 0); }",
                 options=CompileOptions(check_noalloc=True))
        diag = j.analyze("Main", "g")
        assert any(d.kind == "noalloc" for d in diag.errors())

    def test_clean_unit_reports_info_only(self):
        j = load("def f(x) { return x * 2 + 1; }")
        diag = j.analyze("Main", "f")
        assert diag.errors() == []
        assert any(d.kind == "dce" for d in diag)

    def test_analyze_guest_closure(self):
        j = load("def make() { return fun(x) => x + 1; }")
        clo = j.vm.call("Main", "make")
        diag = j.analyze(clo)
        assert diag.errors() == []

    def test_to_dict_serializable(self):
        import json
        j = load("def f(x) { return x; }")
        json.dumps(j.analyze("Main", "f").to_dict())

    def test_diagnostics_severity_validated(self):
        with pytest.raises(ValueError):
            Diagnostics().add("fatal", "x", "boom")


class TestAnalysisObservability:
    def test_phase_timings_in_stats(self):
        j = load("def f(x) { return x + 1; }",
                 options=CompileOptions(verify_ir=True))
        j.compile_function("Main", "f")
        phases = j.stats()["phase_timings"]
        assert "analysis.optimize" in phases
        assert "analysis.taint" in phases
        assert "analysis.alloc" in phases
        assert "analysis.verify" in phases

    def test_report_phases_include_analysis(self):
        j = load("def f(x) { return x + 1; }")
        c = j.compile_function("Main", "f")
        assert "analysis.optimize" in c.report.phases


class TestCliAnalyze:
    def test_jit_analyze_flag_prints_lint_report(self, tmp_path, capsys):
        from repro.__main__ import main
        program = tmp_path / "prog.mj"
        program.write_text("def square(x) { return x * x; }")
        assert main(["jit", str(program), "square", "3", "--analyze"]) == 0
        captured = capsys.readouterr()
        assert "9" in captured.out
        assert "JIT lint report" in captured.err

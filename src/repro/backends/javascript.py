"""JavaScript cross-compilation (paper 3.5).

Lancet acts as a bytecode decompilation front-end: guest code is staged
exactly as for native compilation, and the resulting IR is rendered as
JavaScript. Residual virtual calls become JS method calls — this plays the
role of the paper's DOM macro (``invokeMethod`` on classes inheriting the
``JS`` marker emits ``receiver.name(args)``).

Usage::

    js = cross_compile_js(jit, "Main", "draw")   # or a guest closure
    print(js)

Limitations (as in the paper: "only core functionality of a JavaScript
cross-compiler"): no guest-class translation (object-constructing code
should be inlined/scalar-replaced away), no deoptimization (guards are
rejected), statics must be primitives.
"""

from __future__ import annotations

from repro.errors import CompilationError
from repro.lms.ir import Branch, Jump, Return
from repro.lms.rep import ConstRep, StaticRep, Sym
from repro.pipeline.backend import Backend, register_backend

_PRELUDE = """\
function __div(a, b) { var q = a / b; return (Number.isInteger(a) && Number.isInteger(b)) ? Math.trunc(q) : q; }
function __mod(a, b) { return a - __div(a, b) * b; }
"""

_INFIX = {"add": "+", "sub": "-", "mul": "*", "eq": "===", "ne": "!==",
          "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_NATIVES = {
    ("Builtins", "println"): "console.log({0})",
    ("Builtins", "print"): "console.log({0})",
    ("Builtins", "str"): "String({0})",
    ("Builtins", "len"): "({0}).length",
    ("Builtins", "charCode"): "({0}).charCodeAt({1})",
    ("Builtins", "substring"): "({0}).substring({1}, {2})",
    ("Builtins", "split"): "({0}).split({1})",
    ("Math", "exp"): "Math.exp({0})",
    ("Math", "log"): "Math.log({0})",
    ("Math", "sqrt"): "Math.sqrt({0})",
    ("Math", "abs"): "Math.abs({0})",
    ("Math", "min"): "Math.min({0}, {1})",
    ("Math", "max"): "Math.max({0}, {1})",
    ("Math", "pow"): "Math.pow({0}, {1})",
    ("Math", "floor"): "Math.floor({0})",
}


@register_backend
class JSBackend(Backend):
    """Backend-protocol face of the JS renderer: consumes the canonical
    post-PassManager IR (same input as the Python backend)."""

    name = "js"

    def emit(self, unit, **kwargs):
        return render_js(unit.result, kwargs.get("fn_name") or unit.name)


def cross_compile_js(jit, class_name, method_name=None, fn_name=None):
    """Cross-compile a guest static method (or closure) to JavaScript
    source; returns the JS text."""
    from repro.pipeline.backend import CompilationUnit, get_backend
    if method_name is None:
        compiled = jit.compile_closure(class_name)   # a closure object
        unit_name = fn_name or "apply"
    else:
        compiled = jit.compile_function(class_name, method_name)
        unit_name = fn_name or method_name
    unit = CompilationUnit(result=compiled.ir, name=unit_name, jit=jit)
    return get_backend("js").emit(unit)


def render_js(result, fn_name):
    blocks = result.blocks
    params = ", ".join(result.param_names)
    lines = [_PRELUDE, "function %s(%s) {" % (fn_name, params)]
    order = sorted(blocks)
    lines.append("  var __L = %d;" % result.entry_bid)
    lines.append("  while (true) { switch (__L) {")
    for bid in order:
        block = blocks[bid]
        lines.append("  case %d: {" % bid)
        for stmt in block.stmts:
            lines.append("    " + _stmt_js(stmt))
        lines.extend("    " + ln for ln in _term_js(block.terminator))
        lines.append("  }")
    lines.append("  } }")
    lines.append("}")
    return "\n".join(lines)


def _rep(r):
    if isinstance(r, Sym):
        return r.name
    if isinstance(r, ConstRep):
        v = r.value
        if v is None:
            return "null"
        if v is True:
            return "true"
        if v is False:
            return "false"
        if isinstance(v, str):
            return '"%s"' % v.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")
        return repr(v)
    if isinstance(r, StaticRep):
        raise CompilationError(
            "JS backend: cannot ship heap object %r; specialize it away "
            "or pass it as a parameter" % (r.obj,))
    raise AssertionError(r)


def _stmt_js(stmt):
    op = stmt.op
    r = _rep
    t = stmt.sym.name
    if op in _INFIX:
        return "var %s = %s %s %s;" % (t, r(stmt.args[0]), _INFIX[op],
                                       r(stmt.args[1]))
    if op == "div":
        return "var %s = __div(%s, %s);" % (t, r(stmt.args[0]),
                                            r(stmt.args[1]))
    if op == "mod":
        return "var %s = __mod(%s, %s);" % (t, r(stmt.args[0]),
                                            r(stmt.args[1]))
    if op == "concat":
        return "var %s = %s + %s;" % (t, r(stmt.args[0]), r(stmt.args[1]))
    if op == "neg":
        return "var %s = -%s;" % (t, r(stmt.args[0]))
    if op == "not":
        return "var %s = !%s;" % (t, r(stmt.args[0]))
    if op == "id":
        return "var %s = %s;" % (t, r(stmt.args[0]))
    if op == "alen":
        return "var %s = (%s).length;" % (t, r(stmt.args[0]))
    if op == "aload":
        return "var %s = %s[%s];" % (t, r(stmt.args[0]), r(stmt.args[1]))
    if op == "astore":
        return "%s[%s] = %s; var %s = null;" % (
            r(stmt.args[0]), r(stmt.args[1]), r(stmt.args[2]), t)
    if op == "array_lit":
        return "var %s = [%s];" % (t, ", ".join(r(x) for x in stmt.args))
    if op == "new_array":
        return "var %s = new Array(%s).fill(null);" % (t, r(stmt.args[0]))
    if op == "getfield":
        return "var %s = %s.%s;" % (t, r(stmt.args[0]), stmt.args[1])
    if op == "putfield":
        return "%s.%s = %s; var %s = null;" % (
            r(stmt.args[0]), stmt.args[1], r(stmt.args[2]), t)
    if op == "invoke":
        # The paper's DOM macro: residual method calls become JS calls.
        name = stmt.args[0]
        rendered = ", ".join(r(x) for x in stmt.args[2:])
        return "var %s = %s.%s(%s);" % (t, r(stmt.args[1]), name, rendered)
    if op == "native":
        nat = stmt.args[0]
        template = _NATIVES.get((nat.class_name, nat.name))
        if template is None:
            raise CompilationError("JS backend: no translation for native "
                                   "%s.%s" % (nat.class_name, nat.name))
        expr = template.format(*[r(x) for x in stmt.args[1:]])
        return "var %s = %s;" % (t, expr)
    raise CompilationError("JS backend: cannot translate op %r "
                           "(guards/deopt are host-only)" % (op,))


def _term_js(term):
    if isinstance(term, Jump):
        return _assigns_js(term.phi_assigns) + \
            ["__L = %d; continue;" % term.target]
    if isinstance(term, Branch):
        out = ["if (%s) {" % _rep(term.cond)]
        out += ["  " + ln for ln in _assigns_js(term.true_assigns)]
        out.append("  __L = %d; continue;" % term.true_target)
        out.append("} else {")
        out += ["  " + ln for ln in _assigns_js(term.false_assigns)]
        out.append("  __L = %d; continue;" % term.false_target)
        out.append("}")
        return out
    if isinstance(term, Return):
        return ["return %s;" % _rep(term.value)]
    raise CompilationError("JS backend: cannot translate terminator %r"
                           % (term,))


def _assigns_js(assigns):
    return ["var %s = %s;" % (name, _rep(rep)) for name, rep in assigns]

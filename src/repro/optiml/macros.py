"""OptiML accelerator macros (paper Fig. 8).

Each macro intercepts a bulk operator of the guest OptiML library during
Lancet compilation and replaces it with a Delite parallel op::

    object OptiMLMacros extends ClassMacros {
      def sum(...) = new DeliteOpMapReduce[Int,DV] { ... map = x => blockl(x) }
    }

User-closure operators (``vmap``/``vzip``/``mapArr``/``reduceSum``/
``zipWithIndex``) compile the closure into a :class:`Kernel` via ``funR``-
style staging (the closure must be static — otherwise the macro declines
and the library implementation is inlined instead). Fixed patterns
(``nearest2d`` etc.) map to tuned builtin ops, as Delite ships tuned
pattern implementations.
"""

from __future__ import annotations

from repro.absint.absval import Static
from repro.delite import ops as dops
from repro.delite.kernels import Kernel
from repro.errors import MaterializeError
from repro.lms.ir import Effect
from repro.macros.api import MacroContext  # noqa: F401 (doc reference)
from repro.optiml import OPTIML_MODULE
from repro.runtime.objects import Obj, new_instance


def _emit_delite(ctx, op, arg_reps):
    for rep in arg_reps:
        ctx.escape(rep)   # op inputs become visible to residual code
    return ctx.emit("delite", (op,) + tuple(arg_reps), effect=Effect.ALLOC,
                    absval=None)


def _static_closure(ctx, rep):
    """Materialize a closure argument if it is compile-time static."""
    try:
        closure = ctx.eval_m(rep)
    except MaterializeError:
        return None
    return closure if isinstance(closure, Obj) else None


def _kernel_for(ctx, closure_rep, cache={}):
    closure = _static_closure(ctx, closure_rep)
    if closure is None:
        return None
    hit = cache.get(id(closure))
    if hit is None:
        hit = Kernel.from_closure(ctx.vm.jit, closure)
        cache[id(closure)] = hit
    return hit


# -- user-closure operators ---------------------------------------------------

def vmap(ctx, recv, args):
    kernel = _kernel_for(ctx, args[1])
    if kernel is None:
        return None                      # fall back to the library loop
    return _emit_delite(ctx, dops.MapOp(kernel), [args[0]])


def vzip(ctx, recv, args):
    kernel = _kernel_for(ctx, args[2])
    if kernel is None:
        return None
    return _emit_delite(ctx, dops.ZipMapOp(kernel), [args[0], args[1]])


def map_arr(ctx, recv, args):
    kernel = _kernel_for(ctx, args[1])
    if kernel is None:
        return None
    return _emit_delite(ctx, dops.MapOp(kernel), [args[0]])


def reduce_sum(ctx, recv, args):
    return _emit_delite(ctx, dops.ReduceOp(None), [args[0]])


def vsum(ctx, recv, args):
    return _emit_delite(ctx, dops.VSUM, [args[0]])


def dot(ctx, recv, args):
    return _emit_delite(ctx, dops.DOT, [args[0], args[1]])


def zip_with_index(ctx, recv, args):
    vm = ctx.vm
    pair_cls = vm.linker.classes.get("Pair")

    def make_pair(x, i):
        p = new_instance(pair_cls)
        p.fields["fst"] = x
        p.fields["snd"] = i
        return p

    return _emit_delite(ctx, dops.ZipWithIndexOp(pair_factory=make_pair),
                        [args[0]])


# -- fixed patterns --------------------------------------------------------------

def sum_range(ctx, recv, args):
    """The paper's Fig. 8 macro::

        def sum(...)(block) = new DeliteOpMapReduce { map = x => blockl(x) }
    """
    kernel = _kernel_for(ctx, args[2])
    if kernel is None:
        return None
    return _emit_delite(ctx, dops.RangeMapReduceOp(kernel),
                        [args[0], args[1]])


def nearest2d(ctx, recv, args):
    return _emit_delite(ctx, dops.NEAREST_2D, args)


def cluster_sums2d(ctx, recv, args):
    # Returns [sx, sy, cnt]; the builtin produces a stacked (3, k) array,
    # which guest indexing handles row-wise.
    return _emit_delite(ctx, dops.CLUSTER_SUMS_2D,
                        [args[0], args[1], args[2], args[3]])


def mat_vec_cols(ctx, recv, args):
    cols_av = ctx.eval_abs(args[0])
    if not (isinstance(cols_av, Static) and isinstance(cols_av.obj, list)):
        return None                      # need the column count statically
    d = len(cols_av.obj)
    col_reps = [ctx.lift(c) for c in cols_av.obj]
    return _emit_delite(ctx, dops.mat_vec_cols(d), col_reps + [args[1]])


def sigmoid_v(ctx, recv, args):
    return _emit_delite(ctx, dops.SIGMOID, [args[0]])


def vsub(ctx, recv, args):
    return _emit_delite(ctx, dops.VSUB, [args[0], args[1]])


def weighted_col_sums(ctx, recv, args):
    cols_av = ctx.eval_abs(args[0])
    if not (isinstance(cols_av, Static) and isinstance(cols_av.obj, list)):
        return None
    d = len(cols_av.obj)
    col_reps = [ctx.lift(c) for c in cols_av.obj]
    return _emit_delite(ctx, dops.weighted_col_sums(d),
                        col_reps + [args[1]])


def vadd_arr(ctx, recv, args):
    return _emit_delite(ctx, dops.VADD, [args[0], args[1]])


def vscale_arr(ctx, recv, args):
    return _emit_delite(ctx, dops.VSCALE, [args[0], args[1]])


def row_sums(ctx, recv, args):
    return _emit_delite(ctx, dops.ROW_SUMS, [args[0], args[1], args[2]])


# -- virtual-method macros on the OO layer (paper Fig. 8's
#    `def sum(self: Rep[OptiMLCompanion], ...)`) -------------------------------

def dv_sum(ctx, recv, args):
    return _emit_delite(ctx, dops.VSUM, [ctx.get_field(recv, "data")])


def dv_dot(ctx, recv, args):
    return _emit_delite(ctx, dops.DOT, [ctx.get_field(recv, "data"),
                                        ctx.get_field(args[0], "data")])


_MACROS = {
    "vmap": vmap,
    "sumRange": sum_range,
    "vzip": vzip,
    "mapArr": map_arr,
    "reduceSum": reduce_sum,
    "vsum": vsum,
    "dot": dot,
    "zipWithIndex": zip_with_index,
    "nearest2d": nearest2d,
    "clusterSums2d": cluster_sums2d,
    "matVecCols": mat_vec_cols,
    "sigmoidV": sigmoid_v,
    "vsub": vsub,
    "weightedColSums": weighted_col_sums,
    "vaddArr": vadd_arr,
    "vscaleArr": vscale_arr,
    "rowSums": row_sums,
}

# Virtual macros, keyed by guest class (registry walks superclasses).
_VIRTUAL_MACROS = {
    ("DenseVector", "sum"): dv_sum,
    ("DenseVector", "dot"): dv_dot,
}


def install_optiml_macros(jit):
    """Install accelerator macros for the OptiML library
    (``Lancet.install(classOf[OptiMLCompanion], OptiMLMacros)``)."""
    for name, fn in _MACROS.items():
        jit.install_macro(OPTIML_MODULE, name, fn)
    for (cls, name), fn in _VIRTUAL_MACROS.items():
        jit.install_macro(cls, name, fn)


def uninstall_optiml_macros(jit):
    for name in _MACROS:
        jit.macros.uninstall(OPTIML_MODULE, name)
    for cls, name in _VIRTUAL_MACROS:
        jit.macros.uninstall(cls, name)

"""A small CPython bytecode assembler for the baseline tier.

Emits real code objects via :class:`types.CodeType` construction — the
same relocation/label discipline as :mod:`repro.bytecode.assembler`, but
targeting the host's instruction set instead of the MiniJVM's. Only the
slice of CPython 3.11 needed by the baseline templates is supported:

* per-opcode inline cache entries (``CACHE``) are inserted from
  ``opcode._inline_cache_entries``;
* all jumps are relative (measured in code units from the end of the
  jump instruction *including* its caches); backward jumps negate the
  displacement;
* ``EXTENDED_ARG`` prefixes are resolved to a fixpoint, since widening
  one instruction can push a jump target across a 256-unit boundary.

Assembly sits directly on the tier-1 compile-latency path (the whole
point of the baseline is a ~10x cheaper compile), so the encoding works
on pre-resolved ``(opcode, arg, jump-target, cache-count)`` entries:
opname and cache-count lookups happen once at emission, never per
layout round.

The emitted code objects carry empty line/exception tables (there is no
guest source mapping to preserve — tracebacks surface through the
runtime helpers, which are ordinary Python functions) and marshal
cleanly, which is what lets baseline units persist in the on-disk code
cache.
"""

from __future__ import annotations

import opcode as _opcode
import sys
import types

#: the CPython version this assembler targets. The baseline tier
#: degrades gracefully elsewhere (back to the staged tier-1 compile)
#: rather than chasing each release's bytecode format.
SUPPORTED = sys.version_info[:2] == (3, 11)

_OPMAP = _opcode.opmap
_CACHE = _OPMAP.get("CACHE", 0)
_EXT = _OPMAP["EXTENDED_ARG"]
_ICE = getattr(_opcode, "_inline_cache_entries", None)

#: opname -> (opcode, inline-cache entries), resolved once at import.
_OPINFO = {name: (op, _ICE[op] if _ICE is not None else 0)
           for name, op in _OPMAP.items()}

#: pre-rendered CACHE filler, indexed by entry count.
_CACHE_BYTES = [bytes((_CACHE, 0)) * k
                for k in range((max(_ICE) if _ICE else 0) + 1)]

#: jump opcode per (backward, condition): condition None is an
#: unconditional jump, True/False are pop-and-jump-if-truthy/falsy.
_JUMPS = {
    (False, None): _OPINFO.get("JUMP_FORWARD", (0, 0)),
    (True, None): _OPINFO.get("JUMP_BACKWARD", (0, 0)),
    (False, True): _OPINFO.get("POP_JUMP_FORWARD_IF_TRUE", (0, 0)),
    (True, True): _OPINFO.get("POP_JUMP_BACKWARD_IF_TRUE", (0, 0)),
    (False, False): _OPINFO.get("POP_JUMP_FORWARD_IF_FALSE", (0, 0)),
    (True, False): _OPINFO.get("POP_JUMP_BACKWARD_IF_FALSE", (0, 0)),
}


class PyAssembler:
    """Collects host instructions + labels, assembles a code object.

    Instructions are emitted with :meth:`emit` (literal opname + arg),
    :meth:`jump` (label-relative control flow, direction declared by the
    caller), and the convenience const/name/global helpers. Labels are
    arbitrary hashable values bound to the *next* instruction by
    :meth:`mark`. Non-jump entries are immutable tuples, so callers may
    replay cached instruction sequences with ``instrs.extend``.
    """

    def __init__(self):
        self.instrs = []        # (op, arg, target-label-or-None, caches)
        self.labels = {}        # label -> instruction index
        self._jump_ix = []      # indices of jump entries, for _resolve
        self._consts = []
        self._const_index = {}  # (type, value) -> index
        self._names = []
        self._name_index = {}

    # -- pools -----------------------------------------------------------------

    def const(self, value):
        """Intern ``value`` in the constants pool (type-aware dedup, so
        ``1``/``True``/``1.0`` stay distinct)."""
        key = (type(value), value)
        idx = self._const_index.get(key)
        if idx is None:
            idx = len(self._consts)
            self._consts.append(value)
            self._const_index[key] = idx
        return idx

    def name(self, n):
        idx = self._name_index.get(n)
        if idx is None:
            idx = len(self._names)
            self._names.append(n)
            self._name_index[n] = idx
        return idx

    # -- emission --------------------------------------------------------------

    def emit(self, opname, arg=0):
        op, caches = _OPINFO[opname]
        self.instrs.append((op, arg, None, caches))

    def emit_const(self, value):
        self.emit("LOAD_CONST", self.const(value))

    def emit_global(self, n):
        """LOAD_GLOBAL with the push-NULL bit set (3.11 call protocol:
        NULL + callable + args)."""
        self.emit("LOAD_GLOBAL", (self.name(n) << 1) | 1)

    def mark(self, label):
        self.labels[label] = len(self.instrs)

    def jump(self, label, cond=None, backward=False):
        """Emit a jump to ``label``. The caller declares the direction —
        guest lowering is monotone, so the guest-bytecode comparison
        (``target <= i``) is also the host direction."""
        op, caches = _JUMPS[(backward, cond)]
        self._jump_ix.append(len(self.instrs))
        self.instrs.append([op, 0, label, caches])

    # -- assembly --------------------------------------------------------------

    def _resolve(self):
        """Rewrite jump labels to concrete instruction indices."""
        labels = self.labels
        instrs = self.instrs
        for j in self._jump_ix:
            entry = instrs[j]
            entry[2] = labels[entry[2]]

    def _layout(self):
        """Fixpoint EXTENDED_ARG layout: per-instruction code-unit
        offsets, widening until no argument outgrows its encoding. Only
        jumps and wide literal args can ever need a prefix, so the
        widening pass scans just those."""
        instrs = self.instrs
        n = len(instrs)
        ext = [0] * n
        offs = [0] * n
        cands = [i for i, e in enumerate(instrs)
                 if e[2] is not None or e[1] > 255]
        for _ in range(5):
            pos = 0
            for i, e in enumerate(instrs):
                offs[i] = pos
                pos += 1 + ext[i] + e[3]
            changed = False
            for i in cands:
                e = instrs[i]
                target = e[2]
                if target is not None:
                    value = offs[target] - (offs[i] + 1 + ext[i] + e[3])
                    if value < 0:
                        value = -value
                else:
                    value = e[1]
                need = 0
                v = value >> 8
                while v:
                    need += 1
                    v >>= 8
                if need > ext[i]:
                    ext[i] = need
                    changed = True
            if not changed:
                return offs, ext
        raise AssertionError("EXTENDED_ARG layout did not converge")

    def assemble(self, argcount, varnames, stacksize, name,
                 filename="<baseline>"):
        if not SUPPORTED:  # pragma: no cover - callers gate on SUPPORTED
            raise RuntimeError("baseline assembler requires CPython 3.11")
        self._resolve()
        offs, ext = self._layout()
        out = bytearray()
        append = out.append
        cache_bytes = _CACHE_BYTES
        for i, (op, arg, target, caches) in enumerate(self.instrs):
            e = ext[i]
            if target is not None:
                value = offs[target] - (offs[i] + 1 + e + caches)
                if value < 0:
                    value = -value       # backward opcodes negate
            else:
                value = arg
            if e:
                for k in range(e, 0, -1):
                    append(_EXT)
                    append((value >> (8 * k)) & 0xFF)
                value &= 0xFF
            append(op)
            append(value)
            if caches:
                out += cache_bytes[caches]
        return types.CodeType(
            argcount, 0, 0, len(varnames), stacksize,
            3,                       # CO_OPTIMIZED | CO_NEWLOCALS
            bytes(out), tuple(self._consts), tuple(self._names),
            tuple(varnames), filename, name, name, 1, b"", b"", (), ())

"""MiniJ frontend: lexer, parser, compiler, lambda lifting."""

import pytest

from repro.errors import MiniJCompileError, MiniJSyntaxError
from repro.frontend import ast, parse
from repro.frontend.compiler import compile_source
from repro.frontend.lexer import tokenize
from repro.interp import Interpreter


def run(source, fn="main", args=()):
    vm = Interpreter()
    vm.load_source(source)
    return vm.call("Main", fn, list(args)), vm


class TestLexer:
    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 10")
        assert [t.value for t in toks[:-1]] == [1, 2.5, 1000.0, 10]
        assert toks[0].kind == "int"
        assert toks[1].kind == "float"

    def test_string_escapes(self):
        toks = tokenize(r'"a\nb\"c\\d"')
        assert toks[0].value == 'a\nb"c\\d'

    def test_comments(self):
        toks = tokenize("1 // line\n/* block\nstill */ 2")
        assert [t.value for t in toks[:-1]] == [1, 2]

    def test_keywords_vs_names(self):
        toks = tokenize("class classy")
        assert toks[0].kind == "kw"
        assert toks[1].kind == "name"

    def test_two_char_ops(self):
        toks = tokenize("== != <= >= && || =>")
        assert [t.value for t in toks[:-1]] == \
            ["==", "!=", "<=", ">=", "&&", "||", "=>"]

    def test_line_tracking(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_unterminated_string(self):
        with pytest.raises(MiniJSyntaxError, match="unterminated"):
            tokenize('"abc')

    def test_bad_char(self):
        with pytest.raises(MiniJSyntaxError):
            tokenize("a @ b")


class TestParser:
    def test_class_structure(self):
        p = parse("class A extends B { var x; val y, z; def m(a) { } }")
        cls = p.classes[0]
        assert cls.name == "A"
        assert cls.super_name == "B"
        assert cls.fields == [("x", False), ("y", True), ("z", True)]
        assert cls.methods[0].name == "m"

    def test_precedence(self):
        p = parse("def f() { return 1 + 2 * 3 < 7 && true; }")
        e = p.functions[0].body[0].value
        assert isinstance(e, ast.BinOp) and e.op == "&&"
        lhs = e.lhs
        assert lhs.op == "<"
        assert lhs.lhs.op == "+"
        assert lhs.lhs.rhs.op == "*"

    def test_else_if_chain(self):
        p = parse("def f(x) { if (x) { } else if (x) { } else { } }")
        stmt = p.functions[0].body[0]
        assert isinstance(stmt.orelse[0], ast.If)

    def test_lambda_forms(self):
        p = parse("def f() { var g = fun(x) => x; var h = fun(x, y) { return x; } ; }")
        g = p.functions[0].body[0].init
        assert isinstance(g, ast.Lambda)
        assert isinstance(g.body[0], ast.Return)

    def test_call_chains(self):
        p = parse("def f(o) { return o.m(1)[2].g; }")
        e = p.functions[0].body[0].value
        assert isinstance(e, ast.FieldAccess)
        assert isinstance(e.recv, ast.Index)
        assert isinstance(e.recv.arr, ast.MethodCall)

    def test_closure_value_call(self):
        p = parse("def f(o) { return o.get()(3); }")
        e = p.functions[0].body[0].value
        assert isinstance(e, ast.MethodCall) and e.name == "apply"

    def test_invalid_assignment_target(self):
        with pytest.raises(MiniJSyntaxError, match="assignment target"):
            parse("def f() { 1 + 2 = 3; }")

    def test_negative_literal_folded(self):
        p = parse("def f() { return -5; }")
        assert p.functions[0].body[0].value.value == -5

    def test_missing_semicolon(self):
        with pytest.raises(MiniJSyntaxError):
            parse("def f() { return 1 }")


class TestCompilerSemantics:
    def test_arith_and_control(self):
        result, __ = run('''
            def main() {
              var s = 0;
              var i = 0;
              while (i < 10) {
                if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
                i = i + 1;
              }
              return s;
            }
        ''')
        assert result == sum(range(0, 10, 2)) - 5

    def test_for_over_array(self):
        result, __ = run('''
            def main() {
              var total = 0;
              for (x in [1, 2, 3, 4]) { total = total + x; }
              return total;
            }
        ''')
        assert result == 10

    def test_short_circuit_and(self):
        result, __ = run('''
            def sideEffect(b) { println("hit"); return b; }
            def main() {
              if (false && sideEffect(true)) { return 1; }
              return 0;
            }
        ''')
        result, vm = run('''
            def sideEffect(b) { println("hit"); return b; }
            def main() {
              if (false && sideEffect(true)) { return 1; }
              return 0;
            }
        ''')
        assert result == 0
        assert vm.output() == ""   # rhs never evaluated

    def test_short_circuit_or(self):
        result, vm = run('''
            def sideEffect(b) { println("hit"); return b; }
            def main() {
              if (true || sideEffect(true)) { return 1; }
              return 0;
            }
        ''')
        assert result == 1
        assert vm.output() == ""

    def test_closure_captures_by_value(self):
        result, __ = run('''
            def main() {
              var x = 1;
              var f = fun() => x;
              x = 99;
              return f();
            }
        ''')
        assert result == 1   # captured at creation

    def test_nested_closures(self):
        result, __ = run('''
            def main() {
              var a = 1;
              var mk = fun(b) => fun(c) => a + b + c;
              var g = mk(10);
              return g(100);
            }
        ''')
        assert result == 111

    def test_lambda_captures_this(self):
        result, __ = run('''
            class C {
              var v;
              def init(v) { this.v = v; }
              def getter() { return fun() => this.v; }
            }
            def main() {
              var c = new C(42);
              var g = c.getter();
              return g();
            }
        ''')
        assert result == 42

    def test_sibling_method_call(self):
        result, __ = run('''
            class C {
              def twice(x) { return x * 2; }
              def quad(x) { return twice(twice(x)); }
            }
            def main() { return new C().quad(3); }
        ''')
        assert result == 12

    def test_assign_to_captured_rejected(self):
        with pytest.raises(MiniJCompileError, match="captured"):
            compile_source("def f() { var x = 1; var g = fun() { x = 2; }; }")

    def test_unknown_variable_rejected(self):
        with pytest.raises(MiniJCompileError, match="unknown variable"):
            compile_source("def f() { return nope; }")

    def test_unknown_function_rejected(self):
        with pytest.raises(MiniJCompileError, match="unknown function"):
            compile_source("def f() { return nope(); }")

    def test_val_field_assignment_outside_init_rejected(self):
        with pytest.raises(MiniJCompileError, match="val field"):
            compile_source('''
                class C { val x; def init() { this.x = 1; }
                          def bad() { this.x = 2; } }
            ''')

    def test_val_field_assignable_in_init(self):
        compile_source("class C { val x; def init() { this.x = 1; } }")

    def test_this_in_static_rejected(self):
        with pytest.raises(MiniJCompileError, match="static"):
            compile_source("def f() { return this; }")

    def test_forward_reference(self):
        result, __ = run('''
            def main() { return later(); }
            def later() { return 7; }
        ''')
        assert result == 7

    def test_block_scoping_shadowing(self):
        result, __ = run('''
            def main() {
              var x = 1;
              if (true) { var x = 2; }
              return x;
            }
        ''')
        assert result == 1

    def test_string_concat_chain(self):
        result, __ = run('def main() { return "a" + 1 + "b" + true; }')
        assert result == "a1btrue"

    def test_static_call_other_class(self):
        result, __ = run('''
            class Util { def helper() { return 5; } }
            def main() { return new Util().helper() + Math.min(1, 2); }
        ''')
        assert result == 6

    def test_lancet_identity_semantics_interpreted(self):
        # Without a JIT attached, Lancet.* are identities.
        result, __ = run('''
            def main() {
              var n = Lancet.freeze(2 + 3);
              var m = Lancet.unroll([1, 2])[0];
              var k = 0;
              if (Lancet.speculate(n == 5)) { k = 1; }
              return n + m + k;
            }
        ''')
        assert result == 7

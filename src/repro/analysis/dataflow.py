"""A generic worklist dataflow solver over the staged-IR CFG.

An analysis subclasses :class:`ForwardAnalysis` or
:class:`BackwardAnalysis` and provides lattice operations (``bottom``,
``join``) plus a per-block ``transfer`` function. :func:`solve` iterates a
worklist to fixpoint and returns the value at every block boundary.

Forward analyses may additionally override ``edge_value`` to specialize
the value flowing along one edge — this is how block-parameter phis are
modelled: the predecessor's terminator assigns ``(param, rep)`` pairs, so
facts about ``rep`` in the predecessor become facts about ``param`` in the
successor (see :mod:`repro.analysis.taint`).

Values must be treated as immutable: ``transfer``/``join`` return new
values rather than mutating their inputs, so the solver can compare
old/new with ``==`` for the change test.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.cfg import predecessors, reverse_postorder


class ForwardAnalysis:
    """Facts flow entry → exit; ``transfer`` maps a block's IN to its OUT."""

    direction = "forward"

    def boundary(self, blocks, entry_id):
        """Initial IN value of the entry block."""
        return self.bottom()

    def bottom(self):
        """The 'no information yet' lattice value."""
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, block, value):
        raise NotImplementedError

    def edge_value(self, block, succ_id, out_value):
        """The value flowing along the edge ``block → succ_id``; defaults
        to the block's OUT value."""
        return out_value


class BackwardAnalysis:
    """Facts flow exit → entry; ``transfer`` maps a block's OUT to its IN."""

    direction = "backward"

    def boundary(self, blocks, entry_id):
        """Initial OUT value of exit blocks."""
        return self.bottom()

    def bottom(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def transfer(self, block, value):
        raise NotImplementedError


def solve(blocks, entry_id, analysis):
    """Run ``analysis`` to fixpoint; returns ``{block_id: (in, out)}``.

    Unreachable blocks keep their ``bottom`` boundary value. The worklist
    is seeded in reverse postorder (forward) or postorder (backward) so
    acyclic regions converge in one sweep; loops iterate until stable.
    """
    if analysis.direction == "forward":
        return _solve_forward(blocks, entry_id, analysis)
    return _solve_backward(blocks, entry_id, analysis)


def _solve_forward(blocks, entry_id, analysis):
    preds = predecessors(blocks)
    order = reverse_postorder(blocks, entry_id)
    in_val = {bid: analysis.bottom() for bid in blocks}
    out_val = {}
    if entry_id in blocks:
        in_val[entry_id] = analysis.boundary(blocks, entry_id)
    for bid in blocks:
        out_val[bid] = analysis.transfer(blocks[bid], in_val[bid])

    work = deque(order)
    queued = set(order)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = blocks[bid]
        merged = analysis.boundary(blocks, entry_id) if bid == entry_id \
            else analysis.bottom()
        for pred in preds[bid]:
            edge = analysis.edge_value(blocks[pred], bid, out_val[pred])
            merged = analysis.join(merged, edge)
        if merged != in_val[bid] or bid not in out_val:
            in_val[bid] = merged
        new_out = analysis.transfer(block, merged)
        if new_out != out_val[bid]:
            out_val[bid] = new_out
            for succ in block.terminator.successors():
                if succ in blocks and succ not in queued:
                    work.append(succ)
                    queued.add(succ)
    return {bid: (in_val[bid], out_val[bid]) for bid in blocks}


def _solve_backward(blocks, entry_id, analysis):
    order = reverse_postorder(blocks, entry_id)
    # Postorder seeds backward problems efficiently; include any blocks
    # unreachable from the entry at the end so they still get values.
    seed = list(reversed(order)) + [b for b in blocks if b not in set(order)]
    out_val = {bid: analysis.boundary(blocks, entry_id) for bid in blocks}
    in_val = {}
    for bid in blocks:
        in_val[bid] = analysis.transfer(blocks[bid], out_val[bid])

    preds = predecessors(blocks)
    work = deque(seed)
    queued = set(seed)
    while work:
        bid = work.popleft()
        queued.discard(bid)
        block = blocks[bid]
        merged = analysis.boundary(blocks, entry_id)
        for succ in block.terminator.successors():
            if succ in blocks:
                merged = analysis.join(merged, in_val[succ])
        out_val[bid] = merged
        new_in = analysis.transfer(block, merged)
        if new_in != in_val[bid]:
            in_val[bid] = new_in
            for pred in preds[bid]:
                if pred not in queued:
                    work.append(pred)
                    queued.add(pred)
    return {bid: (in_val[bid], out_val[bid]) for bid in blocks}

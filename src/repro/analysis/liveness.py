"""Liveness — the single home for both liveness flavours.

Two consumers, one module (they used to live apart, in ``repro.compiler``
and here, and drifted):

* **IR-symbol liveness** (:class:`LivenessAnalysis` / :func:`live_sets`):
  backward may-analysis over staged-IR symbol names, consumed by the
  effect-aware DCE pass the PassManager runs.
* **Bytecode local-slot liveness** (:func:`live_in_sets` / :func:`live_at`):
  per-bci live local slots of a guest method, consumed by the staged
  interpreter to null out dead slots at block boundaries and in deopt
  metadata (allocation sinking + merge precision).
"""

from __future__ import annotations

from repro.analysis.cfg import stmt_uses, term_uses
from repro.analysis.dataflow import BackwardAnalysis, solve
from repro.bytecode.opcodes import Op
from repro.lms.ir import Effect

#: Effects whose statements may be deleted when their result is unused.
REMOVABLE_EFFECTS = (Effect.PURE, Effect.ALLOC)


def pinned_effectful(stmt):
    """A statement whose removable-looking effect hides a real one: a
    Delite launch stages as ``Effect.ALLOC``, but its kernel may write
    captured state — deleting it when the result is unused would drop
    those writes. The kernel summary (:mod:`repro.analysis.parsafe`)
    decides; unproven kernels stay pinned."""
    if stmt.op != "delite":
        return False
    from repro.analysis.parsafe import delite_write_free
    return not delite_write_free(stmt)


class LivenessAnalysis(BackwardAnalysis):
    """Live symbol names at each block boundary (may-analysis, union join).

    The transfer function is effect-aware: a statement's arguments only
    become live if the statement itself is live — it has a non-removable
    effect, or its result is live below. This makes the fixpoint directly
    usable for dead-code elimination (chains of dead pure statements never
    mark each other live).
    """

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, out_value):
        live = set(out_value)
        live.update(term_uses(block.terminator))
        for stmt in reversed(block.stmts):
            name = stmt.sym.name
            if stmt.effect not in REMOVABLE_EFFECTS or name in live \
                    or pinned_effectful(stmt):
                live.discard(name)
                live.update(stmt_uses(stmt))
            else:
                live.discard(name)
        for param in block.params:
            live.discard(param)
        return frozenset(live)


def live_sets(blocks, entry_id):
    """``{block_id: (live_in, live_out)}`` of symbol names."""
    return solve(blocks, entry_id, LivenessAnalysis())


# -- bytecode local-slot liveness ---------------------------------------------

def live_in_sets(method):
    """Return a list of frozensets: the local slots live at each bci."""
    cached = getattr(method, "_live_in_sets", None)
    if cached is not None:
        return cached

    code = method.code
    n = len(code)
    succs = []
    for i, ins in enumerate(code):
        if ins.op is Op.JUMP:
            succs.append((ins.arg,))
        elif ins.op in (Op.JIF_TRUE, Op.JIF_FALSE):
            succs.append((i + 1, ins.arg))
        elif ins.op in (Op.RET, Op.RET_VAL, Op.THROW):
            succs.append(())
        else:
            succs.append((i + 1,))

    live = [frozenset()] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            ins = code[i]
            out = frozenset()
            for s in succs[i]:
                if s < n:
                    out = out | live[s]
            if ins.op is Op.LOAD:
                new = out | {ins.arg}
            elif ins.op is Op.STORE:
                new = out - {ins.arg}
            else:
                new = out
            if new != live[i]:
                live[i] = new
                changed = True

    method._live_in_sets = live
    return live


def live_at(method, bci):
    """Slots live at ``bci`` (conservatively all slots past the end)."""
    sets = live_in_sets(method)
    if bci >= len(sets):
        return frozenset(range(method.num_locals))
    return sets[bci]

"""Table 2b — logistic regression rows (paper: library 1-5.8×,
Lancet-Delite 7.8-33×, Delite 7.8-40×, manual-opt Delite 24-133×,
C++ 25-161×, GPU ~50×)."""

from repro.optiml.reference import logreg_cpp, logreg_delite


def test_library_row(benchmark, logreg_setup):
    s = logreg_setup
    cols = [c[:1000] for c in s["cols"]]
    benchmark.pedantic(
        lambda: s["jit"].vm.call("Logreg", "run",
                                 [cols, s["y"][:1000], 1, s["alpha"]]),
        rounds=1, iterations=1)


def test_lancet_delite_row(benchmark, logreg_setup):
    s = logreg_setup
    s["jit"].delite.configure("seq")
    benchmark(s["cf"], 0)


def test_lancet_delite_smp8(benchmark, logreg_setup):
    s = logreg_setup
    s["jit"].delite.configure("smp", cores=8)
    benchmark(s["cf"], 0)
    s["jit"].delite.configure("seq")


def test_lancet_delite_gpu(benchmark, logreg_setup):
    s = logreg_setup
    s["jit"].delite.configure("gpu")
    benchmark(s["cf"], 0)
    s["jit"].delite.configure("seq")


def test_delite_standalone_row(benchmark, logreg_setup):
    from repro.delite.runtime import DeliteRuntime
    s = logreg_setup
    rt = DeliteRuntime(backend="seq")
    benchmark(logreg_delite, rt, s["cols"], s["y"], s["iters"], s["alpha"])


def test_cpp_row(benchmark, logreg_setup):
    s = logreg_setup
    benchmark(logreg_cpp, s["cols"], s["y"], s["iters"], s["alpha"])

"""The MiniJVM instruction set.

Operand stack effects are written ``before -- after`` with the stack top on
the right, mirroring JVM documentation conventions.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """MiniJVM opcodes."""

    # -- constants and locals ------------------------------------------------
    CONST = 1         # ``-- k``            operand: a literal (int/float/str/bool/None)
    LOAD = 2          # ``-- v``            operand: local slot index
    STORE = 3         # ``v --``            operand: local slot index

    # -- operand stack shuffling ---------------------------------------------
    POP = 10          # ``v --``
    DUP = 11          # ``v -- v v``
    SWAP = 12         # ``a b -- b a``

    # -- arithmetic (numbers; ADD also concatenates strings) ------------------
    ADD = 20          # ``a b -- a+b``
    SUB = 21          # ``a b -- a-b``
    MUL = 22          # ``a b -- a*b``
    DIV = 23          # ``a b -- a/b``      truncating for int/int, float otherwise
    MOD = 24          # ``a b -- a%b``      C-style remainder for ints
    NEG = 25          # ``a -- -a``

    # -- comparisons and logic -------------------------------------------------
    EQ = 30           # ``a b -- a==b``
    NE = 31
    LT = 32
    LE = 33
    GT = 34
    GE = 35
    NOT = 36          # ``a -- !a``

    # -- control flow ----------------------------------------------------------
    JUMP = 40         # operand: target instruction index
    JIF_TRUE = 41     # ``c --``            jump if truthy
    JIF_FALSE = 42    # ``c --``            jump if falsy
    RET = 43          # return null from the current method
    RET_VAL = 44      # ``v --``            return v

    # -- objects ----------------------------------------------------------------
    NEW = 50          # ``-- obj``          operand: class name (fields null-initialized)
    GETFIELD = 51     # ``obj -- v``        operand: field name
    PUTFIELD = 52     # ``obj v --``        operand: field name
    INSTANCEOF = 53   # ``obj -- bool``     operand: class name (subclass-aware)

    # -- calls --------------------------------------------------------------------
    INVOKE = 60       # ``recv a1..an -- r``   operand: (method name, argc); virtual dispatch
    INVOKE_STATIC = 61  # ``a1..an -- r``      operand: (class name, method name, argc)

    # -- arrays ----------------------------------------------------------------------
    NEW_ARRAY = 70    # ``n -- arr``        array of n nulls
    ALOAD = 71        # ``arr i -- v``
    ASTORE = 72       # ``arr i v --``
    ALEN = 73         # ``arr -- n``
    ARRAY_LIT = 74    # ``v1..vn -- arr``   operand: n

    # -- exceptions ---------------------------------------------------------------------
    THROW = 80        # ``v --``            raise a guest exception carrying v


# Opcodes that transfer control (used by block finding and the verifier).
BRANCH_OPS = frozenset({Op.JUMP, Op.JIF_TRUE, Op.JIF_FALSE})
TERMINATOR_OPS = frozenset({Op.JUMP, Op.RET, Op.RET_VAL, Op.THROW})

# (pops, pushes) for fixed-arity opcodes; calls/array-lit handled specially.
STACK_EFFECT = {
    Op.CONST: (0, 1), Op.LOAD: (0, 1), Op.STORE: (1, 0),
    Op.POP: (1, 0), Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.MOD: (2, 1), Op.NEG: (1, 1),
    Op.EQ: (2, 1), Op.NE: (2, 1), Op.LT: (2, 1), Op.LE: (2, 1),
    Op.GT: (2, 1), Op.GE: (2, 1), Op.NOT: (1, 1),
    Op.JUMP: (0, 0), Op.JIF_TRUE: (1, 0), Op.JIF_FALSE: (1, 0),
    Op.RET: (0, 0), Op.RET_VAL: (1, 0),
    Op.NEW: (0, 1), Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.INSTANCEOF: (1, 1),
    Op.NEW_ARRAY: (1, 1), Op.ALOAD: (2, 1), Op.ASTORE: (3, 0),
    Op.ALEN: (1, 1),
    Op.THROW: (1, 0),
}

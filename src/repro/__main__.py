"""Command-line interface: run, disassemble, and inspect MiniJ programs.

    python -m repro run program.mj [fn [args...]]     # interpret
    python -m repro jit program.mj fn [args...]       # compile + run
    python -m repro dis program.mj                    # show bytecode
    python -m repro dump program.mj fn                # show generated code

Arguments are parsed as Python literals (42, 3.5, "text", True).
"""

from __future__ import annotations

import argparse
import ast
import sys

from repro import Lancet
from repro.bytecode.disassembler import disassemble_class
from repro.frontend.compiler import compile_source


def _parse_arg(text):
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _load(path, module):
    with open(path) as f:
        source = f.read()
    jit = Lancet()
    jit.load(source, module=module)
    return jit


def cmd_run(args):
    jit = _load(args.program, args.module)
    jit.vm._output_mode = "stdout"
    result = jit.vm.call(args.module, args.fn,
                         [_parse_arg(a) for a in args.args])
    if result is not None:
        print(result)
    return 0


def cmd_jit(args):
    jit = _load(args.program, args.module)
    jit.vm._output_mode = "stdout"
    compiled = jit.compile_function(args.module, args.fn)
    result = compiled(*[_parse_arg(a) for a in args.args])
    if result is not None:
        print(result)
    if args.show_code:
        print("\n--- generated code ---", file=sys.stderr)
        print(compiled.source, file=sys.stderr)
    return 0


def cmd_dis(args):
    with open(args.program) as f:
        source = f.read()
    for cls in compile_source(source, module=args.module):
        print(disassemble_class(cls))
        print()
    return 0


def cmd_dump(args):
    jit = _load(args.program, args.module)
    compiled = jit.compile_function(args.module, args.fn)
    print(compiled.source)
    if compiled.warnings:
        print("\n# warnings:", file=sys.stderr)
        for w in compiled.warnings:
            print("#   %s" % w, file=sys.stderr)
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Lancet-on-MiniJVM toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="interpret a guest program")
    p.add_argument("program")
    p.add_argument("fn", nargs="?", default="main")
    p.add_argument("args", nargs="*")
    p.add_argument("--module", default="Main")
    p.set_defaults(handler=cmd_run)

    p = sub.add_parser("jit", help="compile a function, then run it")
    p.add_argument("program")
    p.add_argument("fn")
    p.add_argument("args", nargs="*")
    p.add_argument("--module", default="Main")
    p.add_argument("--show-code", action="store_true")
    p.set_defaults(handler=cmd_jit)

    p = sub.add_parser("dis", help="disassemble compiled bytecode")
    p.add_argument("program")
    p.add_argument("--module", default="Main")
    p.set_defaults(handler=cmd_dis)

    p = sub.add_parser("dump", help="print the JIT's generated code")
    p.add_argument("program")
    p.add_argument("fn")
    p.add_argument("--module", default="Main")
    p.set_defaults(handler=cmd_dump)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

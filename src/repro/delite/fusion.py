"""Op fusion over the staged IR (paper 3.4).

Rewrites chains of Delite statements inside compiled code:

* ``map(map(xs))`` — vertical fusion by kernel composition;
* ``sum(map(xs))`` / ``sum(zipmap(xs, ys))`` — DeliteOpMapReduce, removing
  the intermediate array;
* ``map(zipWithIndex(xs))`` — the AoS-to-SoA transformation: the map
  kernel is recompiled against a synthesized ``(element, index)`` closure,
  whose Pair allocation Lancet scalar-replaces — so the fused kernel never
  allocates pair objects at all (exactly the paper's name-score win).

Producers whose only consumer was fused away become dead and are removed
by the regular DCE pass (delite ops are functional).

Every rewrite is *legality-gated* by the parallel-safety summaries
(:mod:`repro.analysis.parsafe`): composing kernels reorders their
effects, so ``fuse`` refuses — with a ``fusion.reject`` telemetry
event — any rewrite whose kernels it cannot prove write-free (and any
ZipMap whose element inputs may alias under an unproven kernel). Each
performed rewrite is journaled and re-checked against the summaries
afterwards, the fusion analogue of per-pass translation validation:
a re-check finding means the preflight and the summaries disagree and
raises :class:`~repro.errors.ParallelSafetyError` (or becomes an error
diagnostic in collect mode).
"""

from __future__ import annotations

from repro.analysis.effects import fresh_syms
from repro.analysis.parsafe import (FusionRecord, check_fusion,
                                    recheck_fusions)
from repro.bytecode.builder import MethodBuilder
from repro.bytecode.classfile import ClassFile
from repro.errors import ParallelSafetyError
from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import Sym


def fuse_delite(blocks, jit=None, diagnostics=None):
    """Fuse Delite stmt chains in-place; returns the number of fusions."""
    delite_stmts = {}
    for block in blocks.values():
        for stmt in block.stmts:
            if stmt.op == "delite":
                delite_stmts[stmt.sym.name] = stmt
    if not delite_stmts:
        return 0

    tel = getattr(jit, "telemetry", None)
    fresh = fresh_syms(blocks)
    journal = []
    rejected = set()      # (consumer sym, producer sym): don't re-probe
    uses = _count_uses(blocks)
    fused = 0
    changed = True
    while changed:
        changed = False
        for block in blocks.values():
            for stmt in block.stmts:
                if stmt.op != "delite":
                    continue
                if _try_fuse(stmt, delite_stmts, uses, jit, journal,
                             rejected, fresh, tel):
                    uses = _count_uses(blocks)
                    fused += 1
                    changed = True
    if journal:
        findings = recheck_fusions(journal, fresh)
        if findings:
            if tel is not None:
                tel.record("fusion.recheck_fail", findings=list(findings))
            if diagnostics is not None:
                diagnostics.extend("error", "parsafe", findings)
            else:
                raise ParallelSafetyError(
                    "fusion re-check failed: %s" % "; ".join(findings),
                    findings=findings)
    return fused


def _count_uses(blocks):
    uses = {}

    def use(rep):
        if isinstance(rep, Sym):
            uses[rep.name] = uses.get(rep.name, 0) + 1

    for block in blocks.values():
        for stmt in block.stmts:
            for a in stmt.args:
                use(a)
        term = block.terminator
        if isinstance(term, Jump):
            for __, rep in term.phi_assigns:
                use(rep)
        elif isinstance(term, Branch):
            use(term.cond)
            for __, rep in term.true_assigns + term.false_assigns:
                use(rep)
        elif isinstance(term, Return):
            use(term.value)
        elif isinstance(term, (Deopt, OsrCompile)):
            for rep in term.lives:
                use(rep)
    return uses


def _producer_of(rep, delite_stmts, uses):
    if not isinstance(rep, Sym):
        return None
    if uses.get(rep.name, 0) != 1:
        return None      # intermediate observed elsewhere: keep it
    return delite_stmts.get(rep.name)


def _legal(kind, kernels, elem_reps, fresh, rejected, site, tel):
    """Preflight one candidate rewrite against the summaries; fires a
    ``fusion.reject`` event (once per site) on refusal."""
    ok, checker, reason = check_fusion(kind, kernels, elem_reps, fresh)
    if ok:
        return True
    if site not in rejected:
        rejected.add(site)
        if tel is not None:
            tel.inc("fusion.rejects")
            tel.record("fusion.reject", kind=kind, checker=checker,
                       reason=reason,
                       kernels=[k.name for k in kernels])
    return False


def _try_fuse(stmt, delite_stmts, uses, jit, journal, rejected, fresh, tel):
    from repro.delite.ops import (MapIndexedOp, MapOp, MapReduceOp,
                                  ReduceOp, ZipMapOp, ZipWithIndexOp)
    op = stmt.args[0]

    if isinstance(op, MapOp):
        producer = _producer_of(stmt.args[1], delite_stmts, uses)
        if producer is None:
            return False
        site = (stmt.sym.name, producer.sym.name)
        if site in rejected:
            return False
        pop = producer.args[0]
        if isinstance(pop, MapOp):
            kernels = (pop.kernel, op.kernel)
            elem_reps = tuple(producer.args[1:1 + pop.n_elem])
            if not _legal("map-map", kernels, elem_reps, fresh, rejected,
                          site, tel):
                return False
            fused = MapOp(pop.kernel.compose(op.kernel))
            stmt.args = (fused,) + tuple(producer.args[1:])
            journal.append(FusionRecord("map-map", stmt, fused, kernels,
                                        elem_reps))
            return True
        if isinstance(pop, ZipWithIndexOp) and jit is not None:
            if not _legal("soa", (op.kernel,), (), fresh, rejected, site,
                          tel):
                return False
            indexed = _indexify_kernel(jit, op.kernel)
            if indexed is not None:
                fused = MapIndexedOp(indexed)
                stmt.args = (fused,) + tuple(producer.args[1:])
                journal.append(FusionRecord("soa", stmt, fused,
                                            (op.kernel, indexed)))
                return True
        return False

    if isinstance(op, ReduceOp) and op.kernel is None:
        producer = _producer_of(stmt.args[1], delite_stmts, uses)
        if producer is None:
            return False
        site = (stmt.sym.name, producer.sym.name)
        if site in rejected:
            return False
        pop = producer.args[0]
        if isinstance(pop, (MapOp, ZipMapOp, MapIndexedOp)):
            kernels = (pop.kernel,)
            elem_reps = tuple(producer.args[1:1 + pop.n_elem])
            if not _legal("map-reduce", kernels, elem_reps, fresh,
                          rejected, site, tel):
                return False
        if isinstance(pop, MapOp):
            fused = MapReduceOp(pop.kernel, n_elem=1)
        elif isinstance(pop, ZipMapOp):
            fused = MapReduceOp(pop.kernel, n_elem=2)
        elif isinstance(pop, MapIndexedOp):
            fused = MapReduceOp(pop.kernel, n_elem=1, indexed=True)
        else:
            return False
        stmt.args = (fused,) + tuple(producer.args[1:])
        journal.append(FusionRecord("map-reduce", stmt, fused,
                                    (pop.kernel,),
                                    tuple(stmt.args[1:1 + pop.n_elem])))
        return True
    return False


_SYNTH_COUNT = [0]


def _indexify_kernel(jit, pair_kernel):
    """Recompile a Pair-taking kernel as a two-argument (value, index)
    kernel. The synthesized wrapper allocates the Pair, and Lancet's
    scalar replacement removes it — this is the SoA conversion."""
    from repro.bytecode.opcodes import Op
    from repro.delite.kernels import Kernel
    from repro.runtime.objects import new_instance

    closure = getattr(pair_kernel, "guest_closure", None)
    if closure is None or "Pair" not in jit.vm.linker.classes:
        return None
    _SYNTH_COUNT[0] += 1
    name = "Delite$SoA%d" % _SYNTH_COUNT[0]
    cf = ClassFile(name, is_closure=True)
    cf.add_field("f", is_val=True)
    b = MethodBuilder("apply", 2, is_static=False)
    # return this.f.apply(new Pair(x, i))
    b.load(0).getfield("f")
    b.new("Pair").emit(Op.DUP).load(1).load(2).invoke("init", 2)
    b.emit(Op.POP)
    b.invoke("apply", 1)
    b.ret_val()
    cf.add_method(b.build())
    jit.vm.load_classes([cf])
    wrapper = new_instance(jit.vm.linker.resolve_class(name))
    wrapper.fields["f"] = closure
    kernel = Kernel.from_closure(jit, wrapper, name="soa:%s"
                                 % pair_kernel.name)
    return kernel

"""Tiered compilation: promotion ladder, OSR tier-up, deopt demotion,
blacklisting, and tier-aware caching (ISSUE 3 tentpole)."""

import pytest

from repro import CompileOptions, Lancet
from repro.pipeline import TIER0, TIER1, TIER2, tier_options
from repro.pipeline.passes import PassManager, TIER_PASSES

CALC_SRC = '''
    def calc(x, y) {
      var acc = 0;
      var i = 0;
      while (i < x) { acc = acc + y + i; i = i + 1; }
      return acc;
    }
    def hotloop(n) {
      var acc = 0;
      var i = 0;
      while (i < n) { acc = acc + i; i = i + 1; }
      return acc;
    }
    def spec(x) {
      if (Lancet.speculate(x < 100)) { return x * 2; }
      else { return 0 - x; }
    }
'''


def expected_calc(x, y):
    return sum(y + i for i in range(x))


def tiered_jit(**thresholds):
    j = Lancet()
    j.load(CALC_SRC)
    j.telemetry.enable_trace()
    for name, value in thresholds.items():
        setattr(j.options, name, value)
    return j


class TestPromotionLadder:
    def test_0_to_1_to_2_on_invocation_counts(self):
        j = tiered_jit(tier1_threshold=2, tier2_threshold=4)
        tf = j.compile_tiered("Main", "calc")
        assert tf.tier == TIER0

        results = [tf(5, k) for k in range(6)]
        assert results == [expected_calc(5, k) for k in range(6)]
        assert tf.tier == TIER2

        promotes = [e.data for e in j.telemetry.events("tier.promote")]
        assert [(e["from_tier"], e["to_tier"]) for e in promotes] == \
            [(0, 1), (1, 2)]

    def test_promotion_replaces_cache_entry(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=3)
        tf = j.compile_tiered("Main", "calc")
        for k in range(5):
            tf(4, k)
            # Never more than one unit-cache entry per tier transition:
            # promotion replaces, it does not accumulate.
            assert len(j.unit_cache) <= 1
        assert tf.tier == TIER2
        assert len(j.unit_cache) == 1

    def test_tier_recorded_on_compiled_unit_and_stats(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=3)
        tf = j.compile_tiered("Main", "calc")
        tf(3, 1)
        tf(3, 1)
        assert tf.compiled.tier == TIER1
        assert tf.compiled.report.tier == TIER1
        for _ in range(3):
            tf(3, 1)
        assert tf.compiled.tier == TIER2
        tiers = j.stats()["tiers"]
        assert tiers["compiles_by_tier"] == {1: 1, 2: 1}
        assert tiers["promotions"] == 2
        assert tiers["units"]["Main.calc"]["tier"] == TIER2


class TestDifferential:
    def test_promoted_tier2_matches_direct_tier2(self):
        """A unit compiled Tier 1 then promoted to Tier 2 behaves exactly
        like a direct Tier-2 compile (acceptance criterion)."""
        j = tiered_jit(tier1_threshold=1, tier2_threshold=2)
        tf = j.compile_tiered("Main", "calc")
        promoted = [tf(6, k) for k in range(5)]
        assert tf.tier == TIER2

        direct_jit = Lancet()
        direct_jit.load(CALC_SRC)
        direct = direct_jit.compile_function("Main", "calc")
        assert promoted == [direct(6, k) for k in range(5)]
        # Same optimizing pipeline -> same generated code.
        assert tf.compiled.source == direct.source

    def test_tier1_compiles_and_matches_interpreter(self):
        j = Lancet()
        j.load(CALC_SRC)
        quick = j.compile_function(
            "Main", "calc", options=tier_options(j.options, TIER1))
        for x, y in [(0, 0), (3, 2), (10, 7)]:
            assert quick(x, y) == expected_calc(x, y)


class TestOsrTierUp:
    def test_hot_loop_tiers_up_mid_execution(self):
        j = tiered_jit(tier1_threshold=10**9, tier2_threshold=10**9,
                       osr_threshold=50)
        tf = j.compile_tiered("Main", "hotloop")
        n = 500
        assert tf(n) == sum(range(n))   # OSR fires inside this one call
        assert tf.tier == TIER2         # and promotes the unit for later
        events = [e.data for e in j.telemetry.events("osr.tier_up")]
        assert len(events) == 1
        assert events[0]["unit"] == "Main.hotloop"
        assert events[0]["backedges"] == 50
        assert j.stats()["tiers"]["osr_tier_ups"] == 1

    def test_cold_loop_stays_interpreted(self):
        j = tiered_jit(tier1_threshold=10**9, tier2_threshold=10**9,
                       osr_threshold=10**9)
        tf = j.compile_tiered("Main", "hotloop")
        assert tf(200) == sum(range(200))
        assert tf.tier == TIER0
        assert not j.telemetry.events("osr.tier_up")


class TestDemotion:
    def test_deopt_budget_demotes_then_blacklists(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=2,
                       deopt_budget=1)
        tf = j.compile_tiered("Main", "spec")
        for _ in range(4):
            tf(5)
        assert tf.tier == TIER2

        # Every call with x >= 100 fails the speculation guard.
        assert tf(200) == -200
        assert tf(300) == -300          # budget exhausted: demote 2 -> 1
        assert tf.tier == TIER1
        assert tf(400) == -400
        assert tf(500) == -500          # exhausted again: blacklist to 0
        assert tf.tier == TIER0
        assert tf.blacklisted
        assert len(j.unit_cache) == 0   # blacklisting drops the entry

        demotes = [e.data for e in j.telemetry.events("tier.demote")]
        assert [(e["from_tier"], e["to_tier"]) for e in demotes] == \
            [(2, 1), (1, 0)]
        assert demotes[-1]["blacklisted"]

        # Blacklisted units keep working, interpreted, and never promote.
        assert tf(5) == 10
        assert tf(600) == -600
        assert tf.tier == TIER0
        stats = j.stats()["tiers"]
        assert stats["demotions"] == 2
        assert stats["blacklists"] == 1

    def test_deopts_within_budget_keep_tier(self):
        j = tiered_jit(tier1_threshold=1, tier2_threshold=2,
                       deopt_budget=5)
        tf = j.compile_tiered("Main", "spec")
        for _ in range(3):
            tf(5)
        assert tf.tier == TIER2
        assert tf(150) == -150
        assert tf(250) == -250
        assert tf.tier == TIER2
        assert not j.telemetry.events("tier.demote")


class TestCacheAcrossTiers:
    def test_tier_is_part_of_the_unit_key(self):
        j = Lancet()
        j.load(CALC_SRC)
        quick = j.compile_function(
            "Main", "calc", options=tier_options(j.options, TIER1))
        full = j.compile_function("Main", "calc")
        assert quick is not full
        assert len(j.unit_cache) == 2
        # Same tier -> cache hit.
        assert j.compile_function(
            "Main", "calc", options=tier_options(j.options, TIER1)) is quick

    def test_invalidation_crosses_tiers(self):
        """Flushing the unit cache invalidates entries at every tier;
        each recompiles at its own tier on the next call."""
        j = Lancet()
        j.load(CALC_SRC)
        quick = j.compile_function(
            "Main", "calc", options=tier_options(j.options, TIER1))
        full = j.compile_function("Main", "calc")
        j.unit_cache.invalidate_all("test flush")
        assert not quick.valid and not full.valid
        assert quick(3, 1) == expected_calc(3, 1)
        assert full(3, 1) == expected_calc(3, 1)
        assert quick.compile_count == 2 and full.compile_count == 2
        # The recompiles kept their tiers (options flow through the
        # rebuild closure).
        assert quick.tier == TIER1 and full.tier == TIER2


class TestTieredMakeHot:
    def test_make_hot_tiered_promotes_in_place(self):
        from repro.jit.cache import make_hot
        j = Lancet()
        j.load(CALC_SRC)
        j.telemetry.enable_trace()
        j.options.tier2_threshold = 3
        calc_hot = make_hot(j, "Main", "calc", threshold=1, tiered=True)
        assert calc_hot(5, 0) == expected_calc(5, 0)   # interpreted
        assert len(calc_hot.cache) == 0
        assert calc_hot(5, 1) == expected_calc(5, 1)   # tier-1 compile
        assert calc_hot.variant_tier[5] == 1
        assert len(calc_hot.cache) == 1
        for k in range(2, 6):
            assert calc_hot(5, k) == expected_calc(5, k)
        assert calc_hot.variant_tier[5] == 2           # promoted in place
        assert len(calc_hot.cache) == 1
        promotes = [e.data for e in j.telemetry.events("tier.promote")]
        assert [(e["from_tier"], e["to_tier"]) for e in promotes] == \
            [(1, 2)]


class TestPassManagerTiers:
    def test_tier1_pass_list_is_minimal(self):
        pm = PassManager(CompileOptions(tier=1))
        assert pm.passes_for(1) == ("fuse",)

    def test_tier2_pass_list_is_full(self):
        pm = PassManager(CompileOptions(parsafe="off"))
        names = pm.passes_for(2)
        # verify.* needs verify_ir; parsafe needs the gate on (or a
        # collect-mode diagnostics sink).
        assert names == tuple(n for n in TIER_PASSES[2]
                              if not n.startswith("verify.")
                              and n != "parsafe")
        assert "dce" in names and "taint" in names and "alloc" in names

    def test_parsafe_pass_gated_on_option(self):
        assert "parsafe" in PassManager(
            CompileOptions(parsafe="check")).passes_for(2)
        assert "parsafe" not in PassManager(
            CompileOptions(parsafe="off")).passes_for(2)

    def test_demanded_checks_upgrade_tier1(self):
        pm = PassManager(CompileOptions(tier=1, check_noalloc=True))
        assert "alloc" in pm.passes_for(1)

    def test_verify_passes_gated_on_verify_ir(self):
        pm = PassManager(CompileOptions(verify_ir=True))
        assert "verify.staged" in pm.passes_for(2)
        assert "verify.optimized" in pm.passes_for(2)

    def test_pass_stats_recorded_per_unit(self):
        j = Lancet()
        j.load(CALC_SRC)
        compiled = j.compile_function("Main", "calc")
        stats = compiled.report.pass_stats
        passes = [s for s in stats if not s["pass"].startswith("validate.")]
        assert [s["pass"] for s in passes] == \
            ["fuse", "gvn", "licm", "sink", "range", "dce", "guards",
             "taint", "alloc"]
        for s in passes:
            assert s["blocks_after"] <= s["blocks_before"]
            assert s["seconds"] >= 0
        # REPRO_VALIDATE=1 (the test-suite default) interleaves a
        # speculation-soundness checkpoint after each validated pass.
        checks = [s for s in stats if s["pass"].startswith("validate.")]
        assert checks, "expected interleaved validator checkpoints"
        for s in checks:
            assert s["findings"] == 0 and s["deopt_findings"] == 0


class TestTierDirectives:
    SRC = '''
        def make1() {
          return Lancet.tier1(fun() {
            return Lancet.compile(fun(x) => x + x);
          });
        }
        def make2() {
          return Lancet.tier2(fun() {
            return Lancet.compile(fun(x) => x + x);
          });
        }
    '''

    def test_tier1_scope_pins_nested_compile(self):
        """The tier directive is a staging-time scope: when the outer
        unit is compiled, nested `Lancet.compile` calls inherit it."""
        j = Lancet()
        j.load(self.SRC)
        f1 = j.compile_function("Main", "make1")()
        assert f1(21) == 42
        assert f1.tier == TIER1
        f2 = j.compile_function("Main", "make2")()
        assert f2(21) == 42
        assert f2.tier == TIER2


class TestTierOptions:
    def test_tier1_disables_heavy_machinery(self):
        base = CompileOptions()
        quick = tier_options(base, TIER1)
        assert quick.tier == 1
        assert quick.inline_policy == "never"
        assert not quick.speculate_stable
        assert not quick.delite_fusion
        assert not quick.verify_ir and not quick.verify_bytecode

    def test_tier0_has_no_compiled_options(self):
        with pytest.raises(ValueError):
            tier_options(CompileOptions(), TIER0)

    def test_derived_options_are_memoized(self):
        """Hot-path regression (ISSUE 8): every tiered call derives its
        tier's options, so the derivation must be cached — equal base
        options at the same tier return the *same* object, not a fresh
        dataclasses.replace per call."""
        base = CompileOptions()
        assert tier_options(base, TIER1) is tier_options(base, TIER1)
        assert tier_options(base, TIER2) is tier_options(base, TIER2)
        # Value-equal bases share the cache entry (the key is the
        # option values, not the instance).
        twin = CompileOptions()
        assert tier_options(twin, TIER1) is tier_options(base, TIER1)
        # Different bases miss: no cross-contamination.
        other = CompileOptions(opt_gvn=False)
        assert tier_options(other, TIER1) is not tier_options(base, TIER1)
        assert tier_options(base, TIER1) is not tier_options(base, TIER2)

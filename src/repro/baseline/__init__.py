"""Tier-1 baseline compiler, derived from the interpreter (Druid-style).

The interpreter's per-opcode handler table (:mod:`repro.interp.handlers`)
is the single source of truth for guest semantics; this package
template-compiles each handler to CPython bytecode — no staging, no
source text, no ``exec``-compile — giving a tier-1 compile that is
orders of magnitude cheaper than the staged pipeline (see
DESIGN.md, "Deriving the baseline from the handler table").
"""

from repro.baseline.compiler import (BaselineFunction, BaselineUnsupported,
                                     baseline_namespace, baseline_supported,
                                     compile_baseline)

__all__ = [
    "BaselineFunction",
    "BaselineUnsupported",
    "baseline_namespace",
    "baseline_supported",
    "compile_baseline",
]

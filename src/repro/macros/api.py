"""The macro-side API: directives and the :class:`MacroContext`.

A macro is a host function ``fn(ctx, recv_rep, arg_reps)`` returning:

* a ``Rep`` — the staged value replacing the call;
* ``None`` — decline; the call is handled normally;
* a *directive*:

  - :class:`MacroInline` — inline a (possibly synthesized) method with
    given Rep arguments; ``on_return(machine, state, rep)`` may chain
    another directive. This is how ``funR`` materializes: unfolding a
    staged closure substitutes Rep arguments for its parameters.
  - :class:`SlowpathDirective` — terminate compilation of this path with a
    transfer to the interpreter (paper: ``slowpath``/OSR-out).
  - :class:`FastpathDirective` — terminate with on-the-fly recompilation of
    the current continuation (paper: ``fastpath``).
  - :class:`ReturnDirective` — abort the current continuation and make the
    given value the result of the compiled unit (``shiftR`` consuming the
    continuation).
"""

from __future__ import annotations

from repro.absint.absval import Const, Partial, PartialArray, Static, Unknown
from repro.errors import FreezeError, MaterializeError
from repro.lms.ir import Effect
from repro.lms.rep import ConstRep, StaticRep, Sym


class MacroInline:
    def __init__(self, method, args, receiver=None, scope_updates=None,
                 on_return=None):
        self.method = method
        self.args = list(args)
        self.receiver = receiver          # Rep or None for statics
        self.scope_updates = scope_updates or {}
        self.on_return = on_return

    def __repr__(self):
        return "MacroInline(%s)" % self.method.qualified_name


class SlowpathDirective:
    """Deoptimize here; ``result`` is the value the intercepted call
    produces when re-executed by the interpreter."""

    def __init__(self, result=None):
        self.result = result


class FastpathDirective:
    """Recompile the continuation with current values as constants."""

    def __init__(self, result=None):
        self.result = result


class ReturnDirective:
    """Discard the current continuation; return ``rep`` from the unit."""

    def __init__(self, rep):
        self.rep = rep


class MacroContext:
    """What a macro sees: the compiler's internals, scoped to the current
    machine state (paper 2.3: "macros can easily interface with the
    compiler internals")."""

    def __init__(self, machine, state):
        self.machine = machine
        self.state = state
        self.vm = machine.vm

    # -- staged-value introspection ------------------------------------------

    @property
    def ctx(self):
        return self.machine.ctx

    def eval_abs(self, rep):
        """``evalA``: abstract information about a staged value."""
        return self.machine.eval_abs(self.state, rep)

    def lift(self, value):
        """``liftConst``: embed a concrete value."""
        return self.machine.ctx.lift(value)

    def eval_m(self, rep):
        """``evalM``: materialize a staged value back to a concrete one.

        Follows the paper's implementation: statics are returned directly;
        ``Partial`` objects are allocated and their fields recursively
        materialized; anything dynamic raises :class:`MaterializeError`.
        """
        return self.machine.eval_m(self.state, rep)

    def freeze_eval(self, thunk_rep):
        """Materialize a thunk closure and run it at JIT-compile time."""
        try:
            thunk = self.eval_m(thunk_rep)
        except MaterializeError as exc:
            raise FreezeError(
                "freeze: argument cannot be evaluated at compile time: %s"
                % exc)
        try:
            value = self.vm.call_closure(thunk, [])
        except Exception as exc:
            raise FreezeError("freeze: compile-time evaluation failed: %s"
                              % exc)
        return value

    def closure_apply_method(self, rep):
        """Resolve the ``apply`` method of a staged closure (for funR-style
        unfolding); raises if the closure's class is not statically known."""
        av = self.eval_abs(rep)
        if isinstance(av, Static):
            from repro.runtime.objects import Obj
            if not isinstance(av.obj, Obj):
                raise MaterializeError("not a guest closure: %r" % (av.obj,))
            cls = av.obj.cls
        elif isinstance(av, Partial):
            cls = av.cls
        else:
            raise MaterializeError(
                "funR: closure target is not statically known (%r)" % (av,))
        method = cls.lookup_method("apply")
        if method is None:
            raise MaterializeError("no apply method on %s" % cls.name)
        return method

    def fun_r(self, closure_rep, args, on_return=None, scope_updates=None):
        """``funR``: unfold a staged closure applied to staged arguments.

        Returns a :class:`MacroInline` directive the machine executes; the
        closure body is inlined with ``args`` substituted for parameters.
        """
        method = self.closure_apply_method(closure_rep)
        return MacroInline(method, args, receiver=closure_rep,
                           on_return=on_return, scope_updates=scope_updates)

    # -- emission ---------------------------------------------------------------

    def escape(self, rep):
        """Materialize a scalar-replaced allocation because the macro is
        about to embed it in residual code."""
        self.machine.escape(self.state, rep)
        return rep

    def get_field(self, rep, name):
        """Read ``rep.name`` through the optimizer (folds val fields of
        static/partial receivers) — lets virtual-method macros reach their
        receiver's state, as the paper's OptiML macros do."""
        return self.machine._getfield(self.state, rep, name)

    def emit(self, op, args, effect=Effect.PURE, flags=None, absval=None):
        merged_flags = dict(self.machine.emit_flags(self.state))
        if flags:
            merged_flags.update(flags)
        return self.machine.ctx.emit(op, args, effect=effect,
                                     flags=merged_flags, absval=absval)

    def emit_native_call(self, native, args, absval=None):
        return self.machine.emit_native(self.state, native, args)

    def warn(self, message):
        self.machine.ctx.warn(message)

    # -- speculation ----------------------------------------------------------------

    def guard(self, cond_rep, result_value, kind="interpret", expect=True):
        """Emit a guard: if ``cond_rep`` is not ``expect`` at runtime,
        deoptimize (``kind='interpret'``) or recompile (``'recompile'``);
        the intercepted call's value on the deopt path is
        ``result_value``."""
        return self.machine.emit_guard(self.state, cond_rep, result_value,
                                       kind=kind, expect=expect)

    # -- scope -------------------------------------------------------------------------

    def scope(self):
        return self.state.frame.scope

    def scope_get(self, name, default=None):
        return self.state.frame.scope.get(name, default)

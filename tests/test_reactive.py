"""Reactive observer networks over stable structure (paper 3.2)."""

import pytest

from repro import Lancet
from repro.apps import load_app


@pytest.fixture
def jit():
    j = Lancet()
    load_app(j, "reactive", module="Reactive")
    for cls, field in [("Sum", "left"), ("Sum", "right"),
                       ("Scale", "input"), ("Scale", "factor"),
                       ("Max", "left"), ("Max", "right")]:
        j.mark_stable(cls, field)
    return j


def build_network(jit):
    """out = max(2 * (a + b), c)"""
    a = jit.vm.new_object("Source", [1.0])
    b = jit.vm.new_object("Source", [2.0])
    c = jit.vm.new_object("Source", [10.0])
    s = jit.vm.new_object("Sum", [a, b])
    sc = jit.vm.new_object("Scale", [s, 2.0])
    out = jit.vm.new_object("Max", [sc, c])
    return a, b, c, out


class TestReactiveNetwork:
    def test_interpreted_evaluation(self, jit):
        a, b, c, out = build_network(jit)
        assert jit.vm.call_virtual(out, "eval", []) == 10.0
        a.put("value", 10.0)
        assert jit.vm.call_virtual(out, "eval", []) == 24.0

    def test_compiled_propagation(self, jit):
        a, b, c, out = build_network(jit)
        compiled = jit.vm.call("Reactive", "compileNetwork", [out])
        assert compiled(0) == 10.0
        # Source values stay dynamic: updates flow without recompiling.
        a.put("value", 10.0)
        assert compiled(0) == 24.0
        assert compiled.compile_count == 1

    def test_topology_devirtualized(self, jit):
        """The network structure compiles away: no virtual dispatch, no
        eval() calls — just reads of the source cells plus arithmetic."""
        __, __, __, out = build_network(jit)
        compiled = jit.vm.call("Reactive", "compileNetwork", [out])
        compiled(0)
        assert "_callv" not in compiled.source
        assert "eval" not in compiled.source

    def test_rewiring_invalidates_and_recompiles(self, jit):
        a, b, c, out = build_network(jit)
        compiled = jit.vm.call("Reactive", "compileNetwork", [out])
        assert compiled(0) == 10.0
        # Structural update: out now compares against a new subnetwork.
        d = jit.vm.new_object("Source", [100.0])
        out.put("right", d)               # @stable write -> invalidation
        assert not compiled.valid
        assert compiled(0) == 100.0
        assert compiled.compile_count == 2

    def test_scale_factor_is_stable_constant(self, jit):
        __, __, __, out = build_network(jit)
        compiled = jit.vm.call("Reactive", "compileNetwork", [out])
        compiled(0)
        assert "2.0" in compiled.source   # factor folded into the code

"""Warm-start manifests: record a fleet's compiled shape, replay it.

A manifest is the recipe for a warm cache, not the cache itself: it
records the guest sources a VM had loaded and the (class, method, tier)
units it compiled, plus the content fingerprints those units hashed to.
``repro serve --warm manifest.json`` replays the recipe into a fresh
sharded store — every unit is recompiled once (or skipped when the
store already holds its fingerprint), so a brand-new fleet's first
tenant already gets zero-compile warm starts.

Why replay instead of shipping entry files? Fingerprints cover the
whole loaded class set, the CompileOptions, the macro registry, and
(for baseline units) the host bytecode magic — a copied entry that no
longer matches any of those is dead weight, while a replayed compile
always lands under the key the *current* build will look up.
"""

from __future__ import annotations

import json

MANIFEST_VERSION = 1

#: Unit names that are not replayable static units: OSR continuations
#: and trace/bridge units are anchored to live execution state.
_SKIP_MARKERS = ("@",)


def build_manifest(jit):
    """Snapshot ``jit``'s loaded sources and compiled units as a
    replayable manifest dict."""
    units = []
    seen = set()
    for name, compiled in jit.compile_log:
        if any(marker in name for marker in _SKIP_MARKERS):
            continue        # osr@/trace@ units: not statically replayable
        if "." not in name:
            continue
        cls, method = name.rsplit(".", 1)
        tier = getattr(compiled, "tier", None)
        if tier not in (1, 2):
            continue
        key = (cls, method, tier)
        if key in seen:
            continue
        seen.add(key)
        units.append({"cls": cls, "method": method, "tier": tier})
    fingerprints = sorted(
        fp for fp in (getattr(compiled, "persist_key", None)
                      for _name, compiled in jit.compile_log)
        if fp)
    return {
        "version": MANIFEST_VERSION,
        "sources": [[source, module]
                    for source, module in getattr(jit, "loaded_sources", [])],
        "units": units,
        "fingerprints": fingerprints,
    }


def write_manifest(jit, path):
    manifest = build_manifest(jit)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
    return manifest


def load_manifest(path_or_dict):
    if isinstance(path_or_dict, dict):
        return path_or_dict
    with open(path_or_dict, encoding="utf-8") as f:
        return json.load(f)


def warm_from_manifest(manifest, store, options=None, telemetry=None):
    """Replay ``manifest`` into ``store``: compile every recorded unit
    at its recorded tier inside a scratch VM whose persistent cache *is*
    the shared store. Units whose fingerprint the store already holds
    rehydrate instead of compiling (their store is a no-op overwrite is
    avoided by the warm-start lookup). Returns a summary dict; per-unit
    failures are collected, never raised — a stale manifest must not
    take prewarming down."""
    from repro.jit.api import Lancet
    from repro.pipeline.tiers import tier_options

    manifest = load_manifest(manifest)
    if manifest.get("version") != MANIFEST_VERSION:
        return {"units": 0, "compiled": 0, "warm_hits": 0,
                "errors": ["manifest version %r != %d"
                           % (manifest.get("version"), MANIFEST_VERSION)]}
    jit = Lancet(options=options, telemetry=telemetry)
    # The scratch VM persists straight into the shared sharded store; any
    # auto-attached server client is dropped (warming IS the server side).
    jit.compile_server = None
    jit.codecache = store
    # The store's counters live in *its* telemetry (the server's), not
    # the scratch VM's: snapshot them so the summary reports deltas.
    store_m = getattr(store, "telemetry", None)
    store_m = store_m.metrics if store_m is not None else None

    def _store_count(name):
        return store_m.get(name) if store_m is not None else 0

    hits_before = _store_count("codecache.hits")
    stores_before = _store_count("codecache.stores")
    errors = []
    for entry in manifest.get("sources", []):
        try:
            source, module = entry
            jit.load(source, module=module)
        except Exception as exc:
            errors.append("load %r: %s" % (entry[1:], exc))
    compiled_before = jit.telemetry.metrics.get("compiles")
    done = 0
    for unit in manifest.get("units", []):
        try:
            opts = tier_options(jit.options, unit["tier"])
            jit.compile_function(unit["cls"], unit["method"], options=opts)
            done += 1
        except Exception as exc:
            errors.append("%s.%s@tier%s: %s"
                          % (unit.get("cls"), unit.get("method"),
                             unit.get("tier"), exc))
    m = jit.telemetry.metrics
    summary = {
        "units": done,
        "compiled": m.get("compiles") - compiled_before,
        "warm_hits": _store_count("codecache.hits") - hits_before,
        "stored": _store_count("codecache.stores") - stores_before,
        "errors": errors,
    }
    jit.close()
    return summary

"""Typed event tracing for the compile pipeline.

An :class:`EventTrace` is a bounded ring buffer of :class:`Event` records
(compile start/end, inlining decisions, guards, deopts, cache traffic,
macro expansions, Delite kernel launches, ...). Recording is disabled by
default — ``record`` is a single flag test when off — and events can be
exported as JSONL, one self-contained JSON object per line, replayable
event-by-event in order of their ``seq`` numbers.
"""

from __future__ import annotations

import json
import time
from collections import deque


class Event:
    """One telemetry event: a monotone sequence number, a wall-clock
    timestamp, a dotted ``kind`` tag, and a flat JSON-serializable payload."""

    __slots__ = ("seq", "ts", "kind", "data")

    def __init__(self, seq, ts, kind, data):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.data = data

    def to_dict(self):
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "data": self.data}

    @classmethod
    def from_dict(cls, d):
        return cls(d["seq"], d["ts"], d["kind"], d.get("data", {}))

    def __repr__(self):
        return "<Event #%d %s %r>" % (self.seq, self.kind, self.data)


class EventTrace:
    """A bounded ring buffer of events.

    The buffer holds at most ``capacity`` events; older events are dropped
    (``dropped`` counts how many). ``enabled`` gates recording — when off,
    ``record`` returns immediately so instrumented code paths pay only a
    flag check.
    """

    def __init__(self, capacity=4096, enabled=False):
        self.capacity = capacity
        self.enabled = enabled
        self._buf = deque(maxlen=capacity)
        self._seq = 0
        self.recorded = 0           # total ever recorded

    @property
    def dropped(self):
        return self.recorded - len(self._buf)

    def record(self, kind, /, **data):
        """Append an event (no-op unless the trace is enabled)."""
        if not self.enabled:
            return None
        self._seq += 1
        event = Event(self._seq, time.time(), kind, data)
        self._buf.append(event)
        self.recorded += 1
        return event

    def events(self, kind=None):
        """Events currently buffered, oldest first; optionally filtered by
        ``kind`` (exact match, or prefix match when ending with '.')."""
        if kind is None:
            return list(self._buf)
        if kind.endswith("."):
            return [e for e in self._buf if e.kind.startswith(kind)]
        return [e for e in self._buf if e.kind == kind]

    def clear(self):
        self._buf.clear()
        self.recorded = 0

    def __len__(self):
        return len(self._buf)

    def __iter__(self):
        return iter(list(self._buf))

    # -- JSONL export / replay -------------------------------------------------

    def export_jsonl(self, path_or_file):
        """Write buffered events as JSONL; returns the number written."""
        if hasattr(path_or_file, "write"):
            return self._write_jsonl(path_or_file)
        with open(path_or_file, "w") as f:
            return self._write_jsonl(f)

    def _write_jsonl(self, f):
        n = 0
        for event in self._buf:
            f.write(json.dumps(event.to_dict(), sort_keys=True))
            f.write("\n")
            n += 1
        return n


def load_jsonl(path_or_file):
    """Replay a JSONL trace file back into a list of :class:`Event`, in
    recorded order (each line is one event)."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as f:
            lines = f.read().splitlines()
    events = []
    for line in lines:
        line = line.strip()
        if line:
            events.append(Event.from_dict(json.loads(line)))
    return events

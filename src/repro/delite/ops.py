"""Delite parallel-pattern descriptors.

Ops are immutable descriptors baked into compiled code (or built directly
for standalone-Delite use). Inputs split into *element* inputs (arrays
traversed in parallel, chunkable) and *uniform* inputs (broadcast values:
centroid tables, weight vectors, scalars).

``DeliteOpMapReduce`` from the paper's Fig. 8 corresponds to
:class:`MapReduceOp` here.
"""

from __future__ import annotations

import numpy as np


class DeliteOp:
    """Base descriptor. ``n_elem`` element inputs come first in the call's
    argument list; the rest are uniforms.

    Two declared facts feed the parallel-safety analysis
    (:mod:`repro.analysis.parsafe`): ``scalar_result`` marks ops whose
    value is an identity-free scalar (safe to CSE/hoist when the kernel
    is proven write-free — array results carry identity and stay
    pinned), and ``total`` marks ops that cannot raise a guest error for
    well-typed inputs. Builtins declare ``total`` by contract (they are
    tuned, vetted patterns — the Delite stance); guest-kernel ops leave
    it False and must prove totality from their kernel IR."""

    name = "op"
    n_elem = 1
    gpu_capable = True
    scalar_result = False
    total = False

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.name)


class MapOp(DeliteOp):
    """out[i] = kernel(xs[i])"""

    def __init__(self, kernel, name=None):
        self.kernel = kernel
        self.name = name or "map:%s" % kernel.name
        self.n_elem = 1
        self.gpu_capable = kernel.vectorized


class ZipMapOp(DeliteOp):
    """out[i] = kernel(xs[i], ys[i])"""

    def __init__(self, kernel, name=None):
        self.kernel = kernel
        self.name = name or "zip:%s" % kernel.name
        self.n_elem = 2
        self.gpu_capable = kernel.vectorized


class MapIndexedOp(DeliteOp):
    """out[i] = kernel(xs[i], i) — a fused map-over-zipWithIndex (the SoA
    form: no pair objects are ever allocated)."""

    def __init__(self, kernel, name=None):
        self.kernel = kernel
        self.name = name or "mapidx:%s" % kernel.name
        self.n_elem = 1
        self.gpu_capable = kernel.vectorized


class ReduceOp(DeliteOp):
    """Fold with a binary kernel (or '+' builtin) over one array."""

    scalar_result = True

    def __init__(self, kernel=None, zero=0, name=None):
        self.kernel = kernel           # None -> sum
        self.zero = zero
        self.name = name or ("sum" if kernel is None
                             else "reduce:%s" % kernel.name)
        self.n_elem = 1
        self.gpu_capable = kernel is None


class MapReduceOp(DeliteOp):
    """sum_i kernel(xs_0[i], ..) — vertical fusion of Map/ZipMap into a
    Reduce (paper Fig. 8: DeliteOpMapReduce)."""

    scalar_result = True

    def __init__(self, map_kernel, n_elem=1, indexed=False, name=None):
        self.kernel = map_kernel
        self.n_elem = n_elem
        self.indexed = indexed
        self.name = name or "mapreduce:%s" % map_kernel.name
        self.gpu_capable = map_kernel.vectorized


class ZipWithIndexOp(DeliteOp):
    """Marker op producing a (values, indices) SoA pair; fusion eliminates
    it; unfused execution materializes index pairs (AoS) for fidelity with
    the library semantics."""

    def __init__(self, pair_factory=None):
        self.name = "zipWithIndex"
        self.n_elem = 1
        self.gpu_capable = False
        self.pair_factory = pair_factory   # makes guest Pair objects


class ElementwiseBuiltin(DeliteOp):
    """A fixed high-performance elementwise pattern with both scalar and
    numpy implementations (how Delite ships tuned patterns).

    ``numpy_fn(elem_arrays, uniforms) -> array``;
    ``scalar_fn(elem_values, uniforms) -> value``.
    """

    total = True         # builtin contract: no guest error possible

    def __init__(self, name, n_elem, numpy_fn, scalar_fn):
        self.name = name
        self.n_elem = n_elem
        self.numpy_fn = numpy_fn
        self.scalar_fn = scalar_fn
        self.gpu_capable = True


class ReduceBuiltin(DeliteOp):
    """A fixed reduction pattern: per-chunk ``numpy_fn`` then ``combine``.

    ``numpy_fn(elem_arrays, uniforms) -> partial``;
    ``combine(a, b) -> partial``.
    """

    total = True         # builtin contract: no guest error possible

    def __init__(self, name, n_elem, numpy_fn, combine, finalize=None,
                 scalar_result=False):
        self.name = name
        self.n_elem = n_elem
        self.numpy_fn = numpy_fn
        self.combine = combine
        self.finalize = finalize
        self.scalar_result = scalar_result
        self.gpu_capable = True


# ---------------------------------------------------------------------------
# The builtin patterns used by OptiML (k-means / logistic regression)
# ---------------------------------------------------------------------------

def _nearest2d_np(elems, uniforms):
    px, py = elems
    cx, cy = uniforms
    cx = np.asarray(cx, dtype=np.float64)
    cy = np.asarray(cy, dtype=np.float64)
    dx = px[:, None] - cx[None, :]
    dy = py[:, None] - cy[None, :]
    return np.argmin(dx * dx + dy * dy, axis=1)


def _nearest2d_scalar(elems, uniforms):
    x, y = elems
    cx, cy = uniforms
    best, best_d = 0, float("inf")
    for j in range(len(cx)):
        d = (x - cx[j]) ** 2 + (y - cy[j]) ** 2
        if d < best_d:
            best, best_d = j, d
    return best


NEAREST_2D = ElementwiseBuiltin("nearest2d", 2, _nearest2d_np,
                                _nearest2d_scalar)


def _cluster_sums2d_np(elems, uniforms):
    px, py, assign = elems
    (k,) = uniforms
    assign = np.asarray(assign, dtype=np.int64)
    sx = np.bincount(assign, weights=px, minlength=k)
    sy = np.bincount(assign, weights=py, minlength=k)
    cnt = np.bincount(assign, minlength=k).astype(np.float64)
    return np.stack([sx, sy, cnt])


CLUSTER_SUMS_2D = ReduceBuiltin("clusterSums2d", 3, _cluster_sums2d_np,
                                combine=lambda a, b: a + b)


def _mat_vec_cols_np(elems, uniforms):
    (w,) = uniforms
    out = elems[0] * w[0]
    for j in range(1, len(elems)):
        out = out + elems[j] * w[j]
    return out


def mat_vec_cols(d):
    """X·w with X stored column-wise (SoA): d element inputs."""
    return ElementwiseBuiltin(
        "matVecCols/%d" % d, d, _mat_vec_cols_np,
        scalar_fn=lambda elems, uniforms: sum(
            e * wj for e, wj in zip(elems, uniforms[0])))


def _sigmoid_np(elems, uniforms):
    with np.errstate(over="ignore"):
        return 1.0 / (1.0 + np.exp(-elems[0]))


SIGMOID = ElementwiseBuiltin("sigmoid", 1, _sigmoid_np, _sigmoid_np)

VSUB = ElementwiseBuiltin(
    "vsub", 2,
    lambda elems, uniforms: elems[0] - elems[1],
    lambda elems, uniforms: elems[0] - elems[1])

VADD = ElementwiseBuiltin(
    "vadd", 2,
    lambda elems, uniforms: elems[0] + elems[1],
    lambda elems, uniforms: elems[0] + elems[1])

VSCALE = ElementwiseBuiltin(
    "vscale", 1,
    lambda elems, uniforms: elems[0] * uniforms[0],
    lambda elems, uniforms: elems[0] * uniforms[0])


def _row_sums_np(elems, uniforms):
    (data,) = elems
    rows, cols = uniforms
    return data.reshape(int(rows), int(cols)).sum(axis=0)


class RowSumsOp(ReduceBuiltin):
    """sumRows over a row-major flat matrix (paper Fig. 8's sumRows)."""

    def __init__(self):
        super().__init__("rowSums", 1, _row_sums_np,
                         combine=lambda a, b: a + b)

    # Chunking must split on row boundaries; keep it whole-array.
    gpu_capable = True


ROW_SUMS = RowSumsOp()


def _weighted_col_sums_np(elems, uniforms):
    err = elems[-1]
    cols = elems[:-1]
    return np.array([float(np.dot(c, err)) for c in cols])


def weighted_col_sums(d):
    """gradient_j = sum_i X[i,j] * err[i]: d+1 element inputs."""
    return ReduceBuiltin("weightedColSums/%d" % d, d + 1,
                         _weighted_col_sums_np,
                         combine=lambda a, b: a + b)


DOT = ReduceBuiltin(
    "dot", 2,
    lambda elems, uniforms: float(np.dot(elems[0], elems[1])),
    combine=lambda a, b: a + b, scalar_result=True)

VSUM = ReduceBuiltin(
    "vsum", 1,
    lambda elems, uniforms: float(np.sum(elems[0])),
    combine=lambda a, b: a + b, scalar_result=True)


class RangeMapReduceOp(DeliteOp):
    """sum_{i=start..end} kernel(i) — the paper's Fig. 8
    ``DeliteOpMapReduce`` over an index range. The range arrives as two
    uniform args; chunking splits the index space."""

    scalar_result = True

    def __init__(self, kernel, name=None):
        self.kernel = kernel
        self.n_elem = 0
        self.name = name or "rangesum:%s" % kernel.name
        self.gpu_capable = kernel.vectorized

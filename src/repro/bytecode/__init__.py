"""MiniJVM bytecode: the guest instruction set Lancet interprets and compiles.

This package plays the role of JVM bytecode in the paper. It is a
dynamically-typed stack machine with JVM-flavoured structure: methods with
local slots, an operand stack, classes with fields and virtual dispatch, and
closures compiled to synthesized classes with an ``apply`` method.
"""

from repro.bytecode.opcodes import Op
from repro.bytecode.instr import Instr
from repro.bytecode.classfile import ClassFile, MethodInfo, FieldInfo
from repro.bytecode.builder import MethodBuilder
from repro.bytecode.assembler import assemble
from repro.bytecode.disassembler import disassemble_class, disassemble_method
from repro.bytecode.verifier import verify_class, verify_method

__all__ = [
    "Op", "Instr", "ClassFile", "MethodInfo", "FieldInfo", "MethodBuilder",
    "assemble", "disassemble_class", "disassemble_method",
    "verify_class", "verify_method",
]

"""Speculation macros: likely / speculate / stable (paper 3.2).

* ``likely(cond)`` — an optimization contract: the test will likely
  succeed. (We record it; a profiling VM could verify it.)
* ``speculate(cond)`` — assume the test always succeeds: the conditional
  folds to its then-branch and a guard deoptimizes to the interpreter when
  the assumption fails (``slowpath``).
* ``stable(expr)`` — snapshot the value at compile time and guard on it;
  a failing guard *recompiles* with the new value (``fastpath``-style)
  rather than staying in the interpreter.
"""

from __future__ import annotations


def likely(ctx, recv, args):
    cond = args[0]
    av = ctx.eval_abs(cond)
    # Contract only: if the fact is statically refuted, surface a warning
    # (the paper: "cause the VM to signal a warning").
    from repro.absint.absval import Const
    if isinstance(av, Const) and not av.value:
        ctx.warn("likely(cond) is statically false")
    return cond


def speculate(ctx, recv, args):
    cond = args[0]
    av = ctx.eval_abs(cond)
    from repro.absint.absval import Const
    if isinstance(av, Const):
        if not av.value:
            ctx.warn("speculate(cond) is statically false")
        return cond
    # Guard: if cond is false at runtime, deoptimize; the interpreter
    # re-executes with speculate(...) == False (paper:
    #   def speculate(x) = if (x) true else { slowpath(); false }).
    ctx.guard(cond, result_value=False, kind="interpret", expect=True)
    return ctx.lift(True)


def stable(ctx, recv, args):
    """``stable(x)``: x is expected to change rarely. Compile against the
    current value; on change, recompile (paper:
    ``if (x == c) c else { fastpath(); x }``)."""
    thunk = args[0]
    snapshot = ctx.freeze_eval(thunk)
    lifted = ctx.lift(snapshot)

    def after(machine, state, x_rep):
        av = machine.eval_abs(state, x_rep)
        if av.is_static_value:
            # The dynamic read folded, too — no guard needed.
            return machine.ctx.lift(machine.static_value(state, x_rep))
        eq = machine._binop(state, "eq", x_rep, lifted)
        # reason="stable" flows into the deopt meta and from there into
        # the invalidation reason — a persistent-cache entry dropped by
        # this guard records *why* it is gone.
        machine.emit_guard(state, eq, result=x_rep, kind="recompile",
                           reason="stable")
        return lifted

    return ctx.fun_r(thunk, [], on_return=after)

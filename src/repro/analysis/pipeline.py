"""Deprecated back-compat shim: the analysis pipeline is now the
PassManager.

The ad-hoc verify/optimize/taint/alloc sequencing that used to live here
became the declarative per-tier pass list in
:mod:`repro.pipeline.passes`. ``AnalysisPipeline`` remains importable
(same constructor, same ``run(result, name, report=...)`` contract,
always the full Tier-2 list) but emits a :class:`DeprecationWarning`;
construct :class:`~repro.pipeline.passes.PassManager` and pass
``tier=2`` to ``run`` instead.
"""

from __future__ import annotations

import warnings

from repro.pipeline.passes import PassManager


class AnalysisPipeline(PassManager):
    """Deprecated alias for :class:`PassManager` pinned to Tier 2."""

    def __init__(self, options, telemetry=None, diagnostics=None):
        warnings.warn(
            "AnalysisPipeline is deprecated; use "
            "repro.pipeline.passes.PassManager (run(..., tier=2)) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(options, telemetry=telemetry,
                         diagnostics=diagnostics)

    def run(self, result, name, tier=None, report=None):
        return super().run(result, name, tier=2, report=report)

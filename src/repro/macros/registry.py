"""Macro installation and lookup.

``install(class_name, method_name, fn)`` registers a macro for a guest
method or native namespace method; ``install_class(class_name, obj)``
registers every public method of a host object, mirroring the paper's::

    Lancet.install(classOf[LancetLib], LancetMacros)

Virtual calls consult the receiver's class chain so macros installed on a
superclass apply to subclasses.
"""

from __future__ import annotations


class MacroRegistry:
    def __init__(self):
        self._macros = {}   # (class_name, method_name) -> fn
        self.telemetry = None
        # Monotonic mutation counter: every install/uninstall bumps it,
        # including re-installing an existing key with a different fn
        # (macros change generated code without changing guest bytecode,
        # so the persistent code cache keys entries on this version).
        self._version = 0

    def install(self, class_name, method_name, fn):
        self._macros[(class_name, method_name)] = fn
        self._version += 1
        if self.telemetry is not None:
            self.telemetry.record("macro.install",
                                  target="%s.%s" % (class_name, method_name))

    def install_class(self, class_name, macros_obj):
        """Install every public callable attribute of ``macros_obj`` as a
        macro for the same-named method of ``class_name``."""
        for name in dir(macros_obj):
            if name.startswith("_"):
                continue
            fn = getattr(macros_obj, name)
            if callable(fn):
                self.install(class_name, name, fn)

    def uninstall(self, class_name, method_name):
        if self._macros.pop((class_name, method_name), None) is not None:
            self._version += 1

    @property
    def version(self):
        """A string naming the registry's state for cache fingerprints:
        the mutation count plus the sorted installed-macro key set. Two
        VMs that performed the same installs in the same order agree;
        any churn (even fn replacement under an existing key) differs."""
        keys = ";".join("%s.%s" % k for k in sorted(self._macros))
        return "%d:%s" % (self._version, keys)

    def lookup_static(self, class_name, method_name):
        return self._macros.get((class_name, method_name))

    def lookup_virtual(self, rtclass, method_name):
        """Walk the class chain for an applicable macro."""
        cls = rtclass
        while cls is not None:
            fn = self._macros.get((cls.name, method_name))
            if fn is not None:
                return fn
            cls = cls.superclass
        return None

    def __len__(self):
        return len(self._macros)

"""The staging context: symbol supply, IR emission, abstract facts.

One :class:`StagingContext` lives for the duration of a compilation pass.
It owns the CFG under construction, the ``Rep -> AbsVal`` mapping queried
through ``evalA`` (paper 2.2), the statics table (pre-existing objects the
generated code references), taint facts (paper 3.3), and deoptimization
metadata.
"""

from __future__ import annotations

from repro.absint.absval import UNKNOWN, Const, Static, abs_of_value
from repro.lms.ir import Block, Effect, Stmt
from repro.lms.rep import ConstRep, StaticRep, Sym

# Pure ops eligible for common-subexpression elimination within a block.
_CSE_OPS = frozenset({
    "add", "sub", "mul", "div", "mod", "neg", "eq", "ne", "lt", "le",
    "gt", "ge", "not", "alen", "instanceof", "to_str",
})


class StagingContext:
    """Mutable state of one compilation pass."""

    def __init__(self, statics=None):
        self._sym_counter = 0
        self.blocks = {}
        self.current_block = None
        self.abs = {}             # sym name -> AbsVal
        self.taint = {}           # sym name -> bool
        # Statics persist across passes so StaticRep indices stay stable.
        self.statics = statics if statics is not None else _Statics()
        self.deopt_metas = []
        self.warnings = []
        self._cse = {}            # (block id, op, args) -> sym

    # -- symbols ------------------------------------------------------------------

    def fresh_sym(self, prefix="s"):
        self._sym_counter += 1
        return Sym("%s%d" % (prefix, self._sym_counter))

    # -- blocks --------------------------------------------------------------------

    def new_block(self, block_id, params=()):
        block = Block(block_id, params)
        self.blocks[block_id] = block
        return block

    def set_current(self, block):
        self.current_block = block

    # -- lifting ---------------------------------------------------------------------

    def lift(self, value):
        """Lift a concrete value into a Rep (``liftConst`` in the paper)."""
        from repro.absint.absval import PRIMITIVES
        if isinstance(value, PRIMITIVES):
            return ConstRep(value)
        return self.lift_static(value)

    def lift_static(self, obj):
        index = self.statics.index_of(obj)
        return StaticRep(index, obj)

    # -- abstract facts ------------------------------------------------------------------

    def eval_abs(self, rep):
        """``evalA``: the abstract value attached to a staged value."""
        if isinstance(rep, ConstRep):
            return Const(rep.value)
        if isinstance(rep, StaticRep):
            return Static(rep.obj)
        return self.abs.get(rep.name, UNKNOWN)

    def set_abs(self, rep, absval):
        if isinstance(rep, Sym):
            self.abs[rep.name] = absval

    def is_tainted(self, rep):
        if isinstance(rep, Sym):
            return self.taint.get(rep.name, False)
        return False

    def set_taint(self, rep, tainted):
        if isinstance(rep, Sym):
            self.taint[rep.name] = tainted

    # -- emission -------------------------------------------------------------------------

    def emit(self, op, args, effect=Effect.PURE, flags=None, absval=None,
             taint=None):
        """Append ``sym = op(args)`` to the current block; returns the sym.

        Pure ops are CSE'd within the block. Taint defaults to the join of
        the Rep arguments' taints.
        """
        block = self.current_block
        if effect is Effect.PURE and op in _CSE_OPS:
            key = (block.block_id, op, tuple(args))
            hit = self._cse.get(key)
            if hit is not None:
                return hit
        sym = self.fresh_sym()
        block.stmts.append(Stmt(sym, op, args, effect, flags))
        if absval is not None:
            self.abs[sym.name] = absval
        if taint is None:
            taint = any(self.is_tainted(a) for a in args
                        if isinstance(a, Sym))
        self.taint[sym.name] = taint
        if effect is Effect.PURE and op in _CSE_OPS:
            self._cse[(block.block_id, op, tuple(args))] = sym
        return sym

    def warn(self, message):
        self.warnings.append(message)

    # -- deopt metadata ----------------------------------------------------------------------

    def add_deopt_meta(self, meta):
        self.deopt_metas.append(meta)
        return len(self.deopt_metas) - 1


class _Statics:
    """Identity-keyed table of pre-existing objects referenced by compiled
    code (the ``K`` array in generated source)."""

    def __init__(self):
        self.objects = []
        self._index = {}

    def index_of(self, obj):
        key = id(obj)
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.objects)
            self.objects.append(obj)
            self._index[key] = idx
        return idx

    def __len__(self):
        return len(self.objects)

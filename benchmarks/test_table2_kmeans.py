"""Table 2a — k-means clustering rows (paper: library 1.0-1.83×,
Lancet-Delite 4.9-24×, Delite ~5-25×, C++ 7.7-41×, GPU ~51-55×)."""

import pytest

from repro.optiml.reference import kmeans_cpp, kmeans_delite


def test_library_row(benchmark, kmeans_setup):
    s = kmeans_setup
    # Interpreted guest library at reduced size (extrapolation documented).
    px, py = s["px"][:1500], s["py"][:1500]
    benchmark.pedantic(
        lambda: s["jit"].vm.call("Kmeans", "run", [px, py, s["k"], 1]),
        rounds=1, iterations=1)


def test_lancet_delite_row(benchmark, kmeans_setup):
    s = kmeans_setup
    s["jit"].delite.configure("seq")
    benchmark(s["cf"], 0)


def test_lancet_delite_smp8(benchmark, kmeans_setup):
    s = kmeans_setup
    s["jit"].delite.configure("smp", cores=8)
    benchmark(s["cf"], 0)
    s["jit"].delite.configure("seq")


def test_lancet_delite_gpu(benchmark, kmeans_setup):
    s = kmeans_setup
    s["jit"].delite.configure("gpu")
    benchmark(s["cf"], 0)
    s["jit"].delite.configure("seq")


def test_delite_standalone_row(benchmark, kmeans_setup):
    from repro.delite.runtime import DeliteRuntime
    s = kmeans_setup
    rt = DeliteRuntime(backend="seq")
    benchmark(kmeans_delite, rt, s["px"], s["py"], s["k"], s["iters"])


def test_cpp_row(benchmark, kmeans_setup):
    s = kmeans_setup
    benchmark(kmeans_cpp, s["px"], s["py"], s["k"], s["iters"])


def test_shape_compiled_beats_interpreted(kmeans_setup):
    """Lancet-Delite must dominate the interpreted library by a large
    factor, and stay within a small factor of hand-fused numpy."""
    import time
    s = kmeans_setup
    t0 = time.perf_counter()
    s["jit"].vm.call("Kmeans", "run",
                     [s["px"][:1000], s["py"][:1000], s["k"], 1])
    t_lib_scaled = (time.perf_counter() - t0) \
        * (len(s["px"]) / 1000) * s["iters"]
    s["jit"].delite.configure("seq")
    t0 = time.perf_counter()
    s["cf"](0)
    t_ld = time.perf_counter() - t0
    assert t_ld < t_lib_scaled / 20

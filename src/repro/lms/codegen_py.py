"""Python code generation from the staged IR.

The CFG is emitted as one Python function with a label-dispatch loop::

    def __compiled(a1, a2):
        __L = 0
        while True:
            if __L == 0:
                s1 = _add(a1, 1)
                ...

Single-predecessor blocks read their predecessor's variables directly
(function locals persist across dispatch iterations and the predecessor
dominates); merge blocks receive values through explicit parameter
variables assigned by each predecessor.

This module only *renders*: block fusion and DCE are PassManager passes
(:mod:`repro.pipeline.passes`) shared by every backend; the names are
re-exported here for standalone codegen users.
"""

from __future__ import annotations

from repro.analysis.dce import eliminate_dead  # noqa: F401  (re-export)
from repro.analysis.fuse import fuse_blocks  # noqa: F401  (re-export)
from repro.lms.ir import Branch, Deopt, Jump, OsrCompile, Return
from repro.lms.rep import ConstRep, StaticRep, Sym


def _no_delite(*args):
    raise RuntimeError("no Delite runtime attached to this VM")

_INFIX = {"add": "+", "sub": "-", "mul": "*", "eq": "==", "ne": "!=",
          "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_HELPER_BY_OP = {
    "add": "_add", "sub": "_sub", "mul": "_mul", "div": "_div",
    "mod": "_mod", "neg": "_neg", "eq": "_eq", "ne": "_ne", "lt": "_lt",
    "le": "_le", "gt": "_gt", "ge": "_ge",
    "getfield": "_getf", "putfield": "_putf",
    "aload": "_aload", "astore": "_astore", "alen": "_alen",
}


class PyCodegen:
    """Emits and ``exec``-compiles one function from a CFG."""

    def __init__(self, vm, statics, metas, fn_name="__compiled"):
        self.vm = vm
        self.statics = statics
        self.metas = metas
        self.fn_name = fn_name
        self._native_bindings = {}   # binding name -> callable
        self.native_refs = {}        # binding name -> (class, native name)
        self.persist_blockers = []   # why this source can't be persisted

    # -- value rendering -------------------------------------------------------

    def rep(self, r):
        if isinstance(r, Sym):
            return r.name
        if isinstance(r, ConstRep):
            return self.const(r.value)
        if isinstance(r, StaticRep):
            return "K[%d]" % r.index
        raise AssertionError("bad rep %r" % (r,))

    @staticmethod
    def const(v):
        if isinstance(v, float):
            if v != v:
                return "float('nan')"
            if v in (float("inf"), float("-inf")):
                return "float('%sinf')" % ("-" if v < 0 else "")
        return repr(v)

    def _bind_native(self, nat):
        name = "n_%s_%s" % (nat.class_name, nat.name)
        self._native_bindings[name] = nat.fn
        self.native_refs[name] = (nat.class_name, nat.name)
        return name

    def bind_native_by_name(self, binding, class_name, native_name):
        """Re-resolve a recorded native binding (persistent-cache reload).
        Returns False when the native no longer exists."""
        from repro.runtime.natives import lookup_native
        nat = lookup_native(class_name, native_name)
        if nat is None:
            return False
        self._native_bindings[binding] = nat.fn
        self.native_refs[binding] = (class_name, native_name)
        return True

    # -- statement rendering --------------------------------------------------------

    def stmt(self, stmt):
        op = stmt.op
        args = stmt.args
        flags = stmt.flags
        r = self.rep
        target = stmt.sym.name

        if op in ("id", "taint", "untaint"):
            # taint/untaint are analysis-only markers: identity at runtime.
            return "%s = %s" % (target, r(args[0]))
        if op == "throw":
            return "raise _GuestThrow(%s)" % r(args[0])
        if op in _INFIX and flags.get("num"):
            return "%s = %s %s %s" % (target, r(args[0]), _INFIX[op], r(args[1]))
        if op in ("not",):
            return "%s = not %s" % (target, r(args[0]))
        if op == "neg" and flags.get("num"):
            return "%s = -%s" % (target, r(args[0]))
        if op == "concat":
            return "%s = %s + %s" % (target, r(args[0]), r(args[1]))
        if op == "to_str":
            return "%s = _gstr(%s)" % (target, r(args[0]))
        if op == "truthy":
            return "%s = bool(%s)" % (target, r(args[0]))
        if op == "getfield":
            if flags.get("objfast"):
                return "%s = %s.fields[%r]" % (target, r(args[0]), args[1])
            return "%s = _getf(%s, %r)" % (target, r(args[0]), args[1])
        if op == "putfield":
            if flags.get("objfast"):
                return "%s.fields[%r] = %s; %s = None" % (
                    r(args[0]), args[1], r(args[2]), target)
            return "%s = _putf(%s, %r, %s)" % (target, r(args[0]), args[1],
                                               r(args[2]))
        if op == "putfield_stablecheck":
            return "%s = _putf(%s, %r, %s)" % (target, r(args[0]), args[1],
                                               r(args[2]))
        if op == "alen" and flags.get("arrfast"):
            return "%s = len(%s)" % (target, r(args[0]))
        if op == "aload" and (flags.get("fast") or flags.get("known_arr")):
            return "%s = %s[%s]" % (target, r(args[0]), r(args[1]))
        if op == "astore" and flags.get("fast"):
            return "%s[%s] = %s; %s = None" % (r(args[0]), r(args[1]),
                                               r(args[2]), target)
        if op in _HELPER_BY_OP:
            rendered = ", ".join(r(a) for a in args)
            return "%s = %s(%s)" % (target, _HELPER_BY_OP[op], rendered)
        if op == "instanceof":
            return ("%s = isinstance(%s, _Obj) and %s.cls.is_subclass_of(%r)"
                    % (target, r(args[0]), r(args[0]), args[1]))
        if op == "class_is":
            # Exact-class test backing trace receiver speculation (the
            # subclass-aware `instanceof` would admit overriding classes).
            return ("%s = isinstance(%s, _Obj) and %s.cls.name == %r"
                    % (target, r(args[0]), r(args[0]), args[1]))
        if op == "new":
            return "%s = _newinst(%s)" % (target, r(args[0]))
        if op == "new_array":
            return "%s = _newarr(%s)" % (target, r(args[0]))
        if op == "array_lit":
            return "%s = [%s]" % (target, ", ".join(r(a) for a in args))
        if op == "delite":
            desc = args[0]
            binding = "dop_%d" % id(desc)
            self._native_bindings[binding] = desc
            # Kernel descriptors are live host objects bound by identity;
            # the rendered source is process-private.
            self.persist_blockers.append("delite kernel binding")
            rendered = ", ".join(r(a) for a in args[1:])
            return "%s = _drun(%s, %s)" % (target, binding, rendered)
        if op == "native":
            nat = args[0]
            if nat.py_inline is not None:
                expr = nat.py_inline.format(*[r(a) for a in args[1:]])
                return "%s = %s" % (target, expr)
            binding = self._bind_native(nat)
            rendered = ", ".join(r(a) for a in args[1:])
            return "%s = %s(vm, %s)" % (target, binding,
                                        rendered) if rendered else \
                   "%s = %s(vm)" % (target, binding)
        if op == "invoke":
            name = args[0]
            rendered = ", ".join(r(a) for a in args[2:])
            return "%s = _callv(%s, %r, [%s])" % (target, r(args[1]), name,
                                                  rendered)
        if op == "invoke_method":
            rendered = ", ".join(r(a) for a in args[2:])
            return "%s = _callm(%s, %s, [%s])" % (target, r(args[0]),
                                                  r(args[1]), rendered)
        if op == "guard":
            meta_id = args[1]
            lives = ", ".join(r(a) for a in args[2:])
            return ("if not %s: raise _DeoptEx(%d, (%s))\n%s = None"
                    % (r(args[0]), meta_id, lives + ("," if lives else ""),
                       target))
        if op == "guard_not":
            meta_id = args[1]
            lives = ", ".join(r(a) for a in args[2:])
            return ("if %s: raise _DeoptEx(%d, (%s))\n%s = None"
                    % (r(args[0]), meta_id, lives + ("," if lives else ""),
                       target))
        if op == "make_cont":
            meta_id = args[0]
            lives = ", ".join(r(a) for a in args[1:])
            return "%s = _mkcont(%d, (%s))" % (target, meta_id,
                                               lives + ("," if lives else ""))
        raise AssertionError("cannot render op %r" % (op,))

    # -- terminators ----------------------------------------------------------------

    def _assigns(self, assigns):
        if not assigns:
            return []
        names = ", ".join(n for n, __ in assigns)
        vals = ", ".join(self.rep(v) for __, v in assigns)
        return ["%s = %s" % (names, vals)]

    def terminator(self, term):
        if isinstance(term, Jump):
            return self._assigns(term.phi_assigns) + \
                ["__L = %d" % term.target, "continue"]
        if isinstance(term, Branch):
            lines = ["if %s:" % self.rep(term.cond)]
            body = self._assigns(term.true_assigns) + \
                ["__L = %d" % term.true_target, "continue"]
            lines += ["    " + ln for ln in body]
            lines.append("else:")
            body = self._assigns(term.false_assigns) + \
                ["__L = %d" % term.false_target, "continue"]
            lines += ["    " + ln for ln in body]
            return lines
        if isinstance(term, Return):
            return ["return %s" % self.rep(term.value)]
        if isinstance(term, Deopt):
            lives = ", ".join(self.rep(a) for a in term.lives)
            return ["raise _DeoptEx(%d, (%s))"
                    % (term.meta_id, lives + ("," if lives else ""))]
        if isinstance(term, OsrCompile):
            lives = ", ".join(self.rep(a) for a in term.lives)
            return ["return _osr(%d, (%s))"
                    % (term.meta_id, lives + ("," if lives else ""))]
        raise AssertionError("missing terminator")

    # -- whole function ----------------------------------------------------------------

    def generate(self, blocks, entry_id, param_names, callv, callm, mkcont,
                 osr, optimize=True):
        """Render, compile, and return ``(function, source)``.

        ``optimize=False`` skips fusion/DCE — the JIT pipeline has already
        run them (plus the IR analyses) by the time it calls us.
        """
        if optimize:
            fuse_blocks(blocks, entry_id)
            eliminate_dead(blocks, entry_id)
        lines = ["def %s(%s):" % (self.fn_name, ", ".join(param_names))]
        order = sorted(blocks)
        if len(order) == 1 and blocks[entry_id].block_id == entry_id:
            # Straight-line fast path: no dispatch loop needed.
            block = blocks[entry_id]
            body = []
            for stmt in block.stmts:
                body.extend(self.stmt(stmt).split("\n"))
            term = self.terminator(block.terminator)
            if term and term[-1] == "continue":  # pragma: no cover
                raise AssertionError("jump out of a single-block function")
            body += term
            lines += ["    " + ln for ln in body] or ["    pass"]
        else:
            lines.append("    __L = %d" % entry_id)
            lines.append("    while True:")
            first = True
            for bid in order:
                block = blocks[bid]
                kw = "if" if first else "elif"
                first = False
                lines.append("        %s __L == %d:" % (kw, bid))
                body = [self.stmt(s) for s in block.stmts]
                body += self.terminator(block.terminator)
                if not body:
                    body = ["pass"]
                for chunk in body:
                    for ln in chunk.split("\n"):
                        lines.append("            " + ln)

        source = "\n".join(lines) + "\n"
        return self.exec_source(source, callv, callm, mkcont, osr), source

    def exec_source(self, source, callv, callm, mkcont, osr,
                    filename="<lancet-compiled>"):
        """Compile already-rendered source against this codegen's
        namespace (statics, natives, runtime hooks). This is the reload
        half of the persistent code cache: cached source re-enters here
        without any staging."""
        namespace = self._namespace(callv, callm, mkcont, osr)
        code = compile(source, filename, "exec")
        exec(code, namespace)
        return namespace[self.fn_name]

    def _namespace(self, callv, callm, mkcont, osr):
        import math as _math

        from repro.compiler.deopt import DeoptException
        from repro.interp.interpreter import GuestThrow
        from repro.runtime import ops
        from repro.runtime.natives import to_guest_string
        from repro.runtime.objects import Obj, new_instance

        def _newarr(n):
            if not isinstance(n, int) or isinstance(n, bool) or n < 0:
                from repro.errors import GuestTypeError
                raise GuestTypeError("bad array length %r" % (n,))
            return [None] * n

        ns = {
            "K": self.statics.objects,
            "vm": self.vm,
            "_add": ops.guest_add, "_sub": ops.guest_sub,
            "_mul": ops.guest_mul, "_div": ops.guest_div,
            "_mod": ops.guest_mod, "_neg": ops.guest_neg,
            "_eq": ops.guest_eq, "_ne": ops.guest_ne,
            "_lt": ops.guest_lt, "_le": ops.guest_le,
            "_gt": ops.guest_gt, "_ge": ops.guest_ge,
            "_getf": ops.guest_getfield, "_putf": ops.guest_putfield,
            "_aload": ops.guest_aload, "_astore": ops.guest_astore,
            "_alen": ops.guest_alen,
            "_gstr": to_guest_string,
            "_Obj": Obj,
            "_newinst": new_instance,
            "_newarr": _newarr,
            "_DeoptEx": DeoptException,
            "_GuestThrow": GuestThrow,
            "_math": _math,
            "_callv": callv,
            "_callm": callm,
            "_mkcont": mkcont,
            "_osr": osr,
            "_drun": getattr(self.vm, "delite", None)
            and self.vm.delite.run or _no_delite,
        }
        ns.update(self._native_bindings)
        return ns

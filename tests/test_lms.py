"""LMS layer: staging context, CSE, DCE, block fusion, code generation."""

from repro.lms.codegen_py import eliminate_dead, fuse_blocks
from repro.lms.ir import Block, Branch, Effect, Jump, Return, Stmt
from repro.lms.rep import ConstRep, StaticRep, Sym
from repro.lms.staging import StagingContext


class TestStagingContext:
    def test_fresh_syms_unique(self):
        ctx = StagingContext()
        assert ctx.fresh_sym().name != ctx.fresh_sym().name

    def test_cse_within_block(self):
        ctx = StagingContext()
        block = ctx.new_block(0)
        ctx.set_current(block)
        a, b = Sym("a"), Sym("b")
        s1 = ctx.emit("add", (a, b))
        s2 = ctx.emit("add", (a, b))
        assert s1 == s2
        assert len(block.stmts) == 1

    def test_no_cse_across_blocks(self):
        ctx = StagingContext()
        b0 = ctx.new_block(0)
        ctx.set_current(b0)
        a = Sym("a")
        s1 = ctx.emit("add", (a, ConstRep(1)))
        b1 = ctx.new_block(1)
        ctx.set_current(b1)
        s2 = ctx.emit("add", (a, ConstRep(1)))
        assert s1 != s2

    def test_no_cse_for_effectful(self):
        ctx = StagingContext()
        block = ctx.new_block(0)
        ctx.set_current(block)
        a = Sym("a")
        s1 = ctx.emit("getfield", (a, "f"), effect=Effect.READ)
        s2 = ctx.emit("getfield", (a, "f"), effect=Effect.READ)
        assert s1 != s2

    def test_statics_identity_keyed(self):
        ctx = StagingContext()
        obj = [1, 2]
        r1 = ctx.lift_static(obj)
        r2 = ctx.lift_static(obj)
        assert r1.index == r2.index
        assert ctx.lift_static([1, 2]).index != r1.index

    def test_lift_primitives_vs_objects(self):
        ctx = StagingContext()
        assert isinstance(ctx.lift(3), ConstRep)
        assert isinstance(ctx.lift([1]), StaticRep)

    def test_taint_propagates_through_emit(self):
        ctx = StagingContext()
        block = ctx.new_block(0)
        ctx.set_current(block)
        a = Sym("a")
        ctx.set_taint(a, True)
        s = ctx.emit("add", (a, ConstRep(1)))
        assert ctx.is_tainted(s)


def make_block(bid, stmts, term):
    b = Block(bid)
    b.stmts = stmts
    b.terminator = term
    return b


class TestDCE:
    def test_removes_unused_pure(self):
        s_dead = Stmt(Sym("d"), "add", (ConstRep(1), ConstRep(2)),
                      Effect.PURE)
        s_live = Stmt(Sym("l"), "add", (ConstRep(3), ConstRep(4)),
                      Effect.PURE)
        blocks = {0: make_block(0, [s_dead, s_live], Return(Sym("l")))}
        removed = eliminate_dead(blocks)
        assert removed == 1
        assert blocks[0].stmts == [s_live]

    def test_keeps_effectful(self):
        s = Stmt(Sym("x"), "putfield", (Sym("o"), "f", ConstRep(1)),
                 Effect.WRITE)
        blocks = {0: make_block(0, [s], Return(ConstRep(None)))}
        assert eliminate_dead(blocks) == 0

    def test_transitive_liveness(self):
        s1 = Stmt(Sym("a"), "add", (ConstRep(1), ConstRep(2)), Effect.PURE)
        s2 = Stmt(Sym("b"), "add", (Sym("a"), ConstRep(3)), Effect.PURE)
        blocks = {0: make_block(0, [s1, s2], Return(Sym("b")))}
        assert eliminate_dead(blocks) == 0

    def test_unused_alloc_removed(self):
        s = Stmt(Sym("o"), "new_array", (ConstRep(4),), Effect.ALLOC)
        blocks = {0: make_block(0, [s], Return(ConstRep(0)))}
        assert eliminate_dead(blocks) == 1

    def test_branch_cond_is_a_use(self):
        s = Stmt(Sym("c"), "lt", (Sym("x"), ConstRep(5)), Effect.PURE)
        blocks = {
            0: make_block(0, [s], Branch(Sym("c"), 1, [], 2, [])),
            1: make_block(1, [], Return(ConstRep(1))),
            2: make_block(2, [], Return(ConstRep(2))),
        }
        assert eliminate_dead(blocks) == 0


class TestBlockFusion:
    def test_single_pred_chain_collapses(self):
        blocks = {
            0: make_block(0, [Stmt(Sym("a"), "add",
                                   (ConstRep(1), ConstRep(2)),
                                   Effect.PURE)], Jump(1)),
            1: make_block(1, [], Jump(2)),
            2: make_block(2, [], Return(Sym("a"))),
        }
        fuse_blocks(blocks, 0)
        assert list(blocks) == [0]
        assert isinstance(blocks[0].terminator, Return)

    def test_merge_block_not_fused(self):
        blocks = {
            0: make_block(0, [], Branch(Sym("c"), 1, [], 2, [])),
            1: make_block(1, [], Jump(3)),
            2: make_block(2, [], Jump(3)),
            3: make_block(3, [], Return(ConstRep(0))),
        }
        fuse_blocks(blocks, 0)
        assert 3 in blocks           # two predecessors: must survive

    def test_phi_assigns_become_stmts(self):
        blocks = {
            0: make_block(0, [], Jump(1, [("p1_0", ConstRep(7))])),
            1: make_block(1, [], Return(Sym("p1_0"))),
        }
        fuse_blocks(blocks, 0)
        # fusion would break the entry; entry target is excluded
        assert 0 in blocks

    def test_self_loop_not_fused(self):
        blocks = {
            0: make_block(0, [], Jump(1)),
            1: make_block(1, [], Jump(1)),
        }
        fuse_blocks(blocks, 0)
        assert 1 in blocks


class TestCodegenRendering:
    def test_float_specials(self):
        from repro.lms.codegen_py import PyCodegen
        assert PyCodegen.const(float("nan")) == "float('nan')"
        assert PyCodegen.const(float("inf")) == "float('inf')"
        assert PyCodegen.const(float("-inf")) == "float('-inf')"
        assert PyCodegen.const(1.5) == "1.5"
        assert PyCodegen.const("a'b") == repr("a'b")

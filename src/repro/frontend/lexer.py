"""MiniJ lexer."""

from __future__ import annotations

from repro.errors import MiniJSyntaxError

KEYWORDS = {
    "class", "extends", "def", "var", "val", "if", "else", "while", "for",
    "in", "return", "throw", "new", "fun", "this", "true", "false", "null",
    "is",
}

TWO_CHAR = {"==", "!=", "<=", ">=", "&&", "||", "=>"}
ONE_CHAR = set("+-*/%<>=!(){}[],.;:")


class Token:
    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind    # 'int','float','str','name','kw','op','eof'
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(source):
    """Tokenize MiniJ source; returns a list ending with an EOF token."""
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def err(msg):
        raise MiniJSyntaxError(msg, line, col)

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                err("unterminated block comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if c == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            buf = []
            while True:
                if i >= n:
                    err("unterminated string")
                ch = source[i]
                if ch == '"':
                    i += 1
                    col += 1
                    break
                if ch == "\\":
                    if i + 1 >= n:
                        err("bad escape at end of input")
                    esc = source[i + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"',
                                "\\": "\\", "r": "\r"}.get(esc))
                    if buf[-1] is None:
                        err("unknown escape \\%s" % esc)
                    i += 2
                    col += 2
                    continue
                if ch == "\n":
                    err("newline in string literal")
                buf.append(ch)
                i += 1
                col += 1
            tokens.append(Token("str", "".join(buf), start_line, start_col))
            continue
        if c.isdigit():
            start = i
            start_col = col
            while i < n and source[i].isdigit():
                i += 1
            is_float = False
            if i < n and source[i] == "." and i + 1 < n and source[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and source[i].isdigit():
                    i += 1
            if i < n and source[i] in "eE":
                j = i + 1
                if j < n and source[j] in "+-":
                    j += 1
                if j < n and source[j].isdigit():
                    is_float = True
                    i = j
                    while i < n and source[i].isdigit():
                        i += 1
            text = source[start:i]
            col += i - start
            tokens.append(Token("float" if is_float else "int",
                                float(text) if is_float else int(text),
                                line, start_col))
            continue
        if c.isalpha() or c == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] in "_$"):
                i += 1
            word = source[start:i]
            col += i - start
            kind = "kw" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line, start_col))
            continue
        two = source[i:i + 2]
        if two in TWO_CHAR:
            tokens.append(Token("op", two, line, col))
            i += 2
            col += 2
            continue
        if c in ONE_CHAR:
            tokens.append(Token("op", c, line, col))
            i += 1
            col += 1
            continue
        err("unexpected character %r" % c)

    tokens.append(Token("eof", None, line, col))
    return tokens

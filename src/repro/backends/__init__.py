"""Cross-compilation backends (paper section 3.5): the same staged IR that
feeds the Python code generator can target JavaScript and SQL."""

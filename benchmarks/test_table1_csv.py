"""Table 1 — CSV reading: every row of the paper's table as a benchmark.

Paper rows (speedup vs hand-written C++, normalized by input size):
C++ 1.00 / Scala Library ~0.9-1.25 / Scala Lancet ~2.2-2.9.
Expected shape here: Lancet beats both the generic library and the
straightforward hand-written reader; see EXPERIMENTS.md for measured
factors.
"""

from repro.apps.csv_baselines import (cpp_baseline, cpp_hashmap_baseline,
                                      library_baseline, specialized_by_hand)


def test_cpp_row(benchmark, csv_setup):
    s = csv_setup
    result = benchmark(cpp_baseline, s["lines"], s["keys"])
    assert result == s["expected"]


def test_cpp_hashmap_row(benchmark, csv_setup):
    s = csv_setup
    result = benchmark(cpp_hashmap_baseline, s["lines"], s["keys"])
    assert result == s["expected"]


def test_scala_library_row(benchmark, csv_setup):
    s = csv_setup
    result = benchmark(library_baseline, s["lines"], s["keys"])
    assert result == s["expected"]


def test_lancet_row_including_compile(benchmark, csv_setup):
    """The full explicit-compilation path, compile included (what a single
    processCSV call pays)."""
    s = csv_setup
    result = benchmark(s["jit"].vm.call, "CsvApp", "flagQuery",
                       [s["lines"], s["keys"]])
    assert result == s["expected"]


def test_lancet_row_steady_state(benchmark, csv_setup):
    """The specialized compiled loop itself (code-cache hit path)."""
    s = csv_setup
    runner = s["runner"]
    benchmark(runner, 1)


def test_hand_specialized_upper_bound(benchmark, csv_setup):
    s = csv_setup
    result = benchmark(specialized_by_hand, s["lines"], s["keys"])
    assert result == s["expected"]


def test_shape_lancet_beats_library_and_cpp(csv_setup):
    """The paper's headline: specialization wins over both baselines."""
    import time
    s = csv_setup

    def best(fn, *a):
        b = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            fn(*a)
            b = min(b, time.perf_counter() - t0)
        return b

    t_cpp = best(cpp_baseline, s["lines"], s["keys"])
    t_lib = best(library_baseline, s["lines"], s["keys"])
    t_lancet = best(s["runner"], 1)
    assert t_lancet < t_cpp
    assert t_lancet < t_lib
